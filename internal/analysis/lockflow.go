package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"physched/internal/analysis/cfg"
	"physched/internal/analysis/driver"
)

// This file is the flow engine shared by lockcheck, lockguard and
// spawncheck: a forward may/must dataflow over the internal/analysis/cfg
// graph tracking which mutexes are held, in which mode, and whether a
// deferred release is pending. Locks are identified by the source text of
// their receiver expression ("p.mu", "registryMu"): purely intra-
// procedural and alias-blind, which is exactly the granularity the
// repo's locking style uses — a mutex is always named through the same
// access path within one function. Locks reached through calls, stored
// in locals, or manipulated inside function literals are invisible here;
// function literals get their own independent analysis instead.

// lockOp is one sync.Mutex / sync.RWMutex / sync.Locker method call
// resolved to a trackable lock expression.
type lockOp struct {
	key    string // canonical receiver text, e.g. "p.mu"
	method string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
	read   bool   // RLock / RUnlock / TryRLock
	pos    token.Pos
}

// lockInfo is the dataflow fact for one lock key at one program point.
// The zero value means "not held, nothing pending".
type lockInfo struct {
	may, must       bool      // held on some / all paths to here
	read            bool      // the hold is a read lock on all holding paths
	defMay, defMust bool      // a deferred release is pending on some / all paths
	pos             token.Pos // an acquire site that may still be held
}

func (i lockInfo) zero() bool {
	return !i.may && !i.must && !i.defMay && !i.defMust
}

// lockState maps lock key → fact. States are small (one or two keys in
// practice), so whole-map cloning per block is cheap.
type lockState map[string]lockInfo

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge joins two states at a control-flow confluence: may/defMay are
// true if true on either path, must/defMust only if true on both, and a
// hold counts as a read hold only if it is one on every holding path.
func mergeStates(a, b lockState) lockState {
	out := make(lockState, len(a))
	for k, av := range a {
		bv := b[k] // zero value if absent
		out[k] = mergeInfo(av, bv)
	}
	for k, bv := range b {
		if _, seen := a[k]; !seen {
			out[k] = mergeInfo(lockInfo{}, bv)
		}
	}
	for k, v := range out {
		if v.zero() {
			delete(out, k)
		}
	}
	return out
}

func mergeInfo(a, b lockInfo) lockInfo {
	m := lockInfo{
		may:     a.may || b.may,
		must:    a.must && b.must,
		read:    (!a.may || a.read) && (!b.may || b.read),
		defMay:  a.defMay || b.defMay,
		defMust: a.defMust && b.defMust,
		pos:     a.pos,
	}
	if !m.pos.IsValid() {
		m.pos = b.pos
	}
	return m
}

func statesEqual(a, b lockState) bool {
	count := func(s lockState) int {
		n := 0
		for _, v := range s {
			if !v.zero() {
				n++
			}
		}
		return n
	}
	if count(a) != count(b) {
		return false
	}
	for k, av := range a {
		if av.zero() {
			continue
		}
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

// flowHooks are the analyzer callbacks fired during the replay pass.
// Every hook sees the state as it was immediately BEFORE the event.
type flowHooks struct {
	acquire      func(op lockOp, before lockInfo)
	release      func(op lockOp, before lockInfo)
	deferRelease func(op lockOp, before lockInfo)
	node         func(n ast.Node, st lockState)
	exit         func(pos token.Pos, isReturn bool, st lockState)
}

// runLockFlow runs the lock dataflow over body: a fixpoint pass to
// stabilise block entry states, then one replay pass over live blocks
// firing hooks. entry seeds the function entry state (caller-held locks
// declared via //physched:locked).
func runLockFlow(pass *driver.Pass, body *ast.BlockStmt, entry lockState, hooks *flowHooks) {
	g := cfg.New(body, mayReturnFunc(pass))
	if len(g.Blocks) == 0 {
		return
	}
	in := make([]lockState, len(g.Blocks))
	if entry == nil {
		entry = lockState{}
	}
	in[0] = entry.clone()

	// Fixpoint: worklist over block indices. The per-key lattice is
	// finite and mergeStates is a join, so entry states stabilise.
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := applyBlock(pass, g.Blocks[i], in[i], nil)
		for _, succ := range g.Blocks[i].Succs {
			j := int(succ.Index)
			var merged lockState
			if in[j] == nil {
				merged = out.clone()
			} else {
				merged = mergeStates(in[j], out)
			}
			if in[j] == nil || !statesEqual(in[j], merged) {
				in[j] = merged
				work = append(work, j)
			}
		}
	}

	if hooks == nil {
		return
	}
	// Replay with hooks, once per live reached block, in index order so
	// reports come out deterministic before the driver's final sort.
	exits := map[*cfg.Block]bool{}
	for _, b := range g.Exits() {
		exits[b] = true
	}
	for i, b := range g.Blocks {
		if !b.Live || in[i] == nil {
			continue
		}
		out := applyBlock(pass, b, in[i], hooks)
		if exits[b] && hooks.exit != nil {
			pos, isReturn := body.Rbrace, false
			if b.Kind == cfg.KindReturn {
				for _, n := range b.Nodes {
					if r, ok := n.(*ast.ReturnStmt); ok {
						pos, isReturn = r.Pos(), true
					}
				}
			}
			hooks.exit(pos, isReturn, out)
		}
	}
}

// applyBlock clones the entry state and pushes it through the block's
// nodes, firing hooks when non-nil.
func applyBlock(pass *driver.Pass, b *cfg.Block, in lockState, hooks *flowHooks) lockState {
	st := in.clone()
	for _, n := range b.Nodes {
		for _, part := range headParts(n) {
			if hooks != nil && hooks.node != nil {
				hooks.node(part, st)
			}
			applyNode(pass, part, st, hooks)
		}
	}
	return st
}

// headParts narrows a range-head node to what the head actually
// evaluates: the ranged expression and the key/value targets. The cfg
// builder puts the whole *ast.RangeStmt in the loop-head block, but the
// body belongs to other blocks — inspecting the full statement here
// would replay every lock op, contract call and field access in the
// body a second time under the loop-entry state (the quirk hotalloc's
// loop check also guards against).
func headParts(n ast.Node) []ast.Node {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	parts := []ast.Node{rs.X}
	if rs.Key != nil {
		parts = append(parts, rs.Key)
	}
	if rs.Value != nil {
		parts = append(parts, rs.Value)
	}
	return parts
}

// applyNode folds every lock operation syntactically inside n into st.
// Function literals are opaque (analysed separately); defer of a release
// records a pending release instead of an immediate one.
func applyNode(pass *driver.Pass, n ast.Node, st lockState, hooks *flowHooks) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			op, ok := mutexOp(pass, m.Call)
			if !ok {
				return true // defer of something else: scan its arguments
			}
			if op.method == "Unlock" || op.method == "RUnlock" {
				if hooks != nil && hooks.deferRelease != nil {
					hooks.deferRelease(op, st[op.key])
				}
				info := st[op.key]
				info.defMay, info.defMust = true, true
				st[op.key] = info
			}
			// defer mu.Lock() is nonsense; ignore rather than model.
			return false
		case *ast.CallExpr:
			if op, ok := mutexOp(pass, m); ok {
				applyOp(st, op, hooks)
				return false
			}
		}
		return true
	})
}

func applyOp(st lockState, op lockOp, hooks *flowHooks) {
	info := st[op.key]
	switch op.method {
	case "Lock", "RLock":
		if hooks != nil && hooks.acquire != nil {
			hooks.acquire(op, info)
		}
		info.may, info.must = true, true
		info.read = op.read
		info.pos = op.pos
		st[op.key] = info
	case "Unlock", "RUnlock":
		if hooks != nil && hooks.release != nil {
			hooks.release(op, info)
		}
		info.may, info.must = false, false
		// defMay/defMust survive: an explicit unlock does not cancel a
		// pending deferred one — that combination IS the double-unlock bug.
		st[op.key] = info
	case "TryLock", "TryRLock":
		// Conditional acquisition: modelling it needs branch-on-result
		// splitting the CFG does not do. Ignored; documented false
		// negative (DESIGN.md §12). The repo does not use Try*.
	}
}

// mutexOp resolves call to a lock operation when its callee is a
// sync.Mutex / sync.RWMutex / sync.Locker method (selection through an
// embedded mutex included) and its receiver has a stable source-text key.
func mutexOp(pass *driver.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockOp{}, false
	}
	var fn *types.Func
	if selection := pass.TypesInfo.Selections[sel]; selection != nil {
		fn, _ = selection.Obj().(*types.Func)
	} else if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		fn = f
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	key := exprString(sel.X)
	if key == "" {
		return lockOp{}, false
	}
	read := sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock" || sel.Sel.Name == "TryRLock"
	return lockOp{key: key, method: sel.Sel.Name, read: read, pos: call.Pos()}, true
}

// exprString renders simple access paths (idents, field selections) to
// their source text; anything with calls, indexing or literals inside
// returns "" and is untrackable.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	}
	return ""
}

// mayReturnFunc is the cfg.New predicate: calls that never return to the
// caller terminate their block. Resolution is type-aware so a local
// function named panic is not misclassified.
func mayReturnFunc(pass *driver.Pass) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "panic" {
				if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
					return false
				}
			}
		case *ast.SelectorExpr:
			pkgPath, ok := selectorPackage(pass, fun)
			if !ok {
				return true
			}
			switch pkgPath {
			case "os":
				if fun.Sel.Name == "Exit" {
					return false
				}
			case "runtime":
				if fun.Sel.Name == "Goexit" {
					return false
				}
			case "log":
				switch fun.Sel.Name {
				case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
					return false
				}
			}
		}
		return true
	}
}
