// Command experiments regenerates every table and figure of the paper's
// evaluation section, printing text tables and ASCII plots and optionally
// writing CSV files. Experiments execute on the internal/lab worker pool:
// -parallel bounds the concurrent simulation runs, -timeout aborts a
// sweep that runs away, and -progress streams per-run completions to
// stderr.
//
// Usage:
//
//	experiments [-fig all|fig2|fig3|fig4|fig5|fig6|fig7|rep|max|farm|
//	             ab-eviction|ab-steal|ab-replication|ab-hotspot|nodes|
//	             pipeline|baselines|hetero|daynight|faults|tune]
//	            [-quality quick|full] [-seed N] [-csv DIR] [-plots]
//	            [-parallel N] [-timeout D] [-progress]
//	experiments -spec grid.json [-cache-dir DIR] [-csv DIR] [-plots] ...
//
// With -spec the named experiments are replaced by one declarative grid
// spec (internal/spec, the same format physchedd accepts); -cache-dir
// backs it with a content-addressed result cache so re-running a spec
// only simulates cells that changed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"physched/internal/experiments"
	"physched/internal/lab"
	"physched/internal/resultcache"
	"physched/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		figFlag  = flag.String("fig", "all", "experiment to run: all, fig2..fig7, rep, max, farm, ab-*, nodes, pipeline, baselines, hetero, daynight, faults, tune")
		quality  = flag.String("quality", "quick", "quick (benchmark scale) or full (report scale)")
		seed     = flag.Int64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		plots    = flag.Bool("plots", true, "render ASCII plots for figure experiments")
		parallel = flag.Int("parallel", 0, "max concurrent simulation runs (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
		timeout  = flag.Duration("timeout", 0, "abort experiments after this wall-clock duration (0 = no limit); partial output may precede the abort")
		progress = flag.Bool("progress", false, "stream per-run completions to stderr")
		specPath = flag.String("spec", "", "declarative grid spec file to run instead of the named experiments (see internal/spec)")
		cacheDir = flag.String("cache-dir", "", "content-addressed result cache directory for -spec runs (empty = no cache)")
	)
	flag.Parse()

	var q experiments.Quality
	switch *quality {
	case "quick":
		q = experiments.Quick
	case "full":
		q = experiments.Full
	default:
		log.Fatalf("unknown -quality %q (want quick or full)", *quality)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// One process-wide pool serves every experiment grid, so -parallel
	// bounds concurrent simulation runs across the whole invocation.
	pool := lab.NewPool(*parallel)
	defer pool.Close()
	opts := lab.Options{Pool: pool, Context: ctx}
	if *progress {
		opts.Progress = func(u lab.ProgressUpdate) {
			state := "steady"
			if u.Overloaded {
				state = "overloaded"
			}
			fmt.Fprintf(os.Stderr, "progress: %d/%d  %-40s load=%.2f seed=%d  %s\n",
				u.Done, u.Total, u.Label, u.Load, u.Seed, state)
		}
	}
	experiments.Configure(opts)

	if *specPath != "" {
		if err := runSpec(ctx, *specPath, *cacheDir, opts, *csvDir, *plots); err != nil {
			log.Fatal(err)
		}
		return
	}

	ids := []string{*figFlag}
	if *figFlag == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		if err := run(ctx, id, q, *seed, *csvDir, *plots); err != nil {
			log.Fatal(err)
		}
		fmt.Println(strings.Repeat("=", 78))
	}
}

// run executes one experiment and prints it. The output is built first
// and discarded when ctx expired while the experiment ran — a cancelled
// grid leaves never-run cells zero-valued, and rendering those would
// present fabricated data points as results.
func run(ctx context.Context, id string, q experiments.Quality, seed int64, csvDir string, plots bool) error {
	var out string
	csv := ""
	switch id {
	case "fig2", "fig3", "fig5", "fig6", "fig7":
		var f experiments.Figure
		switch id {
		case "fig2":
			f = experiments.Fig2(q, seed)
		case "fig3":
			f = experiments.Fig3(q, seed)
		case "fig5":
			f = experiments.Fig5(q, seed)
		case "fig6":
			f = experiments.Fig6(q, seed)
		case "fig7":
			f = experiments.Fig7(q, seed)
		}
		out = f.Table() + "\n"
		if plots {
			out += f.Plots() + "\n"
		}
		csv = f.CSV()
	case "fig4":
		out = experiments.RenderDistributions(experiments.Fig4(q, seed))
	case "rep":
		out = experiments.RenderReplication(experiments.Replication(q, seed))
	case "max":
		out = experiments.RenderMaxLoad(experiments.MaxLoad(q, seed))
	case "farm":
		out = experiments.RenderFarm(experiments.FarmVsMErM(q, seed))
	case "ab-eviction":
		out = experiments.RenderAblation(
			"Ablation: LRU vs FIFO cache eviction (out-of-order policy)",
			experiments.AblationEviction(q, seed))
	case "ab-steal":
		out = experiments.RenderAblation(
			"Ablation: stolen subjobs read remotely vs re-read from tape",
			experiments.AblationStealSource(q, seed))
	case "ab-replication":
		out = experiments.RenderAblation(
			"Ablation: replication threshold (remote accesses before replicating)",
			experiments.AblationReplicationThreshold(q, seed))
	case "ab-hotspot":
		out = experiments.RenderAblation(
			"Ablation: workload hot-region weight",
			experiments.AblationHotspot(q, seed))
	case "nodes":
		out = experiments.RenderNodeCount(experiments.NodeCountStudy(q, seed))
	case "pipeline":
		out = experiments.RenderAblation(
			"Future work (§7): pipelining data transfers with computation",
			experiments.FutureWorkPipelining(q, seed))
	case "baselines":
		out = experiments.RenderAblation(
			"Baselines: static partitioning and affine farm vs the paper's dynamic policies",
			experiments.BaselineComparison(q, seed))
	case "hetero":
		out = experiments.RenderAblation(
			"Extension: heterogeneous node speeds (equal aggregate capacity)",
			experiments.HeterogeneityStudy(q, seed))
	case "daynight":
		out = experiments.RenderAblation(
			"Extension: day/night load cycle (inhomogeneous Poisson arrivals, equal mean load)",
			experiments.DayNight(q, seed))
	case "faults":
		out = experiments.RenderFaults(experiments.FaultStudy(q, seed))
	case "tune":
		tr, err := experiments.Tune(q, seed)
		if err != nil {
			return err
		}
		out = experiments.RenderTune(tr)
	default:
		return fmt.Errorf("unknown experiment %q (known: %s)",
			id, strings.Join(experiments.AllFigureIDs(), ", "))
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s aborted (%w): partial results discarded", id, err)
	}
	fmt.Println(out)
	if csv != "" && csvDir != "" {
		path := filepath.Join(csvDir, id+".csv")
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runSpec executes one declarative grid spec file on the lab pool,
// optionally backed by a content-addressed result cache, and renders the
// result like a figure experiment.
func runSpec(ctx context.Context, path, cacheDir string, opts lab.Options, csvDir string, plots bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	g, err := spec.ParseGrid(f)
	f.Close()
	if err != nil {
		return err
	}
	hash, err := g.Hash()
	if err != nil {
		return err
	}
	lg, err := g.Compile()
	if err != nil {
		return err
	}
	if cacheDir != "" {
		cache, err := resultcache.Open(cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = cache
		opts.Keys = g.Keys()
	}
	rs, err := lg.Execute(opts)
	if err != nil {
		return fmt.Errorf("%s aborted (%w): partial results discarded", path, err)
	}
	fig := experiments.Figure{
		ID:     "spec",
		Title:  fmt.Sprintf("spec %s (hash %.12s…)", filepath.Base(path), hash),
		Loads:  rs.Loads,
		Curves: rs.Curves(),
	}
	out := fig.Table() + "\n"
	if plots {
		out += fig.Plots() + "\n"
	}
	fmt.Println(out)
	if opts.Cache != nil {
		fmt.Printf("cells %d, served from cache %d\n", len(rs.Results), rs.CacheHits)
	}
	if csvDir != "" {
		p := filepath.Join(csvDir, "spec.csv")
		if err := os.WriteFile(p, []byte(fig.CSV()), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", p, err)
		}
		fmt.Printf("wrote %s\n", p)
	}
	return nil
}
