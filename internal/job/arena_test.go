package job

import (
	"testing"

	"physched/internal/dataspace"
)

// TestArenaHandlesSurviveChurn drives the arena through the allocation
// pattern of a long fault-injected run — a subjob is "killed", its
// remainder cloned and requeued, over and over — and asserts the handle
// contract: every pointer handed out stays valid for the arena's
// lifetime, and every subjob's dense ID keeps resolving to the same
// object through SubjobAt no matter how many chunks are appended later.
func TestArenaHandlesSurviveChurn(t *testing.T) {
	var a Arena
	j := a.NewJob()
	j.ID = 7
	j.Range = dataspace.Iv(0, 1_000_000)

	const cycles = 2_000 // crosses many arenaChunk boundaries
	handles := make([]*Subjob, 0, cycles+1)
	ranges := make([]dataspace.Interval, 0, cycles+1)

	running := a.NewSubjob(j, j.Range, -1)
	running.NoCacheQueue = true
	handles = append(handles, running)
	ranges = append(ranges, running.Range)
	for i := 0; i < cycles; i++ {
		// Node crash: the killed subjob's unprocessed remainder goes back
		// to the front of the queue it came from, as a clone.
		rem := a.CloneSubjob(running, dataspace.Iv(running.Range.Start+100, running.Range.End))
		if !rem.NoCacheQueue || rem.Origin != running.Origin {
			t.Fatalf("cycle %d: clone lost flags: %+v", i, rem)
		}
		handles = append(handles, rem)
		ranges = append(ranges, rem.Range)
		running = rem
	}

	if got := a.NumSubjobs(); got != cycles+1 {
		t.Fatalf("NumSubjobs = %d, want %d", got, cycles+1)
	}
	for i, h := range handles {
		if h.ID != int32(i) {
			t.Fatalf("handle %d has ID %d: IDs must be dense in allocation order", i, h.ID)
		}
		if a.SubjobAt(i) != h {
			t.Fatalf("SubjobAt(%d) moved: arena objects must be address-stable", i)
		}
		if h.Range != ranges[i] || h.Job != j {
			t.Fatalf("subjob %d data corrupted: %+v", i, h)
		}
	}
}

// TestArenaJobsAddressStable allocates jobs across several chunks and
// asserts pointer identity through JobAt.
func TestArenaJobsAddressStable(t *testing.T) {
	var a Arena
	const n = 3*arenaChunk + 5
	handles := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j := a.NewJob()
		j.ID = int64(i)
		handles = append(handles, j)
	}
	if a.NumJobs() != n {
		t.Fatalf("NumJobs = %d, want %d", a.NumJobs(), n)
	}
	for i, h := range handles {
		if a.JobAt(i) != h || h.ID != int64(i) {
			t.Fatalf("JobAt(%d) = %p (ID %d), want %p (ID %d)", i, a.JobAt(i), a.JobAt(i).ID, h, i)
		}
	}
}

// TestArenaResetReusesStorage verifies Reset invalidates the run's
// objects without giving back the first chunks, and that allocation
// starts over with dense IDs.
func TestArenaResetReusesStorage(t *testing.T) {
	var a Arena
	j := a.NewJob()
	for i := 0; i < arenaChunk+10; i++ {
		a.NewSubjob(j, dataspace.Iv(0, 10), -1)
	}
	a.Reset()
	if a.NumJobs() != 0 || a.NumSubjobs() != 0 {
		t.Fatalf("after Reset: %d jobs, %d subjobs", a.NumJobs(), a.NumSubjobs())
	}
	j2 := a.NewJob()
	sj := a.NewSubjob(j2, dataspace.Iv(5, 15), 3)
	if sj.ID != 0 || a.SubjobAt(0) != sj {
		t.Fatalf("post-Reset subjob ID = %d", sj.ID)
	}
}
