// Package sabotageguard deliberately races a majority-guarded field so
// tests can prove lockguard produces a nonzero exit through the real
// CLI (`physchedlint -analyzers=lockguard`). lockguard is Rules-scoped
// to the shared-state packages, so the unscoped -analyzers path is the
// one a sabotaged run takes.
package sabotageguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) dec() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

// racyRead is the sabotage: counter.n is guarded on 2 of 3 accesses.
func (c *counter) racyRead() int {
	return c.n
}
