package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(1)
	var order []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { order = append(order, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events ran out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Errorf("ran %d events, want %d", len(order), len(times))
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.At(1, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New(1)
	var hits []float64
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var ran []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { ran = append(ran, tm) })
	}
	e.RunUntil(3)
	if len(ran) != 3 {
		t.Errorf("RunUntil(3) ran %d events, want 3", len(ran))
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(ran) != 5 || e.Now() != 100 {
		t.Errorf("after RunUntil(100): ran=%d now=%v", len(ran), e.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := New(1)
	ev := e.At(1, func() { t.Error("cancelled event ran") })
	ev.Cancel()
	ok := false
	e.At(2, func() { ok = true })
	e.RunUntil(5)
	if !ok {
		t.Error("live event after cancelled head did not run")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := New(seed)
		var out []float64
		var tick func()
		tick = func() {
			out = append(out, e.Now())
			if len(out) < 100 {
				e.After(e.Rand().Float64()*10, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCalendarMatchesReferenceModel drives the engine and a trivially
// correct reference model (a list popped by minimal (time, seq)) through
// the same randomised schedule/cancel/step mix — duplicate timestamps,
// far-future fault-style timers, both callback forms — and requires the
// execution order, live count, and drain behaviour to agree exactly.
// This is the ordering + cancellation + recycle contract of the calendar
// queue; it replaced TestHeapPropertyRandomised when the binary heap did.
func TestCalendarMatchesReferenceModel(t *testing.T) {
	type ref struct {
		time float64
		seq  int
		id   int
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		var model []ref // pending non-cancelled events, unordered
		var got, want []int
		handles := map[int]*Event{}
		byID := func(a any) { got = append(got, a.(int)) }
		seq, nextID := 0, 0
		lastT := 0.0
		schedule := func() {
			d := rng.Float64() * 10
			if rng.Intn(10) == 0 {
				d = 1e5 + rng.Float64()*1e6 // fault-style far-future timer
			}
			t0 := e.Now() + d
			if rng.Intn(5) == 0 && lastT >= e.Now() {
				t0 = lastT // force simultaneous cohorts
			}
			lastT = t0
			id := nextID
			nextID++
			if rng.Intn(2) == 0 {
				id := id
				handles[id] = e.At(t0, func() { got = append(got, id) })
			} else {
				handles[id] = e.AtCall(t0, byID, id)
			}
			model = append(model, ref{t0, seq, id})
			seq++
		}
		popMin := func() ref {
			best := 0
			for i, r := range model {
				if r.time < model[best].time || (r.time == model[best].time && r.seq < model[best].seq) {
					best = i
				}
			}
			r := model[best]
			model = append(model[:best], model[best+1:]...)
			return r
		}
		for i := 0; i < 30; i++ {
			schedule()
		}
		ops := 300 + rng.Intn(300)
		for i := 0; i < ops; i++ {
			switch op := rng.Intn(8); {
			case op < 2 && len(model) > 0: // cancel a random pending event
				k := rng.Intn(len(model))
				handles[model[k].id].Cancel()
				delete(handles, model[k].id)
				model = append(model[:k], model[k+1:]...)
			case op < 6:
				schedule()
			default: // step
				stepped := e.Step()
				if stepped != (len(model) > 0) {
					return false
				}
				if stepped {
					r := popMin()
					delete(handles, r.id)
					want = append(want, r.id)
					if e.Now() != r.time {
						return false
					}
				}
			}
			if e.Pending() != len(model) {
				return false
			}
		}
		e.Run()
		for len(model) > 0 {
			want = append(want, popMin().id)
		}
		if e.Pending() != 0 || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSteps(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

// BenchmarkEngineHotLoop exercises the engine the way a simulation does:
// a steady window of pending events, each completion scheduling a
// successor. One op is one executed event.
func BenchmarkEngineHotLoop(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.After(e.Rand().Float64(), tick)
		}
	}
	for i := 0; i < 32 && remaining > 0; i++ {
		remaining--
		e.After(e.Rand().Float64(), tick)
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkEventQueue pins the calendar queue under the three insertion
// patterns that matter: monotone (pure arrival stream), uniform-random
// (mixed completions), and uniform-random with a population of far-future
// fault timers parked in the calendar (exercising the virtual-bucket skip
// and direct-scan fallback). All must stay allocation-free.
func BenchmarkEventQueue(b *testing.B) {
	run := func(b *testing.B, far int, next func(e *Engine) float64) {
		b.ReportAllocs()
		e := New(1)
		for i := 0; i < far; i++ {
			e.After(1e9+float64(i)*1e6, func() {})
		}
		remaining := b.N
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				e.After(next(e), tick)
			}
		}
		for i := 0; i < 256 && remaining > 0; i++ {
			remaining--
			e.After(next(e), tick)
		}
		b.ResetTimer()
		e.Run()
	}
	b.Run("monotone", func(b *testing.B) {
		run(b, 0, func(e *Engine) float64 { return 1 })
	})
	b.Run("uniform", func(b *testing.B) {
		run(b, 0, func(e *Engine) float64 { return e.Rand().Float64() * 100 })
	})
	b.Run("farfuture", func(b *testing.B) {
		run(b, 32, func(e *Engine) float64 { return e.Rand().Float64() * 100 })
	})
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run()
}
