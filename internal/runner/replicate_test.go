package runner

import (
	"testing"

	"physched/internal/sched"
)

func TestReplicateAggregates(t *testing.T) {
	p := smallParams()
	s := smallScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	s.MeasureJobs = 120
	s.WarmupJobs = 30
	agg := Replicate(s, []int64{1, 2, 3, 4})
	if agg.Replicas != 4 || agg.Overloaded != 0 {
		t.Fatalf("replicas=%d overloaded=%d", agg.Replicas, agg.Overloaded)
	}
	if agg.SpeedupMean <= 1 {
		t.Errorf("SpeedupMean = %v", agg.SpeedupMean)
	}
	// Different seeds must actually differ (std > 0) yet agree roughly
	// (std well below the mean) in steady state.
	if agg.SpeedupStd == 0 {
		t.Error("seeds produced identical results; seeding is broken")
	}
	if agg.SpeedupStd > 0.5*agg.SpeedupMean {
		t.Errorf("speedup variance implausibly large: %v ± %v", agg.SpeedupMean, agg.SpeedupStd)
	}
	if len(agg.Results) != 4 {
		t.Errorf("Results len = %d", len(agg.Results))
	}
}

func TestReplicateCountsOverloads(t *testing.T) {
	p := smallParams()
	s := smallScenario(func() sched.Policy { return sched.NewFarm() }, 2*p.FarmMaxLoad())
	agg := Replicate(s, []int64{1, 2, 3})
	if agg.Overloaded != 3 {
		t.Errorf("Overloaded = %d, want 3 (farm at double its max)", agg.Overloaded)
	}
	if agg.SpeedupMean != 0 {
		t.Errorf("mean over zero steady replicas should be 0, got %v", agg.SpeedupMean)
	}
}
