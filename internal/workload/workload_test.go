package workload

import (
	"math"
	"math/rand"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/model"
	"physched/internal/stats"
)

func testParams() model.Params {
	return model.PaperCalibrated()
}

func TestHotRegions(t *testing.T) {
	p := testParams()
	regions := HotRegions(p)
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	var total int64
	for _, r := range regions {
		if r.Empty() {
			t.Errorf("empty hot region %v", r)
		}
		total += r.Len()
	}
	frac := float64(total) / float64(p.TotalEvents())
	if math.Abs(frac-p.HotFraction) > 0.001 {
		t.Errorf("hot regions cover %.3f of dataspace, want %.3f", frac, p.HotFraction)
	}
	if regions[0].Overlaps(regions[1]) {
		t.Error("hot regions overlap")
	}
}

func TestArrivalsFollowRate(t *testing.T) {
	p := testParams()
	g := New(p, rand.New(rand.NewSource(1)), 2.0)
	var last float64
	const n = 20_000
	for i := 0; i < n; i++ {
		j := g.Next()
		if j.Arrival <= last {
			t.Fatal("arrivals must strictly increase")
		}
		if j.ID != int64(i) {
			t.Fatalf("job ID %d, want %d", j.ID, i)
		}
		last = j.Arrival
	}
	rate := n / (last / model.Hour)
	if math.Abs(rate-2.0) > 0.1 {
		t.Errorf("empirical rate %.3f jobs/h, want ≈ 2", rate)
	}
}

func TestEventCountDistribution(t *testing.T) {
	p := testParams()
	g := New(p, rand.New(rand.NewSource(2)), 1.0)
	var s stats.Summary
	for i := 0; i < 50_000; i++ {
		j := g.Next()
		s.Add(float64(j.Events()))
	}
	mean := float64(p.MeanJobEvents)
	if math.Abs(s.Mean()-mean) > 0.02*mean {
		t.Errorf("mean events %.0f, want ≈ %.0f", s.Mean(), mean)
	}
	wantStd := mean / math.Sqrt(float64(p.ErlangShape))
	if math.Abs(s.Std()-wantStd) > 0.05*wantStd {
		t.Errorf("std %.0f, want ≈ %.0f", s.Std(), wantStd)
	}
}

func TestSegmentsInsideDataspace(t *testing.T) {
	p := testParams()
	g := New(p, rand.New(rand.NewSource(3)), 1.0)
	space := dataspace.Iv(0, p.TotalEvents())
	for i := 0; i < 20_000; i++ {
		j := g.Next()
		if !space.ContainsInterval(j.Range) {
			t.Fatalf("job range %v outside dataspace %v", j.Range, space)
		}
		if j.Events() < p.MinSubjobEvents {
			t.Fatalf("job of %d events below minimum", j.Events())
		}
	}
}

func TestHotColdStartMix(t *testing.T) {
	p := testParams()
	g := New(p, rand.New(rand.NewSource(4)), 1.0)
	hot := HotRegions(p)
	inHot := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		j := g.Next()
		for _, h := range hot {
			if h.Contains(j.Range.Start) {
				inHot++
				break
			}
		}
	}
	frac := float64(inHot) / n
	// Start points get HotWeight (50%) in hot regions; end-of-space
	// shifting can only move starts backwards, a sub-1% perturbation.
	if math.Abs(frac-p.HotWeight) > 0.02 {
		t.Errorf("hot start fraction %.3f, want ≈ %.3f", frac, p.HotWeight)
	}
}

func TestColdStartsUniform(t *testing.T) {
	// With HotWeight 0 every start is cold; check rough uniformity by
	// comparing the first and second half of the dataspace.
	p := testParams()
	p.HotWeight = 0
	g := New(p, rand.New(rand.NewSource(5)), 1.0)
	half := p.TotalEvents() / 2
	lo := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if g.Next().Range.Start < half {
			lo++
		}
	}
	frac := float64(lo) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("first-half start fraction %.3f, want ≈ 0.5", frac)
	}
}

func TestDeterminism(t *testing.T) {
	p := testParams()
	g1 := New(p, rand.New(rand.NewSource(42)), 1.5)
	g2 := New(p, rand.New(rand.NewSource(42)), 1.5)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Arrival != b.Arrival || a.Range != b.Range {
			t.Fatalf("generator not deterministic at job %d", i)
		}
	}
}
