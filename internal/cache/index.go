package cache

import "physched/internal/dataspace"

// Index is the master node's view of all node disk caches. The paper's
// scheduler "maintains the job and subjob queues as well as the state of
// all disk caches in the cluster"; Index is that state.
type Index struct {
	caches []*LRU

	curScratch []int // per-node set cursors for AppendPartitionByNode
}

// NewIndex builds an index over n node caches, each with the given
// capacity in events and eviction policy.
func NewIndex(n int, capacityEvents int64, policy EvictPolicy) *Index {
	ix := &Index{caches: make([]*LRU, n)}
	for i := range ix.caches {
		ix.caches[i] = NewLRU(capacityEvents, policy)
	}
	return ix
}

// Nodes returns the number of node caches.
func (ix *Index) Nodes() int { return len(ix.caches) }

// Add appends one more node cache — a node joining the cluster late —
// and returns it.
func (ix *Index) Add(capacityEvents int64, policy EvictPolicy) *LRU {
	c := NewLRU(capacityEvents, policy)
	ix.caches = append(ix.caches, c)
	return c
}

// Node returns the cache of node i.
func (ix *Index) Node(i int) *LRU { return ix.caches[i] }

// CachedAnywhere returns the parts of iv cached on at least one node.
func (ix *Index) CachedAnywhere(iv dataspace.Interval) dataspace.Set {
	var s dataspace.Set
	for _, c := range ix.caches {
		s = s.Union(c.CachedPart(iv))
	}
	return s
}

// NodePiece is a maximal run of an interval attributed to a single node's
// cache, or to no cache (Node == -1).
type NodePiece struct {
	Interval dataspace.Interval
	Node     int // -1 when the piece is cached nowhere
}

// PartitionByNode splits iv into contiguous pieces such that each piece is
// either fully cached on the designated node or cached nowhere. When
// several nodes cache the same events, the piece goes to the node caching
// the longest run starting at the piece's first event, which keeps the
// attribution deterministic and favours large fully-cached subjobs (the
// paper's splitting rule: "data processed by a given subjob should always
// either be fully cached on a node or not cached at all").
func (ix *Index) PartitionByNode(iv dataspace.Interval) []NodePiece {
	return ix.AppendPartitionByNode(iv, nil)
}

// AppendPartitionByNode is PartitionByNode writing into a caller-owned
// buffer — the form the per-dispatch planning paths use, so partitioning
// allocates nothing in steady state.
func (ix *Index) AppendPartitionByNode(iv dataspace.Interval, dst []NodePiece) []NodePiece {
	// pos only ever advances, so each node's cache is swept left to right:
	// a per-node cursor turns the repeated per-piece binary searches into
	// amortised-O(1) linear advances. Cursor -1 = not positioned yet.
	if cap(ix.curScratch) < len(ix.caches) {
		ix.curScratch = make([]int, len(ix.caches))
	}
	cur := ix.curScratch[:len(ix.caches)]
	for i := range cur {
		cur[i] = -1
	}
	pos := iv.Start
	for pos < iv.End {
		rest := dataspace.Iv(pos, iv.End)
		bestNode, bestEnd := -1, pos
		var nearestStart int64 = iv.End
		for n, c := range ix.caches {
			first, next := c.cachedFirstRunFrom(rest, cur[n])
			cur[n] = next
			if first.Empty() {
				continue
			}
			if first.Start == pos {
				if first.End > bestEnd {
					bestNode, bestEnd = n, first.End
				}
			} else if first.Start < nearestStart {
				nearestStart = first.Start
			}
		}
		if bestNode >= 0 {
			dst = append(dst, NodePiece{dataspace.Iv(pos, bestEnd), bestNode})
			pos = bestEnd
			continue
		}
		dst = append(dst, NodePiece{dataspace.Iv(pos, nearestStart), -1})
		pos = nearestStart
	}
	return dst
}

// CachedOn returns how many events of iv are cached on node n.
func (ix *Index) CachedOn(n int, iv dataspace.Interval) int64 {
	return ix.caches[n].cachedLen(iv)
}

// BestNodeFor returns the node caching the largest part of iv and that
// amount; (-1, 0) when no node caches any of it.
func (ix *Index) BestNodeFor(iv dataspace.Interval) (int, int64) {
	best, bestAmt := -1, int64(0)
	for n, c := range ix.caches {
		if amt := c.cachedLen(iv); amt > bestAmt {
			best, bestAmt = n, amt
		}
	}
	return best, bestAmt
}
