// Adaptivecluster demonstrates the §6 trade-off: the out-of-order policy
// gives the best response times but collapses beyond ~half the theoretical
// maximal load, the delayed policy sustains nearly the maximum at terrible
// response times, and the adaptive-delay policy follows the better of the
// two at every load.
package main

import (
	"fmt"

	"physched"
)

func main() {
	params := physched.PaperCalibrated()
	theoMax := params.MaxTheoreticalLoad()

	base := physched.Scenario{
		Params:      params,
		Seed:        3,
		WarmupJobs:  100,
		MeasureJobs: 300,
		// Delayed policies legitimately accumulate large batches; allow for
		// a week's worth of arrivals before calling the run overloaded.
		OverloadBacklog: int64(3.5*7*24) + 250,
		DelayIncluded:   true, // compare end-user waiting, delay included
	}
	variants := []physched.Variant{
		{Label: "out-of-order", NewPolicy: physched.OutOfOrder},
		{Label: "delayed 1w/200", NewPolicy: func() physched.Policy {
			return physched.Delayed(physched.Week, 200)
		}},
		{Label: "adaptive/200", NewPolicy: func() physched.Policy {
			return physched.Adaptive(200)
		}},
	}
	loads := []float64{0.3 * theoMax, 0.45 * theoMax, 0.6 * theoMax, 0.75 * theoMax, 0.87 * theoMax}
	curves := physched.SweepCurves(base, loads, variants)

	fmt.Printf("theoretical maximal load: %.2f jobs/hour\n\n", theoMax)
	fmt.Printf("%-16s", "policy")
	for _, l := range loads {
		fmt.Printf("  %12s", fmt.Sprintf("%.0f%% of max", 100*l/theoMax))
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-16s", c.Label)
		for _, r := range c.Results {
			cell := "overload"
			if !r.Overloaded {
				cell = fmt.Sprintf("%.1fh wait", r.AvgWaiting/physched.Hour)
			}
			fmt.Printf("  %12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nwaiting times are end-to-end (scheduling delay included, as in Figure 7)")
}
