package sched

import (
	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/model"
)

// OutOfOrder is the out-of-order scheduling policy of Table 3. Every node
// owns a queue of subjobs whose data it caches; an extra queue holds
// subjobs with no cached data. Cache-affine subjobs run immediately,
// preempting subjobs that work on non-cached data; idle nodes drain the
// no-cached-data queue and finally steal work from loaded nodes, reading
// the stolen data remotely (§4.2). A job waiting longer than MaxWait in
// the no-cached-data queue is promoted to priority and served by the first
// available node (§4.1 uses 2 days).
type OutOfOrder struct {
	base
	nodeQ    []subjobDeque // per-node queues of locally cached subjobs
	noCache  subjobDeque   // subjobs with no cached data
	priority subjobDeque   // subjobs of jobs past the aging limit

	ageFn    func(any)     // shared aging callback (see JobArrived)
	uncached []*job.Subjob // JobArrived scratch

	// MaxWait is the fairness aging limit (default 2 days).
	MaxWait float64

	// Replicate enables the §4.2 data-replication variant.
	Replicate bool
}

// NewOutOfOrder returns the out-of-order policy with the paper's 2-day
// aging limit.
func NewOutOfOrder() *OutOfOrder { return &OutOfOrder{MaxWait: 2 * model.Day} }

// NewReplication returns the out-of-order policy with §4.2 data
// replication (replicate a segment on its third remote access).
func NewReplication() *OutOfOrder {
	p := NewOutOfOrder()
	p.Replicate = true
	return p
}

func (p *OutOfOrder) Name() string {
	if p.Replicate {
		return "outoforder+replication"
	}
	return "outoforder"
}

func (p *OutOfOrder) ClusterConfig() cluster.Config {
	cfg := cluster.Config{Caching: true, RemoteReads: true}
	if p.Replicate {
		cfg.ReplicateAfter = 3
	}
	return cfg
}

func (p *OutOfOrder) Attach(c *cluster.Cluster) {
	p.base.Attach(c)
	// The roster may exceed Params.Nodes when spare nodes join late
	// (cluster.FaultModel); every node needs a queue from the start.
	p.nodeQ = make([]subjobDeque, len(c.Nodes()))
	p.ageFn = func(a any) { p.age(a.(*job.Job)) }
}

func (p *OutOfOrder) JobArrived(j *job.Job) {
	pieces := p.cachePieces(j.Range, p.minSize())
	uncached := p.uncached[:0]
	for _, pc := range pieces {
		sub := p.arena().NewSubjob(j, pc.Interval, pc.Node)
		if pc.Node < 0 {
			sub.NoCacheQueue = true
			uncached = append(uncached, sub)
			continue
		}
		p.placeCached(sub, pc.Node)
	}
	for _, sub := range uncached {
		p.noCache.PushBack(sub)
	}
	p.uncached = uncached[:0]
	p.feedIdleNodes()
	if p.MaxWait > 0 && !j.Started {
		p.eng.AfterCall(p.MaxWait, p.ageFn, j)
	}
}

// placeCached runs a cached subjob on its node immediately when the node is
// idle or busy with non-cached work; otherwise it queues on the node.
func (p *OutOfOrder) placeCached(sub *job.Subjob, node int) {
	n := p.c.Node(node)
	if n.Idle() {
		p.c.Dispatch(n, sub)
		return
	}
	if r := n.Running(); r != nil && (r.NoCacheQueue || r.Yielding) {
		// Suspend the non-cached worker back to the front of the queue it
		// came from (Table 3).
		rem := p.c.Preempt(n)
		if rem != nil {
			p.requeueFront(rem)
		}
		p.c.Dispatch(n, sub)
		return
	}
	p.nodeQ[node].PushBack(sub)
}

// requeueFront returns a preempted subjob to the first position of its
// origin queue.
func (p *OutOfOrder) requeueFront(sub *job.Subjob) {
	if sub.Job.Priority {
		p.priority.PushFront(sub)
		return
	}
	if sub.Origin >= 0 && !sub.NoCacheQueue {
		p.nodeQ[sub.Origin].PushFront(sub)
		return
	}
	p.noCache.PushFront(sub)
}

// age promotes a job that waited past MaxWait without starting: all its
// queued subjobs move to the priority queue (§4.1).
func (p *OutOfOrder) age(j *job.Job) {
	if j.Started || j.Finished {
		return
	}
	j.Priority = true
	extract := func(d *subjobDeque) {
		for i := 0; i < d.Len(); {
			if d.Peek(i).Job == j {
				p.priority.PushBack(d.Remove(i))
				continue
			}
			i++
		}
	}
	extract(&p.noCache)
	for i := range p.nodeQ {
		extract(&p.nodeQ[i])
	}
	p.feedIdleNodes()
}

func (p *OutOfOrder) SubjobDone(n *cluster.Node, _ *job.Subjob) {
	p.feedIdleNodes()
}

// feedIdleNodes applies Table 3's "whenever one or several nodes become
// available" rules to every idle node. Nodes are scanned directly — feeding
// a node only ever busies that node, so no snapshot is needed, and this
// runs on every subjob completion.
func (p *OutOfOrder) feedIdleNodes() {
	for _, n := range p.c.Nodes() {
		if n.Idle() {
			p.feedNode(n)
		}
	}
}

func (p *OutOfOrder) feedNode(n *cluster.Node) {
	// Priority jobs first (§4.1: "the first available node executes this
	// job before running any other job or subjob").
	if !p.priority.Empty() {
		p.c.Dispatch(n, p.priority.PopFront())
		return
	}
	// Own queue.
	if !p.nodeQ[n.ID].Empty() {
		p.c.Dispatch(n, p.nodeQ[n.ID].PopFront())
		return
	}
	// No-cached-data queue, splitting when several idle nodes compete for
	// few subjobs.
	if !p.noCache.Empty() {
		sub := p.noCache.PopFront()
		idleLeft := p.c.IdleCount() // includes n
		if idleLeft > 1 && p.noCache.Len() < idleLeft-1 && sub.Events()/2 >= p.minSize() {
			a, b := sub.Range.Halves()
			back := p.arena().NewSubjob(sub.Job, b, -1)
			back.NoCacheQueue = true
			p.noCache.PushFront(back)
			front := p.arena().NewSubjob(sub.Job, a, -1)
			front.NoCacheQueue = true
			sub = front
		}
		p.c.Dispatch(n, sub)
		return
	}
	p.steal(n)
}

// steal takes work from the most loaded node, splitting the running subjob
// so both halves finish around the same time given that the thief reads
// the data remotely (Table 3, last bullet).
func (p *OutOfOrder) steal(n *cluster.Node) {
	var donor *cluster.Node
	var donorLoad int64
	for _, m := range p.c.Nodes() {
		if m.Idle() {
			continue
		}
		load := p.c.RemainingEvents(m) + p.nodeQ[m.ID].totalEvents()
		if load > donorLoad {
			donor, donorLoad = m, load
		}
	}
	if donor == nil {
		return
	}
	// Prefer stealing a whole queued subjob over splitting the running one.
	if !p.nodeQ[donor.ID].Empty() {
		sub := p.nodeQ[donor.ID].Remove(p.nodeQ[donor.ID].Len() - 1)
		stolen := p.arena().NewSubjob(sub.Job, sub.Range, donor.ID)
		stolen.Yielding = true
		p.c.Dispatch(n, stolen)
		return
	}
	rem := p.c.RemainingEvents(donor)
	if rem < 2*p.minSize() {
		return
	}
	// Balance completion times: donor continues at local rate, thief runs
	// at the remote rate; tail/head = donorRate/thiefRate.
	donorRate := p.params.EventTimeCached()
	thiefRate := p.params.EventTimeRemote()
	tail := int64(float64(rem) * donorRate / (donorRate + thiefRate))
	if tail < p.minSize() {
		tail = p.minSize()
	}
	if rem-tail < p.minSize() {
		return
	}
	stolen := p.c.SplitRunning(donor, tail, p.minSize())
	if stolen == nil {
		return
	}
	stolen.Yielding = true
	stolen.Origin = donor.ID
	p.c.Dispatch(n, stolen)
}

// NodeDown implements sched.NodeStateObserver: the killed subjob goes
// back to the front of the queue it came from, exactly like a preempted
// remainder, and the idle-node rules run immediately — another node may
// adopt it or steal the down node's queued work on the spot.
func (p *OutOfOrder) NodeDown(n *cluster.Node, lost *job.Subjob) {
	if lost != nil {
		p.requeueFront(lost)
	}
	p.feedIdleNodes()
}

// NodeUp implements sched.NodeStateObserver: the repaired or joining
// node feeds itself — private queue, shared queues, then stealing —
// without waiting for the next arrival or completion.
func (p *OutOfOrder) NodeUp(n *cluster.Node) {
	p.feedIdleNodes()
}
