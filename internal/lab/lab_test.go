package lab

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"physched/internal/model"
	"physched/internal/sched"
)

// smallScenario is a fast out-of-order scenario for orchestration tests.
func smallScenario(seed int64) Scenario {
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.MeanJobEvents = 2_000
	p.DataspaceBytes = 200 * model.GB
	p.CacheBytes = 10 * model.GB
	return Scenario{
		Params:      p,
		NewPolicy:   func() sched.Policy { return sched.NewOutOfOrder() },
		Load:        0.5 * p.FarmMaxLoad(),
		Seed:        seed,
		WarmupJobs:  30,
		MeasureJobs: 120,
	}
}

// marshal canonicalises a result set for byte-for-byte comparison.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunDeterministic: the same Scenario and seed twice must produce an
// identical Result.
func TestRunDeterministic(t *testing.T) {
	a, b := Run(smallScenario(7)), Run(smallScenario(7))
	if string(marshal(t, a)) != string(marshal(t, b)) {
		t.Fatalf("same scenario+seed differed:\n%s\n%s", marshal(t, a), marshal(t, b))
	}
}

func testGrid(seed int64) Grid {
	base := smallScenario(seed)
	return Grid{
		Base: base,
		Variants: []Variant{
			{Label: "ooo", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
			{Label: "farm", NewPolicy: func() sched.Policy { return sched.NewFarm() }},
		},
		Loads: []float64{0.3 * base.Params.FarmMaxLoad(), 0.5 * base.Params.FarmMaxLoad()},
		Seeds: Seeds(seed, 2),
	}
}

// TestGridParallelEqualsSerial is the core lab guarantee: a grid executed
// serially and with many workers yields byte-identical results.
func TestGridParallelEqualsSerial(t *testing.T) {
	serial, err := testGrid(3).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := testGrid(3).Execute(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sb, pb := marshal(t, serial.Results), marshal(t, parallel.Results)
	if string(sb) != string(pb) {
		t.Fatalf("parallel grid differs from serial:\nserial:   %s\nparallel: %s", sb, pb)
	}
	if len(serial.Results) != 2*2*2 {
		t.Fatalf("got %d results, want 8", len(serial.Results))
	}
}

// TestGridShape checks enumeration order, labels and indexed access.
func TestGridShape(t *testing.T) {
	g := testGrid(3)
	rs, err := g.Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Labels) != 2 || rs.Labels[0] != "ooo" || rs.Labels[1] != "farm" {
		t.Fatalf("labels = %v", rs.Labels)
	}
	for vi := range rs.Labels {
		for li, load := range rs.Loads {
			for si, seed := range rs.Seeds {
				r := rs.Result(vi, li, si)
				if r.Load != load {
					t.Fatalf("cell (%d,%d,%d): load %v, want %v", vi, li, si, r.Load, load)
				}
				if r.Scenario.Seed != seed {
					t.Fatalf("cell (%d,%d,%d): seed %v, want %v", vi, li, si, r.Scenario.Seed, seed)
				}
			}
		}
	}
	want := map[string]string{"ooo": "outoforder", "farm": "farm"}
	for vi, label := range rs.Labels {
		if got := rs.Result(vi, 0, 0).PolicyName; got != want[label] {
			t.Errorf("variant %q ran policy %q", label, got)
		}
	}
	curves := rs.Curves()
	if len(curves) != 2 || len(curves[0].Results) != len(rs.Loads) {
		t.Fatalf("curves shape wrong: %+v", curves)
	}
}

// TestGridDropsCollectors: grid results must not pin the full per-job
// collector unless asked to.
func TestGridDropsCollectors(t *testing.T) {
	rs, _ := Grid{Base: smallScenario(3)}.Execute(Options{})
	if rs.Results[0].Collector != nil {
		t.Error("grid kept a Collector without KeepCollectors")
	}
	rs, _ = Grid{Base: smallScenario(3)}.Execute(Options{KeepCollectors: true})
	if rs.Results[0].Collector == nil {
		t.Error("KeepCollectors did not keep the Collector")
	}
	if Run(smallScenario(3)).Collector == nil {
		t.Error("single Run must keep its Collector")
	}
}

// TestPoolBoundsConcurrency: no more than Workers tasks run at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	pool := NewPool(workers)
	defer pool.Close()
	var cur, peak int32
	err := pool.Run(context.Background(), 64, func(int) {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
}

// TestPoolCancellation: a cancelled context stops dispatching and
// surfaces the error; started tasks complete.
func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := NewPool(2)
	defer pool.Close()
	var done int32
	err := pool.Run(ctx, 100, func(i int) {
		if atomic.AddInt32(&done, 1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&done); n >= 100 {
		t.Errorf("cancellation did not stop dispatch (ran %d)", n)
	}
}

// TestProgressSerialised: every run reports exactly once, Done is
// strictly increasing, and the callback needs no locking.
func TestProgressSerialised(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	g := testGrid(3)
	_, err := g.Execute(Options{Workers: 4, Progress: func(u ProgressUpdate) {
		mu.Lock() // mu only guards the test's slice append
		defer mu.Unlock()
		seen = append(seen, u.Done)
		if u.Total != 8 {
			t.Errorf("Total = %d, want 8", u.Total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("progress fired %d times, want 8", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("Done sequence %v not strictly increasing", seen)
		}
	}
}

// TestSeedsDisciplined: derived seeds are deterministic, distinct and
// independent of how many are asked for.
func TestSeedsDisciplined(t *testing.T) {
	a, b := Seeds(1, 8), Seeds(1, 8)
	distinct := map[int64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds is not deterministic")
		}
		distinct[a[i]] = true
	}
	if len(distinct) != 8 {
		t.Fatalf("seeds collide: %v", a)
	}
	if prefix := Seeds(1, 3); prefix[0] != a[0] || prefix[2] != a[2] {
		t.Error("Seeds(base, n) must be a prefix of Seeds(base, m>n)")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed must be order-sensitive")
	}
	if DeriveSeed(1) == DeriveSeed(2) {
		t.Error("different bases must derive different seeds")
	}
}

// TestReplicateAggregates: replication through the grid matches direct
// runs and carries confidence intervals.
func TestReplicateAggregates(t *testing.T) {
	s := smallScenario(1)
	agg, err := Replicate(s, Seeds(1, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Replicas != 4 || agg.Overloaded != 0 {
		t.Fatalf("replicas=%d overloaded=%d", agg.Replicas, agg.Overloaded)
	}
	if agg.SpeedupMean <= 1 {
		t.Errorf("SpeedupMean = %v", agg.SpeedupMean)
	}
	if agg.SpeedupStd == 0 {
		t.Error("seeds produced identical results; seeding is broken")
	}
	if agg.SpeedupCI95 <= 0 || agg.SpeedupCI95 >= agg.SpeedupMean {
		t.Errorf("implausible CI95 %v for mean %v", agg.SpeedupCI95, agg.SpeedupMean)
	}
	mean := agg.MeanResult()
	if mean.Overloaded || mean.AvgSpeedup != agg.SpeedupMean {
		t.Errorf("MeanResult inconsistent with aggregate: %+v", mean)
	}
}

// TestReplicateCountsOverloads mirrors the old runner behaviour: an
// overloaded majority yields an overloaded mean point.
func TestReplicateCountsOverloads(t *testing.T) {
	s := smallScenario(1)
	s.NewPolicy = func() sched.Policy { return sched.NewFarm() }
	s.Load = 2 * s.Params.FarmMaxLoad()
	agg, err := Replicate(s, Seeds(9, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Overloaded != 3 {
		t.Fatalf("Overloaded = %d, want 3 (farm at double its max)", agg.Overloaded)
	}
	if agg.SpeedupMean != 0 {
		t.Errorf("mean over zero steady replicas should be 0, got %v", agg.SpeedupMean)
	}
	if !agg.MeanResult().Overloaded {
		t.Error("MeanResult of fully overloaded replicas must be overloaded")
	}
}
