package sched

import (
	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
)

// CacheOriented is the cache-oriented job-splitting policy of Table 2.
// Data arriving from tertiary storage is cached on node disks; jobs are
// split along cache-content boundaries so every subjob is either fully
// cached on one node or cached nowhere, and subjobs are steered to the
// nodes caching their data. Jobs still start in FIFO order: an arriving job
// always gets a node when fewer jobs than nodes are running, preempting the
// running subjob with the least use for its node's cache.
type CacheOriented struct {
	base
	queue   jobFIFO
	running []*job.Job

	idleScratch   []*cluster.Node
	subsScratch   []*job.Subjob
	assignScratch []int  // idle-node index -> subjob index, -1 when none
	usedScratch   []bool // subjob index -> already assigned
}

// NewCacheOriented returns the cache-oriented job-splitting policy.
func NewCacheOriented() *CacheOriented { return &CacheOriented{} }

func (*CacheOriented) Name() string { return "cacheoriented" }

func (*CacheOriented) ClusterConfig() cluster.Config {
	return cluster.Config{Caching: true}
}

func (p *CacheOriented) JobArrived(j *job.Job) {
	p.idleScratch = p.c.AppendIdle(p.idleScratch[:0])
	if idle := p.idleScratch; len(idle) > 0 {
		p.track(j)
		p.startOnIdle(j, idle)
		return
	}
	if donor := p.donorNode(j); donor != nil {
		if rem := p.c.Preempt(donor); rem != nil {
			rem.Job.Suspended = append(rem.Job.Suspended, rem)
		}
		p.track(j)
		p.startOnNode(j, donor)
		return
	}
	p.queue.Push(j)
}

// startOnIdle splits j by cache boundaries and hands the subjobs to the
// idle nodes, preferring exact cache placement; leftover subjobs are
// suspended, missing ones are created by subdividing the largest.
func (p *CacheOriented) startOnIdle(j *job.Job, idle []*cluster.Node) {
	subs := p.splitByCache(j)
	// Subdivide the largest subjobs until there is one per idle node (or
	// subjobs cannot shrink further).
	for len(subs) < len(idle) {
		li := largestSubjob(subs)
		if li < 0 || subs[li].Events()/2 < p.minSize() {
			break
		}
		a, b := subs[li].Range.Halves()
		orig := subs[li]
		subs[li] = p.arena().NewSubjob(j, a, orig.Origin)
		subs = append(subs, p.arena().NewSubjob(j, b, -1))
	}
	p.subsScratch = subs
	assigned := p.assignByAffinity(subs, idle)
	// Dispatch in idle-node order so the dispatch sequence — and through
	// event tie-breaking the whole run — stays deterministic.
	for ni, n := range idle {
		if si := assigned[ni]; si >= 0 {
			p.c.Dispatch(n, subs[si])
		}
	}
	for si, sub := range subs {
		if !p.usedScratch[si] {
			j.Suspended = append(j.Suspended, sub)
		}
	}
}

// startOnNode starts j on a single freed node with its most suitable
// subjob; the rest is suspended.
func (p *CacheOriented) startOnNode(j *job.Job, n *cluster.Node) {
	subs := p.splitByCache(j)
	best := 0
	var bestAmt int64 = -1
	for i, sub := range subs {
		if amt := p.c.Index().CachedOn(n.ID, sub.Range); amt > bestAmt {
			best, bestAmt = i, amt
		}
	}
	for i, sub := range subs {
		if i != best {
			j.Suspended = append(j.Suspended, sub)
		}
	}
	p.c.Dispatch(n, subs[best])
}

// splitByCache cuts j's range along cluster cache boundaries. The returned
// slice lives in the policy's scratch buffer (the subjobs themselves are
// arena-allocated and stable): it is valid until the next splitByCache call.
func (p *CacheOriented) splitByCache(j *job.Job) []*job.Subjob {
	pieces := p.cachePieces(j.Range, p.minSize())
	subs := p.subsScratch[:0]
	for _, pc := range pieces {
		subs = append(subs, p.arena().NewSubjob(j, pc.Interval, pc.Node))
	}
	p.subsScratch = subs
	return subs
}

// donorNode selects the node to preempt for an arriving job: among jobs
// running on several nodes, the node whose running subjob has the smallest
// cached share of its remaining work ("we try to replace a subjob working
// with non cached data", Table 2). Returns nil when all running jobs hold
// one node.
func (p *CacheOriented) donorNode(arriving *job.Job) *cluster.Node {
	var donor *cluster.Node
	var donorShare float64 = 2 // above any real share
	for _, n := range p.c.Nodes() {
		r := n.Running()
		if r == nil || r.Job.Running < 2 {
			continue
		}
		rem := p.c.RemainingEvents(n)
		if rem == 0 {
			continue
		}
		lo := r.Range.End - rem
		remRange := dataspace.Iv(lo, r.Range.End)
		share := float64(n.Cache.CachedPart(remRange).Len()) / float64(rem)
		if share < donorShare {
			donor, donorShare = n, share
		}
	}
	return donor
}

func (p *CacheOriented) SubjobDone(n *cluster.Node, sj *job.Subjob) {
	p.prune()
	j := sj.Job
	if !j.Finished {
		// Subjob end: resume the same job's suspended subjob with the most
		// data cached on this node.
		if sub := popBestSuspended(p.c, j, n); sub != nil {
			p.c.Dispatch(n, sub)
			return
		}
		p.splitForNode(n)
		return
	}
	// Job end: first queued job, else the most suitable suspended subjob of
	// any running job, else split a running subjob.
	p.untrack(j)
	if !p.queue.Empty() {
		nj := p.queue.Pop()
		p.track(nj)
		p.startOnNode(nj, n)
		return
	}
	var bestJob *job.Job
	var bestAmt int64 = -1
	for _, rj := range p.running {
		if len(rj.Suspended) == 0 {
			continue
		}
		for _, sub := range rj.Suspended {
			if amt := p.c.Index().CachedOn(n.ID, sub.Range); amt > bestAmt {
				bestJob, bestAmt = rj, amt
			}
		}
	}
	if bestJob != nil {
		if sub := popBestSuspended(p.c, bestJob, n); sub != nil {
			p.c.Dispatch(n, sub)
			return
		}
	}
	p.splitForNode(n)
}

// splitForNode gives idle node n half of the running subjob with the
// largest caching benefit: the half that would land on n is the one whose
// data is best cached on n; ties go to the largest remaining subjob.
func (p *CacheOriented) splitForNode(n *cluster.Node) {
	var donor *cluster.Node
	var donorRem, donorBenefit int64 = 0, -1
	for _, m := range p.c.Nodes() {
		if m.Idle() {
			continue
		}
		rem := p.c.RemainingEvents(m)
		if rem/2 < p.minSize() {
			continue
		}
		r := m.Running()
		if r == nil {
			continue // down node: not idle, yet running nothing
		}
		tail := dataspace.Iv(r.Range.End-rem/2, r.Range.End)
		benefit := p.c.Index().CachedOn(n.ID, tail)
		if benefit > donorBenefit || (benefit == donorBenefit && rem > donorRem) {
			donor, donorRem, donorBenefit = m, rem, benefit
		}
	}
	if donor == nil {
		return
	}
	if tail := p.c.SplitRunning(donor, donorRem/2, p.minSize()); tail != nil {
		p.c.Dispatch(n, tail)
	}
}

func (p *CacheOriented) track(j *job.Job) { p.running = append(p.running, j) }

func (p *CacheOriented) untrack(j *job.Job) {
	for i, r := range p.running {
		if r == j {
			p.running = append(p.running[:i], p.running[i+1:]...)
			return
		}
	}
}

func (p *CacheOriented) prune() {
	kept := p.running[:0]
	for _, j := range p.running {
		if !j.Finished {
			kept = append(kept, j)
		}
	}
	p.running = kept
}

// popBestSuspended removes and returns the suspended subjob of j with the
// most data cached on n; nil when j has no suspended subjobs.
func popBestSuspended(c *cluster.Cluster, j *job.Job, n *cluster.Node) *job.Subjob {
	if len(j.Suspended) == 0 {
		return nil
	}
	best := 0
	var bestAmt int64 = -1
	for i, sub := range j.Suspended {
		if amt := c.Index().CachedOn(n.ID, sub.Range); amt > bestAmt {
			best, bestAmt = i, amt
		}
	}
	sub := j.Suspended[best]
	j.Suspended = append(j.Suspended[:best], j.Suspended[best+1:]...)
	return sub
}

// assignByAffinity matches subjobs to idle nodes maximising cached data:
// repeatedly picks the (node, subjob) pair with the highest cached amount
// (first maximum in idle-then-subs order, so the result is deterministic).
// The returned slice maps idle-node index to subjob index (-1 when the node
// gets nothing); it and usedScratch are valid until the next call.
func (p *CacheOriented) assignByAffinity(subs []*job.Subjob, idle []*cluster.Node) []int {
	assigned := p.assignScratch[:0]
	for range idle {
		assigned = append(assigned, -1)
	}
	p.assignScratch = assigned
	used := p.usedScratch[:0]
	for range subs {
		used = append(used, false)
	}
	p.usedScratch = used
	for count := 0; count < len(idle) && count < len(subs); count++ {
		bn, bs := -1, -1
		var bAmt int64 = -1
		for ni, n := range idle {
			if assigned[ni] >= 0 {
				continue
			}
			for si, sub := range subs {
				if used[si] {
					continue
				}
				amt := p.c.Index().CachedOn(n.ID, sub.Range)
				if amt > bAmt {
					bn, bs, bAmt = ni, si, amt
				}
			}
		}
		if bn < 0 {
			break
		}
		assigned[bn] = bs
		used[bs] = true
	}
	return assigned
}

// largestSubjob returns the index of the largest subjob, or -1.
func largestSubjob(subs []*job.Subjob) int {
	best := -1
	var bestLen int64
	for i, s := range subs {
		if s.Events() > bestLen {
			best, bestLen = i, s.Events()
		}
	}
	return best
}
