package cluster

import (
	"math"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

func TestHeterogeneousNodeSpeeds(t *testing.T) {
	p := testParams()
	p.NodeSpeedFactors = []float64{1, 2, 0.5} // node 1 half speed, node 2 double
	eng := sim.New(1)
	c := New(eng, p, Config{Caching: true})

	runOn := func(node int, iv dataspace.Interval) float64 {
		start := eng.Now()
		j := mkJob(int64(node), iv)
		c.Dispatch(c.Node(node), &job.Subjob{Job: j, Range: iv})
		eng.Run()
		return eng.Now() - start
	}

	base := runOn(0, dataspace.Iv(0, 1000))
	slow := runOn(1, dataspace.Iv(10_000, 11_000))
	fast := runOn(2, dataspace.Iv(20_000, 21_000))

	// Only the CPU component scales; transfer stays fixed.
	cpu := 1000 * p.EventCPUTime
	transfer := 1000 * (p.EventTimeTape() - p.EventCPUTime)
	if math.Abs(base-(cpu+transfer)) > 1e-6 {
		t.Errorf("base node time %v, want %v", base, cpu+transfer)
	}
	if math.Abs(slow-(2*cpu+transfer)) > 1e-6 {
		t.Errorf("slow node time %v, want %v", slow, 2*cpu+transfer)
	}
	if math.Abs(fast-(0.5*cpu+transfer)) > 1e-6 {
		t.Errorf("fast node time %v, want %v", fast, 0.5*cpu+transfer)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	p := testParams()
	p.NodeSpeedFactors = []float64{1, 2} // wrong length for 3 nodes
	if err := p.Validate(); err == nil {
		t.Error("mismatched NodeSpeedFactors accepted")
	}
	p.NodeSpeedFactors = []float64{1, -1, 1}
	if err := p.Validate(); err == nil {
		t.Error("negative speed factor accepted")
	}
}

func TestPipelinedTransfersOverlap(t *testing.T) {
	p := testParams()
	p.PipelinedTransfers = true
	eng := sim.New(1)
	c := New(eng, p, Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	// Tape transfer dominates CPU under calibration, so the event time is
	// the transfer time alone.
	transfer := float64(p.EventBytes) / p.TapeBytesPerSec
	want := 1000 * math.Max(p.EventCPUTime, transfer)
	if math.Abs(eng.Now()-want) > 1e-6 {
		t.Errorf("pipelined tape pass took %v, want %v", eng.Now(), want)
	}
	// Cached pass: CPU dominates the fast disk read.
	start := eng.Now()
	j2 := mkJob(2, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j2, Range: j2.Range})
	eng.Run()
	disk := float64(p.EventBytes) / p.DiskBytesPerSec
	want = 1000 * math.Max(p.EventCPUTime, disk)
	if math.Abs(eng.Now()-start-want) > 1e-6 {
		t.Errorf("pipelined cached pass took %v, want %v", eng.Now()-start, want)
	}
}

func TestModelPerNodeTimesMatchGlobalWhenHomogeneous(t *testing.T) {
	p := model.PaperCalibrated()
	for i := 0; i < p.Nodes; i++ {
		if p.EventTimeCachedOn(i) != p.EventTimeCached() {
			t.Fatalf("node %d cached time differs for identical nodes", i)
		}
		if p.EventTimeTapeOn(i) != p.EventTimeTape() {
			t.Fatalf("node %d tape time differs for identical nodes", i)
		}
		if p.EventTimeRemoteOn(i) != p.EventTimeRemote() {
			t.Fatalf("node %d remote time differs for identical nodes", i)
		}
	}
}
