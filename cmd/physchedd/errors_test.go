package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"physched/client"
)

// TestErrorEnvelopeEverywhere walks every handler's failure paths and
// pins the acceptance criterion of the error-format sweep: each error
// response is JSON, carries exactly the {"error": {"code", "message"}}
// envelope, and maps its status onto the stable code vocabulary.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	ts := testServer(t)
	missing := strings.Repeat("0", 64)

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"policies bad page", "GET", "/v1/policies?page=0", "", 400, client.CodeBadRequest},
		{"policies bad page_size", "GET", "/v1/policies?page_size=100000", "", 400, client.CodeBadRequest},
		{"workloads bad page", "GET", "/v1/workloads?page=x", "", 400, client.CodeBadRequest},
		{"spec malformed", "POST", "/v1/specs", `{not json`, 400, client.CodeBadRequest},
		{"spec invalid", "POST", "/v1/specs", `{"policy": {"name": "farm"}, "load_jobs_per_hour": -1}`, 422, client.CodeInvalidSpec},
		{"grid malformed", "POST", "/v1/grids", `{not json`, 400, client.CodeBadRequest},
		{"grid unknown policy", "POST", "/v1/grids", `{"base": {"policy": {"name": "nope"}, "load_jobs_per_hour": 1}}`, 422, client.CodeInvalidSpec},
		{"study malformed", "POST", "/v1/studies", `{not json`, 400, client.CodeBadRequest},
		{"study over budget", "POST", "/v1/studies",
			strings.Replace(studyBody, `"budget_cells": 12`, `"budget_cells": 5000`, 1), 422, client.CodeInvalidSpec},
		{"study list bad page", "GET", "/v1/studies?page=-1", "", 400, client.CodeBadRequest},
		{"study report unknown", "GET", "/v1/studies/" + missing, "", 404, client.CodeNotFound},
		{"jobs bad state filter", "GET", "/v1/jobs?state=bogus", "", 400, client.CodeBadRequest},
		{"jobs bad kind filter", "GET", "/v1/jobs?kind=bogus", "", 400, client.CodeBadRequest},
		{"jobs bad page", "GET", "/v1/jobs?page=0", "", 400, client.CodeBadRequest},
		{"job unknown", "GET", "/v1/jobs/deadbeefdeadbeef", "", 404, client.CodeNotFound},
		{"job cancel unknown", "DELETE", "/v1/jobs/deadbeefdeadbeef", "", 404, client.CodeNotFound},
		{"job stream unknown", "GET", "/v1/jobs/deadbeefdeadbeef/stream", "", 404, client.CodeNotFound},
		{"result unknown", "GET", "/v1/results/" + missing, "", 404, client.CodeNotFound},
		{"aggregate unknown", "GET", "/v1/aggregates/" + missing, "", 404, client.CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var bodyReader io.Reader
			if tc.body != "" {
				bodyReader = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bodyReader)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			// The body is exactly the envelope: one top-level "error" key.
			var top map[string]json.RawMessage
			if err := json.Unmarshal(raw, &top); err != nil {
				t.Fatalf("error body is not JSON: %q", raw)
			}
			if len(top) != 1 || top["error"] == nil {
				t.Fatalf("body is not the bare envelope: %s", raw)
			}
			var env client.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("envelope has an empty message")
			}
		})
	}
}

// TestConflictUsesEnvelope pins the 409 path: cancelling a finished job
// answers with the conflict code in the shared envelope.
func TestConflictUsesEnvelope(t *testing.T) {
	ts := testServer(t)
	sub := postAsync(t, ts, smallGridBody(900))
	waitDone(t, ts, sub.JobID)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	var env client.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != client.CodeConflict || env.Error.Message == "" {
		t.Errorf("envelope %+v, want code %q", env, client.CodeConflict)
	}
}
