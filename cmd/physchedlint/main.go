// Command physchedlint is the repo's multichecker: it runs the
// internal/analysis suite — detrand, walltime, maporder, hotalloc,
// wirecanon, physcheddirective, lockcheck, lockguard, spawncheck — over
// the given package patterns and exits nonzero on any finding. CI runs
// it over ./...; run it locally the same way:
//
//	go run ./cmd/physchedlint ./...
//
// Each analyzer is scoped by analysis.Rules (determinism checks on the
// sim-core packages, wire checks on spec/opt, lockguard on the
// shared-state packages, annotation and concurrency checks everywhere);
// see DESIGN.md §11–§12 for the contracts and the //physched:
// annotation grammar. -analyzers=a,b bypasses the scoping and runs
// exactly the named analyzers on every matched package.
//
// Output formats (-format, with -json as shorthand for -format=json):
//
//	text    one "file:line:col: analyzer: message" line per finding
//	json    a JSON array of {file, line, column, analyzer, message}
//	github  GitHub Actions ::error annotations, one per finding
//
// All formats list findings in the same deterministic order (file, line,
// column, analyzer, message). Exit codes: 0 clean, 1 findings, 2 loader
// or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"physched/internal/analysis"
	"physched/internal/analysis/driver"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("physchedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonFlag := fs.Bool("json", false, "shorthand for -format=json")
	format := fs.String("format", "text", "output format: text, json, or github")
	only := fs.String("analyzers", "", "comma-separated analyzer names to run unscoped (default: the Rules-scoped suite)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: physchedlint [-list] [-json | -format=text|json|github] [-analyzers=a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonFlag {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "physchedlint: unknown -format %q (text, json, github)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var diags []driver.Diagnostic
	var err error
	if *only != "" {
		names := strings.Split(*only, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		diags, err = analysis.LintWith(names, ".", patterns...)
	} else {
		diags, err = analysis.Lint(".", patterns...)
	}
	if err != nil {
		fmt.Fprintf(stderr, "physchedlint: %v\n", err)
		return 2
	}
	if err := emit(stdout, *format, diags); err != nil {
		fmt.Fprintf(stderr, "physchedlint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "physchedlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape: snake_case keys,
// stable field order, paths relative to the working directory when
// possible so output does not depend on the checkout location.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emit(w io.Writer, format string, diags []driver.Diagnostic) error {
	switch format {
	case "json":
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     relPath(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(findings)
	case "github":
		for _, d := range diags {
			fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s: %s\n",
				githubEscapeProp(relPath(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
				d.Analyzer, githubEscape(d.Message))
		}
		return nil
	default:
		for _, d := range diags {
			fmt.Fprintf(w, "%s\n", d)
		}
		return nil
	}
}

// relPath relativizes an absolute finding path against the working
// directory; paths outside it (or when cwd is unknown) stay absolute.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return filepath.ToSlash(rel)
}

// githubEscape encodes the characters the Actions workflow-command
// parser treats specially in the message position.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProp encodes a workflow-command property value (the
// file=... position): the message escapes plus the ':' and ','
// delimiters, per the Actions command spec.
func githubEscapeProp(s string) string {
	s = githubEscape(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
