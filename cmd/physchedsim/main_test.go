package main

import (
	"os"
	"path/filepath"
	"testing"

	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/trace"
)

func TestPolicyFactoryKnownNames(t *testing.T) {
	names := map[string]string{
		"farm":          "farm",
		"splitting":     "splitting",
		"cacheoriented": "cacheoriented",
		"outoforder":    "outoforder",
		"replication":   "outoforder+replication",
		"delayed":       "delayed",
		"adaptive":      "adaptive",
		"partitioned":   "partitioned",
		"affinefarm":    "affinefarm",
	}
	for flag, want := range names {
		mk, err := policyFactory(flag, 11, 200)
		if err != nil {
			t.Errorf("policyFactory(%q): %v", flag, err)
			continue
		}
		if got := mk().Name(); got != want {
			t.Errorf("policyFactory(%q).Name() = %q, want %q", flag, got, want)
		}
	}
}

func TestPolicyFactoryUnknownName(t *testing.T) {
	if _, err := policyFactory("bogus", 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSimulationWithoutTrace(t *testing.T) {
	p := model.PaperCalibrated()
	p.Nodes = 3
	p.MeanJobEvents = 1_000
	p.DataspaceBytes = 60 * model.GB
	p.CacheBytes = 6 * model.GB
	mk, err := policyFactory("outoforder", 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := runSimulation(lab.Scenario{
		Params: p, NewPolicy: mk, Load: 0.5 * p.FarmMaxLoad(),
		Seed: 1, WarmupJobs: 10, MeasureJobs: 50,
	}, "")
	if res.Overloaded || res.MeasuredJobs != 50 {
		t.Errorf("unexpected result: %+v", res)
	}
	// report must not panic on either outcome.
	report(res, p, true)
	res.Overloaded = true
	report(res, p, false)
}

func TestLoadSpecRunsScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	body := `{
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 2,
		"warmup_jobs": 10,
		"measure_jobs": 50
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := loadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res := runSimulation(s, "")
	if res.PolicyName != "outoforder" || (res.MeasuredJobs != 50 && !res.Overloaded) {
		t.Errorf("unexpected result: %+v", res)
	}
}

// TestSpecRunWritesTrace: `physchedsim -spec scenario.json -trace out.jsonl`
// records the run's event trace — the user-facing producer path for
// internal/trace. The written JSONL must parse back and cover the whole
// job lifecycle plus the periodic cluster samples.
func TestSpecRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "scenario.json")
	body := `{
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 2,
		"warmup_jobs": 10,
		"measure_jobs": 50
	}`
	if err := os.WriteFile(specPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := loadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "out.jsonl")
	res := runSimulation(s, tracePath)
	if res.MeasuredJobs == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, want := range []trace.Kind{trace.JobArrived, trace.SubjobStarted, trace.SubjobFinished, trace.JobFinished, trace.Sample} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (saw %v)", want, kinds)
		}
	}
	if sum := trace.Summarise(events); sum.Jobs == 0 || sum.Subjobs == 0 {
		t.Errorf("trace summary empty: %+v", sum)
	}
}

// TestRunStudyFromFile drives the -study mode end to end on the shipped
// example: the search must respect its budget and print a leaderboard,
// and a warm -cache-dir must make a second run re-simulate nothing.
func TestRunStudyFromFile(t *testing.T) {
	cacheDir := t.TempDir()
	example := filepath.Join("..", "..", "examples", "specfile", "study.json")
	cold, err := runStudy(example, cacheDir, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if cold.EvaluatedCells == 0 || cold.EvaluatedCells > cold.Budget || cold.Best == nil {
		t.Fatalf("bad cold report: %+v", cold)
	}
	warm, err := runStudy(example, cacheDir, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimulatedCells != 0 {
		t.Errorf("warm -cache-dir run re-simulated %d cells", warm.SimulatedCells)
	}
	if warm.Best == nil || cold.Best == nil || *warm.Best != *cold.Best {
		t.Errorf("warm and cold winners differ: %+v vs %+v", warm.Best, cold.Best)
	}
	if _, err := runStudy(filepath.Join(t.TempDir(), "missing.json"), "", 0, 0, false); err == nil {
		t.Error("missing study file accepted")
	}
}

func TestLoadSpecRejectsBadFiles(t *testing.T) {
	if _, err := loadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing spec file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSpec(path); err == nil {
		t.Error("unknown spec field accepted")
	}
}
