package lab

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedPoolBoundsConcurrentRuns: one pool serving several concurrent
// Run calls never exceeds its worker bound in total — the property a
// server needs so N simultaneous requests cannot oversubscribe the host.
func TestSharedPoolBoundsConcurrentRuns(t *testing.T) {
	const workers = 3
	pool := NewPool(workers)
	defer pool.Close()

	var cur, peak, total int32
	task := func(int) {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&total, 1)
		atomic.AddInt32(&cur, -1)
	}
	var wg sync.WaitGroup
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.Run(context.Background(), 20, task); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers across concurrent Runs", peak, workers)
	}
	if total != 5*20 {
		t.Errorf("ran %d tasks, want %d", total, 5*20)
	}
}

// TestPoolFairInterleaving: with one worker and two submissions queued,
// tasks alternate between the submissions (round-robin), so a long grid
// cannot starve a short one.
func TestPoolFairInterleaving(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	var gateWG sync.WaitGroup
	gateWG.Add(1)
	go func() {
		defer gateWG.Done()
		pool.Run(context.Background(), 1, func(int) { close(started); <-gate })
	}()
	<-started // the single worker is now parked; submissions queue behind it

	type step struct{ sub, idx int }
	var mu sync.Mutex
	var order []step
	record := func(sub int) func(int) {
		return func(i int) {
			mu.Lock()
			order = append(order, step{sub, i})
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for sub := 0; sub < 2; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			pool.Run(context.Background(), 4, record(sub))
		}(sub)
	}
	// Wait until both submissions are queued behind the gate, then open it.
	for {
		pool.mu.Lock()
		queued := len(pool.subs)
		pool.mu.Unlock()
		if queued == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	gateWG.Wait()

	if len(order) != 8 {
		t.Fatalf("ran %d tasks, want 8", len(order))
	}
	for k := 1; k < len(order); k++ {
		if order[k].sub == order[k-1].sub {
			t.Fatalf("tasks not interleaved round-robin: %v", order)
		}
	}
	for _, s := range order {
		if s.idx < 0 || s.idx > 3 {
			t.Fatalf("bad index in %v", order)
		}
	}
}

// TestPoolCancelOneRunKeepsOthers: cancelling one submission's context
// stops only that submission; a concurrent one completes fully.
func TestPoolCancelOneRunKeepsOthers(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var cancelled, kept int32
	var wg sync.WaitGroup
	wg.Add(2)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		errc <- pool.Run(ctx, 1000, func(int) {
			if atomic.AddInt32(&cancelled, 1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
		})
	}()
	go func() {
		defer wg.Done()
		if err := pool.Run(context.Background(), 10, func(int) {
			atomic.AddInt32(&kept, 1)
			time.Sleep(time.Millisecond)
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&cancelled); n >= 1000 {
		t.Errorf("cancellation did not stop dispatch (ran %d)", n)
	}
	if kept != 10 {
		t.Errorf("concurrent submission ran %d of 10 tasks", kept)
	}
}

// TestPoolRunAfterClose: a closed pool rejects new work.
func TestPoolRunAfterClose(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	if err := pool.Run(context.Background(), 3, func(int) {}); err != ErrPoolClosed {
		t.Fatalf("Run on closed pool returned %v, want ErrPoolClosed", err)
	}
}

// TestPoolZeroTasks: an empty submission returns immediately.
func TestPoolZeroTasks(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	if err := pool.Run(context.Background(), 0, func(int) { t.Error("task ran") }); err != nil {
		t.Fatal(err)
	}
}

// TestGridSharedPoolMatchesSerial extends the serial≡parallel contract to
// the shared pool: two grids executing concurrently on one pool are each
// byte-identical to their serial executions.
func TestGridSharedPoolMatchesSerial(t *testing.T) {
	serialA, err := testGrid(3).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	serialB, err := testGrid(11).Execute(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool(4)
	defer pool.Close()
	var wg sync.WaitGroup
	var sharedA, sharedB *RunSet
	wg.Add(2)
	go func() {
		defer wg.Done()
		sharedA, _ = testGrid(3).Execute(Options{Pool: pool})
	}()
	go func() {
		defer wg.Done()
		sharedB, _ = testGrid(11).Execute(Options{Pool: pool})
	}()
	wg.Wait()

	if a, b := marshal(t, serialA.Results), marshal(t, sharedA.Results); string(a) != string(b) {
		t.Errorf("shared-pool grid A differs from serial:\nserial: %s\nshared: %s", a, b)
	}
	if a, b := marshal(t, serialB.Results), marshal(t, sharedB.Results); string(a) != string(b) {
		t.Errorf("shared-pool grid B differs from serial:\nserial: %s\nshared: %s", a, b)
	}
}
