// Package hotalloc is a fixture for the hotalloc analyzer: allocating
// constructs inside //physched:hotpath functions are flagged; the same
// constructs in un-annotated functions are not.
package hotalloc

import "fmt"

func sink(v any) { _ = v }

type ring struct {
	buf []int
	n   int
}

// step is the fixture hot path.
//
//physched:hotpath
func (r *ring) step(name string, x int) {
	f := func() int { return x } // want "closure in hot path step allocates its environment"
	_ = f
	fmt.Println(name)  // want "fmt.Println in hot path step allocates"
	s := name + "!"    // want "string concatenation in hot path step allocates"
	_ = s
	b := []byte(name) // want "string<->\\[\\]byte conversion in hot path step copies and allocates"
	_ = b
	m := make(map[int]int) // want "unsized make\\(map\\) in hot path step grows by rehashing"
	_ = m
	c := make(chan int) // want "make\\(chan\\) in hot path step allocates"
	_ = c
	z := make([]int, 0) // want "make\\(slice, 0\\) without capacity in hot path step reallocates on growth"
	_ = z
	p := new(int) // want "new\\(...\\) in hot path step allocates"
	_ = p
	q := &ring{} // want "&composite literal in hot path step likely escapes to the heap"
	_ = q
	l := []int{1, 2} // want "slice literal in hot path step allocates"
	_ = l
	sink(x) // want "argument boxed into interface parameter in hot path step"
	sink(r) // pointer-shaped: no boxing allocation
	sink(nil)
}

// cold has the same constructs but no annotation: no findings.
func (r *ring) cold(name string) {
	fmt.Println(name + "!")
	_ = make(map[int]int)
	_ = new(int)
}

// sized is a clean hot path: sized make, index math, no boxing.
//
//physched:hotpath
func (r *ring) sized(x int) {
	if r.buf == nil {
		//physched:allocok one-time lazy init, amortised over the run
		r.buf = make([]int, 0, 64)
	}
	r.buf = append(r.buf, x)
	r.n++
}

// loops is the CFG tier: constructs that are fine once but hazards when
// the control-flow graph proves they repeat.
//
//physched:hotpath
func (r *ring) loops(items []int, release func()) {
	var out []int
	for _, v := range items {
		defer release()      // want "defer inside a loop in hot path loops"
		out = append(out, v) // want "append to out in a hot path loop reallocates on growth"
	}
	_ = out

	pre := make([]int, 0, 8)
	for _, v := range items {
		pre = append(pre, v) // preallocated: no finding
	}
	_ = pre
}

// gotoLoop proves cycle detection is graph-based, not syntax-based: a
// loop built from goto still counts.
//
//physched:hotpath
func (r *ring) gotoLoop(n int) []int {
	acc := []int{} // want "slice literal in hot path gotoLoop allocates"
	i := 0
again:
	if i < n {
		acc = append(acc, i) // want "append to acc in a hot path loop reallocates on growth"
		i++
		goto again
	}
	return acc
}

// onceOnly: a defer and a growing append outside any cycle stay silent
// on the loop tier.
//
//physched:hotpath
func (r *ring) onceOnly(release func()) {
	defer release()
	r.n++
}
