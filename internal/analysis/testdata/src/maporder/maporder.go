// Package maporder is a fixture for the maporder analyzer: ranges over
// maps with order-sensitive bodies are flagged unless sorted afterwards
// or annotated //physched:orderinvariant.
package maporder

import (
	"fmt"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "order-sensitive range over map"
		keys = append(keys, k)
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: legal
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSliceSort(m map[string]int) []int {
	var vals []int
	for _, v := range m { // sorted via sort.Slice: legal
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func channelSend(m map[string]int, ch chan int) {
	for _, v := range m { // want "sends on a channel"
		ch <- v
	}
}

func printsOutput(m map[string]int) {
	for k := range m { // want "writes output via fmt.Println"
		fmt.Println(k)
	}
}

func floatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floating point"
		sum += v
	}
	return sum
}

func floatPerKeySlot(m map[int]float64, slots []float64) {
	for k, v := range m { // disjoint slot per key: order-invariant
		slots[k] += v
	}
}

type queue struct{}

func (queue) Push(int) {}

func enqueues(m map[string]int, q queue) {
	for _, v := range m { // want "enqueues events"
		q.Push(v)
	}
}

func annotated(m map[string]int) int {
	n := 0
	//physched:orderinvariant pure count, every iteration adds 1
	for range m {
		n++
	}
	return n
}

func intFold(m map[string]int) int {
	sum := 0
	for _, v := range m { // integer addition commutes: legal
		sum += v
	}
	return sum
}
