package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"physched/client"
	"physched/internal/lab"
	"physched/internal/resultcache"
)

// postAsync submits a grid asynchronously and returns the 202 body.
func postAsync(t *testing.T, ts *httptest.Server, body string) jobSubmitted {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/grids?async=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", resp.StatusCode)
	}
	var sub jobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.JobID == "" || sub.GridHash == "" {
		t.Fatalf("bad submit body: %+v", sub)
	}
	return sub
}

// getStatus fetches a job's status document.
func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint returned %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls a job until it leaves the running state.
func waitDone(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State != string(jobRunning) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 30s: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readStream reads a job's NDJSON stream to the end.
func readStream(t *testing.T, ts *httptest.Server, id string) (progress []progressLine, result resultLine) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch kind.Type {
		case "progress":
			var p progressLine
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatal(err)
			}
			progress = append(progress, p)
		case "result":
			if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
				t.Fatal(err)
			}
		case "error":
			t.Fatalf("stream reported an error line: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return progress, result
}

// TestAsyncJobRoundTrip is the async acceptance test: submit → poll →
// stream → fetch, then re-POST the same grid synchronously and observe
// zero re-simulated cells with byte-identical results.
func TestAsyncJobRoundTrip(t *testing.T) {
	ts := testServer(t)

	sub := postAsync(t, ts, gridBody)
	st := waitDone(t, ts, sub.JobID)
	const total = 2 * 2 * 2
	if st.State != string(jobDone) || st.Done != total || st.Total != total {
		t.Fatalf("finished job status %+v, want done %d/%d", st, total, total)
	}
	if st.Finished == nil || st.GridHash != sub.GridHash {
		t.Errorf("incomplete status document: %+v", st)
	}

	// (Re)attach to the stream after completion: the full run replays.
	progress, result := readStream(t, ts, sub.JobID)
	if len(progress) != total {
		t.Errorf("replayed %d progress lines, want %d", len(progress), total)
	}
	if result.GridHash != sub.GridHash || len(result.Cells) != total {
		t.Fatalf("bad replayed result line: %+v", result)
	}
	if len(result.Aggregates) != 2*2 {
		t.Errorf("replayed %d aggregates, want 4", len(result.Aggregates))
	}
	// A second attach replays identically.
	progress2, result2 := readStream(t, ts, sub.JobID)
	if len(progress2) != len(progress) {
		t.Errorf("second attach replayed %d progress lines, want %d", len(progress2), len(progress))
	}
	a, _ := json.Marshal(result)
	b, _ := json.Marshal(result2)
	if !bytes.Equal(a, b) {
		t.Errorf("stream replays diverged:\n%s\n%s", a, b)
	}

	// Re-POST the same grid synchronously: everything is cached and
	// byte-identical to the async run.
	_, syncResult := postGrid(t, ts, gridBody)
	if syncResult.CacheHits != total {
		t.Errorf("sync re-POST re-simulated %d of %d cells", total-syncResult.CacheHits, total)
	}
	sa, _ := json.Marshal(result.Cells)
	sb, _ := json.Marshal(syncResult.Cells)
	if !bytes.Equal(sa, sb) {
		t.Errorf("async and sync results diverged:\n%s\n%s", sa, sb)
	}

	// Fetch: every cell the async job simulated is addressable through
	// the content cache.
	fetch, err := http.Get(ts.URL + "/v1/results/" + result.Cells[0].Hash)
	if err != nil {
		t.Fatal(err)
	}
	fetch.Body.Close()
	if fetch.StatusCode != http.StatusOK {
		t.Errorf("fetch by hash after async run: status %d", fetch.StatusCode)
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestAdmissionControl429: past -max-inflight the server rejects new
// executions instead of queueing them, and the slot frees once the
// in-flight job finishes.
func TestAdmissionControl429(t *testing.T) {
	pool := lab.NewPool(1)
	ts := testServerWith(t, serverConfig{
		Cache:       resultcache.NewMemory(),
		Pool:        pool,
		MaxCells:    100,
		MaxInflight: 1,
	})

	// Park the pool's only worker so the first admitted job stays
	// in flight deterministically.
	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started

	sub := postAsync(t, ts, smallGridBody(500)) // admitted, queued behind the blocker

	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(smallGridBody(600)))
	if err != nil {
		t.Fatal(err)
	}
	var out client.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&out)
	retryAfter := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", resp.StatusCode)
	}
	if out.Error.Code != client.CodeOverCapacity || out.Error.Message == "" {
		t.Errorf("429 envelope %+v, want code %q with a message", out, client.CodeOverCapacity)
	}
	if _, err := strconv.Atoi(retryAfter); err != nil {
		t.Errorf("429 Retry-After header %q is not an integer", retryAfter)
	}

	close(gate)
	<-blockerDone
	waitDone(t, ts, sub.JobID)

	// The slot is released shortly after the job completes; the same
	// rejected grid is then admitted and runs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(smallGridBody(600)))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		if code == http.StatusOK {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if code != http.StatusTooManyRequests {
			t.Fatalf("retry got %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after the job finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsListAndCancel covers the job lifecycle endpoints: GET /v1/jobs
// lists jobs with status and age, DELETE /v1/jobs/{id} cancels a running
// job through its context (404 unknown, 409 already finished).
func TestJobsListAndCancel(t *testing.T) {
	pool := lab.NewPool(1)
	ts := testServerWith(t, serverConfig{
		Cache:    resultcache.NewMemory(),
		Pool:     pool,
		MaxCells: 100,
	})

	// Park the pool's only worker so the submitted job deterministically
	// has cells still pending when it is cancelled.
	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started

	sub := postAsync(t, ts, gridBody)

	// The running job appears in the listing with its metadata.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 {
		t.Fatalf("listing has %d jobs, want 1: %+v", len(listing.Jobs), listing)
	}
	j := listing.Jobs[0]
	if j.ID != sub.JobID || j.Kind != "grid" || j.State != string(jobRunning) || j.AgeSec < 0 {
		t.Errorf("bad listed job: %+v", j)
	}

	// Cancel it; the job transitions to "cancelled" once its execution
	// unwinds, and its stream terminates with an error line.
	del := func() *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.JobID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := del()
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", first.StatusCode)
	}
	close(gate)
	<-blockerDone
	st := waitDone(t, ts, sub.JobID)
	if st.State != string(jobCancelled) || st.Error == "" {
		t.Errorf("cancelled job status %+v, want state cancelled with an error message", st)
	}

	// Cancelling again conflicts; unknown jobs 404.
	again := del()
	again.Body.Close()
	if again.StatusCode != http.StatusConflict {
		t.Errorf("second cancel status %d, want 409", again.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/deadbeefdeadbeef", nil)
	if err != nil {
		t.Fatal(err)
	}
	missing, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-job cancel status %d, want 404", missing.StatusCode)
	}
}

// TestJobLifecycleFakeClock drives a job on an injected clock: every
// timestamp in the status document is an exact function of the fake
// time, with no real-clock jitter.
func TestJobLifecycleFakeClock(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := epoch
	clock := func() time.Time { return now }

	j := newJob("grid", "cafebabe", 4, clock)
	if !j.created.Equal(epoch) {
		t.Fatalf("created = %v, want %v", j.created, epoch)
	}

	now = epoch.Add(90 * time.Second)
	st := j.status()
	if st.AgeSec != 90 {
		t.Errorf("running AgeSec = %v, want exactly 90", st.AgeSec)
	}
	if st.Finished != nil {
		t.Errorf("running job has Finished = %v", st.Finished)
	}

	if err := j.append(progressLine{Type: "progress", Done: 2, Total: 4}); err != nil {
		t.Fatal(err)
	}
	now = epoch.Add(5 * time.Minute)
	if err := j.append(resultLine{Type: "result", GridHash: "cafebabe", CacheHits: 1}); err != nil {
		t.Fatal(err)
	}
	st = j.status()
	if st.State != string(jobDone) || st.CacheHits != 1 {
		t.Fatalf("terminal status %+v, want done with 1 cache hit", st)
	}
	if st.Finished == nil || !st.Finished.Equal(epoch.Add(5*time.Minute)) {
		t.Errorf("Finished = %v, want %v", st.Finished, epoch.Add(5*time.Minute))
	}

	// Sealing a failed run stamps the same injected clock.
	now = epoch.Add(10 * time.Minute)
	k := newJob("study", "deadbeef", 1, clock)
	k.seal()
	ks := k.status()
	if ks.State != string(jobFailed) || ks.Finished == nil || !ks.Finished.Equal(now) {
		t.Errorf("sealed status %+v, want failed at %v", ks, now)
	}
}

// TestJobRetentionBounded: finished jobs past -max-jobs are evicted
// oldest-first and their handles 404.
func TestJobRetentionBounded(t *testing.T) {
	ts := testServerWith(t, serverConfig{
		Cache:    resultcache.NewMemory(),
		Pool:     lab.NewPool(2),
		MaxCells: 100,
		MaxJobs:  2,
	})

	var ids []string
	for i := 0; i < 3; i++ {
		sub := postAsync(t, ts, smallGridBody(int64(700+10*i)))
		waitDone(t, ts, sub.JobID)
		ids = append(ids, sub.JobID)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job should be evicted, got status %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		st := getStatus(t, ts, id)
		if st.State != string(jobDone) {
			t.Errorf("retained job %s in state %q", id, st.State)
		}
	}
}
