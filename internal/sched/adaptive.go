package sched

import (
	"sort"

	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/model"
)

// DelayStep maps a load level to the minimal period delay that sustains it.
type DelayStep struct {
	// MaxUtilisation is the highest load this delay sustains, expressed as
	// a fraction of the cluster's maximal theoretical load, so the profile
	// transfers across cluster sizes.
	MaxUtilisation float64
	// Delay is the period delay to use up to MaxUtilisation.
	Delay float64
}

// DefaultDelayTable is the delay-versus-load profile used by the adaptive
// policy. It mirrors the performance profiles the paper extracts from
// Figures 5 and 6: zero delay while the out-of-order-like regime sustains
// the load (up to roughly half the maximal theoretical load, i.e. about
// 1.7 of 3.46 jobs/hour on the paper's cluster), then increasing delays up
// to one week near the maximal theoretical load.
var DefaultDelayTable = []DelayStep{
	{MaxUtilisation: 0.49, Delay: 0},
	{MaxUtilisation: 0.58, Delay: 4 * model.Hour},
	{MaxUtilisation: 0.64, Delay: 11 * model.Hour},
	{MaxUtilisation: 0.70, Delay: model.Day},
	{MaxUtilisation: 0.75, Delay: 2 * model.Day},
	{MaxUtilisation: 1.05, Delay: model.Week},
}

// Adaptive is the adaptive-delay policy of §6: delayed scheduling whose
// period delay follows the current load — zero at normal loads (jobs are
// scheduled immediately, stripe distribution included) and up to a week
// near the maximal sustainable load. Waiting times of this policy are
// reported delay-included (Figure 7).
type Adaptive struct {
	base
	// Stripe is the stripe size in events (Figure 7 uses 200 and 5000).
	Stripe int64
	// Table is the load-to-delay profile; DefaultDelayTable when nil.
	Table []DelayStep
	// Window is the arrival-rate estimation window (default 12 h).
	Window float64

	inner    *Delayed
	arrivals []float64 // arrival times within the window
}

// NewAdaptive returns the adaptive-delay policy with the given stripe size.
func NewAdaptive(stripe int64) *Adaptive {
	return &Adaptive{Stripe: stripe, Table: DefaultDelayTable, Window: 12 * model.Hour}
}

func (*Adaptive) Name() string { return "adaptive" }

func (*Adaptive) ClusterConfig() cluster.Config {
	return cluster.Config{Caching: true}
}

func (p *Adaptive) Attach(c *cluster.Cluster) {
	p.base.Attach(c)
	if p.Table == nil {
		p.Table = DefaultDelayTable
	}
	if p.Window <= 0 {
		p.Window = 12 * model.Hour
	}
	p.inner = NewDelayed(0, p.Stripe)
	p.inner.Attach(c)
}

// CurrentDelay returns the period delay selected for the current load
// estimate.
func (p *Adaptive) CurrentDelay() float64 { return p.inner.Period }

// LoadEstimate returns the arrival rate, in jobs per hour, observed over
// the estimation window.
func (p *Adaptive) LoadEstimate() float64 {
	if len(p.arrivals) < 2 {
		return 0
	}
	span := p.now() - p.arrivals[0]
	if span < model.Hour {
		span = model.Hour
	}
	return float64(len(p.arrivals)) / (span / model.Hour)
}

// delayFor picks the minimal delay sustaining the load (in jobs per hour).
func (p *Adaptive) delayFor(load float64) float64 {
	util := load / p.params.MaxTheoreticalLoad()
	i := sort.Search(len(p.Table), func(i int) bool { return p.Table[i].MaxUtilisation >= util })
	if i == len(p.Table) {
		return p.Table[len(p.Table)-1].Delay
	}
	return p.Table[i].Delay
}

func (p *Adaptive) JobArrived(j *job.Job) {
	now := p.now()
	p.arrivals = append(p.arrivals, now)
	cutoff := now - p.Window
	for len(p.arrivals) > 0 && p.arrivals[0] < cutoff {
		p.arrivals = p.arrivals[1:]
	}
	p.retune()
	p.inner.JobArrived(j)
}

// retune adjusts the inner delayed scheduler's period to the current load.
// Switching from zero to a positive period starts the period timer;
// switching to zero drains the pending batch immediately.
func (p *Adaptive) retune() {
	want := p.delayFor(p.LoadEstimate())
	have := p.inner.Period
	if want == have {
		return
	}
	p.inner.Period = want
	if have == 0 && want > 0 {
		// Enter delayed mode: accumulate from now, schedule in one period.
		if p.inner.timer == nil {
			p.inner.timer = p.eng.After(want, p.inner.periodEnd)
		}
		return
	}
	if want == 0 {
		// Leave delayed mode: flush everything accumulated so far.
		if p.inner.timer != nil {
			p.inner.timer.Cancel()
			p.inner.timer = nil
		}
		p.flushPending()
	}
	// For a changed positive period the next periodEnd reschedules with
	// the new value automatically (periodEnd uses p.inner.Period).
}

// flushPending schedules all accumulated jobs immediately.
func (p *Adaptive) flushPending() {
	jobs := p.inner.pending
	p.inner.pending = nil
	now := p.now()
	for _, j := range jobs {
		j.ScheduledAt = now
	}
	p.inner.scheduleJobs(jobs)
	p.inner.feedIdleNodes()
}

func (p *Adaptive) SubjobDone(n *cluster.Node, sj *job.Subjob) {
	p.inner.SubjobDone(n, sj)
}

// NodeDown and NodeUp forward node churn to the inner delayed scheduler
// (sched.NodeStateObserver).
func (p *Adaptive) NodeDown(n *cluster.Node, lost *job.Subjob) { p.inner.NodeDown(n, lost) }
func (p *Adaptive) NodeUp(n *cluster.Node)                     { p.inner.NodeUp(n) }
