// Package analysis is physchedlint: repo-specific static analyzers that
// make this repo's determinism and hot-path contracts compile-time
// checkable instead of golden-file-discovered. See DESIGN.md §11 for the
// invariant each analyzer guards and the annotation grammar.
package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"physched/internal/analysis/driver"
)

// The //physched: annotation grammar. Annotations are real, checked
// syntax: the directive analyzer rejects unknown verbs, missing reasons
// and misplaced annotations, so a typo cannot silently disable a check.
//
//	//physched:hotpath                      (func doc) zero-alloc contract, enforced by hotalloc
//	//physched:orderinvariant <reason>      (range stmt) map iteration deliberately unordered
//	//physched:allocok <reason>             (stmt in hotpath func) deliberate allocation
//	//physched:walltime <reason>            (stmt) deliberate wall-clock read at a wiring site
//	//physched:locked <mutex> [why]         (func doc) caller holds <mutex>; seeds lockcheck
//	//physched:lockok <reason>              (stmt) suppresses one lockcheck finding
//	//physched:unguarded <reason>           (stmt) suppresses one lockguard finding
//	//physched:spawnok <reason>             (go stmt) goroutine termination argued in prose
const directivePrefix = "//physched:"

// directiveSpec describes one verb: whether its free-text reason is
// mandatory and which analyzer consumes it (for the doc listing).
type directiveSpec struct {
	needsReason bool
	doc         string
}

var directiveSpecs = map[string]directiveSpec{
	"hotpath":        {false, "marks a function whose steady state must not allocate (checked by hotalloc)"},
	"orderinvariant": {true, "suppresses maporder on a map range whose body is order-insensitive"},
	"allocok":        {true, "suppresses hotalloc on one statement of a hotpath function"},
	"walltime":       {true, "suppresses walltime on one deliberate wall-clock wiring site"},
	"locked":         {true, "declares the mutex a caller must hold around this function (seeds and is enforced by lockcheck)"},
	"lockok":         {true, "suppresses lockcheck on one statement"},
	"unguarded":      {true, "suppresses lockguard on one deliberately lock-free access"},
	"spawnok":        {true, "suppresses spawncheck on one go statement whose termination is argued in the reason"},
}

// knownVerbs returns the grammar's verbs, sorted, for diagnostics.
func knownVerbs() string {
	verbs := make([]string, 0, len(directiveSpecs))
	for v := range directiveSpecs {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	return strings.Join(verbs, ", ")
}

// directive is one parsed //physched: comment.
type directive struct {
	verb    string
	reason  string
	pos     token.Pos
	line    int // 1-based line of the comment
	unknown bool
}

// parseDirectives extracts every //physched: comment in the file,
// including malformed ones (unknown=true) so the directive analyzer can
// reject them.
func parseDirectives(fset *token.FileSet, file *ast.File) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			// A line comment runs to end of line, so a fixture's
			// `// want "..."` expectation on a directive line would
			// otherwise be swallowed into the reason text.
			if i := strings.Index(rest, "// want"); i >= 0 {
				rest = rest[:i]
			}
			verb, reason, _ := strings.Cut(rest, " ")
			d := directive{
				verb:   verb,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   fset.Position(c.Pos()).Line,
			}
			if _, ok := directiveSpecs[verb]; !ok {
				d.unknown = true
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressions indexes well-formed directives by (file, line, verb) so
// analyzers can ask "is this finding suppressed?". A directive suppresses
// findings on its own line (trailing comment) and on the line directly
// below it (comment-above style).
type suppressions struct {
	fset *token.FileSet
	m    map[suppKey]bool
}

type suppKey struct {
	file string
	line int
	verb string
}

func newSuppressions(pass *driver.Pass) suppressions {
	s := suppressions{fset: pass.Fset, m: map[suppKey]bool{}}
	if pass.NoSuppress {
		// Audit mode: pretend no suppression comments exist, so every
		// suppressed finding resurfaces. //physched:hotpath and
		// //physched:locked are NOT suppressions — they assert facts the
		// analyses build on — and stay in force via their own parsers.
		return s
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		for _, d := range parseDirectives(pass.Fset, f) {
			if d.unknown {
				continue // the directive analyzer reports these
			}
			s.m[suppKey{name, d.line, d.verb}] = true
			s.m[suppKey{name, d.line + 1, d.verb}] = true
		}
	}
	return s
}

// allows reports whether a directive of verb covers the line of pos.
func (s suppressions) allows(pos token.Pos, verb string) bool {
	p := s.fset.Position(pos)
	return s.m[suppKey{p.Filename, p.Line, verb}]
}

// hotpathFuncs returns the function declarations annotated
// //physched:hotpath, keyed by decl. The directive must sit in the
// function's doc comment group (or on the line directly above the func
// keyword, which the parser normally folds into the doc anyway).
func hotpathFuncs(pass *driver.Pass) map[*ast.FuncDecl]bool {
	out := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, directivePrefix+"hotpath") {
					out[fd] = true
				}
			}
		}
	}
	return out
}

// Directive validates the annotation grammar itself: unknown verbs,
// missing mandatory reasons, and annotations detached from the syntax
// they claim to describe are all lint errors. This is what makes the
// grammar "real syntax": a misspelled suppression fails the build
// instead of silently not suppressing.
var Directive = &driver.Analyzer{
	Name: "physcheddirective",
	Doc:  "validate //physched: annotations (" + knownVerbs() + ")",
	Run:  runDirective,
}

func runDirective(pass *driver.Pass) error {
	hot := hotpathFuncs(pass)
	for _, f := range pass.Files {
		ds := parseDirectives(pass.Fset, f)
		if len(ds) == 0 {
			continue
		}
		anchors := directiveAnchors(pass, f, hot)
		for _, d := range ds {
			if d.unknown {
				pass.Reportf(d.pos, "unknown //physched: directive %q (known: %s)", d.verb, knownVerbs())
				continue
			}
			spec := directiveSpecs[d.verb]
			if spec.needsReason && d.reason == "" {
				pass.Reportf(d.pos, "//physched:%s needs a reason: //physched:%s <why this is safe>", d.verb, d.verb)
			}
			if ok := anchors.placed(d); !ok {
				pass.Reportf(d.pos, "misplaced //physched:%s: %s", d.verb, placementRule(d.verb))
			}
		}
	}
	return nil
}

func placementRule(verb string) string {
	switch verb {
	case "hotpath":
		return "must be part of a function declaration's doc comment"
	case "orderinvariant":
		return "must sit on or directly above a range statement"
	case "allocok":
		return "must sit on or directly above a statement inside a //physched:hotpath function"
	case "walltime":
		return "must sit on or directly above a statement inside a function body"
	case "locked":
		return "must be part of a function declaration's doc comment"
	case "lockok", "unguarded":
		return "must sit on or directly above a statement inside a function body"
	case "spawnok":
		return "must sit on or directly above a go statement"
	default:
		return "unknown placement"
	}
}

// anchorIndex records which source lines hold the syntax each directive
// verb must attach to.
type anchorIndex struct {
	docLines     map[int]bool // lines inside FuncDecl doc comments
	rangeLines   map[int]bool // lines where a RangeStmt starts
	stmtLines    map[int]bool // lines where any statement starts
	hotpathLines map[int]bool // statement lines inside hotpath funcs
	goLines      map[int]bool // lines where a GoStmt starts
}

func directiveAnchors(pass *driver.Pass, f *ast.File, hot map[*ast.FuncDecl]bool) anchorIndex {
	ai := anchorIndex{
		docLines:     map[int]bool{},
		rangeLines:   map[int]bool{},
		stmtLines:    map[int]bool{},
		hotpathLines: map[int]bool{},
		goLines:      map[int]bool{},
	}
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Doc != nil {
			for l := line(fd.Doc.Pos()); l <= line(fd.Doc.End()); l++ {
				ai.docLines[l] = true
			}
		}
		if fd.Body == nil {
			continue
		}
		inHot := hot[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			l := line(st.Pos())
			ai.stmtLines[l] = true
			if inHot {
				ai.hotpathLines[l] = true
			}
			if _, ok := st.(*ast.RangeStmt); ok {
				ai.rangeLines[l] = true
			}
			if _, ok := st.(*ast.GoStmt); ok {
				ai.goLines[l] = true
			}
			return true
		})
	}
	return ai
}

// placed reports whether directive d sits at a line its verb may anchor
// to: its own line (trailing comment) or the next line (comment above).
func (ai anchorIndex) placed(d directive) bool {
	at := func(m map[int]bool) bool { return m[d.line] || m[d.line+1] }
	switch d.verb {
	case "hotpath":
		return ai.docLines[d.line]
	case "orderinvariant":
		return at(ai.rangeLines)
	case "allocok":
		return at(ai.hotpathLines)
	case "walltime", "lockok", "unguarded":
		return at(ai.stmtLines)
	case "locked":
		return ai.docLines[d.line]
	case "spawnok":
		return at(ai.goLines)
	default:
		return false
	}
}
