package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndRender(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	h.WriteProm(&sb, "x_seconds", "")
	want := `x_seconds_bucket{le="0.1"} 1
x_seconds_bucket{le="1"} 3
x_seconds_bucket{le="10"} 4
x_seconds_bucket{le="+Inf"} 5
x_seconds_sum 56.05
x_seconds_count 5
`
	if sb.String() != want {
		t.Errorf("render:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(1) // on the bound: counts into le="1" (cumulative ≤)
	h.Observe(1.0000001)
	var sb strings.Builder
	h.WriteProm(&sb, "e", "")
	if !strings.Contains(sb.String(), `e_bucket{le="1"} 1`) {
		t.Errorf("value on the bound not in its bucket:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `e_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket not cumulative:\n%s", sb.String())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(HTTPBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got < 23.99 || got > 24.01 {
		t.Fatalf("Sum = %g, want ≈24", got)
	}
}

func TestHistogramVecSeriesAndRenderOrder(t *testing.T) {
	v := NewHistogramVec([]string{"route", "status"}, []float64{1})
	v.With("GET /b", "200").Observe(0.5)
	v.With("GET /a", "200").Observe(2)
	v.With("GET /a", "200").Observe(0.1) // same series, no new entry
	var sb strings.Builder
	v.WriteProm(&sb, "h")
	out := sb.String()
	ai := strings.Index(out, `route="GET /a"`)
	bi := strings.Index(out, `route="GET /b"`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("series missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `h_count{route="GET /a",status="200"} 2`) {
		t.Errorf("series did not accumulate:\n%s", out)
	}
	if !strings.Contains(out, `h_bucket{route="GET /a",status="200",le="+Inf"} 2`) {
		t.Errorf("bucket labels malformed:\n%s", out)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(CellBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.25) }); n != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", n)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
