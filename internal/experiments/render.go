package experiments

import (
	"fmt"
	"strings"

	"physched/internal/asciiplot"
	"physched/internal/model"
	"physched/internal/queueing"
	"physched/internal/sched"
	"physched/internal/stats"
)

// Table renders a figure's results as a text table: one block per curve,
// one row per load, with overload marked the way the paper cuts curves.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if f.Note != "" {
		fmt.Fprintf(&b, "  %s\n", f.Note)
	}
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "\n  %s\n", c.Label)
		fmt.Fprintf(&b, "    %-12s %-10s %-14s %-14s %s\n",
			"load (j/h)", "speedup", "avg waiting", "p99 waiting", "state")
		for _, r := range c.Results {
			if r.Overloaded {
				fmt.Fprintf(&b, "    %-12.2f %-10s %-14s %-14s overloaded\n", r.Load, "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, "    %-12.2f %-10.2f %-14s %-14s steady\n",
				r.Load, r.AvgSpeedup,
				stats.FormatDuration(r.AvgWaiting), stats.FormatDuration(r.P99Waiting))
		}
	}
	return b.String()
}

// Plots renders the figure's two panels (speedup linear, waiting log) as
// ASCII charts, mirroring the paper's layout.
func (f Figure) Plots() string {
	var speedup, waiting []asciiplot.Series
	for _, c := range f.Curves {
		var sx, sy, wx, wy []float64
		for _, r := range c.Results {
			if r.Overloaded {
				continue
			}
			sx = append(sx, r.Load)
			sy = append(sy, r.AvgSpeedup)
			if r.AvgWaiting > 0 {
				wx = append(wx, r.Load)
				wy = append(wy, r.AvgWaiting)
			}
		}
		speedup = append(speedup, asciiplot.Series{Label: c.Label, X: sx, Y: sy})
		waiting = append(waiting, asciiplot.Series{Label: c.Label, X: wx, Y: wy})
	}
	top := asciiplot.Render(speedup, asciiplot.Options{
		Title: f.Title + " — average speedup", XLabel: "load (jobs/hour)", YLabel: "speedup",
	})
	bottom := asciiplot.Render(waiting, asciiplot.Options{
		Title: f.Title + " — average waiting time", XLabel: "load (jobs/hour)",
		YLabel: "waiting (s, log)", LogY: true,
	})
	return top + "\n" + bottom
}

// CSV renders the figure as comma-separated rows:
// curve,load,overloaded,speedup,avg_waiting_s,p99_waiting_s,avg_processing_s.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("curve,load_jobs_per_hour,overloaded,avg_speedup,avg_waiting_s,p99_waiting_s,avg_processing_s\n")
	for _, c := range f.Curves {
		for _, r := range c.Results {
			fmt.Fprintf(&b, "%q,%.3f,%v,%.4f,%.1f,%.1f,%.1f\n",
				c.Label, r.Load, r.Overloaded, r.AvgSpeedup, r.AvgWaiting, r.P99Waiting, r.AvgProc)
		}
	}
	return b.String()
}

// RenderDistributions renders the Figure 4 histograms.
func RenderDistributions(ds []Distribution) string {
	var b strings.Builder
	b.WriteString("Figure 4: waiting time distribution near the maximal sustainable load\n")
	b.WriteString("  Paper: bimodal — jobs with cached data overtake (left mass), jobs without are overtaken (right tail up to 1-2 days).\n")
	for _, d := range ds {
		fmt.Fprintf(&b, "\n  %s  (measured %d jobs, overloaded=%v)\n",
			d.Label, d.Result.MeasuredJobs, d.Result.Overloaded)
		for _, line := range strings.Split(strings.TrimRight(d.Histogram, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// RenderReplication renders the §4.2 comparison table.
func RenderReplication(rows []ReplicationRow) string {
	var b strings.Builder
	b.WriteString("§4.2: out-of-order scheduling with vs without data replication\n")
	b.WriteString("  Paper: identical performance; replication used in <1‰ of arrivals.\n\n")
	fmt.Fprintf(&b, "  %-10s %-22s %-22s %s\n", "load", "plain speed/wait", "replicated speed/wait", "replicated share")
	for _, r := range rows {
		p, q := r.Plain, r.Replicate
		ps, qs := "overloaded", "overloaded"
		if !p.Overloaded {
			ps = fmt.Sprintf("%.2f / %s", p.AvgSpeedup, stats.FormatDuration(p.AvgWaiting))
		}
		if !q.Overloaded {
			qs = fmt.Sprintf("%.2f / %s", q.AvgSpeedup, stats.FormatDuration(q.AvgWaiting))
		}
		fmt.Fprintf(&b, "  %-10.2f %-22s %-22s %.4f%%\n", r.Load, ps, qs, 100*r.ReplicatedShare)
	}
	return b.String()
}

// RenderMaxLoad renders the §5.2 maximal-load experiment.
func RenderMaxLoad(rows []MaxLoadResult) string {
	var b strings.Builder
	b.WriteString("§5.2: delayed scheduling at the limit (cache 200 GB, delay 1 week, stripe 200)\n")
	if len(rows) > 0 {
		fmt.Fprintf(&b, "  Theoretical max %.2f j/h; farm max %.2f j/h. Paper: sustains ≈3 j/h with speedup >10.\n\n",
			rows[0].TheoryMax, rows[0].FarmMax)
	}
	fmt.Fprintf(&b, "  %-10s %-10s %-14s %s\n", "load", "speedup", "avg waiting", "state")
	for _, r := range rows {
		if r.Result.Overloaded {
			fmt.Fprintf(&b, "  %-10.2f %-10s %-14s overloaded\n", r.Load, "-", "-")
			continue
		}
		fmt.Fprintf(&b, "  %-10.2f %-10.2f %-14s steady\n",
			r.Load, r.Result.AvgSpeedup, stats.FormatDuration(r.Result.AvgWaiting))
	}
	return b.String()
}

// FarmRow compares the simulated farm with the analytic M/Er/m model.
type FarmRow struct {
	Load         float64
	SimWaiting   float64
	ModelWaiting float64
	Utilisation  float64
	Overloaded   bool
}

// FarmVsMErM reproduces the §3.1 statement that the processing farm is an
// M/Er/m queue, comparing simulated and analytic mean waiting times.
func FarmVsMErM(q Quality, seed int64) []FarmRow {
	p := model.PaperCalibrated()
	loads := loadGrid(q, 0.5, 1.05)
	s := baseScenario(q, seed)
	s.NewPolicy = func() sched.Policy { return sched.NewFarm() }
	s.MeasureJobs = 3 * q.measure() // waiting-time means converge slowly
	results := sweep(s, loads)
	rows := make([]FarmRow, len(loads))
	for i, r := range results {
		mm := queueing.MErM{
			Lambda:      loads[i] / model.Hour,
			MeanService: float64(p.MeanJobEvents) * p.EventTimeTape(),
			Shape:       p.ErlangShape,
			Servers:     p.Nodes,
		}
		w, err := mm.MeanWait()
		row := FarmRow{Load: loads[i], Utilisation: mm.Utilisation(), Overloaded: r.Overloaded}
		if err == nil {
			row.ModelWaiting = w
		}
		if !r.Overloaded {
			row.SimWaiting = r.AvgWaiting
		}
		rows[i] = row
	}
	return rows
}

// RenderFarm renders the M/Er/m validation table.
func RenderFarm(rows []FarmRow) string {
	var b strings.Builder
	b.WriteString("§3.1: processing farm vs analytic M/Er/m queue\n\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-16s %-16s\n", "load", "utilisation", "sim waiting", "M/Er/m waiting")
	for _, r := range rows {
		sim := "overloaded"
		if !r.Overloaded {
			sim = stats.FormatDuration(r.SimWaiting)
		}
		mdl := "unstable"
		if r.Utilisation < 1 {
			mdl = stats.FormatDuration(r.ModelWaiting)
		}
		fmt.Fprintf(&b, "  %-10.2f %-12.3f %-16s %-16s\n", r.Load, r.Utilisation, sim, mdl)
	}
	return b.String()
}
