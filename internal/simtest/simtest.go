// Package simtest is an invariant harness for simulation scenarios: it
// wraps any lab.Scenario with live instrumentation (through
// lab.Scenario.Hooks) and asserts, during and after the run, the
// properties every correct simulation must satisfy regardless of policy,
// workload or fault model:
//
//   - Job conservation: every job reported finished completed exactly
//     once, with all of its events processed — work lost to node
//     failures was re-executed, never dropped and never double-counted.
//   - Simulation-time monotonicity: observed event times never go
//     backwards.
//   - Cache-capacity bounds: no node cache ever exceeds its capacity.
//   - Node-state sanity: a down node never has a subjob executing on it,
//     and the fault counters stay mutually consistent (repairs and
//     decommissions never exceed failures, wasted work only exists when
//     failures occurred, …).
//
// Usage, in any test:
//
//	res := simtest.Run(t, scenario)
//
// or, to keep control of execution:
//
//	ck := simtest.New()
//	ck.Instrument(&scenario)
//	res := lab.Run(scenario)
//	ck.Verify(t, res)
//
// A Checker observes a single run; build a fresh one per scenario
// execution (grids run many cells, concurrently, through one shared
// Hooks closure — instrument inside the grid's Mutate only if every cell
// gets its own Checker).
package simtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/lab"
)

// timeSlack absorbs float noise when comparing observed event times.
const timeSlack = 1e-9

// maxReported bounds the violations kept verbatim; everything past it is
// only counted, so a systematically broken run does not flood the log.
const maxReported = 20

// Checker accumulates invariant observations over one simulation run.
type Checker struct {
	cl         *cluster.Cluster
	lastTime   float64
	finished   map[int64]int // job ID → completions observed
	violations []string
	dropped    int // violations beyond maxReported
}

// New returns a Checker for one run.
func New() *Checker {
	return &Checker{finished: map[int64]int{}}
}

// Instrument installs the checker on the scenario. It chains with any
// Hooks already present (theirs run first, so the checker observes the
// fully wrapped callbacks).
func (ck *Checker) Instrument(s *lab.Scenario) {
	prev := s.Hooks
	s.Hooks = func(c *cluster.Cluster) {
		if prev != nil {
			prev(c)
		}
		ck.attach(c)
	}
}

// attach wraps the cluster's callbacks with invariant checks. The
// wrapped originals always run afterwards.
func (ck *Checker) attach(c *cluster.Cluster) {
	ck.cl = c
	prevStarted := c.JobStarted
	c.JobStarted = func(j *job.Job) {
		ck.scan()
		if !j.Started {
			ck.violate("job %d reported started while not marked Started", j.ID)
		}
		if prevStarted != nil {
			prevStarted(j)
		}
	}
	prevDone := c.JobDone
	c.JobDone = func(j *job.Job) {
		ck.jobDone(j)
		if prevDone != nil {
			prevDone(j)
		}
	}
	prevSub := c.SubjobDone
	c.SubjobDone = func(n *cluster.Node, sj *job.Subjob) {
		ck.scan()
		if prevSub != nil {
			prevSub(n, sj)
		}
	}
	prevDown := c.NodeDown
	c.NodeDown = func(n *cluster.Node, lost *job.Subjob) {
		ck.scan()
		if n.Up() {
			ck.violate("node %d reported down while up", n.ID)
		}
		if lost != nil && lost.Range.Empty() {
			ck.violate("node %d lost an empty subjob", n.ID)
		}
		if prevDown != nil {
			prevDown(n, lost)
		}
	}
	prevUp := c.NodeUp
	c.NodeUp = func(n *cluster.Node) {
		ck.scan()
		if !n.Up() {
			ck.violate("node %d reported up while down", n.ID)
		}
		if prevUp != nil {
			prevUp(n)
		}
	}
}

// jobDone checks one job-completion report.
func (ck *Checker) jobDone(j *job.Job) {
	ck.scan()
	ck.finished[j.ID]++
	if n := ck.finished[j.ID]; n > 1 {
		ck.violate("job %d completed %d times", j.ID, n)
	}
	if !j.Finished {
		ck.violate("job %d reported done while not marked Finished", j.ID)
	}
	if j.Processed != j.Events() {
		ck.violate("job %d done with %d of %d events processed", j.ID, j.Processed, j.Events())
	}
	if j.Running != 0 {
		ck.violate("job %d done with %d subjobs still running", j.ID, j.Running)
	}
	if j.EndTime+timeSlack < j.Arrival {
		ck.violate("job %d ends at %v before its arrival %v", j.ID, j.EndTime, j.Arrival)
	}
}

// scan checks the instant-wide invariants: monotonic time, per-node
// cache bounds and node-state sanity.
func (ck *Checker) scan() {
	now := ck.cl.Engine().Now()
	if now+timeSlack < ck.lastTime {
		ck.violate("time went backwards: %v after %v", now, ck.lastTime)
	}
	if now > ck.lastTime {
		ck.lastTime = now
	}
	for _, n := range ck.cl.Nodes() {
		if used, capacity := n.Cache.Used(), n.Cache.Capacity(); used > capacity {
			ck.violate("node %d cache holds %d of %d events", n.ID, used, capacity)
		}
		if !n.Up() && n.Running() != nil {
			ck.violate("down node %d is executing %v", n.ID, n.Running())
		}
		if n.Decommissioned() && n.Up() {
			ck.violate("decommissioned node %d is up", n.ID)
		}
	}
}

func (ck *Checker) violate(format string, args ...any) {
	if len(ck.violations) >= maxReported {
		ck.dropped++
		return
	}
	ck.violations = append(ck.violations, fmt.Sprintf(format, args...))
}

// Verify asserts the end-of-run invariants and reports everything the
// live checks accumulated. It needs the result of the instrumented run.
func (ck *Checker) Verify(tb testing.TB, res lab.Result) {
	tb.Helper()
	if ck.cl == nil {
		tb.Fatal("simtest: Verify before the instrumented scenario ran (Hooks never fired)")
	}
	for _, v := range ck.violations {
		tb.Errorf("simtest: %s", v)
	}
	if ck.dropped > 0 {
		tb.Errorf("simtest: %d further violations suppressed", ck.dropped)
	}

	// Job conservation at the boundary: the collector's completion count
	// must equal the distinct jobs observed completing (each exactly
	// once, checked live), and nothing finishes that never arrived.
	if coll := res.Collector; coll != nil {
		if got, want := int64(len(ck.finished)), coll.Finished(); got != want {
			tb.Errorf("simtest: %d distinct jobs completed but collector counted %d", got, want)
		}
		if coll.Finished() > coll.Arrived() {
			tb.Errorf("simtest: %d jobs finished, only %d arrived", coll.Finished(), coll.Arrived())
		}
	}
	if ck.lastTime > res.SimTime+timeSlack {
		tb.Errorf("simtest: events observed at %v past the run's end %v", ck.lastTime, res.SimTime)
	}

	// Fault accounting consistency.
	st := res.Cluster
	if st.Repairs+st.Decommissions > st.Failures {
		tb.Errorf("simtest: repairs %d + decommissions %d exceed failures %d", st.Repairs, st.Decommissions, st.Failures)
	}
	if st.Failures == 0 && (st.EventsLost != 0 || st.Reexecutions != 0) {
		tb.Errorf("simtest: wasted work (%d events, %d re-executions) without failures", st.EventsLost, st.Reexecutions)
	}
	if st.Reexecutions > st.Dispatches {
		tb.Errorf("simtest: %d re-executions exceed %d dispatches", st.Reexecutions, st.Dispatches)
	}
	if st.EventsLost < 0 || st.Reexecutions < 0 {
		tb.Errorf("simtest: negative fault counters: %+v", st)
	}
	if res.Goodput < 0 || res.Goodput > 1 {
		tb.Errorf("simtest: goodput %v out of [0,1]", res.Goodput)
	}

	// Final node-state sanity: every job the run completed released its
	// node, and down nodes hold no work.
	for _, n := range ck.cl.Nodes() {
		if !n.Up() && n.Running() != nil {
			tb.Errorf("simtest: down node %d still executing %v at end of run", n.ID, n.Running())
		}
	}
}

// Run executes the scenario under the checker and verifies it: the
// one-line form for tests. The result keeps its Collector, like lab.Run.
func Run(tb testing.TB, s lab.Scenario) lab.Result {
	tb.Helper()
	ck := New()
	ck.Instrument(&s)
	res, err := lab.RunE(s)
	if err != nil {
		tb.Fatalf("simtest: %v", err)
	}
	ck.Verify(tb, res)
	return res
}

// CheckGridDeterminism executes the grid three ways — serially, on a
// parallel per-call pool, and on a shared long-lived pool — and asserts
// the three result sets are byte-identical: the lab's determinism
// contract, which stochastic extensions (node churn, inhomogeneous
// arrivals) must not erode. It returns the serial RunSet.
func CheckGridDeterminism(tb testing.TB, g lab.Grid) *lab.RunSet {
	tb.Helper()
	serial, err := g.Execute(lab.Options{Workers: 1})
	if err != nil {
		tb.Fatalf("simtest: serial execution: %v", err)
	}
	want := marshal(tb, serial.Results)
	parallel, err := g.Execute(lab.Options{Workers: 4})
	if err != nil {
		tb.Fatalf("simtest: parallel execution: %v", err)
	}
	if got := marshal(tb, parallel.Results); !bytes.Equal(got, want) {
		tb.Errorf("simtest: parallel grid differs from serial:\nserial: %s\nparallel: %s", want, got)
	}
	pool := lab.NewPool(4)
	defer pool.Close()
	shared, err := g.Execute(lab.Options{Pool: pool})
	if err != nil {
		tb.Fatalf("simtest: shared-pool execution: %v", err)
	}
	if got := marshal(tb, shared.Results); !bytes.Equal(got, want) {
		tb.Errorf("simtest: shared-pool grid differs from serial:\nserial: %s\nshared: %s", want, got)
	}
	return serial
}

func marshal(tb testing.TB, v any) []byte {
	tb.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}
