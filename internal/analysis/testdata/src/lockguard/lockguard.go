// Package lockguard is the fixture for guard inference: field→mutex
// guard sets are learned from majority usage, so the fixture encodes the
// heuristic's decision boundary — two locked accesses under one mutex
// and strictly more locked than unlocked accesses infer a guard; fewer
// infer nothing.
package lockguard

import "sync"

type store struct {
	mu   sync.Mutex
	m    map[string]int
	hits int
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.m[k]
}

func (s *store) put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = v
}

func (s *store) racyPeek(k string) int {
	return s.m[k] // want "store.m is guarded by store.mu"
}

// hits has exactly one locked access (in get): below the ≥2 evidence
// threshold, so this unlocked read infers nothing and stays silent.
func (s *store) hitCount() int {
	return s.hits
}

// dump's accesses count as locked via the caller-holds contract.
//
//physched:locked s.mu — snapshot taken inside the caller's critical section
func (s *store) dump() map[string]int {
	return s.m
}

// Accesses in a range body must tally once, with the body's state — not
// a second time under the loop-entry (unlocked) state via the range-head
// node. Regression: the duplicate unlocked tallies reported this locked
// write and could flip majority inference elsewhere.
func (s *store) fill(keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		s.m[k] = len(k)
		s.mu.Unlock()
	}
}

// --- package-level variables guarded by a package-level mutex ---

var (
	regMu    sync.Mutex
	registry = map[string]int{}
)

func register(k string, v int) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[k] = v
}

func unregister(k string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, k)
}

func lookup(k string) int {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[k]
}

func racyLookup(k string) int {
	return registry[k] // want "registry is guarded by regMu"
}

// Same range-head regression for the package-var tally path.
func fillRegistry(keys []string) {
	for _, k := range keys {
		regMu.Lock()
		registry[k] = len(k)
		regMu.Unlock()
	}
}

// sizeHint deliberately reads without the lock; the suppression hides
// the report (the access still counts against the majority).
func sizeHint() int {
	//physched:unguarded fixture: approximate size is fine lock-free
	return len(registry)
}

// maybeLocked holds regMu on one path only: the access is ambiguous and
// contributes to neither tally.
func maybeLocked(k string, c bool) int {
	if c {
		regMu.Lock()
		defer regMu.Unlock()
	}
	return registry[k]
}
