package lab

import (
	"bytes"
	"math/rand"
	"testing"

	"physched/internal/sched"
	"physched/internal/workload"
)

// TestReplayedWorkloadMatchesSynthetic verifies that running a recorded
// trace reproduces the synthetic run exactly — the property that makes
// cross-policy comparisons on one job stream meaningful.
func TestReplayedWorkloadMatchesSynthetic(t *testing.T) {
	p := smallParams()
	load := 0.5 * p.FarmMaxLoad()
	base := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, load)
	base.MeasureJobs = 150
	base.WarmupJobs = 30
	synthetic := Run(base)

	// Record the same stream (same seed+1, as the runner derives it).
	gen := workload.New(p, rand.New(rand.NewSource(base.Seed+1)), load)
	var buf bytes.Buffer
	if err := workload.Export(&buf, gen, 500); err != nil {
		t.Fatal(err)
	}
	rep, err := workload.NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := base
	replayed.Workload = rep
	got := Run(replayed)

	if got.AvgSpeedup != synthetic.AvgSpeedup || got.AvgWaiting != synthetic.AvgWaiting {
		t.Errorf("replay diverged: speedup %v vs %v, waiting %v vs %v",
			got.AvgSpeedup, synthetic.AvgSpeedup, got.AvgWaiting, synthetic.AvgWaiting)
	}
}

// TestReplayExhaustionEndsRun: a finite trace must end the simulation
// gracefully rather than hanging or panicking.
func TestReplayExhaustionEndsRun(t *testing.T) {
	p := smallParams()
	gen := workload.New(p, rand.New(rand.NewSource(3)), 0.5*p.FarmMaxLoad())
	var buf bytes.Buffer
	if err := workload.Export(&buf, gen, 40); err != nil {
		t.Fatal(err)
	}
	rep, err := workload.NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := policyScenario(func() sched.Policy { return sched.NewFarm() }, 1)
	s.Workload = rep
	s.WarmupJobs = 5
	s.MeasureJobs = 1000 // more than the trace holds
	res := Run(s)
	if res.Overloaded {
		t.Error("short trace flagged as overload")
	}
	if res.MeasuredJobs != 35 {
		t.Errorf("measured %d jobs, want 35 (40 minus 5 warmup)", res.MeasuredJobs)
	}
}
