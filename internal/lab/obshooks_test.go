package lab

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"physched/internal/trace"
)

// TestPoolHooksObserveTiming: with a single worker and an injected fake
// clock the hook observations are fully deterministic — queue waits grow
// by one task duration per position in the submission, and every run
// duration is exactly the clock advance the task performs.
func TestPoolHooksObserveTiming(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	var clk atomic.Int64
	clk.Store(100)
	var mu sync.Mutex
	var waits, runs []int64
	pool.SetHooks(&PoolHooks{
		Now: func() int64 { return clk.Load() },
		Wait: func(ns int64) {
			mu.Lock()
			waits = append(waits, ns)
			mu.Unlock()
		},
		Run: func(ns int64) {
			mu.Lock()
			runs = append(runs, ns)
			mu.Unlock()
		},
	})

	if err := pool.Run(context.Background(), 4, func(int) { clk.Add(7) }); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 4 || len(runs) != 4 {
		t.Fatalf("observed %d waits and %d runs, want 4 and 4", len(waits), len(runs))
	}
	for i, w := range waits {
		if want := int64(7 * i); w != want {
			t.Errorf("task %d queue wait = %d, want %d", i, w, want)
		}
	}
	for i, r := range runs {
		if r != 7 {
			t.Errorf("task %d run duration = %d, want 7", i, r)
		}
	}
}

// TestPoolHooksRemovable: SetHooks(nil) restores the unhooked path.
func TestPoolHooksRemovable(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	var calls atomic.Int64
	pool.SetHooks(&PoolHooks{
		Now:  func() int64 { return 1 },
		Wait: func(int64) { calls.Add(1) },
		Run:  func(int64) { calls.Add(1) },
	})
	pool.SetHooks(nil)
	if err := pool.Run(context.Background(), 3, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("removed hooks still fired %d times", calls.Load())
	}
}

// TestPoolHooksRequireAllFields: partial hooks are a wiring bug, caught
// at install time rather than as a nil-call panic on a worker.
func TestPoolHooksRequireAllFields(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SetHooks with a nil field did not panic")
		}
	}()
	pool.SetHooks(&PoolHooks{Now: func() int64 { return 0 }})
}

// countingCache wraps a map cache and counts traffic so tests can assert
// which cells touched it.
type countingCache struct {
	mu         sync.Mutex
	m          map[string]Result
	gets, puts int
}

func (c *countingCache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	r, ok := c.m[key]
	return r, ok
}

func (c *countingCache) Put(key string, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = r
}

// cellKey keys a cell by its grid coordinates — good enough for tests
// that re-execute the same grid.
func cellKey(c Cell) (string, bool) {
	return fmt.Sprintf("%d/%d/%d", c.Variant, c.LoadIdx, c.SeedIdx), true
}

// TestGridTraceBypassesCache is the trace↔cache isolation contract:
// a traced cell neither reads nor writes the result cache. Reading
// would let a warm cache skip the simulation the trace is supposed to
// witness; writing would store bytes produced under the sampler's extra
// timer events, poisoning the content-addressed store that the
// byte-identity contract replays from.
func TestGridTraceBypassesCache(t *testing.T) {
	grid := testGrid(3)
	cache := &countingCache{m: map[string]Result{}}

	// Warm the cache untraced and snapshot the canonical bytes.
	first, err := grid.Execute(Options{Workers: 1, Cache: cache, Keys: cellKey})
	if err != nil {
		t.Fatal(err)
	}
	wantPuts := len(first.Results)
	if cache.puts != wantPuts {
		t.Fatalf("warm-up stored %d results, want %d", cache.puts, wantPuts)
	}
	canonical := marshal(t, first.Results)

	// Re-execute with cell 0 traced: it must simulate (recorder fills)
	// and must not touch the cache in either direction.
	rec := trace.New(0, nil)
	traced, err := grid.Execute(Options{Workers: 1, Cache: cache, Keys: cellKey,
		Trace: func(c Cell) *trace.Recorder {
			if c.Variant == 0 && c.LoadIdx == 0 && c.SeedIdx == 0 {
				return rec
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("traced cell recorded no events — cache hit skipped the simulation?")
	}
	if traced.CacheHits != len(traced.Results)-1 {
		t.Errorf("traced run got %d cache hits, want %d (all but the traced cell)",
			traced.CacheHits, len(traced.Results)-1)
	}
	if cache.puts != wantPuts {
		t.Errorf("traced run wrote %d extra cache entries", cache.puts-wantPuts)
	}

	// A final untraced run must replay the original bytes — the traced
	// run poisoned nothing.
	third, err := grid.Execute(Options{Workers: 1, Cache: cache, Keys: cellKey})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != len(third.Results) {
		t.Errorf("final run got %d cache hits, want %d", third.CacheHits, len(third.Results))
	}
	if got := marshal(t, third.Results); string(got) != string(canonical) {
		t.Errorf("cache bytes changed after a traced run:\nbefore: %s\nafter:  %s", canonical, got)
	}
}

// TestRecorderDroppedCounts: the capped recorder reports exactly how
// many events it discarded, so trace exports can mark truncation.
func TestRecorderDroppedCounts(t *testing.T) {
	rec := trace.New(2, nil)
	for i := 0; i < 5; i++ {
		rec.Add(trace.Event{Time: float64(i), Kind: trace.Sample})
	}
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	if rec.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", rec.Dropped())
	}
}
