// Package resultcache is a content-addressed store of simulation results:
// keys are hex SHA-256 hashes of canonical spec encodings (internal/spec)
// and values are lab.Result summaries or lab.Aggregate replica summaries
// in the pinned JSON wire format. A Store plugs into lab.Options.Cache so
// grid execution skips every cell already simulated anywhere under the
// same key, and backs the physchedd service's by-hash result endpoints.
//
// Three implementations compose: Memory (in-process map), Disk (one JSON
// file per entry, written atomically) and Layered (first hit wins, upper
// layers back-filled). Open builds the conventional memory-over-disk
// stack.
package resultcache

import (
	"sync"

	"physched/internal/lab"
)

// Store is a content-addressed result store. Implementations must be safe
// for concurrent use; Get/Put satisfy lab.ResultCache.
type Store interface {
	lab.ResultCache
	// GetAggregate and PutAggregate store replica aggregates under their
	// own keys (see spec.Grid.AggregateKey).
	GetAggregate(key string) (lab.Aggregate, bool)
	PutAggregate(key string, a lab.Aggregate)
}

// Memory is an in-process Store.
type Memory struct {
	mu         sync.RWMutex
	results    map[string]lab.Result
	aggregates map[string]lab.Aggregate
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{
		results:    map[string]lab.Result{},
		aggregates: map[string]lab.Aggregate{},
	}
}

// Get returns the cached result for key.
func (m *Memory) Get(key string) (lab.Result, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.results[key]
	return r, ok
}

// Put stores r under key.
func (m *Memory) Put(key string, r lab.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.results[key] = r
}

// GetAggregate returns the cached aggregate for key.
func (m *Memory) GetAggregate(key string) (lab.Aggregate, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.aggregates[key]
	return a, ok
}

// PutAggregate stores a under key.
func (m *Memory) PutAggregate(key string, a lab.Aggregate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aggregates[key] = a
}

// Len reports the number of cached results.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.results)
}

// Layered composes stores: Get consults them in order and back-fills
// every store above the one that hit; Put writes through to all.
type Layered struct {
	layers []Store
}

// NewLayered stacks the given stores, fastest first.
func NewLayered(layers ...Store) *Layered { return &Layered{layers: layers} }

// Get returns the first hit, copying it into the layers consulted before.
func (l *Layered) Get(key string) (lab.Result, bool) {
	for i, s := range l.layers {
		if r, ok := s.Get(key); ok {
			for _, upper := range l.layers[:i] {
				upper.Put(key, r)
			}
			return r, true
		}
	}
	return lab.Result{}, false
}

// Put writes through to every layer.
func (l *Layered) Put(key string, r lab.Result) {
	for _, s := range l.layers {
		s.Put(key, r)
	}
}

// GetAggregate returns the first hit, back-filling upper layers.
func (l *Layered) GetAggregate(key string) (lab.Aggregate, bool) {
	for i, s := range l.layers {
		if a, ok := s.GetAggregate(key); ok {
			for _, upper := range l.layers[:i] {
				upper.PutAggregate(key, a)
			}
			return a, true
		}
	}
	return lab.Aggregate{}, false
}

// PutAggregate writes through to every layer.
func (l *Layered) PutAggregate(key string, a lab.Aggregate) {
	for _, s := range l.layers {
		s.PutAggregate(key, a)
	}
}

// Open builds the conventional cache stack: memory over a disk store at
// dir, or memory only when dir is empty.
func Open(dir string) (Store, error) {
	if dir == "" {
		return NewMemory(), nil
	}
	disk, err := NewDisk(dir)
	if err != nil {
		return nil, err
	}
	return NewLayered(NewMemory(), disk), nil
}
