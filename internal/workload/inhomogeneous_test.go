package workload

import (
	"math/rand"
	"testing"

	"physched/internal/model"
)

// TestInhomogeneousDayNightRate checks the realised arrival rate against
// the day/night rate function: day-half windows (rising sine) must see
// more arrivals than night-half windows, and the overall mean must match.
func TestInhomogeneousDayNightRate(t *testing.T) {
	p := model.PaperCalibrated()
	const mean, swing = 2.0, 0.8
	g := NewInhomogeneous(p, rand.New(rand.NewSource(1)), DayNight(mean, swing), mean*(1+swing))
	const days = 200
	var day, night, total int
	for {
		j := g.Next()
		if j.Arrival > days*model.Day {
			break
		}
		total++
		if phase := j.Arrival - model.Day*float64(int(j.Arrival/model.Day)); phase < model.Day/2 {
			day++ // sin ≥ 0: above-mean rate
		} else {
			night++
		}
	}
	gotMean := float64(total) / (days * 24)
	if gotMean < 0.9*mean || gotMean > 1.1*mean {
		t.Errorf("realised mean rate %.2f j/h, want ≈%.1f", gotMean, mean)
	}
	// With swing 0.8 the expected day:night ratio is (1+2·0.8/π):(1−2·0.8/π) ≈ 3.1.
	ratio := float64(day) / float64(night)
	if ratio < 2.3 || ratio > 4.2 {
		t.Errorf("day/night arrival ratio %.2f, want ≈3.1", ratio)
	}
}

// TestInhomogeneousDeterministic: same seed, same stream.
func TestInhomogeneousDeterministic(t *testing.T) {
	p := model.PaperCalibrated()
	mk := func() *Generator {
		return NewInhomogeneous(p, rand.New(rand.NewSource(5)), DayNight(1.5, 0.5), 3)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ja, jb := a.Next(), b.Next()
		if ja.Arrival != jb.Arrival || ja.Range != jb.Range {
			t.Fatalf("job %d differs: %+v vs %+v", i, ja, jb)
		}
	}
}

// TestInhomogeneousJobShapesMatchHomogeneous: thinning must only change
// arrival times, not the size/start-point distributions.
func TestInhomogeneousJobShapesMatchHomogeneous(t *testing.T) {
	p := model.PaperCalibrated()
	flat := func(float64) float64 { return 1.5 }
	g := NewInhomogeneous(p, rand.New(rand.NewSource(2)), flat, 1.5)
	var sum float64
	const n = 3000
	for i := 0; i < n; i++ {
		sum += float64(g.Next().Events())
	}
	meanEvents := sum / n
	want := float64(p.MeanJobEvents)
	if meanEvents < 0.93*want || meanEvents > 1.07*want {
		t.Errorf("mean job size %.0f, want ≈%.0f", meanEvents, want)
	}
}
