package job

import "physched/internal/dataspace"

// arenaChunk is the number of objects per arena chunk. Chunks are
// allocated with fixed capacity and only ever appended to, so the address
// of an object never changes once handed out.
const arenaChunk = 256

// Arena owns the Job and Subjob storage of a simulation run. Objects are
// allocated out of fixed-capacity chunks — one allocation per chunk
// instead of one per object — and are index-addressed: every Job and
// Subjob has a dense arena index (Subjob.ID; jobs are counted in
// allocation order), resolvable through JobAt/SubjobAt. Pointers handed
// out stay valid for the arena's lifetime; there is no intra-run
// recycling, so a stale handle can never observe an unrelated object.
// Reset drops all objects (invalidating every outstanding pointer and
// index) while keeping chunk storage for the next run.
//
// The zero Arena is ready for use.
type Arena struct {
	jobs [][]Job
	subs [][]Subjob
}

// NewJob allocates a zeroed Job. The caller assigns its fields (including
// the workload-assigned ID, which is independent of the arena index).
//
//physched:hotpath
func (a *Arena) NewJob() *Job {
	if n := len(a.jobs); n == 0 || len(a.jobs[n-1]) == cap(a.jobs[n-1]) {
		a.jobs = append(a.jobs, make([]Job, 0, arenaChunk))
	}
	ch := &a.jobs[len(a.jobs)-1]
	*ch = append(*ch, Job{})
	return &(*ch)[len(*ch)-1]
}

// NumJobs returns the number of jobs allocated.
func (a *Arena) NumJobs() int {
	if len(a.jobs) == 0 {
		return 0
	}
	return (len(a.jobs)-1)*arenaChunk + len(a.jobs[len(a.jobs)-1])
}

// JobAt returns the i-th allocated job.
//
//physched:hotpath
func (a *Arena) JobAt(i int) *Job { return &a.jobs[i/arenaChunk][i%arenaChunk] }

// NewSubjob allocates a subjob of j covering r, coming from origin's
// queue (-1 for the global no-cached-data queue). Flag fields start
// false; set them on the returned subjob.
//
//physched:hotpath
func (a *Arena) NewSubjob(j *Job, r dataspace.Interval, origin int) *Subjob {
	sj := a.allocSubjob()
	sj.Job = j
	sj.Range = r
	sj.Origin = origin
	return sj
}

// CloneSubjob allocates a subjob inheriting sj's job, flags and origin
// but covering r — the shape of every preemption/split/crash remainder.
//
//physched:hotpath
func (a *Arena) CloneSubjob(sj *Subjob, r dataspace.Interval) *Subjob {
	out := a.allocSubjob()
	out.Job = sj.Job
	out.Range = r
	out.Yielding = sj.Yielding
	out.NoCacheQueue = sj.NoCacheQueue
	out.Origin = sj.Origin
	return out
}

//physched:hotpath
func (a *Arena) allocSubjob() *Subjob {
	id := a.NumSubjobs()
	if n := len(a.subs); n == 0 || len(a.subs[n-1]) == cap(a.subs[n-1]) {
		a.subs = append(a.subs, make([]Subjob, 0, arenaChunk))
	}
	ch := &a.subs[len(a.subs)-1]
	*ch = append(*ch, Subjob{ID: int32(id)})
	return &(*ch)[len(*ch)-1]
}

// NumSubjobs returns the number of subjobs allocated.
func (a *Arena) NumSubjobs() int {
	if len(a.subs) == 0 {
		return 0
	}
	return (len(a.subs)-1)*arenaChunk + len(a.subs[len(a.subs)-1])
}

// SubjobAt returns the subjob with arena index i (== its ID).
func (a *Arena) SubjobAt(i int) *Subjob { return &a.subs[i/arenaChunk][i%arenaChunk] }

// Reset drops every object, invalidating all outstanding pointers and
// indices, and keeps one chunk of each kind for reuse.
func (a *Arena) Reset() {
	if len(a.jobs) > 0 {
		a.jobs[0] = a.jobs[0][:0]
		a.jobs = a.jobs[:1]
	}
	if len(a.subs) > 0 {
		a.subs[0] = a.subs[0][:0]
		a.subs = a.subs[:1]
	}
}
