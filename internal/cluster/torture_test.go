package cluster

import (
	"math/rand"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

// TestTortureRandomOperations drives the cluster with random policy-like
// behaviour — dispatches, preemptions, in-place splits, bursts of idle and
// busy time — and asserts the conservation invariants every scheduling
// policy relies on:
//
//   - every job finishes with Processed == Events, exactly once
//   - a node never runs two subjobs
//   - remainder subjobs never overlap processed prefixes
//   - cache occupancy never exceeds capacity
//   - tape stream accounting stays balanced
func TestTortureRandomOperations(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Caching: true},
		{Caching: true, RemoteReads: true},
		{Caching: true, RemoteReads: true, ReplicateAfter: 2},
	} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			tortureRun(t, cfg)
		})
	}
}

// String gives sub-test names for configs.
func (c Config) String() string {
	s := "plain"
	if c.Caching {
		s = "caching"
	}
	if c.RemoteReads {
		s += "+remote"
	}
	if c.ReplicateAfter > 0 {
		s += "+replication"
	}
	return s
}

func tortureRun(t *testing.T, cfg Config) {
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.MeanJobEvents = 500
	p.DataspaceBytes = 30 * model.GB // 50k events
	p.CacheBytes = 3 * model.GB      // 5k events per node
	eng := sim.New(99)
	c := New(eng, p, cfg)

	rng := rand.New(rand.NewSource(42))
	finished := map[int64]int{}
	c.JobDone = func(j *job.Job) {
		finished[j.ID]++
		if j.Processed != j.Events() {
			t.Fatalf("job %d finished with %d of %d events", j.ID, j.Processed, j.Events())
		}
	}

	// pending holds subjobs awaiting a node (the "policy queue").
	var pending []*job.Subjob
	var all []*job.Job
	nextID := int64(0)

	c.SubjobDone = func(n *Node, sj *job.Subjob) {
		// Randomly dispatch pending work to the freed node.
		if len(pending) > 0 && rng.Intn(4) > 0 {
			i := rng.Intn(len(pending))
			sub := pending[i]
			pending = append(pending[:i], pending[i+1:]...)
			c.Dispatch(n, sub)
		}
	}

	newJob := func() {
		start := rng.Int63n(45_000)
		events := 50 + rng.Int63n(2_000)
		j := &job.Job{ID: nextID, Arrival: eng.Now(), ScheduledAt: eng.Now(),
			Range: dataspace.Iv(start, start+events)}
		nextID++
		all = append(all, j)
		// Split into 1-3 subjobs.
		parts := job.SplitEqual(j.Range, 1+rng.Intn(3), 10)
		for _, sub := range job.SplitForJob(j, parts) {
			pending = append(pending, sub)
		}
	}

	step := func() {
		switch rng.Intn(10) {
		case 0, 1, 2:
			newJob()
		case 3, 4, 5, 6:
			// Dispatch pending work to idle nodes.
			for _, n := range c.IdleNodes() {
				if len(pending) == 0 {
					break
				}
				sub := pending[0]
				pending = pending[1:]
				c.Dispatch(n, sub)
			}
		case 7:
			// Preempt a random busy node.
			busy := busyNodes(c)
			if len(busy) > 0 {
				n := busy[rng.Intn(len(busy))]
				if rem := c.Preempt(n); rem != nil {
					pending = append(pending, rem)
				}
			}
		case 8:
			// Split a random running subjob.
			busy := busyNodes(c)
			if len(busy) > 0 {
				n := busy[rng.Intn(len(busy))]
				if tail := c.SplitRunning(n, c.RemainingEvents(n)/2, 10); tail != nil {
					pending = append(pending, tail)
				}
			}
		case 9:
			// Let time pass.
			eng.RunUntil(eng.Now() + rng.Float64()*500)
		}
		// Invariants checked on every step.
		for _, n := range c.Nodes() {
			if n.Cache.Used() > n.Cache.Capacity() {
				t.Fatal("cache over capacity")
			}
		}
	}

	for i := 0; i < 3_000; i++ {
		step()
	}
	// Drain: dispatch everything and run to completion.
	for len(pending) > 0 || anyBusy(c) {
		for _, n := range c.IdleNodes() {
			if len(pending) == 0 {
				break
			}
			sub := pending[0]
			pending = pending[1:]
			c.Dispatch(n, sub)
		}
		if !eng.Step() && len(pending) > 0 && len(c.IdleNodes()) == 0 {
			t.Fatal("deadlock: pending work but no events and no idle nodes")
		}
	}

	for _, j := range all {
		if !j.Finished {
			t.Fatalf("job %d never finished (processed %d/%d)", j.ID, j.Processed, j.Events())
		}
		if finished[j.ID] != 1 {
			t.Fatalf("job %d finished %d times", j.ID, finished[j.ID])
		}
	}
	if len(all) < 100 {
		t.Fatalf("torture generated only %d jobs; raise step count", len(all))
	}
}

func busyNodes(c *Cluster) []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if !n.Idle() {
			out = append(out, n)
		}
	}
	return out
}

func anyBusy(c *Cluster) bool { return len(busyNodes(c)) > 0 }
