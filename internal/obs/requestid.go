package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader is the correlation header the service reads and
// echoes: a client that supplies X-Request-Id sees the same value in
// the response and in every log line the request produces; a client
// that omits it gets a generated one back, so the response alone is
// enough to grep the server's logs for the request's whole lifecycle.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen caps accepted client-supplied IDs; anything longer is
// truncated rather than rejected (correlation is best-effort, not a
// validation surface).
const maxRequestIDLen = 64

// NewRequestID returns a random 16-hex-character correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // the platform RNG is gone; nothing sensible to serve
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID makes a client-supplied correlation ID safe to echo
// and log: control characters and quotes (log-line and header injection
// vectors) are dropped, and the result is truncated to maxRequestIDLen.
// An ID that sanitizes to nothing reports ok == false and the caller
// generates a fresh one.
func SanitizeRequestID(id string) (clean string, ok bool) {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= 0x20 || c == 0x7f || c == '"' || c == '\\' {
			continue
		}
		out = append(out, c)
	}
	return string(out), len(out) > 0
}

// ridCtxKey scopes the context request-ID entry to this package.
type ridCtxKey struct{}

// WithRequestID stores the request's correlation ID in ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridCtxKey{}, id)
}

// RequestIDFrom returns the correlation ID stored by WithRequestID, or
// "" outside a request (job goroutines keep the ID on the job record
// instead).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}
