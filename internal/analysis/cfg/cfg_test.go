package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of func f and returns its CFG. src is the
// function body without braces.
func build(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body, nil), fset
}

// kinds returns the ordered kinds of live blocks.
func kinds(g *CFG) []BlockKind {
	var out []BlockKind
	for _, b := range g.Blocks {
		if b.Live {
			out = append(out, b.Kind)
		}
	}
	return out
}

func hasKind(g *CFG, k BlockKind, liveOnly bool) bool {
	for _, b := range g.Blocks {
		if b.Kind == k && (!liveOnly || b.Live) {
			return true
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, "x := 1\n_ = x")
	if len(g.Blocks) != 1 || g.Blocks[0].Kind != KindBody {
		t.Fatalf("want single body block, got:\n%s", g.Format(nil))
	}
	if len(g.Blocks[0].Nodes) != 2 {
		t.Fatalf("want 2 nodes, got %d", len(g.Blocks[0].Nodes))
	}
	exits := g.Exits()
	if len(exits) != 1 || exits[0].Kind != KindBody {
		t.Fatalf("want fall-off exit, got %v", exits)
	}
}

func TestIfElseShape(t *testing.T) {
	g, _ := build(t, `
if cond() {
	a()
} else {
	b()
}
c()`)
	want := []BlockKind{KindBody, KindIfThen, KindIfDone, KindIfElse}
	got := kinds(g)
	if len(got) != len(want) {
		t.Fatalf("live kinds %v, want %v\n%s", got, want, g.Format(nil))
	}
	// Entry branches to then and else; done has two preds and holds c().
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs %d, want 2", len(entry.Succs))
	}
	var done *Block
	for _, b := range g.Blocks {
		if b.Kind == KindIfDone {
			done = b
		}
	}
	if done == nil || len(done.Nodes) != 1 {
		t.Fatalf("if-done should hold the trailing call:\n%s", g.Format(nil))
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g, _ := build(t, "if cond() {\n\ta()\n}\nb()")
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs %d, want 2 (then, done)", len(entry.Succs))
	}
	if hasKind(g, KindIfElse, false) {
		t.Fatal("unexpected else block")
	}
}

func TestForLoopCycleAndExits(t *testing.T) {
	g, _ := build(t, `
for i := 0; i < 10; i++ {
	work(i)
}
after()`)
	cyc := g.InCycle()
	for _, b := range g.Blocks {
		inLoop := b.Kind == KindForLoop || b.Kind == KindForBody || b.Kind == KindForPost
		if cyc[b.Index] != inLoop {
			t.Errorf("block %d (%s): InCycle=%v, want %v", b.Index, b.Kind, cyc[b.Index], inLoop)
		}
	}
	exits := g.Exits()
	if len(exits) != 1 || exits[0].Kind != KindForDone {
		t.Fatalf("want single for-done exit, got %d:\n%s", len(exits), g.Format(nil))
	}
}

func TestInfiniteForHasNoExit(t *testing.T) {
	g, _ := build(t, "for {\n\twork()\n}")
	if n := len(g.Exits()); n != 0 {
		t.Fatalf("infinite loop should have no exits, got %d:\n%s", n, g.Format(nil))
	}
	// The done block exists but is dead.
	for _, b := range g.Blocks {
		if b.Kind == KindForDone && b.Live {
			t.Fatal("for-done of an infinite loop must be dead")
		}
	}
}

func TestBreakAndContinue(t *testing.T) {
	g, _ := build(t, `
for i := 0; i < 10; i++ {
	if skip(i) {
		continue
	}
	if stop(i) {
		break
	}
	work(i)
}`)
	// continue targets the post block, break the done block; both live.
	var post, done *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case KindForPost:
			post = b
		case KindForDone:
			done = b
		}
	}
	if post == nil || !post.Live || done == nil || !done.Live {
		t.Fatalf("post/done missing or dead:\n%s", g.Format(nil))
	}
	if preds(g, post) < 2 {
		t.Errorf("post should be reached from body fall-through and continue")
	}
	if preds(g, done) < 2 {
		t.Errorf("done should be reached from loop cond and break")
	}
}

func preds(g *CFG, target *Block) int {
	n := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == target {
				n++
			}
		}
	}
	return n
}

func TestRangeShape(t *testing.T) {
	g, _ := build(t, "for _, v := range xs {\n\tuse(v)\n}\nafter()")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == KindRangeLoop {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head must branch to body and done:\n%s", g.Format(nil))
	}
	cyc := g.InCycle()
	for _, b := range g.Blocks {
		inLoop := b.Kind == KindRangeLoop || b.Kind == KindRangeBody
		if cyc[b.Index] != inLoop {
			t.Errorf("block %d (%s): InCycle=%v, want %v", b.Index, b.Kind, cyc[b.Index], inLoop)
		}
	}
}

func TestSwitchWithDefaultAndFallthrough(t *testing.T) {
	g, _ := build(t, `
switch x() {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
after()`)
	entry := g.Blocks[0]
	if len(entry.Succs) != 3 {
		t.Fatalf("switch head succs %d, want 3 (one per clause, no done edge with default)", len(entry.Succs))
	}
	// The fallthrough edge makes case-2's body reachable from case-1's.
	var caseBlocks []*Block
	for _, b := range g.Blocks {
		if b.Kind == KindSwitchCaseBody {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 3 {
		t.Fatalf("want 3 case bodies, got %d", len(caseBlocks))
	}
	if preds(g, caseBlocks[1]) != 2 {
		t.Errorf("case 2 body preds = %d, want 2 (head + fallthrough)", preds(g, caseBlocks[1]))
	}
}

func TestSwitchWithoutDefaultEdgesToDone(t *testing.T) {
	g, _ := build(t, "switch x() {\ncase 1:\n\ta()\n}\nafter()")
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("head succs %d, want 2 (case body + done)", len(entry.Succs))
	}
}

func TestLabeledBreakFromSelect(t *testing.T) {
	g, _ := build(t, `
loop:
	for {
		select {
		case <-ch1:
			work()
		case <-ch2:
			break loop
		}
	}
after()`)
	// `break loop` must escape the select AND the for: the for-done block
	// is live and reaches after().
	var forDone *Block
	for _, b := range g.Blocks {
		if b.Kind == KindForDone {
			forDone = b
		}
	}
	if forDone == nil || !forDone.Live {
		t.Fatalf("break loop did not reach the for-done block:\n%s", g.Format(nil))
	}
	if len(forDone.Nodes) == 0 {
		t.Fatalf("for-done should hold after():\n%s", g.Format(nil))
	}
	// An unlabeled break would land on select-done, which then loops.
	cyc := g.InCycle()
	for _, b := range g.Blocks {
		if b.Kind == KindSelectCaseBody && b.Live {
			// The work() case loops; the break-loop case does not.
			hasBreak := false
			for _, n := range b.Nodes {
				if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
					hasBreak = true
				}
			}
			if hasBreak && cyc[b.Index] {
				t.Errorf("break-loop case body should not be on the cycle")
			}
			if !hasBreak && !cyc[b.Index] {
				t.Errorf("looping case body should be on the cycle")
			}
		}
	}
}

func TestGotoOutOfLoop(t *testing.T) {
	g, _ := build(t, `
for {
	if done() {
		goto out
	}
	work()
}
out:
	cleanup()`)
	// The label block is live (reached by the goto) and is an exit path.
	var lbl *Block
	for _, b := range g.Blocks {
		if b.Kind == KindLabel {
			lbl = b
		}
	}
	if lbl == nil || !lbl.Live {
		t.Fatalf("label block missing or dead:\n%s", g.Format(nil))
	}
	exits := g.Exits()
	if len(exits) != 1 || exits[0].Kind != KindLabel {
		t.Fatalf("want the label block as sole exit, got %d exits:\n%s", len(exits), g.Format(nil))
	}
}

func TestGotoIntoLoopMakesCycle(t *testing.T) {
	g, _ := build(t, `
	goto mid
	for {
	mid:
		work()
	}`)
	// goto-built entry into the loop: the label block lies on a cycle.
	cyc := g.InCycle()
	found := false
	for _, b := range g.Blocks {
		if b.Kind == KindLabel && b.Live {
			found = true
			if !cyc[b.Index] {
				t.Errorf("label inside loop should be on a cycle:\n%s", g.Format(nil))
			}
		}
	}
	if !found {
		t.Fatalf("no live label block:\n%s", g.Format(nil))
	}
}

func TestBackwardGotoMakesCycle(t *testing.T) {
	g, _ := build(t, "again:\n\twork()\n\tgoto again")
	cyc := g.InCycle()
	anyCycle := false
	for i := range cyc {
		if cyc[i] {
			anyCycle = true
		}
	}
	if !anyCycle {
		t.Fatalf("backward goto should create a cycle:\n%s", g.Format(nil))
	}
	if n := len(g.Exits()); n != 0 {
		t.Fatalf("goto-loop without escape should have no exits, got %d", n)
	}
}

func TestDeferInBranchStaysInItsBlock(t *testing.T) {
	g, _ := build(t, `
if cond() {
	defer cleanup()
	work()
}
after()`)
	// The defer is a plain node of the then-block — no extra blocks, no
	// edges; flow sensitivity over defers is the analyzers' job.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				if b.Kind != KindIfThen {
					t.Fatalf("defer landed in %s, want IfThen:\n%s", b.Kind, g.Format(nil))
				}
				return
			}
		}
	}
	t.Fatalf("defer node not found:\n%s", g.Format(nil))
}

func TestPanicOnlyPath(t *testing.T) {
	g, _ := build(t, `panic("boom")`)
	if !hasKind(g, KindPanic, true) {
		t.Fatalf("want a live panic block:\n%s", g.Format(nil))
	}
	if n := len(g.Exits()); n != 0 {
		t.Fatalf("panic-only function should have no normal exits, got %d:\n%s", n, g.Format(nil))
	}
}

func TestPanicInBranchLeavesOtherExit(t *testing.T) {
	g, _ := build(t, `
if bad() {
	panic("boom")
}
ok()`)
	exits := g.Exits()
	if len(exits) != 1 || exits[0].Kind != KindIfDone {
		t.Fatalf("want single fall-off exit via if-done, got %d:\n%s", len(exits), g.Format(nil))
	}
	if !hasKind(g, KindPanic, true) {
		t.Fatalf("panic block missing:\n%s", g.Format(nil))
	}
}

func TestReturnExits(t *testing.T) {
	g, _ := build(t, `
if cond() {
	return
}
work()`)
	exits := g.Exits()
	if len(exits) != 2 {
		t.Fatalf("want 2 exits (return + fall-off), got %d:\n%s", len(exits), g.Format(nil))
	}
	seenReturn := false
	for _, e := range exits {
		if e.Kind == KindReturn {
			seenReturn = true
		}
	}
	if !seenReturn {
		t.Fatalf("no KindReturn exit:\n%s", g.Format(nil))
	}
}

func TestCodeAfterReturnIsDead(t *testing.T) {
	g, _ := build(t, "return\nwork()")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" && b.Live {
						t.Fatalf("work() after return must be dead:\n%s", g.Format(nil))
					}
				}
			}
		}
	}
}

func TestEmptySelectHasNoExit(t *testing.T) {
	g, _ := build(t, "select {}\nafter()")
	// select{} blocks forever: head has no successors, after() is dead.
	if n := len(g.Exits()); n != 0 {
		t.Fatalf("select{} should block all exits, got %d:\n%s", n, g.Format(nil))
	}
}

func TestSelectWithDefaultFallsThrough(t *testing.T) {
	g, _ := build(t, `
select {
case <-ch:
	a()
default:
	b()
}
after()`)
	exits := g.Exits()
	if len(exits) != 1 || exits[0].Kind != KindSelectDone {
		t.Fatalf("want select-done fall-off exit:\n%s", g.Format(nil))
	}
}

func TestTypeSwitchShape(t *testing.T) {
	g, _ := build(t, `
switch v := x.(type) {
case int:
	useInt(v)
case string:
	useString(v)
}
after()`)
	entry := g.Blocks[0]
	if len(entry.Succs) != 3 {
		t.Fatalf("type-switch head succs %d, want 3 (2 cases + done)", len(entry.Succs))
	}
}

func TestCustomMayReturn(t *testing.T) {
	fatal := func(call *ast.CallExpr) bool {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "fatalf" {
			return false
		}
		return true
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\nfunc f() {\n\tfatalf()\n\tafter()\n}", 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	g := New(fn.Body, fatal)
	if !hasKind(g, KindPanic, true) {
		t.Fatalf("fatalf() should terminate its block:\n%s", g.Format(fset))
	}
	if n := len(g.Exits()); n != 0 {
		t.Fatalf("nothing should fall off the end, got %d exits", n)
	}
}

func TestFormatMentionsKindsAndSuccs(t *testing.T) {
	g, fset := build(t, "if cond() {\n\ta()\n}")
	out := g.Format(fset)
	for _, needle := range []string{"# Body", "# IfThen", "# IfDone", "succs:"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Format output missing %q:\n%s", needle, out)
		}
	}
}
