package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"physched/internal/dataspace"
	"physched/internal/job"
)

// JobRecord is the serialised form of one job of a workload trace: arrival
// time in seconds and the event range. Traces let a study re-run the exact
// same job stream against different policies or parameters, and let real
// accounting logs from a production cluster drive the simulator.
type JobRecord struct {
	Arrival float64 `json:"arrival"`
	Start   int64   `json:"start"`
	End     int64   `json:"end"`
}

// Source yields a stream of jobs; both the synthetic Generator and Replay
// implement it.
type Source interface {
	// Next returns the next job of the stream, or nil when exhausted.
	Next() *job.Job
}

// Next satisfies Source (the synthetic generator never exhausts).
var _ Source = (*Generator)(nil)

// Export writes the next n jobs of src to w as JSON Lines.
func Export(w io.Writer, src Source, n int) error {
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		j := src.Next()
		if j == nil {
			return nil
		}
		rec := JobRecord{Arrival: j.Arrival, Start: j.Range.Start, End: j.Range.End}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: exporting job %d: %w", i, err)
		}
	}
	return nil
}

// Replay yields jobs from a recorded trace.
type Replay struct {
	records []JobRecord
	next    int
	arena   job.Arena
}

// NewReplay parses a JSONL trace written by Export. Records must be in
// non-decreasing arrival order and have non-empty ranges.
func NewReplay(r io.Reader) (*Replay, error) {
	dec := json.NewDecoder(r)
	var records []JobRecord
	var last float64
	for dec.More() {
		var rec JobRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("workload: decoding record %d: %w", len(records), err)
		}
		if rec.Arrival < last {
			return nil, fmt.Errorf("workload: record %d: arrivals must be non-decreasing", len(records))
		}
		if rec.End <= rec.Start {
			return nil, fmt.Errorf("workload: record %d: empty range [%d,%d)", len(records), rec.Start, rec.End)
		}
		last = rec.Arrival
		records = append(records, rec)
	}
	return &Replay{records: records}, nil
}

// Len returns the number of jobs in the trace.
func (r *Replay) Len() int { return len(r.records) }

// Next returns the next job of the trace, or nil when exhausted.
func (r *Replay) Next() *job.Job {
	if r.next >= len(r.records) {
		return nil
	}
	rec := r.records[r.next]
	j := r.arena.NewJob()
	j.ID = int64(r.next)
	j.Arrival = rec.Arrival
	j.ScheduledAt = rec.Arrival
	j.Range = dataspace.Iv(rec.Start, rec.End)
	r.next++
	return j
}

// Rewind restarts the trace from the beginning. Jobs returned after a
// rewind are fresh values, so a second simulation sees clean state.
func (r *Replay) Rewind() { r.next = 0 }
