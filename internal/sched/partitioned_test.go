package sched

import (
	"testing"

	"physched/internal/dataspace"
	"physched/internal/model"
)

func TestPartitionedSplitsAtBoundaries(t *testing.T) {
	pol := NewPartitioned()
	h := newHarness(t, pol, nil)
	total := h.c.Params().TotalEvents()
	third := total / 3
	// A job straddling the node-0/node-1 boundary must occupy both nodes.
	j := h.submit(dataspace.Iv(third-500, third+500))
	if h.c.Node(0).Idle() || h.c.Node(1).Idle() {
		t.Fatal("both owner nodes should be busy")
	}
	if !h.c.Node(2).Idle() {
		t.Fatal("node 2 owns none of the job's data")
	}
	r0 := h.c.Node(0).Running()
	if r0.Range.End != third {
		t.Errorf("node 0 piece ends at %d, want boundary %d", r0.Range.End, third)
	}
	h.eng.Run()
	if !j.Finished || j.Processed != 1000 {
		t.Fatalf("job incomplete: %+v", j)
	}
}

func TestPartitionedOwnership(t *testing.T) {
	pol := NewPartitioned()
	h := newHarness(t, pol, nil)
	total := h.c.Params().TotalEvents()
	if got := pol.owner(0); got != 0 {
		t.Errorf("owner(0) = %d", got)
	}
	if got := pol.owner(total - 1); got != 2 {
		t.Errorf("owner(last) = %d, want 2", got)
	}
	// Boundaries are half-open: the first event of partition 1 belongs
	// to node 1.
	if got := pol.owner(pol.bounds[1]); got != 1 {
		t.Errorf("owner(bounds[1]) = %d, want 1", got)
	}
}

func TestPartitionedQueuesOnBusyOwner(t *testing.T) {
	pol := NewPartitioned()
	h := newHarness(t, pol, nil)
	j1 := h.submit(dataspace.Iv(0, 1000))
	j2 := h.submit(dataspace.Iv(1000, 2000)) // same owner (node 0)
	if j2.Started {
		t.Fatal("second job should queue behind the first on its owner node")
	}
	if pol.QueueDepth(0) != 1 {
		t.Errorf("QueueDepth(0) = %d, want 1", pol.QueueDepth(0))
	}
	h.eng.Run()
	if !j1.Finished || !j2.Finished {
		t.Fatal("jobs incomplete")
	}
	if j2.FirstStart < j1.EndTime-1e-9 {
		t.Error("owner node ran two subjobs concurrently")
	}
}

func TestPartitionedCachesOnlyOwnPartition(t *testing.T) {
	pol := NewPartitioned()
	h := newHarness(t, pol, nil)
	h.submit(dataspace.Iv(0, 1000))
	h.eng.Run()
	if h.c.Node(0).Cache.Used() != 1000 {
		t.Errorf("owner cached %d events, want 1000", h.c.Node(0).Cache.Used())
	}
	if h.c.Node(1).Cache.Used() != 0 || h.c.Node(2).Cache.Used() != 0 {
		t.Error("non-owners cached foreign data")
	}
	// A re-run of the same range must be served from cache.
	before := h.c.Stats().EventsFromTape
	j := h.submit(dataspace.Iv(0, 1000))
	h.eng.Run()
	if !j.Finished {
		t.Fatal("second job incomplete")
	}
	if got := h.c.Stats().EventsFromTape; got != before {
		t.Errorf("re-run read %d events from tape", got-before)
	}
}

func TestAffineFarmPrefersCachingNode(t *testing.T) {
	pol := NewAffineFarm()
	h := newHarness(t, pol, nil)
	h.c.Node(2).Cache.Insert(dataspace.Iv(0, 1000), 0)
	j := h.submit(dataspace.Iv(0, 1000))
	r := h.c.Node(2).Running()
	if r == nil || r.Job != j {
		t.Fatal("job should run on the node caching its data")
	}
	if h.c.Stats().Dispatches != 1 {
		t.Error("affine farm must not split jobs")
	}
	h.eng.Run()
	if h.c.Stats().EventsFromTape != 0 {
		t.Error("fully cached job read from tape")
	}
}

func TestAffineFarmQueueAffinityOnFree(t *testing.T) {
	pol := NewAffineFarm()
	h := newHarness(t, pol, nil)
	// Saturate all three nodes.
	for i := 0; i < 3; i++ {
		h.submit(dataspace.Iv(int64(i)*2_000, int64(i)*2_000+1_000))
	}
	// Queue two jobs; the second one's data will be cached on node 0
	// (it re-reads job 0's range), so when node 0 frees up it should be
	// picked despite being behind in the queue.
	far := h.submit(dataspace.Iv(30_000, 31_000))
	affine := h.submit(dataspace.Iv(0, 1_000))
	h.eng.Run()
	if !far.Finished || !affine.Finished {
		t.Fatal("queued jobs incomplete")
	}
	// Both finish; affinity scheduling must not starve the far job.
	if far.FirstStart == 0 {
		t.Error("far job never started")
	}
}

func TestPartitionedVersusDynamicPolicies(t *testing.T) {
	// With hot-skewed load, static partitioning must do clearly worse
	// than out-of-order at the same load (its hot owners bottleneck).
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	mutate := func(p *model.Params) { p.MeanJobEvents = 2_000 }
	loadJobs := 40

	run := func(pol Policy) (finished int, makespan float64) {
		h := newHarness(t, pol, mutate)
		interval := 200.0
		for i := 0; i < loadJobs; i++ {
			h.eng.RunUntil(float64(i) * interval)
			start := int64(i%5) * 3_000 // concentrated starts
			h.submit(dataspace.Iv(start, start+2_000))
		}
		h.eng.Run()
		// Makespan from job completions, not eng.Now(): pending no-op
		// aging timers keep the engine clock running past the last job.
		for _, j := range h.done {
			if j.EndTime > makespan {
				makespan = j.EndTime
			}
		}
		return len(h.done), makespan
	}
	fP, mP := run(NewPartitioned())
	fO, mO := run(NewOutOfOrder())
	if fP != loadJobs || fO != loadJobs {
		t.Fatalf("jobs incomplete: partitioned %d, ooo %d", fP, fO)
	}
	if mO > mP {
		t.Errorf("out-of-order makespan %.0f should beat partitioned %.0f on skewed load", mO, mP)
	}
}

// TestPartitionedDecommissionPrefersUpNodes: a decommissioned owner's
// backlog must land on an up node, not be parked on a down-but-repairable
// one that happens to have the shortest queue and the lowest ID.
func TestPartitionedDecommissionPrefersUpNodes(t *testing.T) {
	pol := NewPartitioned()
	h := newHarness(t, pol, nil)
	h.c.NodeDown = pol.NodeDown
	h.c.NodeUp = pol.NodeUp
	third := h.c.Params().TotalEvents() / 3

	// Two jobs inside partition 1: the first runs on node 1, the second
	// queues behind it.
	j1 := h.submit(dataspace.Iv(third+100, third+600))
	j2 := h.submit(dataspace.Iv(third+700, third+1200))
	if got := pol.QueueDepth(1); got != 1 {
		t.Fatalf("node 1 queue depth %d, want 1", got)
	}

	// Node 0 goes down repairable (idle, empty queue, lowest ID) —
	// the trap fallback must not fall into.
	h.c.FailNode(h.c.Node(0), false)
	// Node 1 leaves for good with its running subjob and backlog.
	h.c.DecommissionNode(h.c.Node(1))

	if got := pol.QueueDepth(0); got != 0 {
		t.Errorf("reassigned work parked on down node 0 (queue depth %d)", got)
	}
	if h.c.Node(2).Running() == nil {
		t.Error("up node 2 idle while reassigned work waits")
	}
	if got := pol.QueueDepth(1); got != 0 {
		t.Errorf("dead owner keeps %d queued subjobs", got)
	}
	h.eng.Run()
	if !j1.Finished || !j2.Finished {
		t.Errorf("reassigned jobs incomplete: j1=%+v j2=%+v", j1, j2)
	}
}
