package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"physched/internal/analysis/driver"
)

// DetRand forbids the process-global math/rand source in deterministic
// packages. Every random draw must flow through a seeded *rand.Rand whose
// seed derives from the scenario seed via the DeriveSeed/SplitMix64
// discipline (internal/lab/seed.go) — the global source is shared mutable
// state that breaks serial ≡ parallel byte-identity and run-to-run
// reproducibility. Independently of package, seeding any source from the
// wall clock (rand.NewSource(time.Now()...), rand.New(rand.NewSource(
// time.Now()...))) is flagged: a clock-derived seed is nondeterminism by
// construction.
var DetRand = &driver.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and wall-clock-seeded sources in deterministic packages",
	Run:  runDetRand,
}

// globalRandFuncs are the math/rand (and /v2) package-level functions
// backed by the shared global source. rand.New, rand.NewSource, rand.NewPCG
// and the type names stay legal — they are how seeded streams are built.
var globalRandFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runDetRand(pass *driver.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := selectorPackage(pass, sel)
			if !ok {
				return true
			}
			switch pkgPath {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"global rand.%s uses the shared math/rand source; draw from a seeded *rand.Rand derived via DeriveSeed instead",
					sel.Sel.Name)
			}
			return true
		})
		// Wall-clock seeds: any rand.NewSource / rand.New / rand.NewPCG /
		// rand.NewChaCha8 call whose argument expression reads the clock.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := selectorPackage(pass, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			switch sel.Sel.Name {
			case "NewSource", "New", "NewPCG", "NewChaCha8":
			default:
				return true
			}
			for _, arg := range call.Args {
				if p, found := findsClockRead(pass, arg); found {
					pass.Reportf(p,
						"rand.%s seeded from the wall clock; derive the seed from the scenario seed (DeriveSeed) instead",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// findsClockRead reports a time.Now / time.Since call anywhere inside
// expr (e.g. rand.NewSource(time.Now().UnixNano())). It does not descend
// into nested seeding calls: in rand.New(rand.NewSource(time.Now()...))
// the inner NewSource owns the finding, so the outer New stays silent.
func findsClockRead(pass *driver.Pass, expr ast.Expr) (token.Pos, bool) {
	var at token.Pos
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSeedingCall(pass, call) {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgPath, ok := selectorPackage(pass, sel); ok && pkgPath == "time" {
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				at, found = sel.Pos(), true
				return false
			}
		}
		return true
	})
	return at, found
}

// isSeedingCall reports whether call is rand.NewSource / rand.New /
// rand.NewPCG / rand.NewChaCha8 — a constructor runDetRand inspects in
// its own right.
func isSeedingCall(pass *driver.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, ok := selectorPackage(pass, sel)
	if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
		return false
	}
	switch sel.Sel.Name {
	case "NewSource", "New", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// selectorPackage resolves pkg.Name selectors: when sel.X is an
// identifier bound to an imported package, it returns that package's
// import path.
func selectorPackage(pass *driver.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
