package experiments

import (
	"strings"
	"testing"

	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
)

// tiny shrinks an experiment scenario for unit tests of the plumbing (the
// real figure-scale runs are exercised by the root benchmarks).
func tiny(s lab.Scenario) lab.Scenario {
	s.Params.Nodes = 3
	s.Params.MeanJobEvents = 1_000
	s.Params.DataspaceBytes = 60 * model.GB
	s.Params.CacheBytes = 6 * model.GB
	s.WarmupJobs = 20
	s.MeasureJobs = 80
	return s
}

func TestLoadGrid(t *testing.T) {
	g := loadGrid(Quick, 1, 2)
	if len(g) != 6 || g[0] != 1 || g[len(g)-1] != 2 {
		t.Errorf("quick grid = %v", g)
	}
	g = loadGrid(Full, 0.5, 1.0)
	if len(g) != 9 || g[0] != 0.5 || g[len(g)-1] != 1.0 {
		t.Errorf("full grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("grid not increasing: %v", g)
		}
	}
}

func TestQualityScales(t *testing.T) {
	if Quick.measure() >= Full.measure() {
		t.Error("Quick must measure fewer jobs than Full")
	}
	if Quick.warmup() <= 0 || Full.warmup() <= 0 {
		t.Error("warmup must be positive")
	}
}

func TestDelayedBacklogStretchesWindow(t *testing.T) {
	s := baseScenario(Quick, 1)
	before := s.MeasureJobs
	delayedBacklog(model.Week)(&s)
	if s.MeasureJobs <= before {
		t.Errorf("week-long delay should stretch the measurement window, got %d", s.MeasureJobs)
	}
	if s.OverloadBacklog <= int64(25*s.Params.Nodes) {
		t.Errorf("OverloadBacklog %d not raised", s.OverloadBacklog)
	}
	// A short delay must not shrink an already sufficient window.
	s2 := baseScenario(Quick, 1)
	delayedBacklog(model.Hour)(&s2)
	if s2.MeasureJobs < Quick.measure() {
		t.Errorf("short delay shrank the window to %d", s2.MeasureJobs)
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	// Build a minimal figure through the real sweep machinery.
	s := tiny(baseScenario(Quick, 1))
	loads := []float64{0.3 * s.Params.FarmMaxLoad(), 0.6 * s.Params.FarmMaxLoad()}
	curves := sweepCurves(s, loads, []lab.Variant{
		{Label: "farm", NewPolicy: func() sched.Policy { return sched.NewFarm() }},
		{Label: "ooo", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
	})
	f := Figure{ID: "t", Title: "test figure", Loads: loads, Curves: curves}

	table := f.Table()
	for _, want := range []string{"test figure", "farm", "ooo", "steady"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*len(loads) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+2*len(loads))
	}
	if !strings.HasPrefix(lines[0], "curve,load_jobs_per_hour") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}

	plots := f.Plots()
	if !strings.Contains(plots, "average speedup") || !strings.Contains(plots, "waiting") {
		t.Error("plots missing panels")
	}
}

func TestRenderHelpersDoNotPanic(t *testing.T) {
	// Empty inputs must render gracefully.
	if out := RenderReplication(nil); !strings.Contains(out, "replication") {
		t.Error("empty replication render broken")
	}
	if out := RenderMaxLoad(nil); !strings.Contains(out, "delayed") {
		t.Error("empty max-load render broken")
	}
	if out := RenderFarm(nil); !strings.Contains(out, "M/Er/m") {
		t.Error("empty farm render broken")
	}
	if out := RenderDistributions(nil); !strings.Contains(out, "Figure 4") {
		t.Error("empty distribution render broken")
	}
}

func TestAllFigureIDs(t *testing.T) {
	ids := AllFigureIDs()
	if len(ids) != 20 {
		t.Errorf("AllFigureIDs = %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestStripeLabel(t *testing.T) {
	cases := map[int64]string{
		200:   "200 events",
		1000:  "1K events",
		5000:  "5K events",
		25000: "25K events",
		1500:  "1500 events",
	}
	for in, want := range cases {
		if got := stripeLabel(in); got != want {
			t.Errorf("stripeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
