package lab

import (
	"context"
	"sync/atomic"
	"testing"

	"physched/internal/cluster"
	"physched/internal/sched"
)

// BenchmarkRun measures one complete out-of-order simulation run (warm-up
// plus measurement window) on the small test cluster — the unit of work
// every sweep, grid and replication fans out over.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s)
	}
}

// BenchmarkPoolDispatch prices the pool's per-task dispatch loop with no
// hooks installed — the default path every deterministic run takes. One
// Run call fans out b.N empty tasks, so the per-op figure is pure
// dispatch; the benchsnap gate pins it at 0 allocs/op.
func BenchmarkPoolDispatch(b *testing.B) {
	b.ReportAllocs()
	pool := NewPool(1)
	defer pool.Close()
	b.ResetTimer()
	if err := pool.Run(context.Background(), b.N, func(int) {}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPoolDispatchHooked is BenchmarkPoolDispatch with timing hooks
// installed — the path a service's queue-wait/run-duration histograms
// ride. The benchsnap gate pins the hooked path at 0 allocs/op too: the
// observability tax on the simulation hot path is time-only, never
// garbage.
func BenchmarkPoolDispatchHooked(b *testing.B) {
	b.ReportAllocs()
	pool := NewPool(1)
	defer pool.Close()
	var clk atomic.Int64
	var waitNs, runNs atomic.Int64
	pool.SetHooks(&PoolHooks{
		Now:  func() int64 { return clk.Add(1) },
		Wait: func(ns int64) { waitNs.Add(ns) },
		Run:  func(ns int64) { runNs.Add(ns) },
	})
	b.ResetTimer()
	if err := pool.Run(context.Background(), b.N, func(int) {}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunFaults is BenchmarkRun under heavy node churn: it prices
// the fault path — failure/repair events, subjob kills, requeues and
// cache rebuilds — against the fault-free baseline snapshot.
func BenchmarkRunFaults(b *testing.B) {
	b.ReportAllocs()
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	s.Faults = cluster.FaultModel{MTBFHours: 24, RepairHours: 2, CacheLoss: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s)
	}
}
