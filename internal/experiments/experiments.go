// Package experiments defines one reproduction recipe per table and figure
// of the paper's evaluation (Figures 2-7, the §4.2 replication comparison,
// the §5.2 maximal-load experiment and the §3.1 M/Er/m reference), and the
// rendering of their results as text tables, ASCII plots and CSV.
//
// Every recipe exists in two sizes: Quick (benchmark/CI scale — fewer
// measured jobs and a sparser load grid; shapes hold, error bars are
// wider) and Full (the scale used for EXPERIMENTS.md).
//
// Every recipe executes through an internal/lab grid; Configure installs
// the execution options (shared lab.Pool or per-call worker bound,
// cancellation context, progress hook) that all recipes share —
// cmd/experiments wires one process-wide pool plus its -parallel,
// -timeout and -progress flags through it, so concurrent recipes cannot
// oversubscribe the host.
package experiments

import (
	"fmt"

	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
)

// execOpts are the lab execution options shared by every recipe.
var execOpts lab.Options

// Configure installs the lab execution options used by all experiment
// recipes and returns the previous ones. It is not safe to call while
// experiments are running.
func Configure(o lab.Options) lab.Options {
	prev := execOpts
	execOpts = o
	return prev
}

// grid executes a variants × loads grid with the configured options.
func grid(base lab.Scenario, loads []float64, variants []lab.Variant) *lab.RunSet {
	rs, _ := lab.Grid{Base: base, Loads: loads, Variants: variants}.Execute(execOpts)
	return rs
}

// sweepCurves is the figure-shaped view of grid.
func sweepCurves(base lab.Scenario, loads []float64, variants []lab.Variant) []lab.Curve {
	return grid(base, loads, variants).Curves()
}

// sweep runs one variant over a load axis.
func sweep(base lab.Scenario, loads []float64) []lab.Result {
	return grid(base, loads, nil).Results
}

// Quality selects the scale of an experiment run.
type Quality int

const (
	// Quick is benchmark scale: ~250 measured jobs per point.
	Quick Quality = iota
	// Full is report scale: ~900 measured jobs per point.
	Full
)

func (q Quality) warmup() int {
	if q == Quick {
		return 100
	}
	return 200
}

func (q Quality) measure() int {
	if q == Quick {
		return 250
	}
	return 900
}

// Figure is the result of reproducing one paper figure: one or two panels
// (speedup and waiting time) of labelled curves over a load axis.
type Figure struct {
	ID     string
	Title  string
	Note   string
	Loads  []float64 // jobs per hour
	Curves []lab.Curve
	// DelayIncluded records whether waiting times include scheduling delay.
	DelayIncluded bool
}

// baseScenario returns the paper-calibrated default scenario.
func baseScenario(q Quality, seed int64) lab.Scenario {
	return lab.Scenario{
		Params:      model.PaperCalibrated(),
		Seed:        seed,
		WarmupJobs:  q.warmup(),
		MeasureJobs: q.measure(),
	}
}

func loadGrid(q Quality, lo, hi float64) []float64 {
	steps := 9
	if q == Quick {
		steps = 6
	}
	var out []float64
	for i := 0; i < steps; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/float64(steps-1))
	}
	return out
}

func withCache(gb int64) func(*lab.Scenario) {
	return func(s *lab.Scenario) { s.Params.CacheBytes = gb * model.GB }
}

// delayedBacklog adapts a scenario to delayed scheduling with the given
// period: the overload threshold accommodates the backlog a period
// legitimately accumulates, and the measurement window is stretched to
// cover at least four periods so batch sawtooths average out.
func delayedBacklog(delay float64) func(*lab.Scenario) {
	return func(s *lab.Scenario) {
		// Worst case near the theoretical maximum of 3.46 jobs/hour.
		jobsPerPeriod := 3.5 * delay / model.Hour
		s.OverloadBacklog = int64(3*jobsPerPeriod) + int64(25*s.Params.Nodes)
		if minJobs := int(4 * jobsPerPeriod); s.MeasureJobs < minJobs {
			s.MeasureJobs = minJobs
		}
	}
}

func mutate(ms ...func(*lab.Scenario)) func(*lab.Scenario) {
	return func(s *lab.Scenario) {
		for _, m := range ms {
			m(s)
		}
	}
}

// Fig2 reproduces Figure 2: average speedup and waiting time versus load
// for the processing farm, job splitting and cache-oriented job splitting
// with 50/100/200 GB node caches, on 10 nodes.
func Fig2(q Quality, seed int64) Figure {
	loads := loadGrid(q, 0.7, 1.4)
	curves := sweepCurves(baseScenario(q, seed), loads, []lab.Variant{
		{Label: "Processing farm", NewPolicy: func() sched.Policy { return sched.NewFarm() }},
		{Label: "Job splitting", NewPolicy: func() sched.Policy { return sched.NewSplitting() }},
		{Label: "Cache oriented - 50 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(50)},
		{Label: "Cache oriented - 100 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(100)},
		{Label: "Cache oriented - 200 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(200)},
	})
	return Figure{
		ID:    "fig2",
		Title: "Figure 2: FCFS policies — speedup and waiting time vs load",
		Note:  "Paper: farm ≈ flat speedup 1, overload ≈ 1.1-1.2 j/h; cache size decisive; 200 GB reaches the ≈3× caching gain.",
		Loads: loads, Curves: curves,
	}
}

// Fig3 reproduces Figure 3: cache-oriented splitting versus out-of-order
// scheduling for 50/100/200 GB caches.
func Fig3(q Quality, seed int64) Figure {
	loads := loadGrid(q, 0.8, 2.6)
	curves := sweepCurves(baseScenario(q, seed), loads, []lab.Variant{
		{Label: "Cache oriented - 50 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(50)},
		{Label: "Cache oriented - 100 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(100)},
		{Label: "Cache oriented - 200 GB", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }, Mutate: withCache(200)},
		{Label: "Out of order - 50 GB", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }, Mutate: withCache(50)},
		{Label: "Out of order - 100 GB", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }, Mutate: withCache(100)},
		{Label: "Out of order - 200 GB", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }, Mutate: withCache(200)},
	})
	return Figure{
		ID:    "fig3",
		Title: "Figure 3: cache-oriented vs out-of-order scheduling",
		Note:  "Paper: out-of-order gives higher speedup, waiting an order of magnitude lower, and roughly double the sustainable load.",
		Loads: loads, Curves: curves,
	}
}

// Distribution is the Figure 4 result: waiting-time histograms near the
// maximal sustainable load.
type Distribution struct {
	Label     string
	Result    lab.Result
	Histogram string // rendered histogram
	Buckets   []Bucket
}

// Bucket mirrors stats.Bucket for the public result.
type Bucket struct {
	LoSeconds, HiSeconds float64
	Count                int64
}

// Fig4 reproduces Figure 4: the waiting-time distribution of the
// out-of-order policy near its maximal sustainable load, for 100 GB at
// 1.7 jobs/hour and 50 GB at 1.44 jobs/hour.
func Fig4(q Quality, seed int64) []Distribution {
	configs := []struct {
		label string
		cache int64
		load  float64
	}{
		{"Out of order - cache 100 GB - 1.7 jobs/hour", 100, 1.7},
		{"Out of order - cache 50 GB - 1.44 jobs/hour", 50, 1.44},
	}
	base := baseScenario(q, seed)
	base.NewPolicy = func() sched.Policy { return sched.NewOutOfOrder() }
	base.MeasureJobs = 4 * q.measure() // distributions need more samples
	var variants []lab.Variant
	for _, cfg := range configs {
		cfg := cfg
		variants = append(variants, lab.Variant{
			Label: cfg.label,
			Mutate: func(s *lab.Scenario) {
				s.Params.CacheBytes = cfg.cache * model.GB
				s.Load = cfg.load
			},
		})
	}
	// This grid needs the collectors: the figure is the histogram itself.
	opts := execOpts
	opts.KeepCollectors = true
	rs, _ := lab.Grid{Base: base, Variants: variants}.Execute(opts)
	out := make([]Distribution, len(configs))
	for i, cfg := range configs {
		res := rs.Result(i, 0, 0)
		d := Distribution{Label: cfg.label, Result: res}
		if res.Collector != nil {
			h := res.Collector.WaitingHistogram()
			d.Histogram = h.String()
			for _, b := range h.Buckets() {
				d.Buckets = append(d.Buckets, Bucket{b.Lo, b.Hi, b.Count})
			}
		}
		out[i] = d
	}
	return out
}

// Fig5 reproduces Figure 5: delayed scheduling with period delays of 11 h,
// 2 days and 1 week (cache 100 GB, stripe 5000) against out-of-order.
func Fig5(q Quality, seed int64) Figure {
	loads := loadGrid(q, 1.0, 2.8)
	curves := sweepCurves(baseScenario(q, seed), loads, []lab.Variant{
		{Label: "Delayed (delay 11h)", NewPolicy: func() sched.Policy { return sched.NewDelayed(sched.Delay11h, 5000) }, Mutate: delayedBacklog(sched.Delay11h)},
		{Label: "Delayed (delay 2 days)", NewPolicy: func() sched.Policy { return sched.NewDelayed(sched.Delay2Days, 5000) }, Mutate: delayedBacklog(sched.Delay2Days)},
		{Label: "Delayed (delay 1 week)", NewPolicy: func() sched.Policy { return sched.NewDelayed(sched.Delay1Week, 5000) }, Mutate: delayedBacklog(sched.Delay1Week)},
		{Label: "Out of order scheduling", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
	})
	return Figure{
		ID:    "fig5",
		Title: "Figure 5: delayed scheduling for different period delays (cache 100 GB, stripe 5000)",
		Note:  "Paper: delayed behaves poorly in speedup/waiting but sustains very high loads, the more so the larger the delay. Waiting shown delay-excluded.",
		Loads: loads, Curves: curves,
	}
}

// Fig6 reproduces Figure 6: delayed scheduling with stripe sizes 200, 1K,
// 5K and 25K events (cache 100 GB, delay 2 days).
func Fig6(q Quality, seed int64) Figure {
	loads := loadGrid(q, 0.8, 2.6)
	mk := func(stripe int64) lab.Variant {
		return lab.Variant{
			Label:     fmt.Sprintf("Delayed, stripe %s", stripeLabel(stripe)),
			NewPolicy: func() sched.Policy { return sched.NewDelayed(sched.Delay2Days, stripe) },
			Mutate:    delayedBacklog(sched.Delay2Days),
		}
	}
	curves := sweepCurves(baseScenario(q, seed), loads, []lab.Variant{
		mk(200), mk(1000), mk(5000), mk(25000),
	})
	return Figure{
		ID:    "fig6",
		Title: "Figure 6: delayed scheduling for different stripe sizes (cache 100 GB, delay 2 days)",
		Note:  "Paper: smaller stripes give clearly better speedup (more parallelism) and hence higher sustainable loads; waiting time barely moves.",
		Loads: loads, Curves: curves,
	}
}

// Fig7 reproduces Figure 7: the adaptive-delay policy for stripe sizes 200
// and 5000 versus out-of-order (cache 100 GB); waiting times include the
// scheduling delay.
func Fig7(q Quality, seed int64) Figure {
	loads := loadGrid(q, 0.5, 2.8)
	adaptive := func(stripe int64) lab.Variant {
		return lab.Variant{
			Label:     fmt.Sprintf("Adaptive delay (stripe %s)", stripeLabel(stripe)),
			NewPolicy: func() sched.Policy { return sched.NewAdaptive(stripe) },
			Mutate: mutate(delayedBacklog(sched.Delay1Week), func(s *lab.Scenario) {
				s.DelayIncluded = true
			}),
		}
	}
	curves := sweepCurves(baseScenario(q, seed), loads, []lab.Variant{
		adaptive(200),
		adaptive(5000),
		{Label: "Out of order scheduling", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
	})
	return Figure{
		ID:    "fig7",
		Title: "Figure 7: adaptive delay vs out-of-order (cache 100 GB), waiting delay-included",
		Note:  "Paper: at low loads adaptive ≈ out-of-order (delay is zero); at high loads it sustains loads out-of-order cannot, at the price of delay-included waiting.",
		Loads: loads, Curves: curves,
		DelayIncluded: true,
	}
}

// ReplicationRow is one load point of the §4.2 comparison.
type ReplicationRow struct {
	Load             float64
	Plain, Replicate lab.Result
	// ReplicatedShare is the fraction of processed events that were
	// replicated (paper: data replication used in <1‰ of job arrivals).
	ReplicatedShare float64
}

// Replication reproduces the §4.2 experiment: out-of-order with and
// without data replication have near-identical performance, and
// replication triggers extremely rarely.
func Replication(q Quality, seed int64) []ReplicationRow {
	loads := loadGrid(q, 0.8, 2.0)
	rs := grid(baseScenario(q, seed), loads, []lab.Variant{
		{Label: "plain", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
		{Label: "replicate", NewPolicy: func() sched.Policy { return sched.NewReplication() }},
	})
	rows := make([]ReplicationRow, len(loads))
	for i := range loads {
		repl := rs.Result(1, i, 0)
		row := ReplicationRow{Load: loads[i], Plain: rs.Result(0, i, 0), Replicate: repl}
		total := repl.Cluster.EventsFromCache + repl.Cluster.EventsFromRemote + repl.Cluster.EventsFromTape
		if total > 0 {
			row.ReplicatedShare = float64(repl.Cluster.EventsReplicated) / float64(total)
		}
		rows[i] = row
	}
	return rows
}

// MaxLoadResult is the §5.2 headline configuration outcome.
type MaxLoadResult struct {
	Load      float64
	Result    lab.Result
	TheoryMax float64
	FarmMax   float64
}

// MaxLoad reproduces the §5.2 claim: with 200 GB caches, a 1-week delay
// and stripe 200, the cluster sustains ≈3 jobs/hour (87% of the 3.46
// theoretical maximum and ≈2.7× the farm's 1.1) with speedup above 10.
func MaxLoad(q Quality, seed int64) []MaxLoadResult {
	p := model.PaperCalibrated()
	loads := []float64{2.6, 2.8, 3.0, 3.2}
	if q == Quick {
		loads = []float64{2.8, 3.0}
	}
	s := baseScenario(q, seed)
	s.Params.CacheBytes = 200 * model.GB
	s.NewPolicy = func() sched.Policy { return sched.NewDelayed(sched.Delay1Week, 200) }
	delayedBacklog(sched.Delay1Week)(&s)
	if q == Quick {
		// Four one-week periods of jobs are unavoidable here; keep the
		// grid small instead.
		s.MeasureJobs = int(3 * 3.5 * sched.Delay1Week / model.Hour)
	}
	out := make([]MaxLoadResult, len(loads))
	for i, r := range sweep(s, loads) {
		out[i] = MaxLoadResult{
			Load: loads[i], Result: r,
			TheoryMax: p.MaxTheoreticalLoad(), FarmMax: p.FarmMaxLoad(),
		}
	}
	return out
}

func stripeLabel(stripe int64) string {
	if stripe >= 1000 && stripe%1000 == 0 {
		return fmt.Sprintf("%dK events", stripe/1000)
	}
	return fmt.Sprintf("%d events", stripe)
}

// AllFigureIDs lists the experiment identifiers understood by
// cmd/experiments: the paper's figures and tables first, then the ablation
// studies of DESIGN.md §4.
func AllFigureIDs() []string {
	return []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "rep", "max", "farm",
		"ab-eviction", "ab-steal", "ab-replication", "ab-hotspot", "nodes",
		"pipeline", "baselines", "hetero", "daynight", "faults", "tune",
	}
}
