package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"physched/client"
)

// getJobs fetches one page of the jobs listing.
func getJobs(t *testing.T, ts *httptest.Server, query string) jobList {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs listing status %d", resp.StatusCode)
	}
	var out jobList
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJobsListingPaginationAndFilters: the jobs listing pages stably in
// creation order, filters by state and kind, and reports totals that a
// client can walk without racing the server.
func TestJobsListingPaginationAndFilters(t *testing.T) {
	ts := testServer(t)

	var ids []string
	for i := 0; i < 5; i++ {
		sub := postAsync(t, ts, smallGridBody(int64(300+10*i)))
		waitDone(t, ts, sub.JobID)
		ids = append(ids, sub.JobID)
	}

	all := getJobs(t, ts, "")
	if len(all.Jobs) != 5 || all.TotalItems != 5 || all.TotalPages != 1 || all.Page != 1 {
		t.Fatalf("default listing: %d jobs, page info %+v", len(all.Jobs), all.PageInfo)
	}
	for i, j := range all.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("listing order diverged from creation order: %v", all.Jobs)
		}
	}

	page2 := getJobs(t, ts, "?page=2&page_size=2")
	if len(page2.Jobs) != 2 || page2.TotalItems != 5 || page2.TotalPages != 3 {
		t.Fatalf("page 2: %d jobs, page info %+v", len(page2.Jobs), page2.PageInfo)
	}
	if page2.Jobs[0].ID != ids[2] || page2.Jobs[1].ID != ids[3] {
		t.Errorf("page 2 holds %s,%s; want %s,%s",
			page2.Jobs[0].ID, page2.Jobs[1].ID, ids[2], ids[3])
	}

	// Pages past the end are empty, not errors.
	past := getJobs(t, ts, "?page=4&page_size=2")
	if past.Jobs == nil || len(past.Jobs) != 0 {
		t.Errorf("past-the-end page returned %v, want an empty (non-null) list", past.Jobs)
	}

	// Filters compose with pagination.
	done := getJobs(t, ts, "?state=done&kind=grid&page_size=3")
	if done.TotalItems != 5 || len(done.Jobs) != 3 {
		t.Errorf("filtered listing: %d of %d jobs", len(done.Jobs), done.TotalItems)
	}
	if none := getJobs(t, ts, "?state=running"); none.TotalItems != 0 {
		t.Errorf("running filter matched %d finished jobs", none.TotalItems)
	}
	if none := getJobs(t, ts, "?kind=study"); none.TotalItems != 0 {
		t.Errorf("study filter matched %d grid jobs", none.TotalItems)
	}
}

// TestRegistryListingsPaginate: the policy and workload registries use
// the same page/page_size protocol as the jobs listing.
func TestRegistryListingsPaginate(t *testing.T) {
	ts := testServer(t)

	var full client.PolicyList
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&full)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalItems != len(full.Policies) || full.TotalItems == 0 {
		t.Fatalf("bad unpaginated policy listing: %+v", full)
	}

	// One-per-page walk re-assembles the full listing in order.
	var walked []string
	for page := 1; ; page++ {
		var pl client.PolicyList
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/policies?page=%d&page_size=1", page))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&pl)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.Policies) == 0 {
			break
		}
		walked = append(walked, pl.Policies...)
	}
	if len(walked) != full.TotalItems {
		t.Fatalf("walk collected %d policies, want %d", len(walked), full.TotalItems)
	}
	for i, name := range walked {
		if name != full.Policies[i] {
			t.Errorf("walked order diverged at %d: %q vs %q", i, name, full.Policies[i])
		}
	}
}

// TestStudyListing: finished studies appear as summaries in the
// paginated GET /v1/studies listing.
func TestStudyListing(t *testing.T) {
	ts := testServer(t)
	_, study := postStudy(t, ts, studyBody)

	resp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out studyList
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Studies) != 1 || out.TotalItems != 1 {
		t.Fatalf("study listing %+v, want the one finished study", out)
	}
	sum := out.Studies[0]
	if sum.Hash != study.StudyHash || sum.Algorithm != study.Report.Algorithm ||
		sum.Budget != study.Report.Budget || sum.EvaluatedCells != study.Report.EvaluatedCells {
		t.Errorf("summary %+v does not match report %+v", sum, study.Report)
	}
	if sum.BestValue == nil || *sum.BestValue != study.Report.Best.Value {
		t.Errorf("summary best value %v, want %v", sum.BestValue, study.Report.Best.Value)
	}
}
