package main

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"physched/internal/lab"
	"physched/internal/resultcache"
)

// gaugedStore wraps a Store and gauges how many simulation cells are
// executing at once: grid execution calls Get right before simulating a
// cell (miss) and Put right after, so the miss→Put window brackets the
// run. The small sleep widens the window so oversubscription cannot
// slip through between samples.
type gaugedStore struct {
	resultcache.Store
	mu        sync.Mutex
	cur, peak int
}

func (g *gaugedStore) Get(key string) (lab.Result, bool) {
	r, ok := g.Store.Get(key)
	if !ok {
		g.mu.Lock()
		g.cur++
		if g.cur > g.peak {
			g.peak = g.cur
		}
		g.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	return r, ok
}

func (g *gaugedStore) Put(key string, r lab.Result) {
	g.Store.Put(key, r)
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

// smallGridBody is a distinct 8-cell grid per seed offset, so concurrent
// requests share no cached cells.
func smallGridBody(seedBase int64) string {
	return fmt.Sprintf(`{
		"base": {
			"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
			"policy": {"name": "outoforder"},
			"load_jobs_per_hour": 1.0,
			"seed": %d,
			"warmup_jobs": 5,
			"measure_jobs": 20
		},
		"variants": [
			{"label": "ooo"},
			{"label": "farm", "policy": {"name": "farm"}}
		],
		"loads": [0.8, 1.1],
		"seeds": [%d, %d]
	}`, seedBase, seedBase, seedBase+1)
}

// TestConcurrentGridsShareOnePool is the oversubscription regression
// test: with the server's pool bounded at N workers, several grids
// POSTed concurrently never have more than N simulation cells executing
// at once. Against per-request pools (each request spawning its own N
// workers) this fails with a peak of requests×N.
func TestConcurrentGridsShareOnePool(t *testing.T) {
	const workers = 2
	const requests = 4
	gauge := &gaugedStore{Store: resultcache.NewMemory()}
	ts := testServerWith(t, serverConfig{
		Cache:    gauge,
		Pool:     lab.NewPool(workers),
		MaxCells: 100,
	})

	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/grids", "application/json",
				strings.NewReader(smallGridBody(int64(100+10*i))))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			// Drain the stream so the server finishes the request.
			buf := make([]byte, 1<<16)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					break
				}
			}
		}(i)
	}
	wg.Wait()

	gauge.mu.Lock()
	peak, cur := gauge.peak, gauge.cur
	gauge.mu.Unlock()
	if peak > workers {
		t.Errorf("observed %d simulation cells executing at once across concurrent requests; the shared pool allows %d", peak, workers)
	}
	if cur != 0 {
		t.Errorf("gauge left at %d after all requests finished", cur)
	}
	if peak == 0 {
		t.Error("gauge never saw a running cell — instrumentation broken")
	}
}
