package lab

import (
	"testing"

	"physched/internal/sched"
)

// BenchmarkRun measures one complete out-of-order simulation run (warm-up
// plus measurement window) on the small test cluster — the unit of work
// every sweep, grid and replication fans out over.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s)
	}
}
