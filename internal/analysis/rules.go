package analysis

import (
	"fmt"
	"strings"

	"physched/internal/analysis/driver"
)

// detPackages are the packages whose results must be bit-deterministic:
// the sim core and everything a simulation result flows through. Global
// rand, wall clock and order-sensitive map iteration are banned here.
// The list is prefix-matched so future subpackages inherit the contract.
var detPackages = []string{
	"physched/internal/sim",
	"physched/internal/sched",
	"physched/internal/cluster",
	"physched/internal/workload",
	"physched/internal/lab",
	"physched/internal/opt",
	"physched/internal/stats",
	// Sim-core support packages: equally inside the determinism boundary.
	"physched/internal/cache",
	"physched/internal/dataspace",
	"physched/internal/job",
	"physched/internal/metrics",
	"physched/internal/model",
	"physched/internal/queueing",
	"physched/internal/spec",
	"physched/internal/simtest",
	"physched/internal/trace",
	"physched/internal/storage",
	"physched/internal/asciiplot",
	"physched/internal/experiments",
}

// walltimeExtra are service-layer packages additionally registered for
// the walltime analyzer even though they are not deterministic: their
// wall-clock reads must be injected clocks, with the single wiring site
// carrying a //physched:walltime suppression. Since the observability
// layer landed, that site is obs.SystemClock — the one sanctioned
// real-clock read the whole service stack (logging timestamps, request
// latency, job ages, pool hook nanos) funnels through. This is the
// shrunken allowlist: everything NOT listed here or in detPackages
// (resultcache disk I/O, the remaining cmds, examples) may read the
// clock freely.
var walltimeExtra = []string{
	"physched/cmd/physchedd",
	"physched/internal/obs",
}

// wirePackages hold the canonical, content-hashed wire structs.
var wirePackages = []string{
	"physched/internal/spec",
	"physched/internal/opt",
}

// randBanExtra extends the global-rand ban beyond deterministic packages:
// service cmds must not draw from the shared source either (job IDs use
// crypto/rand; scenario randomness comes from seeded streams).
var randBanExtra = []string{
	"physched/cmd",
}

func matchesAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// IsDeterministic reports whether pkgPath is inside the determinism
// boundary (exported for the physchedlint -why listing and tests). The
// root facade package is matched exactly — a bare "physched" prefix
// would swallow the whole module, including this linter.
func IsDeterministic(pkgPath string) bool {
	return pkgPath == "physched" || matchesAny(pkgPath, detPackages)
}

// lockguardPackages scope the guard-inference race detector to the
// shared mutable state the serial≡parallel contract depends on: the
// worker pool, job/study stores, result cache, storage, traces and the
// policy/model registries. Guard inference is a heuristic; keeping it
// off one-shot cmd wiring code keeps its findings high-signal.
var lockguardPackages = []string{
	"physched/internal/lab",
	"physched/internal/resultcache",
	"physched/internal/storage",
	"physched/internal/trace",
	"physched/internal/sched",
	"physched/internal/workload",
	"physched/internal/obs",
	"physched/cmd/physchedd",
}

// Analyzers lists the whole suite, for documentation and fixture tests.
func Analyzers() []*driver.Analyzer {
	return []*driver.Analyzer{DetRand, WallTime, MapOrder, HotAlloc, WireCanon, Directive, LockCheck, LockGuard, SpawnCheck}
}

// Rules decides which analyzers run on which package — the multichecker
// configuration. Directive, HotAlloc and the flow-sensitive concurrency
// analyzers run everywhere (lock bugs and leaked goroutines are bugs in
// any package, and all cost nothing where the constructs are absent);
// the determinism analyzers are scoped to the packages whose contract
// they enforce, and lockguard to the shared-state packages it was tuned
// on.
func Rules(pkg *driver.Package) []*driver.Analyzer {
	as := []*driver.Analyzer{Directive, HotAlloc, LockCheck, SpawnCheck}
	det := IsDeterministic(pkg.PkgPath)
	if det || matchesAny(pkg.PkgPath, randBanExtra) {
		as = append(as, DetRand)
	}
	if det || matchesAny(pkg.PkgPath, walltimeExtra) {
		as = append(as, WallTime)
	}
	if det {
		as = append(as, MapOrder)
	}
	if matchesAny(pkg.PkgPath, wirePackages) {
		as = append(as, WireCanon)
	}
	if matchesAny(pkg.PkgPath, lockguardPackages) {
		as = append(as, LockGuard)
	}
	return as
}

// Lint loads patterns rooted at dir and runs the rule-scoped suite,
// returning position-sorted diagnostics. This is the one entry point
// shared by cmd/physchedlint and the sabotage tests.
func Lint(dir string, patterns ...string) ([]driver.Diagnostic, error) {
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return driver.Run(pkgs, Rules)
}

// LintUnsuppressed runs the rule-scoped suite with suppression comments
// ignored: the delta against Lint is exactly the set of findings the
// repo's //physched: suppressions are load-bearing for. The suppression
// audit test uses it to make stale suppressions rot loudly.
func LintUnsuppressed(dir string, patterns ...string) ([]driver.Diagnostic, error) {
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return driver.Run(pkgs, Rules, driver.NoSuppress())
}

// LintWith runs only the named analyzers, unscoped, on every matched
// package — the physchedlint -analyzers escape hatch for running a
// scoped analyzer (e.g. lockguard) on a package outside its Rules list.
func LintWith(names []string, dir string, patterns ...string) ([]driver.Diagnostic, error) {
	byName := map[string]*driver.Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var selected []*driver.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see physchedlint -list)", n)
		}
		selected = append(selected, a)
	}
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return driver.Run(pkgs, func(*driver.Package) []*driver.Analyzer { return selected })
}
