package lab

import (
	"testing"

	"physched/internal/sched"
	"physched/internal/trace"
)

func TestRunWithTraceRecordsLifecycleAndSamples(t *testing.T) {
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.5*p.FarmMaxLoad())
	s.MeasureJobs = 80
	s.WarmupJobs = 20
	s.Trace = trace.New(0, nil)
	s.SampleEvery = 1800
	res := Run(s)
	if res.Overloaded {
		t.Fatal("unexpected overload")
	}
	events := s.Trace.Events()
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts[trace.JobArrived] < 100 {
		t.Errorf("JobArrived events = %d, want ≥ 100", counts[trace.JobArrived])
	}
	if counts[trace.JobFinished] < 100 {
		t.Errorf("JobFinished events = %d", counts[trace.JobFinished])
	}
	if counts[trace.SubjobStarted] == 0 || counts[trace.SubjobFinished] == 0 {
		t.Error("subjob lifecycle missing from trace")
	}
	// Dispatch/finish pairing: every started subjob finishes (the run
	// ends only when measured jobs complete, so stragglers may remain).
	if counts[trace.SubjobFinished] > counts[trace.SubjobStarted] {
		t.Errorf("more subjob finishes (%d) than starts (%d)",
			counts[trace.SubjobFinished], counts[trace.SubjobStarted])
	}
	if counts[trace.Sample] == 0 {
		t.Error("no periodic samples recorded")
	}

	sum := trace.Summarise(events)
	if sum.Jobs != int64(counts[trace.JobFinished]) {
		t.Errorf("Summarise.Jobs = %d, want %d", sum.Jobs, counts[trace.JobFinished])
	}
	if sum.MeanConcurrency <= 0 || sum.MeanConcurrency > float64(p.Nodes) {
		t.Errorf("MeanConcurrency = %v out of (0, %d]", sum.MeanConcurrency, p.Nodes)
	}
	if sum.MeanHitRate <= 0 || sum.MeanHitRate > 1 {
		t.Errorf("MeanHitRate = %v out of (0, 1]", sum.MeanHitRate)
	}

	util := trace.Timeline(events, p.Nodes, res.SimTime)
	for i, u := range util {
		if u < 0 || u > 1.000001 {
			t.Errorf("node %d utilisation %v out of [0,1]", i, u)
		}
	}
}
