package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateTuneGolden = flag.Bool("update", false, "rewrite the tune leaderboard golden file")

// TestTuneHalvingBeatsRandomAtEqualBudget is the autotuner acceptance
// test on the pinned tune scenario: both drivers spend exactly the study
// budget, and successive halving finds a strictly better configuration
// than random search because its one-replication first rung covers the
// whole space while random's fixed-replication sample cannot.
func TestTuneHalvingBeatsRandomAtEqualBudget(t *testing.T) {
	tr, err := Tune(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, h := tr.Random, tr.Halving
	if r.EvaluatedCells != r.Budget || h.EvaluatedCells != h.Budget {
		t.Errorf("budgets not fully spent: random %d/%d, halving %d/%d",
			r.EvaluatedCells, r.Budget, h.EvaluatedCells, h.Budget)
	}
	if r.Best == nil || h.Best == nil {
		t.Fatalf("missing winners: random %+v halving %+v", r.Best, h.Best)
	}
	if r.Best.Replicas != h.Best.Replicas {
		t.Errorf("winners judged at different depths: %d vs %d replicas", r.Best.Replicas, h.Best.Replicas)
	}
	if !(h.Best.Value > r.Best.Value) {
		t.Errorf("halving did not beat random at equal budget: %.4f (%s) vs %.4f (%s)",
			h.Best.Value, h.Best.Label, r.Best.Value, r.Best.Label)
	}
	if h.Candidates <= r.Candidates {
		t.Errorf("halving explored %d candidates, random %d", h.Candidates, r.Candidates)
	}

	// The halving leaderboard is golden-pinned: the winner, the ranking
	// and the rendered values must not drift silently.
	golden := filepath.Join("testdata", "tune_leaderboard.golden")
	got := h.Render()
	if *updateTuneGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("tune leaderboard drifted from golden file:\n--- got ---\n%s--- want ---\n%s(run with -update to regenerate)", got, want)
	}

	// The full rendering (both leaderboards + comparison plot) must
	// include every moving part.
	out := RenderTune(tr)
	for _, needle := range []string{"Successive halving", "Random search", "vs cells evaluated", "rung ×1"} {
		if !strings.Contains(out, needle) {
			t.Errorf("RenderTune output missing %q", needle)
		}
	}
}
