// Command physchedsmoke is the end-to-end smoke check CI runs against a
// live physchedd: it waits for the service to come up, drives one async
// grid through the typed physched/client package (submit → wait →
// stream), round-trips an X-Request-Id, fetches and validates a ?trace=1
// job's event log, and scrapes /metrics, failing on a non-200, a missing
// counter family or an empty latency histogram. Exit status 0 means the
// deployed binary serves its whole async path — observability included —
// not just /healthz.
//
// Usage:
//
//	physchedsmoke [-server http://localhost:8080] [-timeout 2m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"physched/client"
)

// smokeGrid is a small 2×2×2 grid: large enough to exercise progress
// streaming, aggregates and the cache, small enough for a CI minute.
const smokeGrid = `{
	"base": {
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 5,
		"warmup_jobs": 10,
		"measure_jobs": 40
	},
	"variants": [
		{"label": "ooo"},
		{"label": "farm", "policy": {"name": "farm"}}
	],
	"loads": [0.8, 1.1],
	"seeds": [1, 2]
}`

// requiredFamilies must all appear in one /metrics scrape; a missing
// family means an instrumentation layer silently fell off.
var requiredFamilies = []string{
	"physchedd_pool_workers",
	"physchedd_pool_busy",
	"physchedd_pool_utilization",
	"physchedd_pool_tasks_total",
	"physchedd_cells_per_second",
	"physchedd_inflight",
	"physchedd_cache_gets_total",
	"physchedd_cache_puts_total",
	"physchedd_jobs",
	"physchedd_jobs_evicted_total",
	"physchedd_trace_jobs_total",
	"physchedd_build_info",
	"physchedd_process_start_time_seconds",
}

// requiredHistograms must not only exist but have observed something by
// the time the smoke grid has run: a present-but-empty histogram means
// the observation plumbing (middleware, pool hooks, job seal) fell off
// while the family registration survived.
var requiredHistograms = []string{
	"physchedd_http_request_duration_seconds",
	"physchedd_pool_queue_wait_seconds",
	"physchedd_cell_duration_seconds",
	"physchedd_job_duration_seconds",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("physchedsmoke: ")
	var (
		server  = flag.String("server", "http://localhost:8080", "physchedd base URL")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline for the whole smoke run")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*server)

	// The service may still be binding its listener when CI reaches us.
	for {
		if err := c.Health(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			log.Fatalf("service never became healthy: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	log.Printf("healthy: %s", *server)

	// Correlation: a supplied X-Request-Id must come back verbatim, and
	// an omitted one must come back generated — either way the response
	// alone is enough to grep the service's logs.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, *server+"/healthz", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "smoke-run")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("request-id probe failed: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "smoke-run" {
		log.Fatalf("X-Request-Id not echoed: got %q, want smoke-run", got)
	}
	resp, err = http.Get(*server + "/healthz")
	if err != nil {
		log.Fatalf("request-id probe failed: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		log.Fatal("no X-Request-Id generated for a request that omitted one")
	}
	log.Print("request-id round-trip OK")

	sub, err := c.SubmitGrid(ctx, []byte(smokeGrid))
	if err != nil {
		log.Fatalf("async submit failed: %v", err)
	}
	if sub.JobID == "" || sub.Hash == "" || sub.Hash != sub.GridHash {
		log.Fatalf("bad submission document: %+v", sub)
	}
	log.Printf("submitted job %s (grid %.12s…)", sub.JobID, sub.Hash)

	st, err := c.WaitJob(ctx, sub.JobID, 100*time.Millisecond)
	if err != nil {
		log.Fatalf("waiting on job %s: %v", sub.JobID, err)
	}
	if st.State != "done" {
		log.Fatalf("job %s finished in state %q: %s", sub.JobID, st.State, st.Error)
	}
	log.Printf("job done: %d/%d cells (%d from cache)", st.Done, st.Total, st.CacheHits)

	progress := 0
	result, _, err := c.StreamJob(ctx, sub.JobID, func(client.ProgressLine) { progress++ })
	if err != nil {
		log.Fatalf("replaying job stream: %v", err)
	}
	if result == nil || len(result.Cells) == 0 {
		log.Fatalf("job stream replayed no result cells (progress lines: %d)", progress)
	}
	log.Printf("stream replayed: %d progress lines, %d cells", progress, len(result.Cells))

	// The listing sees the finished job through the state filter.
	jobs, err := c.Jobs(ctx, client.JobFilter{State: "done", Kind: "grid"})
	if err != nil {
		log.Fatalf("jobs listing failed: %v", err)
	}
	found := false
	for _, j := range jobs.Jobs {
		if j.ID == sub.JobID {
			found = true
		}
	}
	if !found {
		log.Fatalf("finished job %s missing from ?state=done&kind=grid listing (%d jobs)", sub.JobID, len(jobs.Jobs))
	}

	// Trace export: a second grid submitted with ?trace=1 serves a
	// structurally valid per-cell event log once it finishes. The grid
	// differs by seed so the traced cells are not trivially cached.
	traced, err := c.SubmitGridTraced(ctx, []byte(strings.Replace(smokeGrid, `"seed": 5`, `"seed": 6`, 1)))
	if err != nil {
		log.Fatalf("traced submit failed: %v", err)
	}
	if st, err := c.WaitJob(ctx, traced.JobID, 100*time.Millisecond); err != nil || st.State != "done" {
		log.Fatalf("traced job %s: %v (state %+v)", traced.JobID, err, st)
	}
	cells, err := c.JobTrace(ctx, traced.JobID)
	if err != nil {
		log.Fatalf("fetching trace of job %s: %v", traced.JobID, err)
	}
	events := 0
	for i, cell := range cells {
		if cell.Header.Hash == "" || cell.Header.Index != i {
			log.Fatalf("malformed trace header %d: %+v", i, cell.Header)
		}
		if len(cell.Events) != cell.Header.Events {
			log.Fatalf("trace cell %d: %d event lines, header says %d", i, len(cell.Events), cell.Header.Events)
		}
		events += len(cell.Events)
	}
	if len(cells) == 0 || events == 0 {
		log.Fatalf("trace is empty: %d cells, %d events", len(cells), events)
	}
	log.Printf("trace OK: %d cells, %d events", len(cells), events)

	metrics, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("metrics scrape failed: %v", err)
	}
	var missing []string
	for _, fam := range requiredFamilies {
		if !strings.Contains(metrics, "# TYPE "+fam+" ") {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("metrics scrape is missing families: %s", strings.Join(missing, ", "))
	}
	pm, err := client.ParseMetrics(metrics)
	if err != nil {
		log.Fatalf("metrics exposition does not parse: %v", err)
	}
	for _, name := range requiredHistograms {
		h, ok := pm.HistogramAt(name, nil)
		if !ok {
			log.Fatalf("latency histogram %s missing", name)
		}
		if h.Count == 0 {
			log.Fatalf("latency histogram %s observed nothing", name)
		}
	}
	log.Printf("metrics: all %d required families present, %d histograms non-empty",
		len(requiredFamilies), len(requiredHistograms))
	fmt.Println("smoke OK")
}
