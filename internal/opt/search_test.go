package opt

import (
	"bytes"
	"encoding/json"
	"testing"

	"physched/internal/lab"
	"physched/internal/resultcache"
)

// searchStudy is a fast study with a space big enough to force pruning:
// 2 policies × 3 cache sizes × 2 loads = 12 candidates, budget 16.
func searchStudy(algorithm string) Study {
	st := smallStudy()
	st.Axes = []Axis{
		{Name: "policy", Values: []string{"outoforder", "farm"}},
		{Name: "cache_gb", Min: 6, Max: 24, Steps: 3},
		{Name: "load", Min: 0.6, Max: 1.0, Steps: 2},
	}
	st.Search = Search{Algorithm: algorithm, BudgetCells: 16, Replications: 4, Seed: 2}
	return st
}

// TestRunRespectsBudget: both drivers charge at most budget cells, and a
// study's evaluations all reach the report's leaderboard accounting.
func TestRunRespectsBudget(t *testing.T) {
	for _, alg := range []string{"random", "halving"} {
		rep, err := Run(searchStudy(alg), Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.EvaluatedCells > rep.Budget {
			t.Errorf("%s: evaluated %d cells over budget %d", alg, rep.EvaluatedCells, rep.Budget)
		}
		if rep.EvaluatedCells == 0 || rep.Candidates == 0 {
			t.Errorf("%s: nothing evaluated: %+v", alg, rep)
		}
		if rep.SimulatedCells+rep.CacheHits < rep.EvaluatedCells {
			t.Errorf("%s: accounting inconsistent: %+v", alg, rep)
		}
		if rep.Best == nil || rep.Best.Rank != 1 || len(rep.Leaderboard) == 0 {
			t.Errorf("%s: no winner reported: %+v", alg, rep)
		}
		if rep.Algorithm != alg || len(rep.StudyHash) != 64 {
			t.Errorf("%s: bad report identity: %+v", alg, rep)
		}
		if alg == "halving" && len(rep.Rungs) < 2 {
			t.Errorf("halving ran %d rungs, want ≥ 2: %+v", len(rep.Rungs), rep.Rungs)
		}
	}
}

// TestWarmCacheReSimulatesNothing is the core cache acceptance: the same
// study against the cache a first run filled re-simulates zero cells and
// reports identical findings.
func TestWarmCacheReSimulatesNothing(t *testing.T) {
	for _, alg := range []string{"random", "halving"} {
		cache := resultcache.NewMemory()
		first, err := Run(searchStudy(alg), Options{Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if first.SimulatedCells == 0 {
			t.Fatalf("%s: cold run simulated nothing", alg)
		}
		second, err := Run(searchStudy(alg), Options{Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if second.SimulatedCells != 0 {
			t.Errorf("%s: warm run re-simulated %d cells", alg, second.SimulatedCells)
		}
		if second.EvaluatedCells != first.EvaluatedCells {
			t.Errorf("%s: warm run charged %d cells, cold charged %d — budget must not depend on cache state",
				alg, second.EvaluatedCells, first.EvaluatedCells)
		}
		a, _ := json.Marshal(first.Leaderboard)
		b, _ := json.Marshal(second.Leaderboard)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: warm-cache leaderboard diverged:\n%s\n%s", alg, a, b)
		}
		if aj, bj := mustJSON(t, first.Trajectory), mustJSON(t, second.Trajectory); !bytes.Equal(aj, bj) {
			t.Errorf("%s: warm-cache trajectory diverged:\n%s\n%s", alg, aj, bj)
		}
	}
}

// TestStudyDeterministicAcrossExecutionModes pins the determinism
// contract: the same study hash yields the same winner — in fact a
// byte-identical report — across serial, parallel and shared-pool
// execution.
func TestStudyDeterministicAcrossExecutionModes(t *testing.T) {
	for _, alg := range []string{"random", "halving"} {
		pool := lab.NewPool(4)
		modes := []Options{
			{Workers: 1},
			{Workers: 8},
			{Pool: pool},
		}
		var reports [][]byte
		for _, o := range modes {
			rep, err := Run(searchStudy(alg), o)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			reports = append(reports, mustJSON(t, rep))
		}
		pool.Close()
		for i := 1; i < len(reports); i++ {
			if !bytes.Equal(reports[0], reports[i]) {
				t.Errorf("%s: execution mode %d diverged from serial:\n%s\n%s",
					alg, i, reports[0], reports[i])
			}
		}
	}
}

// TestHalvingExploresMoreCandidatesThanRandom: at equal budget the
// halving driver spends its early rungs widening the explored set — the
// mechanism by which it wins on spaces larger than random's sample.
func TestHalvingExploresMoreCandidatesThanRandom(t *testing.T) {
	random, err := Run(searchStudy("random"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	halving, err := Run(searchStudy("halving"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if halving.Candidates <= random.Candidates {
		t.Errorf("halving explored %d candidates, random %d — halving should explore more",
			halving.Candidates, random.Candidates)
	}
	if halving.Best == nil || random.Best == nil {
		t.Fatal("missing winners")
	}
	if random.Best.Replicas != halving.Best.Replicas {
		t.Errorf("winners compared at different depths: %d vs %d replicas",
			random.Best.Replicas, halving.Best.Replicas)
	}
}

// TestTrajectoryMonotone: the best-vs-budget curve never regresses and
// stays within budget.
func TestTrajectoryMonotone(t *testing.T) {
	st := searchStudy("halving")
	rep, err := Run(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	obj := rep.Objective
	for i, p := range rep.Trajectory {
		if p.EvaluatedCells > rep.Budget {
			t.Errorf("trajectory point %d spent %d cells over budget", i, p.EvaluatedCells)
		}
		if i > 0 {
			prev := rep.Trajectory[i-1]
			if p.EvaluatedCells <= prev.EvaluatedCells || obj.better(prev.Best, p.Best) {
				t.Errorf("trajectory not monotone at %d: %+v after %+v", i, p, prev)
			}
		}
	}
	if rep.Render() == "" || rep.TrajectoryPlot() == "" {
		t.Error("rendering produced no output")
	}
}

// TestProgressStreams: the progress hook sees every completed cell with
// monotone Done and the study budget.
func TestProgressStreams(t *testing.T) {
	var events []Progress
	st := searchStudy("halving")
	rep, err := Run(st, Options{Workers: 1, Progress: func(p Progress) { events = append(events, p) }})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.SimulatedCells + rep.CacheHits
	if len(events) != total {
		t.Fatalf("saw %d progress events, want %d", len(events), total)
	}
	for i, p := range events {
		if p.Done != i+1 || p.Budget != st.Search.BudgetCells || p.Label == "" || p.Phase == "" {
			t.Errorf("bad progress event %d: %+v", i, p)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
