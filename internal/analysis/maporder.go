package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"physched/internal/analysis/driver"
)

// MapOrder flags `for range` over a map when the loop body is
// order-sensitive — Go randomises map iteration order per run, so any
// order-dependent fold over a map is nondeterminism waiting for a golden
// file to catch it (PR 1 shipped exactly this fix for the cache-oriented
// policy's dispatch map). A loop is order-sensitive when it appends to a
// slice that outlives the loop, sends on a channel, writes output
// (fmt.Print*/Fprint*, Write* methods), enqueues work (Push/Enqueue/
// Schedule/Emit methods), or folds floating-point values with a compound
// assignment (float addition is not associative — a sort cannot rescue
// it, the fold must be restructured).
//
// Two escapes keep the idiomatic patterns legal:
//
//   - collect-then-sort: when every order-sensitive operation is an
//     append and each appended slice is passed to a sort.*/slices.Sort*
//     call later in the same enclosing block, the loop is fine — that is
//     the repo's standard registry-listing idiom;
//   - //physched:orderinvariant <reason> on the range statement, for
//     loops whose order-insensitivity the analyzer cannot see.
var MapOrder = &driver.Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over maps (sort afterwards or annotate //physched:orderinvariant)",
	Run:  runMapOrder,
}

func runMapOrder(pass *driver.Pass) error {
	supp := newSuppressions(pass)
	for _, f := range pass.Files {
		blocks := stmtBlocks(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if supp.allows(rng.Pos(), "orderinvariant") {
				return true
			}
			sens := classifyBody(pass, rng)
			if len(sens.hard) == 0 && len(sens.appends) == 0 {
				return true // order-insensitive body
			}
			if len(sens.hard) == 0 && allSorted(pass, blocks, rng, sens.appends) {
				return true // collect-then-sort idiom
			}
			what := sens.describe()
			pass.Reportf(rng.Pos(),
				"order-sensitive range over map (%s): map iteration order is randomised; sort the collected result, or annotate //physched:orderinvariant <reason>",
				what)
			return true
		})
	}
	return nil
}

// sensitivity collects what makes a loop body order-dependent. appends
// are rescueable by a later sort; hard operations are not.
type sensitivity struct {
	appends []types.Object // slices appended to (rescue: sort afterwards)
	hard    []string       // descriptions of unsortable order-sensitive ops
}

func (s sensitivity) describe() string {
	var parts []string
	if len(s.appends) > 0 {
		parts = append(parts, "appends to a slice without sorting it afterwards")
	}
	parts = append(parts, s.hard...)
	return strings.Join(parts, "; ")
}

// orderSensitiveMethods are method names that feed an ordered consumer:
// event queues, deques, output buffers.
var orderSensitiveMethods = map[string]string{
	"Push": "enqueues events", "Enqueue": "enqueues events",
	"Schedule": "schedules events", "Emit": "emits output",
	"Write": "writes output", "WriteString": "writes output",
	"WriteByte": "writes output", "WriteRune": "writes output",
}

func classifyBody(pass *driver.Pass, rng *ast.RangeStmt) sensitivity {
	var s sensitivity
	addHard := func(desc string) {
		for _, h := range s.hard {
			if h == desc {
				return
			}
		}
		s.hard = append(s.hard, desc)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			addHard("sends on a channel")
		case *ast.AssignStmt:
			// x = append(x, ...) — collect the target for the sort check.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
						continue
					}
					if obj := rootObject(pass, n.Lhs[i]); obj != nil {
						s.appends = append(s.appends, obj)
					} else {
						addHard("appends to a slice the analyzer cannot track")
					}
				}
			}
			// sum += v on floats: order-dependent rounding, unsortable.
			// Exception: an lvalue indexed by the loop key (busy[k] += ...)
			// touches a disjoint slot per iteration, so order cannot matter.
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					tv, ok := pass.TypesInfo.Types[lhs]
					if !ok || !isFloat(tv.Type) {
						continue
					}
					if indexedByRangeKey(pass, rng, lhs) {
						continue
					}
					addHard("accumulates floating point (rounding is order-dependent)")
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkgPath, ok := selectorPackage(pass, sel); ok && pkgPath == "fmt" {
					if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
						addHard("writes output via fmt." + sel.Sel.Name)
					}
				} else if desc, sensitive := orderSensitiveMethods[sel.Sel.Name]; sensitive {
					// Method call on some receiver (not a package selector).
					addHard(desc + " via ." + sel.Sel.Name)
				}
			}
		}
		return true
	})
	return s
}

// indexedByRangeKey reports whether lhs is an index expression whose
// index mentions the range statement's key variable: each iteration then
// writes a distinct element, which is order-invariant by construction.
func indexedByRangeKey(pass *driver.Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyIdent]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyIdent]
	}
	if keyObj == nil {
		return false
	}
	idx, ok := lhs.(*ast.IndexExpr)
	return ok && argRefersTo(pass, idx.Index, keyObj)
}

func isBuiltinAppend(pass *driver.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObject resolves the base identifier of an lvalue (x, x.f, x[i].f)
// to its object, so an append inside the loop can be matched against a
// sort call after it.
func rootObject(pass *driver.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// stmtBlocks maps every statement to its enclosing statement list and
// index, so "what follows this range statement" is answerable.
type blockIndex map[ast.Stmt]blockPos

type blockPos struct {
	list []ast.Stmt
	idx  int
}

func stmtBlocks(f *ast.File) blockIndex {
	bi := blockIndex{}
	record := func(list []ast.Stmt) {
		for i, st := range list {
			bi[st] = blockPos{list, i}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return bi
}

// allSorted reports whether every appended-to slice is passed to a
// sort.* / slices.Sort* call in a statement after the range loop in its
// enclosing block.
func allSorted(pass *driver.Pass, blocks blockIndex, rng *ast.RangeStmt, targets []types.Object) bool {
	pos, ok := blocks[ast.Stmt(rng)]
	if !ok {
		return false
	}
	following := pos.list[pos.idx+1:]
	for _, target := range targets {
		if !sortedIn(pass, following, target) {
			return false
		}
	}
	return true
}

func sortedIn(pass *driver.Pass, stmts []ast.Stmt, target types.Object) bool {
	for _, st := range stmts {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if argRefersTo(pass, arg, target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognises sort.{Sort,Stable,Strings,Ints,Float64s,Slice,
// SliceStable} and slices.Sort*.
func isSortCall(pass *driver.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, ok := selectorPackage(pass, sel)
	if !ok {
		return false
	}
	switch pkgPath {
	case "sort":
		switch sel.Sel.Name {
		case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
			return true
		}
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

func argRefersTo(pass *driver.Pass, arg ast.Expr, target types.Object) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[id] == target {
			found = true
			return false
		}
		return true
	})
	return found
}
