package workload

import (
	"testing"

	"physched/internal/model"
)

func testArgs() Args {
	return Args{Params: model.PaperCalibrated(), Seed: 1, JobsPerHour: 1.5}
}

func TestResolveBuiltins(t *testing.T) {
	for _, name := range []string{"", "poisson", "daynight"} {
		src, err := Resolve(name, testArgs())
		if err != nil {
			t.Errorf("Resolve(%q): %v", name, err)
			continue
		}
		j := src.Next()
		if j == nil || j.Arrival < 0 || j.Range.Len() <= 0 {
			t.Errorf("Resolve(%q) produced a bad first job: %+v", name, j)
		}
	}
}

func TestResolveEmptyNameIsPoisson(t *testing.T) {
	a, err := Resolve("", testArgs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve("poisson", testArgs())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ja, jb := a.Next(), b.Next()
		if ja.Arrival != jb.Arrival || ja.Range != jb.Range {
			t.Fatalf("job %d diverged: %+v vs %+v", i, ja, jb)
		}
	}
}

func TestResolveUnknownKind(t *testing.T) {
	if _, err := Resolve("bogus", testArgs()); err == nil {
		t.Error("unknown workload kind accepted")
	}
}

func TestResolveValidatesArgs(t *testing.T) {
	bad := []struct {
		name string
		args Args
	}{
		{"poisson", Args{Params: model.PaperCalibrated()}},                                      // zero rate
		{"poisson", Args{Params: model.PaperCalibrated(), JobsPerHour: 1, Swing: 0.5}},          // dead swing
		{"poisson", Args{Params: model.PaperCalibrated(), JobsPerHour: 1, PeakJobsPerHour: 2}},  // dead peak
		{"daynight", Args{Params: model.PaperCalibrated(), JobsPerHour: 1, Swing: 1.5}},         // swing out of range
		{"daynight", Args{Params: model.PaperCalibrated(), JobsPerHour: 2, PeakJobsPerHour: 1}}, // peak below mean
	}
	for i, tc := range bad {
		if _, err := Resolve(tc.name, tc.args); err == nil {
			t.Errorf("case %d (%s): invalid args accepted", i, tc.name)
		}
	}
}

func TestRegisterRejectsDuplicatesAndBadInput(t *testing.T) {
	if err := Register("poisson", func(Args) (Source, error) { return nil, nil }); err == nil {
		t.Error("double registration of \"poisson\" accepted")
	}
	if err := Register("", func(Args) (Source, error) { return nil, nil }); err == nil {
		t.Error("empty-name registration accepted")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Error("nil factory accepted")
	}
}
