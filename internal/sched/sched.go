// Package sched implements the paper's scheduling policies behind a common
// plugin interface (the paper's "plugin model, enabling new scheduling
// policies to be easily added"):
//
//	farm           processing-farm FCFS baseline (§3.1)
//	splitting      job splitting across idle nodes, no caching (Table 1)
//	cacheoriented  cache-oriented job splitting, FIFO across jobs (Table 2)
//	outoforder     out-of-order, cache-affine scheduling (Table 3)
//	               (+ optional data replication, §4.2)
//	delayed        delayed scheduling with periods and stripes (Table 4)
//	adaptive       adaptive-delay scheduling (§6)
package sched

import (
	"physched/internal/cache"
	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

// Policy is a scheduling policy plugin. The runner wires JobArrived to the
// workload stream and SubjobDone to the cluster's completion callback.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// ClusterConfig returns the data-path features the policy needs.
	ClusterConfig() cluster.Config

	// Attach binds the policy to a cluster before the simulation starts.
	Attach(c *cluster.Cluster)

	// JobArrived admits a new job.
	JobArrived(j *job.Job)

	// SubjobDone reacts to a subjob completing on node n.
	SubjobDone(n *cluster.Node, sj *job.Subjob)
}

// NodeStateObserver is optionally implemented by a Policy that wants to
// own its reaction to node churn (cluster.FaultModel). NodeDown receives
// the subjob the failing node lost, or nil when it was idle; the policy
// then owns the lost work and must eventually re-dispatch it. NodeUp
// fires on repair and late join.
//
// Policies that do not implement it keep working unchanged: a down node
// reports Idle() == false and Running() == nil, so idle scans skip it and
// preemption logic never touches it, and the lab's generic requeue
// adapter re-dispatches lost subjobs on the next node that goes idle.
type NodeStateObserver interface {
	NodeDown(n *cluster.Node, lost *job.Subjob)
	NodeUp(n *cluster.Node)
}

// base carries the state shared by all policies.
type base struct {
	c      *cluster.Cluster
	eng    *sim.Engine
	params model.Params

	// cachePieces scratch, reused across calls. Policies consume the
	// returned slice before partitioning again, so one pair per policy
	// suffices.
	rawScratch   []cache.NodePiece
	pieceScratch []cache.NodePiece
}

func (b *base) Attach(c *cluster.Cluster) {
	b.c = c
	b.eng = c.Engine()
	b.params = c.Params()
}

// now returns the current simulated time.
func (b *base) now() float64 { return b.eng.Now() }

// minSize is the smallest subjob the policies may create.
func (b *base) minSize() int64 { return b.params.MinSubjobEvents }

// arena returns the run's shared job/subjob arena.
func (b *base) arena() *job.Arena { return b.c.Arena() }

// cachePieces splits a job's range along the cluster cache-content
// boundaries so that every piece is either fully cached on one node or
// cached nowhere (the splitting rule shared by Tables 2, 3 and 4), then
// merges pieces smaller than the policy minimum into their successors.
// The returned slice lives in the policy's scratch buffer: it is valid
// only until the next cachePieces call on the same policy.
func (b *base) cachePieces(iv dataspace.Interval, minEvents int64) []cache.NodePiece {
	c := b.c
	raw := c.Index().AppendPartitionByNode(iv, b.rawScratch[:0])
	b.rawScratch = raw
	out := b.pieceScratch[:0]
	for _, p := range raw {
		pc := cache.NodePiece{Interval: p.Interval, Node: p.Node}
		if n := len(out); n > 0 && out[n-1].Interval.Len() < minEvents {
			// Too-small predecessor: absorb it. The merged piece counts as
			// cached only if both parts were on the same node.
			prev := out[n-1]
			pc.Interval = dataspace.Iv(prev.Interval.Start, p.Interval.End)
			if prev.Node != p.Node {
				pc.Node = pickNode(c, prev, p)
			}
			out[n-1] = pc
			continue
		}
		out = append(out, pc)
	}
	// A trailing too-small piece merges backwards.
	if n := len(out); n >= 2 && out[n-1].Interval.Len() < minEvents {
		prev, last := out[n-2], out[n-1]
		merged := cache.NodePiece{
			Interval: dataspace.Iv(prev.Interval.Start, last.Interval.End),
			Node:     prev.Node,
		}
		if prev.Node != last.Node {
			merged.Node = pickNode(c, prev, last)
		}
		out = append(out[:n-2], merged)
	}
	b.pieceScratch = out
	return out
}

// pickNode attributes a merged piece to the node caching more of it, or to
// no node when neither dominates.
func pickNode(c *cluster.Cluster, a, b cache.NodePiece) int {
	merged := dataspace.Iv(a.Interval.Start, b.Interval.End)
	best, amt := c.Index().BestNodeFor(merged)
	if amt*2 >= merged.Len() {
		return best
	}
	return -1
}
