package experiments

import (
	"fmt"
	"strings"

	"physched/internal/cache"
	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/sched"
	"physched/internal/stats"
)

// This file holds the ablation studies DESIGN.md §4 indexes: design
// choices the paper fixes (LRU eviction, remote reads for stolen subjobs,
// the replicate-on-3rd-access threshold, the hot-region workload skew, the
// cluster size) are varied here to show how much each one carries.

// withConfig overrides the cluster data-path configuration of a policy,
// leaving its scheduling logic untouched.
type withConfig struct {
	sched.Policy
	cfg cluster.Config
}

func (w withConfig) ClusterConfig() cluster.Config { return w.cfg }

// AblationRow is one variant of an ablation study at one load.
type AblationRow struct {
	Variant string
	Load    float64
	Result  lab.Result
}

// AblationEviction compares LRU against FIFO cache eviction under the
// out-of-order policy. The paper's scheduler "deallocates the least
// recently used cached segments"; FIFO ignores reuse and should lose
// ground on the hot regions.
func AblationEviction(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.8, 1.8)
	variants := []lab.Variant{
		{Label: "LRU eviction", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
		{Label: "FIFO eviction", NewPolicy: func() sched.Policy {
			p := sched.NewOutOfOrder()
			cfg := p.ClusterConfig()
			cfg.Eviction = cache.EvictFIFO
			return withConfig{Policy: p, cfg: cfg}
		}},
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// AblationStealSource compares reading stolen subjobs' data remotely (the
// §4.2 choice) against re-reading it from tertiary storage.
func AblationStealSource(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.8, 1.8)
	variants := []lab.Variant{
		{Label: "steal reads remote", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
		{Label: "steal re-reads tape", NewPolicy: func() sched.Policy {
			p := sched.NewOutOfOrder()
			cfg := p.ClusterConfig()
			cfg.RemoteReads = false
			return withConfig{Policy: p, cfg: cfg}
		}},
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// AblationReplicationThreshold varies the replicate-after-N-remote-accesses
// threshold (the paper picks 3 and finds replication irrelevant either
// way).
func AblationReplicationThreshold(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 1.0, 1.8)
	var variants []lab.Variant
	for _, n := range []int64{1, 2, 3, 5} {
		n := n
		variants = append(variants, lab.Variant{
			Label: fmt.Sprintf("replicate after %d", n),
			NewPolicy: func() sched.Policy {
				p := sched.NewReplication()
				cfg := p.ClusterConfig()
				cfg.ReplicateAfter = n
				return withConfig{Policy: p, cfg: cfg}
			},
		})
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// AblationHotspot varies the workload's hot-region weight. The paper's
// default sends 50% of job start points into 10% of the dataspace; without
// that skew caches cover a smaller fraction of the touched data.
func AblationHotspot(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.8, 1.6)
	var variants []lab.Variant
	for _, w := range []float64{0, 0.25, 0.5, 0.75} {
		w := w
		variants = append(variants, lab.Variant{
			Label:     fmt.Sprintf("hot weight %.0f%%", 100*w),
			NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
			Mutate:    func(s *lab.Scenario) { s.Params.HotWeight = w },
		})
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// FutureWorkPipelining implements and evaluates the paper's §7 future-work
// item: overlapping data transfers with computation. Pipelining makes an
// uncached event cost max(CPU, transfer) instead of their sum, which both
// accelerates cache misses and raises every load bound.
func FutureWorkPipelining(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.8, 2.2)
	variants := []lab.Variant{
		{Label: "paper model (no overlap)", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
		{Label: "pipelined transfers", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
			Mutate: func(s *lab.Scenario) { s.Params.PipelinedTransfers = true }},
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// BaselineComparison pits the paper's dynamic policies against two
// baselines this repo adds: static data partitioning (one owner node per
// dataspace slice — the classical alternative the related work cites) and
// a cache-affine farm (caching and affinity routing, but no job
// splitting). It decomposes the cache-oriented gain into its caching and
// parallelism parts and shows what dynamic placement buys over static
// ownership under the hot-skewed workload.
func BaselineComparison(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.7, 1.6)
	variants := []lab.Variant{
		{Label: "partitioned (static ownership)", NewPolicy: func() sched.Policy { return sched.NewPartitioned() }},
		{Label: "affine farm (caching, no splitting)", NewPolicy: func() sched.Policy { return sched.NewAffineFarm() }},
		{Label: "cache-oriented splitting", NewPolicy: func() sched.Policy { return sched.NewCacheOriented() }},
		{Label: "out-of-order", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// HeterogeneityStudy relaxes the paper's "all nodes are identical"
// assumption (§2.4): half the nodes run at double CPU cost. It compares
// how the farm (blind placement) and out-of-order (work stealing) policies
// absorb the imbalance at equal aggregate CPU capacity.
func HeterogeneityStudy(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.6, 1.4)
	mixed := make([]float64, 10)
	for i := range mixed {
		// Factors 2/3 and 2: five fast and five slow nodes whose combined
		// speed 5/f1+5/f2 = 5·1.5+5·0.5 = 10 equals ten identical nodes.
		if i < 5 {
			mixed[i] = 2.0 / 3.0
		} else {
			mixed[i] = 2.0
		}
	}
	hetero := func(s *lab.Scenario) { s.Params.NodeSpeedFactors = mixed }
	variants := []lab.Variant{
		{Label: "farm, identical nodes", NewPolicy: func() sched.Policy { return sched.NewFarm() }},
		{Label: "farm, mixed speeds", NewPolicy: func() sched.Policy { return sched.NewFarm() }, Mutate: hetero},
		{Label: "out-of-order, identical nodes", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
		{Label: "out-of-order, mixed speeds", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }, Mutate: hetero},
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// NodeCountRow is one cluster size of the §2.4 scaling check.
type NodeCountRow struct {
	Nodes       int
	Utilisation float64 // load as a fraction of that cluster's maximum
	Result      lab.Result
	Efficiency  float64 // speedup / nodes
}

// NodeCountStudy reproduces the §2.4 remark that simulations with 5, 10
// and 20 nodes "lead to similar results": at equal utilisation the per-node
// efficiency of the out-of-order policy should be nearly constant. Each
// (nodes, utilisation) combination is one grid variant whose mutation
// binds both the cluster size and the matching absolute load.
func NodeCountStudy(q Quality, seed int64) []NodeCountRow {
	type cfg struct {
		nodes int
		util  float64
	}
	var cfgs []cfg
	var variants []lab.Variant
	for _, nodes := range []int{5, 10, 20} {
		for _, util := range []float64{0.3, 0.45} {
			nodes, util := nodes, util
			cfgs = append(cfgs, cfg{nodes, util})
			variants = append(variants, lab.Variant{
				Label:     fmt.Sprintf("%d nodes @ %.0f%%", nodes, 100*util),
				NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
				Mutate: func(s *lab.Scenario) {
					s.Params.Nodes = nodes
					s.Load = util * s.Params.MaxTheoreticalLoad()
				},
			})
		}
	}
	base := baseScenario(q, seed)
	rs := grid(base, nil, variants)
	rows := make([]NodeCountRow, len(cfgs))
	for i, c := range cfgs {
		r := rs.Result(i, 0, 0)
		row := NodeCountRow{Nodes: c.nodes, Utilisation: c.util, Result: r}
		if !r.Overloaded {
			row.Efficiency = r.AvgSpeedup / float64(c.nodes)
		}
		rows[i] = row
	}
	return rows
}

// ablate sweeps all variants and flattens the curves into rows.
func ablate(base lab.Scenario, loads []float64, variants []lab.Variant) []AblationRow {
	var rows []AblationRow
	for _, c := range sweepCurves(base, loads, variants) {
		for _, r := range c.Results {
			rows = append(rows, AblationRow{Variant: c.Label, Load: r.Load, Result: r})
		}
	}
	return rows
}

// RenderAblation renders ablation rows grouped by variant.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	var lastVariant string
	for _, r := range rows {
		if r.Variant != lastVariant {
			fmt.Fprintf(&b, "  %s\n", r.Variant)
			fmt.Fprintf(&b, "    %-10s %-10s %-14s %s\n", "load", "speedup", "avg waiting", "state")
			lastVariant = r.Variant
		}
		if r.Result.Overloaded {
			fmt.Fprintf(&b, "    %-10.2f %-10s %-14s overloaded\n", r.Load, "-", "-")
			continue
		}
		fmt.Fprintf(&b, "    %-10.2f %-10.2f %-14s steady\n",
			r.Load, r.Result.AvgSpeedup, stats.FormatDuration(r.Result.AvgWaiting))
	}
	return b.String()
}

// RenderNodeCount renders the §2.4 scaling table.
func RenderNodeCount(rows []NodeCountRow) string {
	var b strings.Builder
	b.WriteString("§2.4: cluster-size scaling (5/10/20 nodes lead to similar results)\n\n")
	fmt.Fprintf(&b, "  %-8s %-14s %-10s %-12s %s\n", "nodes", "utilisation", "speedup", "efficiency", "state")
	for _, r := range rows {
		if r.Result.Overloaded {
			fmt.Fprintf(&b, "  %-8d %-14.2f %-10s %-12s overloaded\n", r.Nodes, r.Utilisation, "-", "-")
			continue
		}
		fmt.Fprintf(&b, "  %-8d %-14.2f %-10.2f %-12.3f steady\n",
			r.Nodes, r.Utilisation, r.Result.AvgSpeedup, r.Efficiency)
	}
	return b.String()
}
