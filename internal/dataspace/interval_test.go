package dataspace

import (
	"testing"
	"testing/quick"
)

func TestIntervalLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{Iv(0, 10), 10},
		{Iv(5, 5), 0},
		{Iv(7, 3), 0},
		{Iv(-4, 4), 8},
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Iv(10, 20)
	for _, e := range []int64{10, 15, 19} {
		if !iv.Contains(e) {
			t.Errorf("%v should contain %d", iv, e)
		}
	}
	for _, e := range []int64{9, 20, 100} {
		if iv.Contains(e) {
			t.Errorf("%v should not contain %d", iv, e)
		}
	}
}

func TestIntervalOverlapsAndIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		want    Interval
	}{
		{Iv(0, 10), Iv(5, 15), true, Iv(5, 10)},
		{Iv(0, 10), Iv(10, 20), false, Interval{}},
		{Iv(0, 10), Iv(2, 8), true, Iv(2, 8)},
		{Iv(5, 5), Iv(0, 10), false, Interval{}},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v", c.a, c.b, got)
		}
		if got := c.a.Intersect(c.b); got != c.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalSplitAt(t *testing.T) {
	iv := Iv(0, 10)
	l, r := iv.SplitAt(4)
	if l != Iv(0, 4) || r != Iv(4, 10) {
		t.Errorf("SplitAt(4) = %v, %v", l, r)
	}
	l, r = iv.SplitAt(-1)
	if !l.Empty() || r != iv {
		t.Errorf("SplitAt before start = %v, %v", l, r)
	}
	l, r = iv.SplitAt(10)
	if l != iv || !r.Empty() {
		t.Errorf("SplitAt at end = %v, %v", l, r)
	}
}

func TestIntervalHalves(t *testing.T) {
	a, b := Iv(0, 11).Halves()
	if a.Len()+b.Len() != 11 || a.End != b.Start || a.Start != 0 || b.End != 11 {
		t.Errorf("Halves = %v, %v", a, b)
	}
}

func TestIntersectProperties(t *testing.T) {
	norm := func(a, b int64) Interval {
		if a > b {
			a, b = b, a
		}
		return Iv(a%1000, b%1000+500)
	}
	commutes := func(a1, a2, b1, b2 int64) bool {
		a, b := norm(a1, a2), norm(b1, b2)
		x, y := a.Intersect(b), b.Intersect(a)
		if x != y {
			return false
		}
		// Intersection is contained in both operands.
		return a.ContainsInterval(x) && b.ContainsInterval(x)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
}
