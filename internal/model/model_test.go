package model

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestPaperStatedValidates(t *testing.T) {
	if err := PaperStated().Validate(); err != nil {
		t.Fatalf("PaperStated invalid: %v", err)
	}
	if err := PaperCalibrated().Validate(); err != nil {
		t.Fatalf("PaperCalibrated invalid: %v", err)
	}
}

func TestCalibratedDerivedQuantities(t *testing.T) {
	p := PaperCalibrated()
	almost(t, "SingleNodeNoCacheTime", p.SingleNodeNoCacheTime(), 32_000, 1)
	almost(t, "MaxTheoreticalLoad", p.MaxTheoreticalLoad(), 3.46, 0.001)
	almost(t, "CachingGain", p.CachingGain(), 3.076, 0.01)
	almost(t, "FarmMaxLoad", p.FarmMaxLoad(), 1.125, 0.001)
	almost(t, "MaxSpeedup", p.MaxSpeedup(), 30.8, 0.1)
}

func TestStatedDerivedQuantities(t *testing.T) {
	p := PaperStated()
	// Stated constants: uncached event = 0.2 + 0.6 = 0.8s, cached = 0.26s.
	almost(t, "EventTimeTape", p.EventTimeTape(), 0.8, 1e-9)
	almost(t, "EventTimeCached", p.EventTimeCached(), 0.26, 1e-9)
	almost(t, "CachingGain", p.CachingGain(), 0.8/0.26, 1e-9)
	if p.TotalEvents() != 2_000*GB/600_000 {
		t.Errorf("TotalEvents = %d", p.TotalEvents())
	}
	if p.CacheEvents() != 100*GB/600_000 {
		t.Errorf("CacheEvents = %d", p.CacheEvents())
	}
}

func TestEventTimeRemoteBetweenCachedAndTape(t *testing.T) {
	for _, p := range []Params{PaperStated(), PaperCalibrated()} {
		r := p.EventTimeRemote()
		if r <= p.EventTimeCached() || r >= p.EventTimeTape() {
			t.Errorf("EventTimeRemote %v not in (%v, %v)",
				r, p.EventTimeCached(), p.EventTimeTape())
		}
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.EventCPUTime = 0 },
		func(p *Params) { p.EventBytes = -1 },
		func(p *Params) { p.DataspaceBytes = 100 },
		func(p *Params) { p.DiskBytesPerSec = 0 },
		func(p *Params) { p.TapeBytesPerSec = -3 },
		func(p *Params) { p.NetworkBytesPerSec = 0 },
		func(p *Params) { p.CacheBytes = -1 },
		func(p *Params) { p.MeanJobEvents = 0 },
		func(p *Params) { p.ErlangShape = 0 },
		func(p *Params) { p.MinSubjobEvents = 0 },
		func(p *Params) { p.HotFraction = 1.5 },
		func(p *Params) { p.HotWeight = -0.1 },
		func(p *Params) { p.HotRegions = 0 },
	}
	for i, mutate := range mutations {
		p := PaperStated()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid params", i)
		}
	}
}
