package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"physched/internal/lab"
	"physched/internal/resultcache"
	"physched/internal/sched"
	"physched/internal/spec"
	"physched/internal/workload"
)

// serverConfig wires the spec layer, the shared lab pool and the result
// cache behind the HTTP API.
type serverConfig struct {
	Cache resultcache.Store
	// Pool is the server-wide execution pool: every request's simulation
	// cells run on it, so its worker bound caps concurrent simulations
	// across all in-flight requests. nil creates a GOMAXPROCS-wide pool.
	Pool *lab.Pool
	// MaxCells rejects grids with more cells than this (0 = unlimited).
	MaxCells int
	// MaxInflight rejects new executions with 429 once this many grid or
	// spec requests are already executing (0 = unlimited). Admission
	// control, not queueing: rejected clients retry, they do not pile up.
	MaxInflight int
	// MaxJobs bounds async-job retention (finished jobs are evicted
	// oldest-first past the cap). 0 means defaultMaxJobs.
	MaxJobs int
	// Clock supplies job-lifecycle timestamps (created/finished/age).
	// nil wires the real clock; tests inject a fake for deterministic
	// lifecycle assertions.
	Clock func() time.Time
}

const defaultMaxJobs = 64

type server struct {
	cache       resultcache.Store
	pool        *lab.Pool
	maxCells    int
	maxInflight int
	clock       func() time.Time
	jobs        *jobManager
	studies     *reportStore

	mu       sync.Mutex
	inflight int
}

// maxStudyReports bounds in-memory study-report retention (oldest-first
// eviction; an evicted report is rebuilt at cache speed by re-POSTing).
const maxStudyReports = 256

func newServer(cfg serverConfig) *server {
	if cfg.Pool == nil {
		cfg.Pool = lab.NewPool(0)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = defaultMaxJobs
	}
	if cfg.Clock == nil {
		// The one deliberate wall-clock read in this package: everything
		// downstream receives the injected clock.
		cfg.Clock = time.Now //physched:walltime service wiring site: job timestamps come from the real clock in production
	}
	return &server{
		cache:       cfg.Cache,
		pool:        cfg.Pool,
		maxCells:    cfg.MaxCells,
		maxInflight: cfg.MaxInflight,
		clock:       cfg.Clock,
		jobs:        newJobManager(cfg.MaxJobs),
		studies:     newReportStore(maxStudyReports),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/specs", s.handleSpec)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("POST /v1/studies", s.handleStudies)
	mux.HandleFunc("GET /v1/studies/{hash}", s.handleStudyReport)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/aggregates/{hash}", s.handleAggregate)
	return mux
}

// admit reserves one execution slot; false means the server is at its
// -max-inflight bound and the request must be rejected with 429.
func (s *server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxInflight > 0 && s.inflight >= s.maxInflight {
		return false
	}
	s.inflight++
	return true
}

// release returns an execution slot taken by admit.
func (s *server) release() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// writeJSON writes v as one JSON document, reporting a failed write (the
// client is gone; there is nothing further to send it).
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// writeError reports err as {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"policies": sched.Names()})
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"workloads": workload.Names()})
}

// specResponse is the body of a single-spec run.
type specResponse struct {
	Hash      string     `json:"hash"`
	FromCache bool       `json:"from_cache"`
	Result    lab.Result `json:"result"`
}

// handleSpec runs one declarative spec on the shared pool, serving and
// feeding the content-addressed cache. Hit and miss responses are built
// from the same stored value, so apart from from_cache they are
// byte-identical.
func (s *server) handleSpec(w http.ResponseWriter, r *http.Request) {
	sp, err := spec.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash, err := sp.Hash() // validates
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if res, ok := s.cache.Get(hash); ok {
		writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
		return
	}
	sc, err := sp.Scenario()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !s.admit() {
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server is executing %d requests, the -max-inflight limit", s.maxInflight))
		return
	}
	defer s.release()
	var res lab.Result
	var runErr error
	ran := false
	err = s.pool.Run(r.Context(), 1, func(int) { ran = true; res, runErr = lab.RunE(sc) })
	if !ran {
		// Cancelled before the run started, or the pool is shutting
		// down; say so rather than sending an empty 200.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("spec not executed: %w", err))
		return
	}
	// A cancellation that landed mid-run (err != nil, ran == true) still
	// produced a complete result: cache it and respond — if the client
	// really is gone the write simply fails.
	if runErr != nil {
		writeError(w, http.StatusUnprocessableEntity, runErr)
		return
	}
	// Responding with the stored copy keeps hit and miss bodies
	// identical.
	stored := res.Stored()
	s.cache.Put(hash, stored)
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, Result: stored})
}

// progressLine is one NDJSON progress event of a grid run.
type progressLine struct {
	Type       string  `json:"type"` // "progress"
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Label      string  `json:"label,omitempty"`
	Load       float64 `json:"load_jobs_per_hour"`
	Seed       int64   `json:"seed"`
	Overloaded bool    `json:"overloaded"`
	FromCache  bool    `json:"from_cache"`
}

// cellResult is one cell of the final grid result line.
type cellResult struct {
	Hash   string     `json:"hash"`
	Label  string     `json:"label,omitempty"`
	Result lab.Result `json:"result"`
}

// aggregateResult is one (variant, load) replica aggregate of the final
// grid result line, present when the grid has a seed axis.
type aggregateResult struct {
	Hash      string        `json:"hash"`
	Label     string        `json:"label,omitempty"`
	Load      float64       `json:"load_jobs_per_hour"`
	Aggregate lab.Aggregate `json:"aggregate"`
}

// resultLine terminates a grid stream.
type resultLine struct {
	Type       string            `json:"type"` // "result"
	GridHash   string            `json:"grid_hash"`
	CacheHits  int               `json:"cache_hits"`
	Cells      []cellResult      `json:"cells"`
	Aggregates []aggregateResult `json:"aggregates,omitempty"`
}

// errorLine reports a failure after streaming began.
type errorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// gridPlan is a fully validated grid request: compiled, size-checked, and
// with every cell and aggregate content key resolved upfront, so nothing
// can fail between the first simulated cell and the final result line.
type gridPlan struct {
	grid           lab.Grid
	hash           string
	cells          []lab.Cell
	keys           []string // one per cell, indexed like RunSet.Results
	aggKeys        []string // (variant*nLoads + load), nil without a seed axis
	nLoads, nSeeds int
}

// cellIndex maps grid coordinates to the flat cell/key index. Execute
// enumerates cells in the same coordinate order, so this is exact.
func (p *gridPlan) cellIndex(c lab.Cell) int {
	return (c.Variant*p.nLoads+c.LoadIdx)*p.nSeeds + c.SeedIdx
}

// planGrid parses and fully validates one grid request body, returning
// the HTTP status to report on failure. Cell-key hashing errors fail the
// whole request here, before any cell runs — a key that silently failed
// would disable the result cache for that cell.
func (s *server) planGrid(body io.Reader) (*gridPlan, int, error) {
	g, err := spec.ParseGrid(body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	gridHash, err := g.Hash() // validates
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	lg, err := g.Compile()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	cells := lg.Cells()
	if s.maxCells > 0 && len(cells) > s.maxCells {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("grid has %d cells, limit is %d", len(cells), s.maxCells)
	}
	p := &gridPlan{
		grid:   lg,
		hash:   gridHash,
		cells:  cells,
		nLoads: max(len(lg.Loads), 1),
		nSeeds: max(len(lg.Seeds), 1),
	}
	// Hash every cell spec once upfront; Options.Keys and the result line
	// both read this slice (hashing re-validates the spec, so doing it per
	// lookup would double the work on large grids).
	p.keys = make([]string, len(cells))
	for i, c := range cells {
		key, err := g.CellSpec(c).Hash()
		if err != nil {
			return nil, http.StatusUnprocessableEntity,
				fmt.Errorf("cell %d (variant %q, load %v, seed %d): %w",
					i, c.Label, c.Scenario.Load, c.Scenario.Seed, err)
		}
		p.keys[i] = key
	}
	if len(lg.Seeds) > 1 {
		nVariants := max(len(lg.Variants), 1)
		p.aggKeys = make([]string, nVariants*p.nLoads)
		for vi := 0; vi < nVariants; vi++ {
			for li := 0; li < p.nLoads; li++ {
				key, err := g.AggregateKey(vi, li)
				if err != nil {
					return nil, http.StatusUnprocessableEntity,
						fmt.Errorf("aggregate (variant %d, load index %d): %w", vi, li, err)
				}
				p.aggKeys[vi*p.nLoads+li] = key
			}
		}
	}
	return p, 0, nil
}

// streamExec is the shared shape of a streamed execution (grids and
// studies): exec runs in a goroutine depositing progress lines into a
// buffered channel — sized so the executor's serialised progress
// callback never blocks a pool worker on a slow stream consumer — while
// emit is called sequentially with every line, then exactly one terminal
// or error line. A failed emit (disconnected client) stops further
// writes without aborting the execution — cancelling is the context's
// job. terminal always runs (its side effects — caching aggregates,
// retaining reports — must not depend on the client still listening);
// only the write is skipped.
func streamExec[T any](buf int, exec func(progress func(progressLine)) (T, error), terminal func(T) any, emit func(any) error) {
	progress := make(chan progressLine, buf)
	type outcome struct {
		val T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := exec(func(p progressLine) { progress <- p })
		close(progress)
		done <- outcome{v, err}
	}()

	var emitErr error
	for line := range progress {
		if emitErr == nil {
			emitErr = emit(line)
		}
	}
	out := <-done
	if out.err != nil {
		// The request was cancelled or the server is shutting down; the
		// line documents the abort for partial readers.
		if emitErr == nil {
			emit(errorLine{Type: "error", Error: out.err.Error()})
		}
		return
	}
	line := terminal(out.val)
	if emitErr == nil {
		emit(line)
	}
}

// runGrid executes the plan on the server's shared pool under ctx,
// calling emit sequentially with every NDJSON line: progress lines, then
// exactly one result or error line. Cell results reach the cache even
// when the client disconnects mid-stream.
func (s *server) runGrid(ctx context.Context, p *gridPlan, emit func(any) error) {
	streamExec(len(p.cells), func(progress func(progressLine)) (*lab.RunSet, error) {
		return p.grid.Execute(lab.Options{
			Pool:    s.pool,
			Context: ctx,
			Cache:   s.cache,
			Keys:    func(c lab.Cell) (string, bool) { return p.keys[p.cellIndex(c)], true },
			Progress: func(u lab.ProgressUpdate) {
				progress(progressLine{
					Type: "progress", Done: u.Done, Total: u.Total,
					Label: u.Label, Load: u.Load, Seed: u.Seed,
					Overloaded: u.Overloaded, FromCache: u.FromCache,
				})
			},
		})
	}, func(rs *lab.RunSet) any { return s.resultLineFor(p, rs) }, emit)
}

// resultLineFor assembles the final stream line and saves replica
// aggregates to the cache. Aggregate keys were validated by planGrid.
func (s *server) resultLineFor(p *gridPlan, rs *lab.RunSet) resultLine {
	line := resultLine{Type: "result", GridHash: p.hash, CacheHits: rs.CacheHits}
	for i, res := range rs.Results {
		line.Cells = append(line.Cells, cellResult{Hash: p.keys[i], Label: rs.Cells[i].Label, Result: res})
	}
	if len(rs.Seeds) > 1 {
		for vi, label := range rs.Labels {
			for li, load := range rs.Loads {
				agg := rs.Aggregate(vi, li)
				hash := p.aggKeys[vi*p.nLoads+li]
				s.cache.PutAggregate(hash, agg)
				line.Aggregates = append(line.Aggregates, aggregateResult{
					Hash: hash, Label: label, Load: load, Aggregate: agg,
				})
			}
		}
	}
	return line
}

// handleGrid executes a declarative grid spec on the server's shared
// pool. The synchronous form streams NDJSON progress under the request
// context and finishes with a result line; with ?async=1 it returns 202
// and a job id immediately (see jobs.go). Every cell is served from —
// and saved to — the content-addressed cache, so re-POSTing a grid
// re-simulates nothing.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	plan, status, err := s.planGrid(r.Body)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if !s.admit() {
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server is executing %d requests, the -max-inflight limit", s.maxInflight))
		return
	}
	if async := r.URL.Query().Get("async"); async != "" && async != "0" && async != "false" {
		// startJob releases the admission slot when execution finishes.
		job := s.startJob("grid", plan.hash, len(plan.cells),
			func(ctx context.Context, emit func(any) error) { s.runGrid(ctx, plan, emit) })
		w.Header().Set("Location", "/v1/jobs/"+job.id)
		writeJSON(w, http.StatusAccepted, job.submitted())
		return
	}
	defer s.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	s.runGrid(r.Context(), plan, func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err // dead connection: stop the stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleResult serves a cached run result by its spec hash.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached result for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
}

// handleAggregate serves a cached replica aggregate by its hash.
func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	agg, ok := s.cache.GetAggregate(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached aggregate for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Hash      string        `json:"hash"`
		Aggregate lab.Aggregate `json:"aggregate"`
	}{hash, agg})
}
