package resultcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"physched/internal/lab"
	"physched/internal/spec"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func sampleResult() lab.Result {
	return lab.Result{
		PolicyName: "outoforder", Load: 1.5,
		AvgSpeedup: 9.5, AvgWaiting: 120.25, MaxWaiting: 900,
		P99Waiting: 700.5, AvgProc: 2000, MeasuredJobs: 600, SimTime: 1e6,
	}
}

func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	layered, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "disk": disk, "layered": layered}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := testKey(0)
			if _, ok := s.Get(key); ok {
				t.Fatal("hit on empty store")
			}
			want := sampleResult()
			s.Put(key, want)
			got, ok := s.Get(key)
			if !ok {
				t.Fatal("miss after Put")
			}
			a, _ := json.Marshal(want)
			b, _ := json.Marshal(got)
			if string(a) != string(b) {
				t.Errorf("result changed through the store:\n%s\n%s", b, a)
			}

			agg := lab.Aggregate{Replicas: 3, Overloaded: 1, SpeedupMean: 8,
				Results: []lab.Result{want}}
			if _, ok := s.GetAggregate(key); ok {
				t.Fatal("aggregate hit on empty store")
			}
			s.PutAggregate(key, agg)
			gotAgg, ok := s.GetAggregate(key)
			if !ok {
				t.Fatal("aggregate miss after Put")
			}
			if gotAgg.Replicas != 3 || gotAgg.Overloaded != 1 || len(gotAgg.Results) != 1 {
				t.Errorf("aggregate changed through the store: %+v", gotAgg)
			}
		})
	}
}

func TestDiskRejectsInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd",
		strings.Repeat("Z", 64), strings.Repeat("a", 63) + "/"} {
		d.Put(key, sampleResult())
		if _, ok := d.Get(key); ok {
			t.Errorf("invalid key %q stored", key)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("invalid keys left %d files in the store", len(entries))
	}
}

func TestDiskSurvivesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if err := os.WriteFile(filepath.Join(dir, key+".result.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	d1.Put(key, sampleResult())
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(key); !ok {
		t.Error("entry lost across re-open")
	}
}

func TestLayeredBackfill(t *testing.T) {
	mem := NewMemory()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayered(mem, disk)
	key := testKey(3)
	disk.Put(key, sampleResult()) // only the slow layer holds it
	if mem.Len() != 0 {
		t.Fatal("memory layer unexpectedly warm")
	}
	if _, ok := l.Get(key); !ok {
		t.Fatal("layered miss on disk-resident entry")
	}
	if mem.Len() != 1 {
		t.Error("hit did not back-fill the memory layer")
	}
	if _, ok := mem.Get(key); !ok {
		t.Error("memory layer missing the back-filled entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := testKey(byte(i % 4))
						s.Put(key, sampleResult())
						s.Get(key)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestDiskCacheDrivesGridExecution wires a disk-backed store into
// lab.Grid.Execute through the spec layer: a second execution in a fresh
// process-like store (same directory, new Open) re-simulates nothing.
func TestDiskCacheDrivesGridExecution(t *testing.T) {
	g := spec.Grid{
		Base: spec.Spec{
			Params:      spec.Params{Nodes: 3, CacheGB: 6, MeanJobEvents: 1_000, DataspaceGB: 60},
			Policy:      spec.Policy{Name: "outoforder"},
			Load:        1,
			Seed:        5,
			WarmupJobs:  10,
			MeasureJobs: 50,
		},
		Loads: []float64{0.8, 1.2},
		Seeds: []int64{1, 2},
	}
	lg, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cache")

	open1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := lg.Execute(lab.Options{Cache: open1, Keys: g.Keys()})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 {
		t.Fatalf("cold cache served %d hits", first.CacheHits)
	}

	open2, err := Open(dir) // fresh memory layer; disk carries the state
	if err != nil {
		t.Fatal(err)
	}
	second, err := lg.Execute(lab.Options{Cache: open2, Keys: g.Keys()})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != len(second.Results) {
		t.Errorf("re-execution against the disk store re-simulated %d of %d cells",
			len(second.Results)-second.CacheHits, len(second.Results))
	}
	a, _ := json.Marshal(first.Results)
	b, _ := json.Marshal(second.Results)
	if string(a) != string(b) {
		t.Errorf("disk-served results diverged:\n%s\n%s", b, a)
	}
}
