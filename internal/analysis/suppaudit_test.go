package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"physched/internal/analysis/driver"
)

// suppressionVerbByAnalyzer maps each analyzer that honours in-source
// suppressions to its directive verb. Analyzers absent here (detrand,
// wirecanon, physcheddirective) have no escape hatch by design.
var suppressionVerbByAnalyzer = map[string]string{
	"hotalloc":   "allocok",
	"walltime":   "walltime",
	"maporder":   "orderinvariant",
	"lockcheck":  "lockok",
	"lockguard":  "unguarded",
	"spawncheck": "spawnok",
}

// TestSuppressionsAreLoadBearing audits every //physched: suppression in
// the module, in both directions:
//
//   - every finding that NoSuppress mode reveals must sit at a
//     suppression site (otherwise the clean run is clean by accident),
//   - every suppression directive must hide at least one finding
//     (otherwise it is stale: the code it excused is gone and the
//     directive is dead weight misleading readers).
func TestSuppressionsAreLoadBearing(t *testing.T) {
	pkgs, err := driver.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	clean, err := driver.Run(pkgs, Rules)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(clean) != 0 {
		t.Fatalf("repo is not lint-clean, audit would be meaningless: %v", clean)
	}
	all, err := driver.Run(pkgs, Rules, driver.NoSuppress())
	if err != nil {
		t.Fatalf("run (NoSuppress): %v", err)
	}

	suppressionVerbs := map[string]bool{}
	for _, v := range suppressionVerbByAnalyzer {
		suppressionVerbs[v] = true
	}
	type site struct {
		file string
		line int
		verb string
	}
	sites := map[site]bool{}
	for _, pkg := range pkgs {
		if pkg.Standard || !strings.HasPrefix(pkg.PkgPath, "physched") {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg.Fset, f) {
				if suppressionVerbs[d.verb] {
					sites[site{pkg.Fset.Position(d.pos).Filename, d.line, d.verb}] = true
				}
			}
		}
	}

	// Direction 1: each revealed finding is covered by a directive on
	// its own line (trailing comment) or the line above.
	used := map[site]bool{}
	for _, d := range all {
		verb := suppressionVerbByAnalyzer[d.Analyzer]
		if verb == "" {
			t.Errorf("finding from %s has no suppression verb yet only appears in NoSuppress mode: %s", d.Analyzer, d)
			continue
		}
		same := site{d.Pos.Filename, d.Pos.Line, verb}
		above := site{d.Pos.Filename, d.Pos.Line - 1, verb}
		switch {
		case sites[same]:
			used[same] = true
		case sites[above]:
			used[above] = true
		default:
			t.Errorf("finding revealed by NoSuppress has no //physched:%s directive covering it: %s", verb, d)
		}
	}

	// Direction 2: no stale suppressions.
	var stale []string
	for s := range sites {
		if !used[s] {
			stale = append(stale, fmt.Sprintf("%s:%d: //physched:%s", s.file, s.line, s.verb))
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("stale suppression hides nothing; delete it: %s", s)
	}
}

// TestSuppressedFixtureRegresses runs the suppressed fixture twice: the
// directives keep it clean, and NoSuppress mode must resurface one
// finding per directive — proving each suppression verb actually wires
// through its analyzer's report path.
func TestSuppressedFixtureRegresses(t *testing.T) {
	clean, err := Lint(".", "./testdata/src/suppressed")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range clean {
		t.Errorf("suppressed fixture should be clean with directives honoured: %s", d)
	}
	all, err := LintUnsuppressed(".", "./testdata/src/suppressed")
	if err != nil {
		t.Fatalf("lint (NoSuppress): %v", err)
	}
	seen := map[string]bool{}
	for _, d := range all {
		seen[d.Analyzer] = true
	}
	for _, want := range []string{"lockcheck", "spawncheck", "hotalloc"} {
		if !seen[want] {
			t.Errorf("NoSuppress mode did not resurface a %s finding; got %v", want, all)
		}
	}
}

// TestStrippedFixtureRegressesFindings is the physical variant of the
// audit: copy the suppressed fixture into a scratch module, delete the
// suppression comment lines from the source text, and re-run the suite
// through the real loader. The findings must reappear — deleting a
// directive can never silently widen what the code is allowed to do.
func TestStrippedFixtureRegressesFindings(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "suppressed", "suppressed.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	var kept []string
	stripped := 0
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		isSuppression := false
		for _, verb := range suppressionVerbByAnalyzer {
			if strings.HasPrefix(trimmed, "//physched:"+verb) {
				isSuppression = true
			}
		}
		if isSuppression {
			stripped++
			continue
		}
		kept = append(kept, line)
	}
	if stripped == 0 {
		t.Fatal("fixture has no suppression lines to strip; the test is vacuous")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixturecopy\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatalf("write go.mod: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "suppressed.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatalf("write stripped source: %v", err)
	}

	pkgs, err := driver.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load stripped module: %v", err)
	}
	diags, err := driver.Run(pkgs, Rules)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, want := range []string{"lockcheck", "spawncheck", "hotalloc"} {
		if !seen[want] {
			t.Errorf("stripping suppressions did not resurface a %s finding; got %v", want, diags)
		}
	}
}
