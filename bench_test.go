// Benchmarks regenerating every table and figure of the paper's evaluation
// at Quick quality. Each benchmark runs complete simulation sweeps, so one
// iteration is heavy by design; custom metrics attach the headline numbers
// of the corresponding figure (speedups, waiting times, sustained loads) to
// the benchmark output so `go test -bench=.` doubles as a miniature
// reproduction report.
package physched

import (
	"fmt"
	"testing"

	"physched/internal/experiments"
)

const benchSeed = 1

// reportCurve attaches a curve's peak speedup and the highest sustained
// load to the benchmark output.
func reportCurve(b *testing.B, f Figure, label, prefix string) {
	b.Helper()
	for _, c := range f.Curves {
		if c.Label != label {
			continue
		}
		bestSpeedup, maxLoad := 0.0, 0.0
		for _, r := range c.Results {
			if r.Overloaded {
				continue
			}
			if r.AvgSpeedup > bestSpeedup {
				bestSpeedup = r.AvgSpeedup
			}
			if r.Load > maxLoad {
				maxLoad = r.Load
			}
		}
		b.ReportMetric(bestSpeedup, prefix+"_speedup")
		b.ReportMetric(maxLoad, prefix+"_maxload_j/h")
	}
}

// BenchmarkFig2_FCFSPolicies regenerates Figure 2: processing farm, job
// splitting and cache-oriented splitting (50/100/200 GB) over 0.7-1.4 j/h.
func BenchmarkFig2_FCFSPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig2(experiments.Quick, benchSeed)
		reportCurve(b, f, "Processing farm", "farm")
		reportCurve(b, f, "Job splitting", "split")
		reportCurve(b, f, "Cache oriented - 200 GB", "cache200")
	}
}

// BenchmarkFig3_OutOfOrder regenerates Figure 3: cache-oriented vs
// out-of-order for three cache sizes over 0.8-2.6 j/h.
func BenchmarkFig3_OutOfOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig3(experiments.Quick, benchSeed)
		reportCurve(b, f, "Cache oriented - 100 GB", "cache100")
		reportCurve(b, f, "Out of order - 100 GB", "ooo100")
		reportCurve(b, f, "Out of order - 200 GB", "ooo200")
	}
}

// BenchmarkFig4_WaitingDistribution regenerates Figure 4: the waiting-time
// distribution of out-of-order near its maximal sustainable load.
func BenchmarkFig4_WaitingDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := experiments.Fig4(experiments.Quick, benchSeed)
		for _, d := range ds {
			if d.Result.Overloaded {
				continue
			}
			if d.Label[len(d.Label)-len("1.7 jobs/hour"):] == "1.7 jobs/hour" {
				b.ReportMetric(d.Result.MaxWaiting/3600, "cache100_maxwait_h")
			} else {
				b.ReportMetric(d.Result.MaxWaiting/3600, "cache50_maxwait_h")
			}
		}
	}
}

// BenchmarkFig5_DelayedPeriods regenerates Figure 5: delayed scheduling
// with 11 h / 2 day / 1 week periods vs out-of-order.
func BenchmarkFig5_DelayedPeriods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig5(experiments.Quick, benchSeed)
		reportCurve(b, f, "Delayed (delay 11h)", "d11h")
		reportCurve(b, f, "Delayed (delay 1 week)", "d1w")
		reportCurve(b, f, "Out of order scheduling", "ooo")
	}
}

// BenchmarkFig6_DelayedStripes regenerates Figure 6: delayed scheduling
// with stripe sizes 200/1K/5K/25K events.
func BenchmarkFig6_DelayedStripes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig6(experiments.Quick, benchSeed)
		reportCurve(b, f, "Delayed, stripe 200 events", "s200")
		reportCurve(b, f, "Delayed, stripe 25K events", "s25k")
	}
}

// BenchmarkFig7_AdaptiveDelay regenerates Figure 7: adaptive delay (stripe
// 200 and 5000) vs out-of-order, waiting delay-included.
func BenchmarkFig7_AdaptiveDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig7(experiments.Quick, benchSeed)
		reportCurve(b, f, "Adaptive delay (stripe 200 events)", "a200")
		reportCurve(b, f, "Out of order scheduling", "ooo")
	}
}

// BenchmarkTableReplication regenerates the §4.2 comparison: out-of-order
// with vs without data replication.
func BenchmarkTableReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Replication(experiments.Quick, benchSeed)
		var maxShare, worstGap float64
		for _, r := range rows {
			if r.ReplicatedShare > maxShare {
				maxShare = r.ReplicatedShare
			}
			if !r.Plain.Overloaded && !r.Replicate.Overloaded {
				gap := r.Replicate.AvgSpeedup - r.Plain.AvgSpeedup
				if gap < 0 {
					gap = -gap
				}
				if r.Plain.AvgSpeedup > 0 && gap/r.Plain.AvgSpeedup > worstGap {
					worstGap = gap / r.Plain.AvgSpeedup
				}
			}
		}
		b.ReportMetric(1000*maxShare, "replicated_permille")
		b.ReportMetric(100*worstGap, "speedup_gap_pct")
	}
}

// BenchmarkTableMaxLoad regenerates the §5.2 limit experiment: delayed
// scheduling with 200 GB caches, 1-week delay, stripe 200.
func BenchmarkTableMaxLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.MaxLoad(experiments.Quick, benchSeed)
		sustained, speedup := 0.0, 0.0
		for _, r := range rows {
			if !r.Result.Overloaded && r.Load > sustained {
				sustained, speedup = r.Load, r.Result.AvgSpeedup
			}
		}
		b.ReportMetric(sustained, "sustained_j/h")
		b.ReportMetric(speedup, "speedup_at_max")
	}
}

// BenchmarkAblationEviction compares LRU with FIFO cache eviction — an
// ablation of the paper's fixed LRU choice (DESIGN.md §5).
func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationEviction(experiments.Quick, benchSeed)
		report := func(variant, metric string) {
			best := 0.0
			for _, r := range rows {
				if r.Variant == variant && !r.Result.Overloaded && r.Result.AvgSpeedup > best {
					best = r.Result.AvgSpeedup
				}
			}
			b.ReportMetric(best, metric)
		}
		report("LRU eviction", "lru_speedup")
		report("FIFO eviction", "fifo_speedup")
	}
}

// BenchmarkAblationStealSource compares remote reads against tape re-reads
// for stolen subjobs (§4.2 design choice).
func BenchmarkAblationStealSource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationStealSource(experiments.Quick, benchSeed)
		best := map[string]float64{}
		for _, r := range rows {
			if !r.Result.Overloaded && r.Result.AvgSpeedup > best[r.Variant] {
				best[r.Variant] = r.Result.AvgSpeedup
			}
		}
		b.ReportMetric(best["steal reads remote"], "remote_speedup")
		b.ReportMetric(best["steal re-reads tape"], "tape_speedup")
	}
}

// BenchmarkAblationHotspot varies the workload skew that makes caching pay.
func BenchmarkAblationHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationHotspot(experiments.Quick, benchSeed)
		best := map[string]float64{}
		for _, r := range rows {
			if !r.Result.Overloaded && r.Result.AvgSpeedup > best[r.Variant] {
				best[r.Variant] = r.Result.AvgSpeedup
			}
		}
		b.ReportMetric(best["hot weight 0%"], "uniform_speedup")
		b.ReportMetric(best["hot weight 50%"], "paper_speedup")
	}
}

// BenchmarkFutureWorkPipelining measures the paper's §7 future-work item:
// overlapping transfers with computation.
func BenchmarkFutureWorkPipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.FutureWorkPipelining(experiments.Quick, benchSeed)
		best := map[string]float64{}
		sustained := map[string]float64{}
		for _, r := range rows {
			if !r.Result.Overloaded {
				if r.Result.AvgSpeedup > best[r.Variant] {
					best[r.Variant] = r.Result.AvgSpeedup
				}
				if r.Load > sustained[r.Variant] {
					sustained[r.Variant] = r.Load
				}
			}
		}
		b.ReportMetric(best["paper model (no overlap)"], "paper_speedup")
		b.ReportMetric(best["pipelined transfers"], "pipelined_speedup")
		b.ReportMetric(sustained["pipelined transfers"], "pipelined_maxload_j/h")
	}
}

// BenchmarkNodeCountScaling checks the §2.4 claim that 5/10/20-node
// clusters behave similarly at equal utilisation.
func BenchmarkNodeCountScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.NodeCountStudy(experiments.Quick, benchSeed)
		for _, r := range rows {
			if !r.Result.Overloaded && r.Utilisation == 0.3 {
				b.ReportMetric(r.Efficiency, fmt.Sprintf("efficiency_%dnodes", r.Nodes))
			}
		}
	}
}

// BenchmarkBaselines compares the repo's added baselines (static
// partitioning, cache-affine farm) with the paper's dynamic policies.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BaselineComparison(experiments.Quick, benchSeed)
		best := map[string]float64{}
		for _, r := range rows {
			if !r.Result.Overloaded && r.Result.AvgSpeedup > best[r.Variant] {
				best[r.Variant] = r.Result.AvgSpeedup
			}
		}
		b.ReportMetric(best["partitioned (static ownership)"], "partitioned_speedup")
		b.ReportMetric(best["affine farm (caching, no splitting)"], "affinefarm_speedup")
		b.ReportMetric(best["out-of-order"], "outoforder_speedup")
	}
}

// BenchmarkHeterogeneity measures how the farm and out-of-order policies
// absorb mixed node speeds at equal aggregate capacity.
func BenchmarkHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.HeterogeneityStudy(experiments.Quick, benchSeed)
		sustained := map[string]float64{}
		for _, r := range rows {
			if !r.Result.Overloaded && r.Load > sustained[r.Variant] {
				sustained[r.Variant] = r.Load
			}
		}
		b.ReportMetric(sustained["farm, identical nodes"], "farm_ident_maxload")
		b.ReportMetric(sustained["farm, mixed speeds"], "farm_mixed_maxload")
		b.ReportMetric(sustained["out-of-order, mixed speeds"], "ooo_mixed_maxload")
	}
}

// BenchmarkTableFarmVsMErM regenerates the §3.1 validation of the farm
// against the analytic M/Er/m model.
func BenchmarkTableFarmVsMErM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.FarmVsMErM(experiments.Quick, benchSeed)
		var sum float64
		var n int
		for _, r := range rows {
			// Compare only mid-utilisation points: below, waits are
			// seconds-scale and relative error is noise; above, the
			// quick-scale window underestimates the near-critical queue.
			if r.Overloaded || r.Utilisation < 0.6 || r.Utilisation >= 0.85 || r.ModelWaiting < 300 {
				continue
			}
			rel := (r.SimWaiting - r.ModelWaiting) / r.ModelWaiting
			if rel < 0 {
				rel = -rel
			}
			sum += rel
			n++
		}
		if n > 0 {
			b.ReportMetric(100*sum/float64(n), "mean_model_gap_pct")
		}
	}
}
