// Package spec is the declarative scenario layer: serialisable,
// canonical, JSON-round-trippable descriptions of simulation scenarios
// (Spec) and scenario grids (Grid), in place of the Go closures that
// parameterise lab.Scenario. Policies and workloads are referenced by
// name and resolved through the extensible registries in internal/sched
// and internal/workload, so a spec can be stored in a version-controlled
// file, submitted to the physchedd service, hashed for content-addressed
// result caching (internal/resultcache), and replayed bit-identically.
//
// Canonical form: Canonical returns the spec's canonical JSON encoding —
// compact, field-ordered, with defaults normalised (empty preset →
// "calibrated", empty workload → "poisson", version 0 → 1) — and Hash its
// SHA-256. Two specs meaning the same scenario hash identically;
// encode→decode→encode of a canonical encoding is byte-identical.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
	"physched/internal/workload"
)

// Version is the current spec schema version. Encodings carry it so old
// spec files keep a well-defined meaning as the schema grows.
const Version = 1

// Params is the declarative cluster-parameter overlay: a preset selects
// the paper configuration and non-zero fields override it one by one.
type Params struct {
	// Preset is "calibrated" (default) or "stated"; see model.PaperStated
	// and model.PaperCalibrated.
	Preset string `json:"preset,omitempty"`

	// Cluster overrides; zero values keep the preset's.
	Nodes         int     `json:"nodes,omitempty"`
	CacheGB       int64   `json:"cache_gb,omitempty"`
	MeanJobEvents int64   `json:"mean_job_events,omitempty"`
	DataspaceGB   int64   `json:"dataspace_gb,omitempty"`
	HotWeight     float64 `json:"hot_weight,omitempty"` // -1 disables hotspots
	// PipelinedTransfers overlaps transfers with computation (§7
	// extension).
	PipelinedTransfers bool `json:"pipelined_transfers,omitempty"`
}

// Model resolves the overlay into validated model parameters.
func (p Params) Model() (model.Params, error) {
	var params model.Params
	switch p.Preset {
	case "", "calibrated":
		params = model.PaperCalibrated()
	case "stated":
		params = model.PaperStated()
	default:
		return model.Params{}, fmt.Errorf("spec: unknown preset %q (want calibrated or stated)", p.Preset)
	}
	// Zero means "keep the preset's value"; a negative override is a typo
	// and must not silently simulate the preset (HotWeight alone documents
	// negative-means-disable).
	switch {
	case p.Nodes < 0:
		return model.Params{}, fmt.Errorf("spec: nodes must be non-negative, got %d", p.Nodes)
	case p.CacheGB < 0:
		return model.Params{}, fmt.Errorf("spec: cache_gb must be non-negative, got %d", p.CacheGB)
	case p.MeanJobEvents < 0:
		return model.Params{}, fmt.Errorf("spec: mean_job_events must be non-negative, got %d", p.MeanJobEvents)
	case p.DataspaceGB < 0:
		return model.Params{}, fmt.Errorf("spec: dataspace_gb must be non-negative, got %d", p.DataspaceGB)
	}
	if p.Nodes > 0 {
		params.Nodes = p.Nodes
	}
	if p.CacheGB > 0 {
		params.CacheBytes = p.CacheGB * model.GB
	}
	if p.MeanJobEvents > 0 {
		params.MeanJobEvents = p.MeanJobEvents
	}
	if p.DataspaceGB > 0 {
		params.DataspaceBytes = p.DataspaceGB * model.GB
	}
	switch {
	case p.HotWeight < 0:
		params.HotWeight = 0
	case p.HotWeight > 0:
		params.HotWeight = p.HotWeight
	}
	params.PipelinedTransfers = p.PipelinedTransfers
	if err := params.Validate(); err != nil {
		return model.Params{}, err
	}
	return params, nil
}

func (p Params) normalize() Params {
	if p.Preset == "" {
		p.Preset = "calibrated"
	}
	return p
}

// Policy selects a scheduling policy by registry name plus its
// serialisable parameters (see sched.Register and sched.Args).
type Policy struct {
	// Name is a registered policy: farm | splitting | cacheoriented |
	// outoforder | replication | delayed | adaptive | partitioned |
	// affinefarm, or any extension registered via sched.Register.
	Name string `json:"name"`
	// DelayHours is the delayed policy's period, in hours.
	DelayHours float64 `json:"delay_hours,omitempty"`
	// StripeEvents is the stripe size for delayed/adaptive policies.
	StripeEvents int64 `json:"stripe_events,omitempty"`
	// MaxWaitHours overrides the out-of-order aging limit (default 48 h).
	MaxWaitHours float64 `json:"max_wait_hours,omitempty"`
}

// New instantiates the policy through the sched registry.
func (p Policy) New() (sched.Policy, error) {
	return sched.New(p.Name, sched.Args{
		DelayHours:   p.DelayHours,
		StripeEvents: p.StripeEvents,
		MaxWaitHours: p.MaxWaitHours,
	})
}

// Workload selects a job-stream kind by registry name plus its
// serialisable parameters (see workload.Register and workload.Args). The
// zero value is the paper's homogeneous Poisson stream.
type Workload struct {
	// Name is a registered kind: poisson (default) | daynight, or any
	// extension registered via workload.Register.
	Name string `json:"name,omitempty"`
	// Swing is the day/night contrast in [0,1) for the daynight kind.
	Swing float64 `json:"swing,omitempty"`
	// PeakJobsPerHour bounds the thinning envelope of inhomogeneous
	// kinds; zero means the kind's natural peak.
	PeakJobsPerHour float64 `json:"peak_jobs_per_hour,omitempty"`
}

// resolve builds the workload source for one run.
func (w Workload) resolve(params model.Params, seed int64, jobsPerHour float64) (workload.Source, error) {
	return workload.Resolve(w.Name, workload.Args{
		Params:          params,
		Seed:            seed,
		JobsPerHour:     jobsPerHour,
		Swing:           w.Swing,
		PeakJobsPerHour: w.PeakJobsPerHour,
	})
}

func (w Workload) normalize() Workload {
	if w.Name == "" {
		w.Name = "poisson"
	}
	return w
}

// Faults is the declarative node-churn block, mirroring
// cluster.FaultModel field by field. The zero value — and an absent
// "faults" key — means the paper's never-failing cluster and encodes to
// nothing, so specs written before node dynamics existed keep their
// hashes.
type Faults struct {
	// MTBFHours is each up node's mean time between failures, in hours.
	// Zero disables failures.
	MTBFHours float64 `json:"mtbf_hours,omitempty"`
	// RepairHours is the mean repair time; zero means the default
	// (cluster.DefaultRepairHours), which canonicalisation makes explicit.
	RepairHours float64 `json:"repair_hours,omitempty"`
	// DayNightSwing in [0,1) modulates the failure rate over a 24 h cycle.
	DayNightSwing float64 `json:"daynight_swing,omitempty"`
	// CacheLoss wipes the failing node's disk cache.
	CacheLoss bool `json:"cache_loss,omitempty"`
	// DecommissionProb is the probability a failure is permanent.
	DecommissionProb float64 `json:"decommission_prob,omitempty"`
	// SpareNodes is the number of extra nodes that join the cluster late.
	SpareNodes int `json:"spare_nodes,omitempty"`
	// JoinHours is the mean time until a spare joins; zero means the
	// default (cluster.DefaultJoinHours), made explicit by normalisation.
	JoinHours float64 `json:"join_hours,omitempty"`
}

// Model resolves the block into a validated cluster.FaultModel.
func (f Faults) Model() (cluster.FaultModel, error) {
	m := cluster.FaultModel{
		MTBFHours:        f.MTBFHours,
		RepairHours:      f.RepairHours,
		DayNightSwing:    f.DayNightSwing,
		CacheLoss:        f.CacheLoss,
		DecommissionProb: f.DecommissionProb,
		SpareNodes:       f.SpareNodes,
		JoinHours:        f.JoinHours,
	}
	if err := m.Validate(); err != nil {
		return cluster.FaultModel{}, err
	}
	return m.WithDefaults(), nil
}

// normalize fills the defaulted time constants so a spec relying on them
// hashes identically to one naming them. The default rules live solely
// in cluster.FaultModel.WithDefaults (via Model), so the canonical form
// cannot drift from what actually runs. A disabled block stays zero, and
// an invalid one passes through for Validate to report.
func (f Faults) normalize() Faults {
	m, err := f.Model()
	if err != nil {
		return f
	}
	return Faults{
		MTBFHours:        m.MTBFHours,
		RepairHours:      m.RepairHours,
		DayNightSwing:    m.DayNightSwing,
		CacheLoss:        m.CacheLoss,
		DecommissionProb: m.DecommissionProb,
		SpareNodes:       m.SpareNodes,
		JoinHours:        m.JoinHours,
	}
}

// Spec is one declarative simulation scenario: everything lab.Scenario
// expresses, minus the closures. It is the unit of canonicalisation,
// hashing and caching.
type Spec struct {
	// SchemaVersion is the spec schema version; zero means current.
	SchemaVersion int `json:"version,omitempty"`

	Params   Params   `json:"params,omitzero"`
	Policy   Policy   `json:"policy"`
	Workload Workload `json:"workload,omitzero"`
	Faults   Faults   `json:"faults,omitzero"`

	// Load is the mean arrival rate, in jobs per hour.
	Load float64 `json:"load_jobs_per_hour"`
	// Seed drives all randomness of the run.
	Seed int64 `json:"seed,omitempty"`

	WarmupJobs      int   `json:"warmup_jobs,omitempty"`
	MeasureJobs     int   `json:"measure_jobs,omitempty"`
	OverloadBacklog int64 `json:"overload_backlog,omitempty"`
	// MaxSimTimeDays caps the simulated time, in days (default 2 years).
	MaxSimTimeDays float64 `json:"max_sim_time_days,omitempty"`
	// DelayIncluded reports waiting times including the scheduling delay.
	DelayIncluded bool `json:"delay_included,omitempty"`
}

// Parse reads one JSON spec, rejecting unknown fields so typos in spec
// files fail loudly.
func Parse(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	return s, nil
}

// Validate reports the first problem that would prevent the spec from
// compiling: an unsupported schema version, invalid parameters, an
// unknown policy or workload name, invalid policy or workload arguments,
// or a non-positive load.
func (s Spec) Validate() error {
	if s.SchemaVersion != 0 && s.SchemaVersion != Version {
		return fmt.Errorf("spec: unsupported schema version %d (this build supports %d)", s.SchemaVersion, Version)
	}
	params, err := s.Params.Model()
	if err != nil {
		return err
	}
	if _, err := s.Policy.New(); err != nil {
		return err
	}
	if s.Load <= 0 {
		return fmt.Errorf("spec: load_jobs_per_hour must be positive, got %v", s.Load)
	}
	if _, err := s.Workload.resolve(params, 1, s.Load); err != nil {
		return err
	}
	if _, err := s.Faults.Model(); err != nil {
		return fmt.Errorf("spec: faults: %w", err)
	}
	if s.WarmupJobs < 0 || s.MeasureJobs < 0 {
		return fmt.Errorf("spec: negative job window (warmup %d, measure %d)", s.WarmupJobs, s.MeasureJobs)
	}
	if s.OverloadBacklog < 0 {
		return fmt.Errorf("spec: overload_backlog must be non-negative, got %d", s.OverloadBacklog)
	}
	if s.MaxSimTimeDays < 0 {
		return fmt.Errorf("spec: max_sim_time_days must be non-negative, got %v", s.MaxSimTimeDays)
	}
	return nil
}

// Normalize returns the spec with every defaulted field made explicit —
// the form Canonical encodes. It never validates: callers embedding specs
// in larger canonical documents (internal/opt studies, whose base spec may
// deliberately leave fields for search axes to bind) normalise first and
// validate the fully resolved spec later.
func (s Spec) Normalize() Spec { return s.normalize() }

// normalize fills the defaults that have named spellings, so equivalent
// specs share one canonical encoding and therefore one hash.
func (s Spec) normalize() Spec {
	if s.SchemaVersion == 0 {
		s.SchemaVersion = Version
	}
	s.Params = s.Params.normalize()
	s.Workload = s.Workload.normalize()
	s.Faults = s.Faults.normalize()
	return s
}

// Canonical returns the spec's canonical encoding: compact JSON of the
// normalised, validated spec with the schema's fixed field order.
// Encoding, decoding and re-encoding a canonical form is byte-identical.
func (s Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.normalize())
}

// Hash is the hex SHA-256 of the canonical encoding — the spec's content
// address, used as the result-cache key and the physchedd result handle.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Scenario compiles the spec into a runnable lab.Scenario, resolving the
// policy and workload names through their registries. All validation
// happens here; the returned scenario's closures cannot fail.
func (s Spec) Scenario() (lab.Scenario, error) {
	if err := s.Validate(); err != nil {
		return lab.Scenario{}, err
	}
	params, err := s.Params.Model()
	if err != nil {
		return lab.Scenario{}, err
	}
	faults, err := s.Faults.Model()
	if err != nil {
		return lab.Scenario{}, err
	}
	pol, wl := s.Policy, s.Workload
	sc := lab.Scenario{
		Params: params,
		NewPolicy: func() sched.Policy {
			p, err := pol.New()
			if err != nil {
				panic(err) // validated above; registries are append-only
			}
			return p
		},
		// NewWorkload mirrors lab.Run's default seed discipline (run seed
		// + 1), so a compiled "poisson" spec is bit-identical to the same
		// scenario built from closures.
		NewWorkload: func(seed int64, jobsPerHour float64) workload.Source {
			src, err := wl.resolve(params, seed, jobsPerHour)
			if err != nil {
				panic(err)
			}
			return src
		},
		Load:            s.Load,
		Seed:            s.Seed,
		WarmupJobs:      s.WarmupJobs,
		MeasureJobs:     s.MeasureJobs,
		OverloadBacklog: s.OverloadBacklog,
		MaxSimTime:      s.MaxSimTimeDays * model.Day,
		DelayIncluded:   s.DelayIncluded,
		Faults:          faults,
	}
	if err := sc.Validate(); err != nil {
		return lab.Scenario{}, err
	}
	return sc, nil
}
