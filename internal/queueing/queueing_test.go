package queueing

import (
	"math"
	"testing"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C(a,1) = a.
	for _, a := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(a, 1); math.Abs(got-a) > 1e-12 {
			t.Errorf("ErlangC(%v,1) = %v, want %v", a, got, a)
		}
	}
	// Textbook value: m=2, a=1 → C = 1/3.
	if got := ErlangC(1, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ErlangC(1,2) = %v, want 1/3", got)
	}
}

func TestMM1WaitMatchesClosedForm(t *testing.T) {
	// With Shape→∞ the correction → 1/2·(1+0) ... for M/M/1 use Shape 1:
	// Wq = rho/(mu - lambda) for M/M/1; Erlang shape 1 = exponential.
	lambda, mean := 0.5, 1.0
	q := MErM{Lambda: lambda, MeanService: mean, Shape: 1, Servers: 1}
	w, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * mean
	want := rho * mean / (1 - rho)
	if math.Abs(w-want) > 1e-12 {
		t.Errorf("M/M/1 wait = %v, want %v", w, want)
	}
}

func TestErlangServiceReducesWaiting(t *testing.T) {
	// Lower service variability (higher shape) must reduce waiting.
	base := MErM{Lambda: 0.8, MeanService: 1, Shape: 1, Servers: 1}
	w1, _ := base.MeanWait()
	base.Shape = 4
	w4, _ := base.MeanWait()
	if w4 >= w1 {
		t.Errorf("Erlang-4 wait %v should be below exponential wait %v", w4, w1)
	}
	// (1+1/4)/2 = 0.625 of the M/M/1 value.
	if math.Abs(w4/w1-0.625) > 1e-9 {
		t.Errorf("ratio = %v, want 0.625", w4/w1)
	}
}

func TestUnstableQueue(t *testing.T) {
	q := MErM{Lambda: 2, MeanService: 1, Shape: 4, Servers: 1}
	w, err := q.MeanWait()
	if err != ErrUnstable {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	if !math.IsInf(w, 1) {
		t.Errorf("wait = %v, want +Inf", w)
	}
}

func TestLittleLawConsistency(t *testing.T) {
	q := MErM{Lambda: 0.3, MeanService: 2, Shape: 4, Servers: 3}
	w, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-q.Lambda*w) > 1e-12 {
		t.Errorf("Little's law violated: L=%v, λW=%v", l, q.Lambda*w)
	}
	soj, _ := q.MeanSojourn()
	if math.Abs(soj-(w+2)) > 1e-12 {
		t.Errorf("sojourn = %v, want wait+service", soj)
	}
}

func TestValidation(t *testing.T) {
	bad := []MErM{
		{Lambda: 0, MeanService: 1, Shape: 1, Servers: 1},
		{Lambda: 1, MeanService: 0, Shape: 1, Servers: 1},
		{Lambda: 1, MeanService: 1, Shape: 0, Servers: 1},
		{Lambda: 1, MeanService: 1, Shape: 1, Servers: 0},
	}
	for i, q := range bad {
		if _, err := q.MeanWait(); err == nil {
			t.Errorf("case %d: invalid queue accepted", i)
		}
	}
}

func TestMaxLoad(t *testing.T) {
	q := MErM{Lambda: 1, MeanService: 4, Shape: 4, Servers: 8}
	if got := q.MaxLoad(); got != 2 {
		t.Errorf("MaxLoad = %v, want 2", got)
	}
	if got := q.Utilisation(); got != 0.5 {
		t.Errorf("Utilisation = %v, want 0.5", got)
	}
}

func TestWaitGrowsWithUtilisation(t *testing.T) {
	prev := -1.0
	for _, lam := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		q := MErM{Lambda: lam, MeanService: 1, Shape: 4, Servers: 1}
		w, err := q.MeanWait()
		if err != nil {
			t.Fatal(err)
		}
		if w <= prev {
			t.Errorf("wait not increasing at λ=%v: %v <= %v", lam, w, prev)
		}
		prev = w
	}
}

func TestAllenCunneenExactAtOneServer(t *testing.T) {
	// The Allen–Cunneen approximation coincides with the exact
	// Pollaczek–Khinchine formula for M/G/1.
	for _, shape := range []int{1, 2, 4, 8} {
		for _, rho := range []float64{0.2, 0.5, 0.8, 0.95} {
			q := MErM{Lambda: rho, MeanService: 1, Shape: shape, Servers: 1}
			ac, err := q.MeanWait()
			if err != nil {
				t.Fatal(err)
			}
			pk, err := q.PollaczekKhinchine()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ac-pk) > 1e-12*math.Max(1, pk) {
				t.Errorf("shape %d rho %v: AC %v != PK %v", shape, rho, ac, pk)
			}
		}
	}
}

func TestPollaczekKhinchineRejectsMultiServer(t *testing.T) {
	q := MErM{Lambda: 1, MeanService: 0.1, Shape: 4, Servers: 2}
	if _, err := q.PollaczekKhinchine(); err == nil {
		t.Error("multi-server accepted")
	}
	q = MErM{Lambda: 2, MeanService: 1, Shape: 4, Servers: 1}
	if w, err := q.PollaczekKhinchine(); err != ErrUnstable || !math.IsInf(w, 1) {
		t.Errorf("unstable PK = %v, %v", w, err)
	}
}
