// Package metrics collects the two performance variables the paper plots
// for every policy — average speedup and average waiting time as functions
// of load — plus the waiting-time distribution of Figure 4 and the backlog
// series used to detect overload (the paper cuts its curves "at high loads
// when the system leaves the steady state and becomes overloaded").
package metrics

import (
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/stats"
)

// JobResult records the lifecycle of one measured job.
type JobResult struct {
	ID          int64
	Events      int64
	Arrival     float64
	ScheduledAt float64
	FirstStart  float64
	End         float64

	// Waiting is first dispatch minus ScheduledAt — the paper's waiting
	// time, with the delayed policy's period delay already excluded.
	Waiting float64
	// WaitingWithDelay is first dispatch minus Arrival (Figure 7 reports
	// the adaptive policy delay-included).
	WaitingWithDelay float64
	// Processing is the time from first dispatch to job end, including
	// periods where subjobs were suspended.
	Processing float64
	// Speedup is the single-job single-node no-cache processing time of
	// this job divided by Processing (§3.4).
	Speedup float64
}

// Collector accumulates job statistics after a warm-up prefix. It is
// streaming: every aggregate the lab reports (means, max, quantiles, the
// divergence trend inputs, the waiting histogram) is maintained in fixed
// accumulators or compact per-job float columns, so a run costs O(1)
// memory per job. The full []JobResult log is only retained when
// KeepResults is set (Scenario.KeepJobResults), for tests and studies that
// inspect individual jobs.
type Collector struct {
	params model.Params

	// WarmupJobs results are discarded to let caches and queues reach
	// steady state (the paper measures in steady state with filled caches).
	WarmupJobs int
	// MeasureJobs caps the number of measured results; zero means no cap.
	MeasureJobs int
	// DelayIncluded selects WaitingWithDelay as the reported waiting time.
	DelayIncluded bool
	// KeepResults retains the full per-job result log (Results).
	KeepResults bool

	arrived  int64
	finished int64
	count    int // measured jobs
	measured []JobResult

	// Per-job columns for the trend and quantile queries; presized to the
	// measurement cap.
	arrivals []float64
	waitExcl []float64
	waitIncl []float64

	waiting   stats.Summary
	speedup   stats.Summary
	proc      stats.Summary
	histogram *stats.LogHistogram
}

// NewCollector returns a collector for the given parameters.
func NewCollector(p model.Params, warmupJobs, measureJobs int) *Collector {
	c := &Collector{
		params:      p,
		WarmupJobs:  warmupJobs,
		MeasureJobs: measureJobs,
		// 10 s .. 4 weeks covers Figure 4's axis with margin.
		histogram: stats.NewLogHistogram(10, 4*model.Week, 6),
	}
	if measureJobs > 0 {
		c.arrivals = make([]float64, 0, measureJobs)
		c.waitExcl = make([]float64, 0, measureJobs)
		c.waitIncl = make([]float64, 0, measureJobs)
	}
	return c
}

// JobArrived counts an arrival.
func (c *Collector) JobArrived(*job.Job) { c.arrived++ }

// JobFinished records a completed job.
//
//physched:hotpath
func (c *Collector) JobFinished(j *job.Job) {
	c.finished++
	if j.ID < int64(c.WarmupJobs) {
		return
	}
	if c.MeasureJobs > 0 && j.ID >= int64(c.WarmupJobs+c.MeasureJobs) {
		return
	}
	waiting := j.FirstStart - j.ScheduledAt
	waitingWithDelay := j.FirstStart - j.Arrival
	processing := j.EndTime - j.FirstStart
	speedup := 0.0
	if processing > 0 {
		single := float64(j.Events()) * c.params.EventTimeTape()
		speedup = single / processing
	}
	c.count++
	c.arrivals = append(c.arrivals, j.Arrival)
	c.waitExcl = append(c.waitExcl, waiting)
	c.waitIncl = append(c.waitIncl, waitingWithDelay)
	if c.KeepResults {
		c.measured = append(c.measured, JobResult{
			ID:               j.ID,
			Events:           j.Events(),
			Arrival:          j.Arrival,
			ScheduledAt:      j.ScheduledAt,
			FirstStart:       j.FirstStart,
			End:              j.EndTime,
			Waiting:          waiting,
			WaitingWithDelay: waitingWithDelay,
			Processing:       processing,
			Speedup:          speedup,
		})
	}
	w := waiting
	if c.DelayIncluded {
		w = waitingWithDelay
	}
	c.waiting.Add(w)
	c.histogram.Add(w)
	c.speedup.Add(speedup)
	c.proc.Add(processing)
}

// Done reports whether the measurement quota has been reached.
func (c *Collector) Done() bool {
	return c.MeasureJobs > 0 && c.count >= c.MeasureJobs
}

// Backlog returns the number of jobs arrived but not yet finished.
func (c *Collector) Backlog() int64 { return c.arrived - c.finished }

// Arrived and Finished return the arrival and completion counts.
func (c *Collector) Arrived() int64  { return c.arrived }
func (c *Collector) Finished() int64 { return c.finished }

// MeasuredCount returns the number of measured jobs.
func (c *Collector) MeasuredCount() int { return c.count }

// Results returns the measured job results. It is empty unless KeepResults
// was set before the run.
func (c *Collector) Results() []JobResult { return c.measured }

// Arrivals returns the arrival times of the measured jobs, in measurement
// order. The slice is the collector's storage: read-only.
func (c *Collector) Arrivals() []float64 { return c.arrivals }

// ReportedWaitings returns the reported waiting time (delay included or
// not, per DelayIncluded) of the measured jobs, in measurement order. The
// slice is the collector's storage: read-only.
func (c *Collector) ReportedWaitings() []float64 {
	if c.DelayIncluded {
		return c.waitIncl
	}
	return c.waitExcl
}

// AvgWaiting returns the mean reported waiting time, in seconds.
func (c *Collector) AvgWaiting() float64 { return c.waiting.Mean() }

// MaxWaiting returns the maximum reported waiting time, in seconds.
func (c *Collector) MaxWaiting() float64 { return c.waiting.Max() }

// AvgSpeedup returns the mean per-job speedup.
func (c *Collector) AvgSpeedup() float64 { return c.speedup.Mean() }

// AvgProcessing returns the mean processing time, in seconds.
func (c *Collector) AvgProcessing() float64 { return c.proc.Mean() }

// WaitingHistogram returns the log-scale waiting time histogram (Figure 4).
func (c *Collector) WaitingHistogram() *stats.LogHistogram { return c.histogram }

// WaitingQuantile returns the q-quantile of reported waiting times.
func (c *Collector) WaitingQuantile(q float64) float64 {
	return stats.Quantile(c.ReportedWaitings(), q)
}
