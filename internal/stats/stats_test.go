package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Summary
	const mean = 500.0
	for i := 0; i < 200_000; i++ {
		s.Add(Exponential(rng, mean))
	}
	if math.Abs(s.Mean()-mean) > 0.02*mean {
		t.Errorf("mean = %v, want ≈ %v", s.Mean(), mean)
	}
	if math.Abs(s.Std()-mean) > 0.03*mean {
		t.Errorf("std = %v, want ≈ %v", s.Std(), mean)
	}
}

func TestErlangMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const shape, mean = 4, 30_000.0
	var s Summary
	for i := 0; i < 200_000; i++ {
		s.Add(Erlang(rng, shape, mean))
	}
	if math.Abs(s.Mean()-mean) > 0.02*mean {
		t.Errorf("mean = %v, want ≈ %v", s.Mean(), mean)
	}
	wantStd := mean / math.Sqrt(shape)
	if math.Abs(s.Std()-wantStd) > 0.03*wantStd {
		t.Errorf("std = %v, want ≈ %v", s.Std(), wantStd)
	}
	if s.Min() <= 0 {
		t.Errorf("Erlang produced non-positive variate %v", s.Min())
	}
}

func TestErlangShapeOnePanicsOnZeroShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Erlang(0) did not panic")
		}
	}()
	Erlang(rand.New(rand.NewSource(1)), 0, 10)
}

func TestPoissonProcessRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPoissonProcess(rng, 2.0, 0) // 2 events per unit time
	var last float64
	const n = 100_000
	for i := 0; i < n; i++ {
		now := p.Next()
		if now <= last {
			t.Fatal("arrival times must strictly increase")
		}
		last = now
	}
	rate := n / last
	if math.Abs(rate-2.0) > 0.05 {
		t.Errorf("empirical rate = %v, want ≈ 2", rate)
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Errorf("N=%d Mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min=%v Max=%v", s.Min(), s.Max())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Summary
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
			s.Add(x)
			sum += x
		}
		if len(xs) > 0 {
			ok = math.Abs(s.Mean()-sum/float64(len(xs))) < 1e-6*(1+math.Abs(sum))
		}
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Add(10)
	}
	if math.Abs(e.Value()-10) > 1e-9 {
		t.Errorf("EWMA = %v, want 10", e.Value())
	}
}

func TestLinearTrend(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	if got := LinearTrend(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope = %v, want 2", got)
	}
	flat := []float64{5, 5, 5, 5, 5}
	if got := LinearTrend(xs, flat); got != 0 {
		t.Errorf("flat slope = %v, want 0", got)
	}
	if got := LinearTrend(nil, nil); got != 0 {
		t.Errorf("empty slope = %v, want 0", got)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(60, 7*86400, 4) // 1 minute .. 1 week
	h.Add(0)                             // underflow
	h.Add(30)                            // underflow
	h.Add(3600)                          // 1 h
	h.Add(3600)
	h.Add(86400)           // 1 day
	h.Add(100 * 7 * 86400) // clamps to last bucket
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Underflow() != 2 {
		t.Errorf("Underflow = %d", h.Underflow())
	}
	var sum int64
	for _, b := range h.Buckets() {
		if b.Lo >= b.Hi {
			t.Errorf("bucket %v inverted", b)
		}
		sum += b.Count
	}
	if sum != 4 {
		t.Errorf("bucket counts sum to %d, want 4", sum)
	}
	if s := h.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{30, "30s"},
		{90, "1.5mn"},
		{7200, "2.0h"},
		{86400 * 2, "2.0day"},
		{7 * 86400 * 2, "2.0week"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.sec); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestThinnedPoissonZeroRatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewThinnedPoisson(rng, func(float64) float64 { return 0 }, 1000, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero-rate thinned Poisson did not panic")
		}
	}()
	p.Next()
}
