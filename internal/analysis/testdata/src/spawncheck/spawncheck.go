// Package spawncheck is the goroutine-leak fixture: goroutines that
// block must show a cancellation path (Done() select, close-signalled
// channel, range over a channel) or carry //physched:spawnok.
package spawncheck

import (
	"context"
	"sync"
)

func leakyForwarder(in, out chan int) {
	go func() { // want "goroutine receives from a channel but has no cancellation path"
		for {
			v := <-in
			out <- v
		}
	}()
}

func leakySelect(a, b chan int) {
	go func() { // want "goroutine blocks in a select but has no cancellation path"
		for {
			select {
			case <-a:
			case <-b:
			}
		}
	}()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func leakyLocker(g *guarded) {
	go func() { // want "goroutine holds g.mu but has no cancellation path"
		for {
			g.mu.Lock()
			g.n++
			g.mu.Unlock()
		}
	}()
}

func pump(ch chan int) {
	for {
		ch <- 0
	}
}

func spawnNamed(ch chan int) {
	go pump(ch) // want "goroutine sends on an unbuffered channel"
}

func (g *guarded) loop() {
	for {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

func spawnMethod(g *guarded) {
	go g.loop() // want "goroutine holds g.mu"
}

func suppressedSpawn(ch chan int) {
	//physched:spawnok fixture: the harness owns pump's lifetime
	go pump(ch)
}

// --- negative space: cancellation-aware and non-blocking goroutines ---

func cleanCtxSelect(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-in:
			case <-ctx.Done():
				return
			}
		}
	}()
}

func cleanRange(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

func cleanCommaOk(in chan int) {
	go func() {
		for {
			v, ok := <-in
			if !ok {
				return
			}
			_ = v
		}
	}()
}

func cleanBufferedResult() chan int {
	done := make(chan int, 1)
	go func() {
		done <- 42
	}()
	return done
}

func cleanNonBlocking(counter *int) {
	go func() {
		*counter = 42 // no channel ops, no locks: nothing to leak on
	}()
}
