package job

import (
	"math/rand"
	"testing"
	"testing/quick"

	"physched/internal/dataspace"
)

func TestSplitEqualBasic(t *testing.T) {
	parts := SplitEqual(dataspace.Iv(0, 100), 4, 10)
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	for _, p := range parts {
		if p.Len() != 25 {
			t.Errorf("part %v has len %d, want 25", p, p.Len())
		}
	}
}

func TestSplitEqualUneven(t *testing.T) {
	parts := SplitEqual(dataspace.Iv(0, 103), 4, 10)
	var total int64
	pos := int64(0)
	for _, p := range parts {
		if p.Start != pos {
			t.Fatalf("parts not contiguous: %v", parts)
		}
		total += p.Len()
		pos = p.End
	}
	if total != 103 {
		t.Errorf("parts cover %d events, want 103", total)
	}
	// Sizes differ by at most 1.
	if parts[0].Len()-parts[len(parts)-1].Len() > 1 {
		t.Errorf("uneven split: %v", parts)
	}
}

func TestSplitEqualRespectsMinimum(t *testing.T) {
	parts := SplitEqual(dataspace.Iv(0, 35), 10, 10)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3 (35 events / min 10)", len(parts))
	}
	for _, p := range parts {
		if p.Len() < 10 {
			t.Errorf("part %v below minimum", p)
		}
	}
}

func TestSplitEqualTinyInterval(t *testing.T) {
	parts := SplitEqual(dataspace.Iv(0, 5), 10, 10)
	if len(parts) != 1 || parts[0] != dataspace.Iv(0, 5) {
		t.Errorf("tiny interval should yield itself: %v", parts)
	}
	if SplitEqual(dataspace.Interval{}, 3, 10) != nil {
		t.Error("empty interval should yield nil")
	}
}

func TestSplitEqualProperty(t *testing.T) {
	prop := func(startRaw, lenRaw int64, nRaw int) bool {
		start := startRaw % 1_000_000
		length := lenRaw%100_000 + 1
		if length < 1 {
			length = -length + 1
		}
		n := nRaw%20 + 1
		if n < 1 {
			n = -n + 1
		}
		iv := dataspace.Iv(start, start+length)
		parts := SplitEqual(iv, n, 10)
		var total int64
		pos := iv.Start
		for _, p := range parts {
			if p.Start != pos || p.Empty() {
				return false
			}
			total += p.Len()
			pos = p.End
		}
		return total == iv.Len() && pos == iv.End && len(parts) <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJobRemaining(t *testing.T) {
	j := &Job{Range: dataspace.Iv(0, 1000)}
	if j.Remaining() != 1000 || j.Events() != 1000 {
		t.Errorf("Remaining=%d Events=%d", j.Remaining(), j.Events())
	}
	j.Processed = 400
	if j.Remaining() != 600 {
		t.Errorf("Remaining = %d, want 600", j.Remaining())
	}
}

func TestSplitForJob(t *testing.T) {
	j := &Job{ID: 7, Range: dataspace.Iv(0, 100)}
	subs := SplitForJob(j, SplitEqual(j.Range, 2, 10))
	if len(subs) != 2 || subs[0].Job != j || subs[1].Events() != 50 {
		t.Errorf("SplitForJob = %v", subs)
	}
}

func TestStripePointsMaxStripe(t *testing.T) {
	hull := dataspace.Iv(0, 1000)
	pts := StripePoints(nil, hull, 300)
	// No stripe may exceed 300.
	for i := 1; i < len(pts); i++ {
		if pts[i]-pts[i-1] > 300 {
			t.Errorf("stripe %d-%d exceeds 300", pts[i-1], pts[i])
		}
	}
	if pts[0] != 0 || pts[len(pts)-1] != 1000 {
		t.Errorf("hull ends missing: %v", pts)
	}
}

func TestStripePointsDropsSmallStripes(t *testing.T) {
	hull := dataspace.Iv(0, 1000)
	// 490 and 510 are only 20 apart; with stripe 300 (half = 150), 510
	// must be dropped after 490 is kept... then re-added stripes ≤ 300.
	pts := StripePoints([]int64{490, 510}, hull, 300)
	for i := 1; i < len(pts); i++ {
		d := pts[i] - pts[i-1]
		if d > 300 {
			t.Errorf("stripe too large: %v", pts)
		}
		if d < 150 && pts[i] != 1000 {
			t.Errorf("stripe too small at %d: %v", pts[i], pts)
		}
	}
}

func TestStripePointsRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		hull := dataspace.Iv(0, 1_000+rng.Int63n(100_000))
		stripe := int64(100 + rng.Int63n(5_000))
		var bs []int64
		for i := 0; i < rng.Intn(30); i++ {
			bs = append(bs, rng.Int63n(hull.End))
		}
		pts := StripePoints(bs, hull, stripe)
		if pts[0] != hull.Start || pts[len(pts)-1] != hull.End {
			t.Fatalf("hull ends missing: %v", pts)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Fatalf("points not ascending: %v", pts)
			}
			if pts[i]-pts[i-1] > stripe {
				t.Fatalf("stripe exceeds %d: %v", stripe, pts)
			}
		}
	}
}

func TestCutAtPoints(t *testing.T) {
	iv := dataspace.Iv(10, 50)
	parts := CutAtPoints(iv, []int64{0, 20, 30, 50, 70})
	want := []dataspace.Interval{
		dataspace.Iv(10, 20), dataspace.Iv(20, 30), dataspace.Iv(30, 50),
	}
	if len(parts) != len(want) {
		t.Fatalf("parts = %v, want %v", parts, want)
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("part %d = %v, want %v", i, parts[i], want[i])
		}
	}
}
