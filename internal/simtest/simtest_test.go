package simtest

import (
	"strings"
	"testing"

	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
)

// scenario returns a small, fast scenario for the given policy.
func scenario(t *testing.T, policy string, faults cluster.FaultModel) lab.Scenario {
	t.Helper()
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.CacheBytes = 20 * model.GB
	p.DataspaceBytes = 200 * model.GB
	p.MeanJobEvents = 2000
	return lab.Scenario{
		Params: p,
		NewPolicy: func() sched.Policy {
			pol, err := sched.New(policy, sched.Args{})
			if err != nil {
				t.Fatal(err)
			}
			return pol
		},
		Load:        0.9,
		Seed:        11,
		WarmupJobs:  15,
		MeasureJobs: 60,
		Faults:      faults,
	}
}

// TestInvariantsAcrossPolicies runs every registered policy through the
// harness, fault-free and under two churn regimes — the cross-cutting
// assertion that node dynamics violate no simulation invariant under any
// scheduling logic.
func TestInvariantsAcrossPolicies(t *testing.T) {
	regimes := []struct {
		name   string
		faults cluster.FaultModel
	}{
		{"no faults", cluster.FaultModel{}},
		{"churn", cluster.FaultModel{MTBFHours: 72, RepairHours: 2, CacheLoss: true}},
		{"harsh churn", cluster.FaultModel{
			MTBFHours: 24, RepairHours: 4, CacheLoss: true,
			DayNightSwing: 0.6, DecommissionProb: 0.05, SpareNodes: 2, JoinHours: 12,
		}},
	}
	for _, name := range sched.Names() {
		for _, reg := range regimes {
			t.Run(name+"/"+strings.ReplaceAll(reg.name, " ", "-"), func(t *testing.T) {
				s := scenario(t, name, reg.faults)
				res := Run(t, s)
				if reg.faults.Enabled() && !res.Overloaded && res.Cluster.Failures == 0 {
					t.Error("churn regime produced no failures; window too short?")
				}
			})
		}
	}
}

// TestFaultGridDeterminism: fault-enabled grids — every churn mechanism
// at once — must stay byte-identical across serial, parallel and
// shared-pool execution, extending the TestGridSharedPoolMatchesSerial
// family to node dynamics.
func TestFaultGridDeterminism(t *testing.T) {
	base := scenario(t, "outoforder", cluster.FaultModel{
		MTBFHours: 36, RepairHours: 2, CacheLoss: true,
		DayNightSwing: 0.5, DecommissionProb: 0.1, SpareNodes: 1,
	})
	rs := CheckGridDeterminism(t, lab.Grid{
		Base:  base,
		Loads: []float64{0.7, 1.0},
		Seeds: lab.Seeds(3, 2),
		Variants: []lab.Variant{
			{Label: "churn"},
			{Label: "cache survives", Mutate: func(s *lab.Scenario) { s.Faults.CacheLoss = false }},
		},
	})
	churned := 0
	for _, r := range rs.Results {
		if r.Cluster.Failures > 0 {
			churned++
		}
	}
	if churned == 0 {
		t.Error("determinism grid exercised no failures")
	}
}

// recordingTB counts Errorf calls instead of failing the enclosing test,
// so checker-detects-breakage tests can assert on them.
type recordingTB struct {
	testing.TB
	errors int
}

func (r *recordingTB) Errorf(string, ...any) { r.errors++ }
func (r *recordingTB) Helper()               {}

// TestCheckerCatchesDoubleCompletion: the harness must fail, not pass,
// on a broken simulation — here one whose JobDone fires twice per job.
func TestCheckerCatchesDoubleCompletion(t *testing.T) {
	s := scenario(t, "farm", cluster.FaultModel{})
	ck := New()
	ck.Instrument(&s)
	prev := s.Hooks
	s.Hooks = func(c *cluster.Cluster) {
		prev(c) // checker attaches first, so the sabotage wraps its view
		inner := c.JobDone
		c.JobDone = func(j *job.Job) {
			inner(j)
			inner(j)
		}
	}
	res, err := lab.RunE(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTB{TB: t}
	ck.Verify(rec, res)
	if rec.errors == 0 {
		t.Fatal("checker accepted a run with double job completions")
	}
}
