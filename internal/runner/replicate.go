package runner

import "physched/internal/stats"

// Aggregate summarises replicated runs of one scenario across seeds: the
// mean and standard deviation of each headline metric over the
// non-overloaded replicas, plus how many replicas overloaded. Figures in
// the paper are single curves; Aggregate quantifies how much a point moves
// run to run.
type Aggregate struct {
	Replicas   int
	Overloaded int

	SpeedupMean, SpeedupStd float64
	WaitingMean, WaitingStd float64

	Results []Result
}

// Replicate runs the scenario once per seed, in parallel, and aggregates.
func Replicate(s Scenario, seeds []int64) Aggregate {
	results := make([]Result, len(seeds))
	done := make(chan int, len(seeds))
	for i, seed := range seeds {
		i, seed := i, seed
		go func() {
			r := s
			r.Seed = seed
			results[i] = Run(r)
			done <- i
		}()
	}
	for range seeds {
		<-done
	}
	agg := Aggregate{Replicas: len(seeds), Results: results}
	var sp, wt stats.Summary
	for _, r := range results {
		if r.Overloaded {
			agg.Overloaded++
			continue
		}
		sp.Add(r.AvgSpeedup)
		wt.Add(r.AvgWaiting)
	}
	agg.SpeedupMean, agg.SpeedupStd = sp.Mean(), sp.Std()
	agg.WaitingMean, agg.WaitingStd = wt.Mean(), wt.Std()
	return agg
}
