// Package job defines the unit of work of the simulated system: analysis
// jobs over contiguous event ranges, the subjobs policies split them into,
// and splitting helpers shared by all scheduling policies.
//
// A job is "a large collection of events" (paper §2.4); policies divide it
// into subjobs processing disjoint sub-ranges, possibly suspending and
// resuming them. Subjobs of one job together always partition exactly the
// unprocessed remainder of the job's range.
package job

import (
	"fmt"
	"slices"

	"physched/internal/dataspace"
)

// Job is one analysis job submitted by a physicist.
type Job struct {
	ID      int64
	Arrival float64            // submission time
	Range   dataspace.Interval // contiguous events to analyse

	// Accounting maintained by the cluster.
	Processed  int64   // events fully analysed so far
	Started    bool    // true once the first subjob was dispatched
	FirstStart float64 // time of first dispatch
	Finished   bool
	EndTime    float64

	// ScheduledAt is the time the job was handed to its policy's queues.
	// For immediate policies it equals Arrival; delayed scheduling sets it
	// to the end of the accumulation period, and reported waiting times
	// start there (§5.2: the period delay "is subtracted from the waiting
	// time shown in the figures").
	ScheduledAt float64

	// Running counts subjobs of this job currently executing on nodes.
	Running int

	// Suspended holds subjobs of this job that were preempted or could not
	// be placed, and await resumption. Owned by the scheduling policy.
	Suspended []*Subjob

	// Priority marks a job that exceeded the fairness aging limit of the
	// out-of-order policy (§4.1) and must be served before any other work.
	Priority bool
}

// Remaining returns the number of events still to process.
func (j *Job) Remaining() int64 { return j.Range.Len() - j.Processed }

// Events returns the total number of events of the job.
func (j *Job) Events() int64 { return j.Range.Len() }

func (j *Job) String() string {
	return fmt.Sprintf("job%d%v", j.ID, j.Range)
}

// Subjob is a contiguous slice of a job assigned to one node at a time.
type Subjob struct {
	Job   *Job
	Range dataspace.Interval

	// ID is the subjob's dense arena index (see Arena), usable to address
	// it without holding the pointer. Subjobs built as plain literals
	// (tests) have ID 0.
	ID int32

	// Yielding marks a subjob that runs on a node not holding its data
	// (out-of-order work stealing, Table 3): a subjob with locally cached
	// data may preempt it.
	Yielding bool

	// NoCacheQueue remembers that the subjob came from the global
	// no-cached-data queue, so preemption puts it back at that queue's
	// front (Table 3).
	NoCacheQueue bool

	// Origin is the node whose queue the subjob came from, or -1 for the
	// no-cached-data queue. Preemption returns the remainder "at the first
	// position of the queue where it came from" (Table 3).
	Origin int
}

// Events returns the subjob's event count.
func (s *Subjob) Events() int64 { return s.Range.Len() }

func (s *Subjob) String() string {
	return fmt.Sprintf("sub[j%d]%v", s.Job.ID, s.Range)
}

// SplitEqual cuts iv into at most n contiguous parts of (near-)equal size,
// none smaller than minEvents (except when iv itself is smaller, which
// yields a single part). It returns fewer than n parts when iv is too
// small to honour minEvents.
func SplitEqual(iv dataspace.Interval, n int, minEvents int64) []dataspace.Interval {
	return AppendSplitEqual(nil, iv, n, minEvents)
}

// AppendSplitEqual is SplitEqual appending to a caller-owned buffer, for
// per-dispatch paths that split without allocating.
func AppendSplitEqual(dst []dataspace.Interval, iv dataspace.Interval, n int, minEvents int64) []dataspace.Interval {
	if iv.Empty() || n <= 0 {
		return dst
	}
	if maxParts := iv.Len() / minEvents; int64(n) > maxParts {
		n = int(maxParts)
		if n == 0 {
			n = 1
		}
	}
	size := iv.Len() / int64(n)
	rem := iv.Len() % int64(n)
	pos := iv.Start
	for i := 0; i < n; i++ {
		end := pos + size
		if int64(i) < rem {
			end++
		}
		dst = append(dst, dataspace.Iv(pos, end))
		pos = end
	}
	return dst
}

// SplitForJob turns intervals into subjobs of j.
func SplitForJob(j *Job, ivs []dataspace.Interval) []*Subjob {
	subs := make([]*Subjob, len(ivs))
	for i, iv := range ivs {
		subs[i] = &Subjob{Job: j, Range: iv}
	}
	return subs
}

// StripePoints computes the cut points of the delayed policy (Table 4):
// starting from the sorted distinct boundary points of the given intervals
// within hull, points creating stripes shorter than stripe/2 are removed,
// then points are added so that no stripe exceeds stripe events.
func StripePoints(boundaries []int64, hull dataspace.Interval, stripe int64) []int64 {
	out, _ := AppendStripePoints(nil, nil, boundaries, hull, stripe)
	return out
}

// AppendStripePoints is StripePoints appending to dst, using scratch as
// an intermediate buffer. It returns the extended dst and the (possibly
// regrown) scratch so the caller can reuse both across periods.
func AppendStripePoints(dst, scratch []int64, boundaries []int64, hull dataspace.Interval, stripe int64) ([]int64, []int64) {
	if stripe <= 0 {
		panic("job: stripe must be positive")
	}
	// Sorted distinct boundary points inside the hull, hull ends included.
	pts := append(scratch[:0], hull.Start, hull.End)
	for _, b := range boundaries {
		if b > hull.Start && b < hull.End {
			pts = append(pts, b)
		}
	}
	slices.Sort(pts)
	pts = slices.Compact(pts)
	// Drop points creating stripes below stripe/2 (keep hull ends).
	w := 1
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		if p-pts[w-1] < stripe/2 && p != hull.End {
			continue
		}
		pts[w] = p
		w++
	}
	pts = pts[:w]
	// Ensure no stripe exceeds stripe events.
	for i, p := range pts {
		if i > 0 {
			prev := dst[len(dst)-1]
			for p-prev > stripe {
				prev += stripe
				dst = append(dst, prev)
			}
		}
		dst = append(dst, p)
	}
	return dst, pts
}

// CutAtPoints splits iv at the given ascending cut points, returning the
// resulting contiguous sub-intervals.
func CutAtPoints(iv dataspace.Interval, points []int64) []dataspace.Interval {
	return AppendCutAtPoints(nil, iv, points)
}

// AppendCutAtPoints is CutAtPoints appending to a caller-owned buffer.
func AppendCutAtPoints(dst []dataspace.Interval, iv dataspace.Interval, points []int64) []dataspace.Interval {
	pos := iv.Start
	for _, p := range points {
		if p <= pos {
			continue
		}
		if p >= iv.End {
			break
		}
		dst = append(dst, dataspace.Iv(pos, p))
		pos = p
	}
	if pos < iv.End {
		dst = append(dst, dataspace.Iv(pos, iv.End))
	}
	return dst
}
