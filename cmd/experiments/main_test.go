package main

import (
	"context"
	"testing"

	"physched/internal/experiments"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "bogus", experiments.Quick, 1, "", false); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestEveryAdvertisedIDIsHandled(t *testing.T) {
	// Every id in AllFigureIDs must be routed by run(); a new experiment
	// that is advertised but not wired would silently 404 for users. The
	// check uses the error path only — actually running all experiments
	// belongs to the benchmarks.
	for _, id := range experiments.AllFigureIDs() {
		if id == "bogus" {
			t.Fatal("sentinel clash")
		}
	}
	// Unknown ids error; known ids must not take the unknown-id path.
	// run() executes the experiment, which is too slow here for all ids,
	// so exercise only the cheapest one end-to-end.
	if err := run(context.Background(), "farm", experiments.Quick, 1, "", false); err != nil {
		t.Errorf("run(farm): %v", err)
	}
}

func TestCSVWriteFailureSurfaces(t *testing.T) {
	err := run(context.Background(), "fig2", experiments.Quick, 1, "/nonexistent-dir-for-physched-test", false)
	if err == nil {
		t.Error("unwritable CSV dir did not error")
	}
}
