package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"physched/internal/lab"
	"physched/internal/opt"
	"physched/internal/resultcache"
)

// persistEpoch pins every job timestamp in the persistence tests.
var persistEpoch = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// persistServer opens a service over a shared disk cache and state
// directory on a fake clock — the restartable configuration. The caller
// restarts by calling it again with the same directories.
func persistServer(t *testing.T, cacheDir, stateDir string, pool *lab.Pool) (*server, *httptest.Server) {
	t.Helper()
	cache, err := resultcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if pool == nil {
		pool = lab.NewPool(2)
		t.Cleanup(pool.Close)
	}
	s := mustServer(t, serverConfig{
		Cache:    cache,
		Pool:     pool,
		MaxCells: 100,
		StateDir: stateDir,
		Clock:    func() time.Time { return persistEpoch },
	})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// rawStream reads a job's full NDJSON stream verbatim.
func rawStream(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFinishedJobsSurviveRestart: with -state-dir, a finished async job
// outlives the process — after a restart on the same directory it is
// still listed, its status counters are intact, and re-attaching to its
// stream replays the original run byte-for-byte.
func TestFinishedJobsSurviveRestart(t *testing.T) {
	cacheDir, stateDir := t.TempDir(), t.TempDir()

	_, ts1 := persistServer(t, cacheDir, stateDir, nil)
	sub := postAsync(t, ts1, gridBody)
	before := waitDone(t, ts1, sub.JobID)
	if before.State != string(jobDone) {
		t.Fatalf("job finished in state %q", before.State)
	}
	beforeStream := rawStream(t, ts1, sub.JobID)
	ts1.Close()

	_, ts2 := persistServer(t, cacheDir, stateDir, nil)
	after := getStatus(t, ts2, sub.JobID)
	if after.State != string(jobDone) || after.Done != before.Done ||
		after.Total != before.Total || after.CacheHits != before.CacheHits {
		t.Errorf("restored status %+v, want %+v", after, before)
	}
	if after.Hash != before.Hash || after.GridHash != before.Hash {
		t.Errorf("restored hashes %q/%q, want %q", after.Hash, after.GridHash, before.Hash)
	}
	if !after.Created.Equal(before.Created) {
		t.Errorf("restored Created %v, want %v", after.Created, before.Created)
	}
	afterStream := rawStream(t, ts2, sub.JobID)
	if !bytes.Equal(beforeStream, afterStream) {
		t.Errorf("replay across restart is not byte-identical:\nbefore: %d bytes\nafter:  %d bytes",
			len(beforeStream), len(afterStream))
	}

	// The restored job appears in the listing.
	resp, err := http.Get(ts2.URL + "/v1/jobs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	var listing jobList
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != sub.JobID {
		t.Errorf("restored listing %+v, want the one restored job", listing.Jobs)
	}
}

// TestRunningGridJobResumesAfterCrash is the restart-resume acceptance
// test: a grid job is submitted, the process "dies" before any of its
// cells ran, and a new server over the same state and cache directories
// restarts it under the original job id. Cells the service had already
// simulated (a pre-warmed subset) are replayed from the content cache —
// exactly the uncached remainder is re-simulated — and the resumed
// result is byte-identical to an uninterrupted run.
func TestRunningGridJobResumesAfterCrash(t *testing.T) {
	// Reference: the same grid run uninterrupted on an isolated server.
	ref := testServer(t)
	_, refResult := postGrid(t, ref, gridBody)

	cacheDir, stateDir := t.TempDir(), t.TempDir()
	pool := lab.NewPool(1)
	t.Cleanup(pool.Close)
	s1, ts1 := persistServer(t, cacheDir, stateDir, pool)

	// Warm the cache with half the grid: the single-seed subgrid shares
	// cell specs — and therefore content hashes — with the full grid.
	warmBody := strings.Replace(gridBody, `"seeds": [1, 2]`, `"seeds": [1]`, 1)
	_, warm := postGrid(t, ts1, warmBody)
	warmed := len(warm.Cells)

	// Park the pool's only worker so the full-grid job cannot progress,
	// then crash: journals freeze with the job mid-flight.
	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started
	sub := postAsync(t, ts1, gridBody)
	s1.crash()
	close(gate)
	<-blockerDone
	ts1.Close()

	// Restart on the same directories: recovery resumes the job under its
	// original id.
	_, ts2 := persistServer(t, cacheDir, stateDir, nil)
	st := waitDone(t, ts2, sub.JobID)
	if st.State != string(jobDone) {
		t.Fatalf("resumed job finished in state %q (%s)", st.State, st.Error)
	}
	if st.ID != sub.JobID {
		t.Fatalf("resumed job id %q, want %q", st.ID, sub.JobID)
	}

	_, resumed := readStream(t, ts2, sub.JobID)
	if len(resumed.Cells) != len(refResult.Cells) {
		t.Fatalf("resumed run produced %d cells, want %d", len(resumed.Cells), len(refResult.Cells))
	}
	// Exactly the warmed cells replay from cache; the rest re-simulate.
	if resumed.CacheHits != warmed {
		t.Errorf("resumed run had %d cache hits, want %d (the pre-crash warmed cells)",
			resumed.CacheHits, warmed)
	}
	a, _ := json.Marshal(refResult.Cells)
	b, _ := json.Marshal(resumed.Cells)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed cells diverged from the uninterrupted run:\n%s\n%s", a, b)
	}
	ag, _ := json.Marshal(refResult.Aggregates)
	bg, _ := json.Marshal(resumed.Aggregates)
	if !bytes.Equal(ag, bg) {
		t.Errorf("resumed aggregates diverged from the uninterrupted run:\n%s\n%s", ag, bg)
	}
}

// TestRunningStudyJobResumesAfterCrash: a study job interrupted by
// process death restarts on the next boot and converges to the same
// report as an uninterrupted run — byte-identical once the two
// cache-accounting fields (simulated_cells, cache_hits), which honestly
// depend on what the dead run had already cached, are zeroed.
func TestRunningStudyJobResumesAfterCrash(t *testing.T) {
	ref := testServer(t)
	_, refStudy := postStudy(t, ref, studyBody)

	cacheDir, stateDir := t.TempDir(), t.TempDir()
	pool := lab.NewPool(1)
	t.Cleanup(pool.Close)
	s1, ts1 := persistServer(t, cacheDir, stateDir, pool)

	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started
	resp, err := http.Post(ts1.URL+"/v1/studies?async=1", "application/json", strings.NewReader(studyBody))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobSubmitted
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	s1.crash()
	close(gate)
	<-blockerDone
	ts1.Close()

	s2, ts2 := persistServer(t, cacheDir, stateDir, nil)
	st := waitDone(t, ts2, sub.JobID)
	if st.State != string(jobDone) {
		t.Fatalf("resumed study finished in state %q (%s)", st.State, st.Error)
	}

	report, ok := s2.studies.get(sub.Hash)
	if !ok {
		t.Fatal("resumed study report not retained")
	}
	normalize := func(r opt.Report) []byte {
		r.SimulatedCells, r.CacheHits = 0, 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := normalize(*refStudy.Report), normalize(*report); !bytes.Equal(a, b) {
		t.Errorf("resumed report diverged from the uninterrupted run:\n%s\n%s", a, b)
	}
}

// TestResumeRespectsChangedLimits: a journaled job whose request no
// longer plans (the operator tightened -max-cells across the restart)
// surfaces as a failed job, not a crashed or silently vanished one.
func TestResumeRespectsChangedLimits(t *testing.T) {
	cacheDir, stateDir := t.TempDir(), t.TempDir()
	pool := lab.NewPool(1)
	t.Cleanup(pool.Close)
	s1, ts1 := persistServer(t, cacheDir, stateDir, pool)

	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started
	sub := postAsync(t, ts1, gridBody)
	s1.crash()
	close(gate)
	<-blockerDone
	ts1.Close()

	cache, err := resultcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustServer(t, serverConfig{
		Cache:    cache,
		Pool:     lab.NewPool(1),
		MaxCells: 2, // the 8-cell grid no longer plans
		StateDir: stateDir,
		Clock:    func() time.Time { return persistEpoch },
	})
	t.Cleanup(s2.pool.Close)
	j, ok := s2.jobs.get(sub.JobID)
	if !ok {
		t.Fatal("unresumable job vanished from the listing")
	}
	st := j.status()
	if st.State != string(jobFailed) || st.Error == "" {
		t.Errorf("unresumable job status %+v, want failed with an error message", st)
	}
}
