package lab

import (
	"testing"

	"physched/internal/model"
	"physched/internal/sched"
)

// These tests pin the paper's qualitative findings at miniature scale, so
// a regression in any policy's logic that flips an ordering fails fast in
// CI rather than surfacing only in the full figure runs.

// TestStripeSizeOrdering encodes Figure 6: under delayed scheduling,
// smaller stripes yield strictly better average speedups at equal load.
func TestStripeSizeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	p := smallParams()
	load := 1.2 * p.FarmMaxLoad()
	speedup := func(stripe int64) float64 {
		s := Scenario{
			Params: p,
			NewPolicy: func() sched.Policy {
				return sched.NewDelayed(6*model.Hour, stripe)
			},
			Load: load, Seed: 17,
			WarmupJobs: 60, MeasureJobs: 300,
			OverloadBacklog: 500,
		}
		r := Run(s)
		if r.Overloaded {
			t.Fatalf("stripe %d overloaded at this load", stripe)
		}
		return r.AvgSpeedup
	}
	small, large := speedup(100), speedup(4_000)
	if small <= large {
		t.Errorf("stripe 100 speedup %.2f should beat stripe 4000 speedup %.2f", small, large)
	}
}

// TestCacheSizeOrdering encodes Figure 2's "the cache size appears to be
// decisive": larger caches yield higher speedups for the cache-oriented
// policy at equal load.
func TestCacheSizeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	p := smallParams()
	load := 0.7 * p.FarmMaxLoad()
	speedup := func(cacheGB int64) float64 {
		pp := p
		pp.CacheBytes = cacheGB * model.GB
		r := Run(Scenario{
			Params:    pp,
			NewPolicy: func() sched.Policy { return sched.NewCacheOriented() },
			Load:      load, Seed: 23,
			WarmupJobs: 60, MeasureJobs: 300,
		})
		if r.Overloaded {
			t.Fatalf("cache %d GB overloaded at 0.7×farm-max", cacheGB)
		}
		return r.AvgSpeedup
	}
	s5, s10, s20 := speedup(5), speedup(10), speedup(20)
	if !(s5 < s10 && s10 < s20) {
		t.Errorf("speedups not increasing with cache size: %.2f, %.2f, %.2f", s5, s10, s20)
	}
}

// TestAdaptiveSustainsMoreThanOutOfOrder encodes Figure 7's headline: the
// adaptive policy holds loads that overload out-of-order.
func TestAdaptiveSustainsMoreThanOutOfOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	// Paper-like cache coverage (50% of the dataspace across nodes) so
	// delayed scheduling has headroom above out-of-order.
	p := smallParams()
	p.CacheBytes = 25 * model.GB
	grid := make([]float64, 7)
	for i := range grid {
		grid[i] = (0.3 + 0.1*float64(i)) * p.MaxTheoreticalLoad()
	}
	oooMax := SustainableLoad(Scenario{
		Params:    p,
		NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
		Seed:      29, WarmupJobs: 60, MeasureJobs: 300,
	}, grid, Options{})
	if oooMax >= grid[len(grid)-1] {
		t.Skip("out-of-order sustained the whole grid at this scale; ordering not testable")
	}
	// The first grid load out-of-order could not hold.
	var target float64
	for _, l := range grid {
		if l > oooMax {
			target = l
			break
		}
	}
	ada := Run(Scenario{
		Params:    p,
		NewPolicy: func() sched.Policy { return sched.NewAdaptive(100) },
		Load:      target, Seed: 29, WarmupJobs: 60,
		MeasureJobs:     int(4 * target * model.Week / model.Hour),
		OverloadBacklog: int64(4*target*model.Week/model.Hour) + 100,
	})
	if ada.Overloaded {
		t.Errorf("adaptive delay overloaded at %.2f j/h where the paper's design should push past out-of-order's %.2f", target, oooMax)
	}
}
