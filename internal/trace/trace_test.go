package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRecorderAddAndEvents(t *testing.T) {
	r := New(0, nil)
	r.Add(Event{Time: 1, Kind: JobArrived, JobID: 1})
	r.Add(Event{Time: 2, Kind: JobStarted, JobID: 1})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != JobArrived || evs[1].Kind != JobStarted {
		t.Errorf("events = %+v", evs)
	}
	// Returned slice is a copy.
	evs[0].JobID = 999
	if r.Events()[0].JobID != 1 {
		t.Error("Events() must return a copy")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Add(Event{Kind: JobArrived}) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
}

func TestLimitCapsMemory(t *testing.T) {
	r := New(3, nil)
	for i := 0; i < 10; i++ {
		r.Add(Event{Time: float64(i), Kind: Sample})
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestStreamingSink(t *testing.T) {
	var buf bytes.Buffer
	r := New(1, &buf) // memory capped, sink unbounded
	for i := 0; i < 5; i++ {
		r.Add(Event{Time: float64(i), Kind: JobArrived, JobID: int64(i)})
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Errorf("sink got %d lines, want 5", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"job_arrived"`) {
		t.Errorf("unexpected JSONL: %q", lines[0])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(0, nil)
	r.Add(Event{Time: 1.5, Kind: SubjobStarted, JobID: 7, Node: 2, Events: 100})
	r.Add(Event{Time: 9, Kind: Sample, BusyNodes: 3, Backlog: 12, CacheUsed: 5000, CacheHitRate: 0.75})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != r.Events()[0] || back[1] != r.Events()[1] {
		t.Errorf("round trip mismatch: %+v vs %+v", back, r.Events())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSummarise(t *testing.T) {
	events := []Event{
		{Kind: JobFinished}, {Kind: JobFinished},
		{Kind: SubjobFinished}, {Kind: SubjobFinished}, {Kind: SubjobFinished},
		{Kind: Sample, BusyNodes: 2, Backlog: 5, CacheHitRate: 0.5},
		{Kind: Sample, BusyNodes: 4, Backlog: 9, CacheHitRate: 0.7},
	}
	s := Summarise(events)
	if s.Jobs != 2 || s.Subjobs != 3 {
		t.Errorf("Jobs=%d Subjobs=%d", s.Jobs, s.Subjobs)
	}
	if s.MeanConcurrency != 3 {
		t.Errorf("MeanConcurrency = %v, want 3", s.MeanConcurrency)
	}
	if s.PeakBacklog != 9 {
		t.Errorf("PeakBacklog = %d, want 9", s.PeakBacklog)
	}
	if math.Abs(s.MeanHitRate-0.6) > 1e-12 {
		t.Errorf("MeanHitRate = %v, want 0.6", s.MeanHitRate)
	}
}

func TestTimeline(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: SubjobStarted, Node: 0},
		{Time: 50, Kind: SubjobFinished, Node: 0},
		{Time: 60, Kind: SubjobStarted, Node: 1},
		// node 1 never finishes: busy until horizon.
	}
	util := Timeline(events, 2, 100)
	if math.Abs(util[0]-0.5) > 1e-12 {
		t.Errorf("node 0 utilisation = %v, want 0.5", util[0])
	}
	if math.Abs(util[1]-0.4) > 1e-12 {
		t.Errorf("node 1 utilisation = %v, want 0.4", util[1])
	}
}

func TestTimelineIgnoresOutOfRangeNodes(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: SubjobStarted, Node: 5},
		{Time: 10, Kind: SubjobFinished, Node: -1},
	}
	util := Timeline(events, 2, 100)
	if util[0] != 0 || util[1] != 0 {
		t.Errorf("util = %v, want zeros", util)
	}
}
