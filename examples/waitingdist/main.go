// Waitingdist reproduces the shape of the paper's Figure 4: the
// waiting-time distribution of the out-of-order policy near its maximal
// sustainable load is strongly bimodal — jobs whose data is cached overtake
// and start within minutes, jobs without cached data are overtaken and wait
// hours.
package main

import (
	"fmt"

	"physched"
)

func main() {
	for _, cfg := range []struct {
		cacheGB int64
		load    float64
	}{
		{100, 1.7},
		{50, 1.44},
	} {
		params := physched.PaperCalibrated()
		params.CacheBytes = cfg.cacheGB * physched.GB

		res := physched.Run(physched.Scenario{
			Params:      params,
			NewPolicy:   physched.OutOfOrder,
			Load:        cfg.load,
			Seed:        7,
			WarmupJobs:  150,
			MeasureJobs: 1000,
		})

		fmt.Printf("out-of-order, cache %d GB, %.2f jobs/hour (overloaded=%v)\n",
			cfg.cacheGB, cfg.load, res.Overloaded)
		if res.Overloaded {
			continue
		}
		fmt.Printf("  avg waiting %.0f s, p99 %.1f h, max %.1f h\n",
			res.AvgWaiting, res.P99Waiting/physched.Hour, res.MaxWaiting/physched.Hour)
		fmt.Println(res.Collector.WaitingHistogram().String())
	}
}
