package dataspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refSet is a brute-force reference implementation over a small universe.
type refSet map[int64]bool

func (r refSet) add(iv Interval)    { forEach(iv, func(e int64) { r[e] = true }) }
func (r refSet) remove(iv Interval) { forEach(iv, func(e int64) { delete(r, e) }) }

func forEach(iv Interval, f func(int64)) {
	for e := iv.Start; e < iv.End; e++ {
		f(e)
	}
}

func sameAsRef(s Set, r refSet, lo, hi int64) bool {
	for e := lo; e < hi; e++ {
		if s.Contains(e) != r[e] {
			return false
		}
	}
	return true
}

func randIv(rng *rand.Rand, universe int64) Interval {
	a := rng.Int63n(universe)
	b := a + rng.Int63n(universe/4+1)
	return Iv(a, b)
}

func TestSetAgainstReference(t *testing.T) {
	const universe = 200
	rng := rand.New(rand.NewSource(1))
	var s Set
	r := refSet{}
	for step := 0; step < 2000; step++ {
		iv := randIv(rng, universe)
		if rng.Intn(2) == 0 {
			s = s.Add(iv)
			r.add(iv)
		} else {
			s = s.Remove(iv)
			r.remove(iv)
		}
		if !sameAsRef(s, r, 0, universe+universe/4+2) {
			t.Fatalf("step %d: divergence after op on %v; set=%v", step, iv, s)
		}
		if int64(len(r)) != s.Len() {
			t.Fatalf("step %d: Len=%d, ref=%d", step, s.Len(), len(r))
		}
	}
}

func TestSetCanonicalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s Set
	for step := 0; step < 500; step++ {
		if rng.Intn(2) == 0 {
			s = s.Add(randIv(rng, 300))
		} else {
			s = s.Remove(randIv(rng, 300))
		}
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				t.Fatalf("canonical set holds empty interval %v", iv)
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				t.Fatalf("intervals not disjoint/sorted/non-adjacent: %v", s)
			}
		}
	}
}

func TestSetAddMergesAdjacent(t *testing.T) {
	s := NewSet(Iv(0, 5), Iv(5, 10))
	if len(s.Intervals()) != 1 || s.Intervals()[0] != Iv(0, 10) {
		t.Errorf("adjacent intervals not merged: %v", s)
	}
}

func TestSetContainsInterval(t *testing.T) {
	s := NewSet(Iv(0, 10), Iv(20, 30))
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Iv(0, 10), true},
		{Iv(2, 8), true},
		{Iv(5, 15), false},
		{Iv(10, 20), false},
		{Iv(25, 25), true}, // empty interval is trivially contained
		{Iv(20, 30), true},
		{Iv(19, 30), false},
	}
	for _, c := range cases {
		if got := s.ContainsInterval(c.iv); got != c.want {
			t.Errorf("ContainsInterval(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntersectAndSubtractPartitionInterval(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < 10; i++ {
			s = s.Add(randIv(rng, 500))
		}
		iv := randIv(rng, 500)
		in := s.IntersectInterval(iv)
		out := s.SubtractFrom(iv)
		// in and out partition iv.
		if in.Len()+out.Len() != iv.Len() {
			return false
		}
		if !in.Intersect(out).Empty() {
			return false
		}
		union := in.Union(out)
		return iv.Empty() && union.Empty() ||
			union.Len() == iv.Len() && union.ContainsInterval(iv)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < 8; i++ {
			s = s.Add(randIv(rng, 400))
		}
		iv := randIv(rng, 400)
		pieces := s.Partition(iv)
		pos := iv.Start
		for _, p := range pieces {
			if p.Interval.Start != pos || p.Interval.Empty() {
				return false
			}
			if p.InSet != s.ContainsInterval(p.Interval) {
				return false
			}
			if !p.InSet && !s.IntersectInterval(p.Interval).Empty() {
				return false
			}
			pos = p.Interval.End
		}
		return pos == iv.End || (iv.Empty() && len(pieces) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionAlternates(t *testing.T) {
	s := NewSet(Iv(10, 20), Iv(30, 40))
	pieces := s.Partition(Iv(0, 50))
	want := []SetPiece{
		{Iv(0, 10), false},
		{Iv(10, 20), true},
		{Iv(20, 30), false},
		{Iv(30, 40), true},
		{Iv(40, 50), false},
	}
	if len(pieces) != len(want) {
		t.Fatalf("got %d pieces, want %d: %v", len(pieces), len(want), pieces)
	}
	for i := range want {
		if pieces[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, pieces[i], want[i])
		}
	}
}

func TestUnionIntersectLaws(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Set {
			var s Set
			for i := 0; i < 6; i++ {
				s = s.Add(randIv(rng, 300))
			}
			return s
		}
		a, b := mk(), mk()
		// Commutativity of union and intersection on Len and membership.
		ab, ba := a.Union(b), b.Union(a)
		if ab.Len() != ba.Len() {
			return false
		}
		ia, ib := a.Intersect(b), b.Intersect(a)
		if ia.Len() != ib.Len() {
			return false
		}
		// Inclusion–exclusion.
		return ab.Len() == a.Len()+b.Len()-ia.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ivs := make([]Interval, 1024)
	for i := range ivs {
		ivs[i] = randIv(rng, 1_000_000)
	}
	b.ResetTimer()
	var s Set
	for i := 0; i < b.N; i++ {
		s = s.Add(ivs[i%len(ivs)])
		if i%4096 == 0 {
			s = Set{}
		}
	}
}

func BenchmarkSetPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var s Set
	for i := 0; i < 500; i++ {
		s = s.Add(randIv(rng, 3_000_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Partition(Iv(int64(i%2_000_000), int64(i%2_000_000)+30_000))
	}
}
