package sched

import "physched/internal/job"

// ringDeque is a growable double-ended queue over a power-of-two ring
// buffer. PushBack, PushFront and PopFront are amortised O(1) — the old
// slice-based deque copied the whole queue on every PushFront — and every
// vacated slot is zeroed so popped elements are not kept reachable through
// the backing array.
type ringDeque[T any] struct {
	buf  []T
	head int // index of the first element
	n    int // number of elements
}

func (d *ringDeque[T]) Empty() bool { return d.n == 0 }
func (d *ringDeque[T]) Len() int    { return d.n }

// at maps a logical position (0 = front) to a buffer index.
func (d *ringDeque[T]) at(i int) int { return (d.head + i) & (len(d.buf) - 1) }

// grow doubles the buffer (minimum 8) and realigns head to zero.
func (d *ringDeque[T]) grow() {
	capacity := 8
	if len(d.buf) > 0 {
		capacity = 2 * len(d.buf)
	}
	buf := make([]T, capacity)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[d.at(i)]
	}
	d.buf = buf
	d.head = 0
}

//physched:hotpath
func (d *ringDeque[T]) PushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[d.at(d.n)] = v
	d.n++
}

func (d *ringDeque[T]) PushFront(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

//physched:hotpath
func (d *ringDeque[T]) PopFront() T {
	if d.n == 0 {
		panic("sched: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

// Peek returns the i-th element without removing it.
func (d *ringDeque[T]) Peek(i int) T {
	if i < 0 || i >= d.n {
		panic("sched: Peek index out of range")
	}
	return d.buf[d.at(i)]
}

// Remove deletes and returns the i-th element, shifting the shorter side.
func (d *ringDeque[T]) Remove(i int) T {
	if i < 0 || i >= d.n {
		panic("sched: Remove index out of range")
	}
	v := d.buf[d.at(i)]
	var zero T
	if i < d.n/2 {
		for k := i; k > 0; k-- {
			d.buf[d.at(k)] = d.buf[d.at(k-1)]
		}
		d.buf[d.head] = zero
		d.head = (d.head + 1) & (len(d.buf) - 1)
	} else {
		for k := i; k < d.n-1; k++ {
			d.buf[d.at(k)] = d.buf[d.at(k+1)]
		}
		d.buf[d.at(d.n-1)] = zero
	}
	d.n--
	return v
}

// jobFIFO is a FIFO queue of jobs.
type jobFIFO struct{ ringDeque[*job.Job] }

func (f *jobFIFO) Push(j *job.Job) { f.PushBack(j) }
func (f *jobFIFO) Pop() *job.Job   { return f.PopFront() }

// subjobDeque supports FIFO plus front re-insertion ("placed back at the
// first position of the queue where it came from", Table 3). It keeps a
// running sum of queued events so totalEvents — probed for every node on
// every steal — is O(1). The sum relies on queued subjobs being immutable:
// only a running subjob's range ever changes (SplitRunning/Preempt), so a
// subjob's Events() is fixed between enqueue and dequeue.
type subjobDeque struct {
	ringDeque[*job.Subjob]
	events int64
}

func (d *subjobDeque) PushBack(s *job.Subjob) {
	d.events += s.Events()
	d.ringDeque.PushBack(s)
}

func (d *subjobDeque) PushFront(s *job.Subjob) {
	d.events += s.Events()
	d.ringDeque.PushFront(s)
}

func (d *subjobDeque) PopFront() *job.Subjob {
	s := d.ringDeque.PopFront()
	d.events -= s.Events()
	return s
}

func (d *subjobDeque) Remove(i int) *job.Subjob {
	s := d.ringDeque.Remove(i)
	d.events -= s.Events()
	return s
}

// totalEvents returns the events of all queued subjobs.
func (d *subjobDeque) totalEvents() int64 { return d.events }
