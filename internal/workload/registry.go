package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"physched/internal/model"
)

// Args carries the serialisable inputs a registered workload factory may
// consume. Params, Seed and JobsPerHour are bound per run by the lab (the
// grid sweeps them); the remaining fields are spec-level knobs of the
// individual workload kinds.
type Args struct {
	Params      model.Params
	Seed        int64
	JobsPerHour float64

	// Swing is the day/night load contrast in [0,1) for the "daynight"
	// kind: the instantaneous rate is JobsPerHour·(1 + Swing·sin(2πt/day)).
	Swing float64
	// PeakJobsPerHour bounds the thinning envelope of inhomogeneous kinds;
	// zero means the kind's natural peak (daynight: JobsPerHour·(1+Swing)).
	PeakJobsPerHour float64
}

// Factory builds a fresh workload source from its serialisable arguments.
// Sources are stateful, so a factory is invoked once per simulation run.
type Factory func(Args) (Source, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a workload kind constructible by name through Resolve,
// extending the set of job streams reachable from spec files and the
// physchedd service without touching this package. It rejects empty names
// and names already taken (including the built-ins).
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("workload: Register with empty workload name")
	}
	if f == nil {
		return fmt.Errorf("workload: Register %q with nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("workload: kind %q already registered", name)
	}
	registry[name] = f
	return nil
}

// Resolve builds the named workload kind with the given arguments. The
// empty name resolves to "poisson", the paper's homogeneous stream.
func Resolve(name string, a Args) (Source, error) {
	if name == "" {
		name = "poisson"
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown kind %q (known: %v)", name, Names())
	}
	return f(a)
}

// Names lists the registered workload kinds, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(Register("poisson", func(a Args) (Source, error) {
		if a.JobsPerHour <= 0 {
			return nil, fmt.Errorf("workload: poisson needs a positive rate, got %v jobs/h", a.JobsPerHour)
		}
		// Arguments the kind does not consume must fail as loudly as
		// misspelled field names: a spec with a dead swing would silently
		// simulate a homogeneous stream.
		if a.Swing != 0 {
			return nil, fmt.Errorf("workload: poisson does not take swing")
		}
		if a.PeakJobsPerHour != 0 {
			return nil, fmt.Errorf("workload: poisson does not take peak_jobs_per_hour")
		}
		return New(a.Params, rand.New(rand.NewSource(a.Seed)), a.JobsPerHour), nil
	}))
	must(Register("daynight", func(a Args) (Source, error) {
		if a.JobsPerHour <= 0 {
			return nil, fmt.Errorf("workload: daynight needs a positive mean rate, got %v jobs/h", a.JobsPerHour)
		}
		if a.Swing < 0 || a.Swing >= 1 {
			return nil, fmt.Errorf("workload: daynight swing %v out of [0,1)", a.Swing)
		}
		peak := a.PeakJobsPerHour
		if peak == 0 {
			peak = a.JobsPerHour * (1 + a.Swing)
		}
		if peak < a.JobsPerHour*(1+a.Swing) {
			return nil, fmt.Errorf("workload: daynight peak %v below the cycle's own peak %v",
				peak, a.JobsPerHour*(1+a.Swing))
		}
		rate := DayNight(a.JobsPerHour, a.Swing)
		return NewInhomogeneous(a.Params, rand.New(rand.NewSource(a.Seed)), rate, peak), nil
	}))
}
