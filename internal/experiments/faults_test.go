package experiments

import (
	"strings"
	"testing"

	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/sched"
)

// TestFaultStudyDirection runs a miniature churn-vs-steady comparison:
// heavy churn must cost speedup (re-executions plus cache rebuilds),
// produce wasted work, and never beat the fault-free run clearly.
func TestFaultStudyDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	s := tiny(baseScenario(Quick, 5))
	s.NewPolicy = func() sched.Policy { return sched.NewOutOfOrder() }
	s.Load = 0.5 * s.Params.FarmMaxLoad()
	steady := lab.Run(s)
	churned := s
	// The tiny window covers only a couple of simulated days; fail nodes
	// every few hours so losses are certain inside it.
	churned.Faults = cluster.FaultModel{MTBFHours: 3, RepairHours: 1, CacheLoss: true}
	faulty := lab.Run(churned)
	if steady.Overloaded || faulty.Overloaded {
		t.Skip("overloaded at this scale; direction test not applicable")
	}
	if faulty.Cluster.Failures == 0 || faulty.Cluster.EventsLost == 0 {
		t.Fatalf("churn run saw no faults: %+v", faulty.Cluster)
	}
	if faulty.Goodput >= 1 || faulty.Goodput <= 0 {
		t.Errorf("goodput %v out of (0,1)", faulty.Goodput)
	}
	if faulty.AvgSpeedup > 1.1*steady.AvgSpeedup {
		t.Errorf("churn improved speedup: %.2f vs steady %.2f", faulty.AvgSpeedup, steady.AvgSpeedup)
	}
}

// TestRenderFaults pins the churn columns of the study's rendering.
func TestRenderFaults(t *testing.T) {
	rows := []AblationRow{
		{Variant: "MTBF 48 h", Load: 1.0, Result: lab.Result{
			AvgSpeedup: 5.0, AvgWaiting: 60, Goodput: 0.97,
			Cluster: cluster.Stats{EventsLost: 1234, Reexecutions: 7},
		}},
		{Variant: "MTBF 48 h", Load: 1.4, Result: lab.Result{Overloaded: true}},
	}
	out := RenderFaults(rows)
	for _, want := range []string{"goodput", "wasted ev", "re-exec", "0.970", "1234", "overloaded"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}
