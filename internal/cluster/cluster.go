// Package cluster is the discrete-event model of the processing cluster:
// identical single-CPU nodes with disk caches, a master holding the global
// cache index, and the shared tertiary storage. It executes subjobs,
// supports preemption and in-place splitting of running subjobs, and keeps
// the per-job accounting (first start, processed events, completion) that
// the metrics layer consumes.
//
// Execution model: a dispatched subjob's event range is partitioned into
// pieces by data source — locally cached (disk rate), cached on another
// node (remote read, only when the configuration allows it), or tertiary
// storage. Pieces run sequentially; transfer and computation do not
// overlap, so the per-event wall time is CPU time plus transfer time, the
// model under which the paper's derived constants are mutually consistent
// (see internal/model).
package cluster

import (
	"fmt"

	"physched/internal/cache"
	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
	"physched/internal/storage"
	"physched/internal/trace"
)

// Source identifies where a piece's event data comes from.
type Source int

const (
	// SourceCache reads from the node's local disk cache.
	SourceCache Source = iota
	// SourceRemote reads from another node's disk cache over the network.
	SourceRemote
	// SourceTape streams from the shared tertiary storage.
	SourceTape
)

func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceRemote:
		return "remote"
	case SourceTape:
		return "tape"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Piece is a contiguous run of a subjob's range served from one source.
type Piece struct {
	Range      dataspace.Interval
	Source     Source
	RemoteNode int     // owning node for SourceRemote, else -1
	PerEvent   float64 // wall seconds per event
}

// Running is the execution state of a subjob on a node. Running objects
// (and their pieces slices and completion closures) are recycled through a
// per-cluster free list: dispatching is on the simulation's hottest path
// and must not allocate in steady state.
type Running struct {
	Subjob     *job.Subjob
	node       *Node
	pieces     []Piece
	pieceIdx   int
	pieceStart float64 // sim time the current piece began
	ev         *sim.Event
	fire       func() // piece-completion callback, allocated once
	nextFree   *Running
}

// Node is one processing node.
type Node struct {
	ID    int
	Cache *cache.LRU
	run   *Running
	up    bool // false while failed/decommissioned or before a spare joins
	// decommissioned marks a node that left the cluster permanently; it
	// implies !up forever after.
	decommissioned bool

	// Per-node event service times, precomputed from Params at node
	// creation: piece planning runs on every dispatch and the value-receiver
	// Params methods copy the whole struct per call.
	evtCached, evtTape, evtRemote model.Seconds
}

// Up reports whether the node is in service (see faults.go). Nodes of a
// fault-free cluster are always up.
func (n *Node) Up() bool { return n.up }

// Decommissioned reports whether the node left the cluster permanently
// (see Cluster.DecommissionNode). Policies use it to stop routing work
// to a partition owner that will never return.
func (n *Node) Decommissioned() bool { return n.decommissioned }

// Idle reports whether the node can accept a subjob: in service and not
// executing one. Down nodes are never idle, so the idle scans every
// policy dispatches through skip them without fault-specific code.
func (n *Node) Idle() bool { return n.up && n.run == nil }

// Running returns the subjob executing on the node, or nil.
func (n *Node) Running() *job.Subjob {
	if n.run == nil {
		return nil
	}
	return n.run.Subjob
}

// Config selects the data-path features a scheduling policy relies on.
type Config struct {
	// Caching inserts data streamed from tape into the local disk cache.
	// The processing-farm and plain job-splitting policies disable it.
	Caching bool

	// RemoteReads serves data cached on another node over the network
	// instead of re-reading it from tape (out-of-order policy, §4.2).
	RemoteReads bool

	// ReplicateAfter, when positive, replicates a remotely read segment
	// into the reader's cache once the segment's remote-access count
	// reaches this threshold (§4.2 uses 3). Zero disables replication.
	ReplicateAfter int64

	// Eviction selects the cache eviction policy (default LRU, the
	// paper's choice; see the ablation studies for FIFO).
	Eviction cache.EvictPolicy
}

// Stats aggregates the data-path and node-dynamics counters of a
// simulation run. The fault counters are omitted from the wire format
// when zero, so fault-free runs encode byte-identically to builds that
// predate node dynamics.
type Stats struct {
	EventsFromCache  int64 `json:"events_from_cache"`
	EventsFromRemote int64 `json:"events_from_remote"`
	EventsFromTape   int64 `json:"events_from_tape"`
	EventsReplicated int64 `json:"events_replicated"`
	Preemptions      int64 `json:"preemptions"`
	Dispatches       int64 `json:"dispatches"`

	// Node dynamics (see faults.go). EventsLost is the wasted work: events
	// whose computation was discarded because their node failed mid-subjob.
	// Reexecutions counts the subjobs killed by failures and re-enqueued.
	Failures      int64 `json:"failures,omitempty"`
	Repairs       int64 `json:"repairs,omitempty"`
	Decommissions int64 `json:"decommissions,omitempty"`
	NodeJoins     int64 `json:"node_joins,omitempty"`
	EventsLost    int64 `json:"events_lost,omitempty"`
	Reexecutions  int64 `json:"reexecutions,omitempty"`
}

// Cluster ties the nodes, cache index and tertiary storage to a simulation
// engine.
type Cluster struct {
	eng    *sim.Engine
	params model.Params
	cfg    Config
	nodes  []*Node
	index  *cache.Index
	tape   *storage.Tertiary
	counts []cache.CountMap // per-node remote-access counters
	stats  Stats

	freeRun *Running // recycled Running objects
	planBuf []Piece  // scratch for EstimateTime
	arena   job.Arena

	// Plan-partition scratch, reused across dispatches (planInto is not
	// reentrant; the cluster is single-threaded by construction).
	partScratch []dataspace.SetPiece
	nodeScratch []cache.NodePiece

	// SubjobDone is invoked whenever a subjob finishes on a node, after
	// all job accounting. The scheduling policy reacts to it.
	SubjobDone func(*Node, *job.Subjob)

	// JobStarted and JobDone observe job lifecycle transitions; the
	// metrics collector hooks them. Either may be nil.
	JobStarted func(*job.Job)
	JobDone    func(*job.Job)

	// NodeDown fires when a node fails (see faults.go), after the node is
	// marked down and its running subjob killed; lost is the subjob to
	// re-execute, or nil when the node was idle. NodeUp fires when a node
	// is repaired or a spare joins. Either may be nil.
	NodeDown func(n *Node, lost *job.Subjob)
	NodeUp   func(n *Node)

	// Tracer, when non-nil, records dispatches, completions and job
	// lifecycle transitions.
	Tracer *trace.Recorder
}

// New builds a cluster for the given parameters and data-path config.
// Caches are sized from params.CacheEvents(); a zero cache size yields
// diskless nodes.
func New(eng *sim.Engine, params model.Params, cfg Config) *Cluster {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	capEvents := params.CacheEvents()
	if !cfg.Caching {
		capEvents = 0
	}
	c := &Cluster{
		eng:    eng,
		params: params,
		cfg:    cfg,
		index:  cache.NewIndex(params.Nodes, capEvents, cfg.Eviction),
		tape:   storage.New(params.TapeBytesPerSec, params.EventBytes),
		counts: make([]cache.CountMap, params.Nodes),
	}
	c.nodes = make([]*Node, params.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &Node{ID: i, Cache: c.index.Node(i), up: true}
		c.setNodeTimes(c.nodes[i])
	}
	return c
}

// setNodeTimes fills a node's precomputed event service times.
func (c *Cluster) setNodeTimes(n *Node) {
	n.evtCached = c.params.EventTimeCachedOn(n.ID)
	n.evtTape = c.params.EventTimeTapeOn(n.ID)
	n.evtRemote = c.params.EventTimeRemoteOn(n.ID)
}

// Engine returns the simulation engine driving the cluster.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Params returns the model parameters.
func (c *Cluster) Params() model.Params { return c.params }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Index returns the cluster-wide cache index.
func (c *Cluster) Index() *cache.Index { return c.index }

// Tape returns the tertiary storage.
func (c *Cluster) Tape() *storage.Tertiary { return c.tape }

// Stats returns the data-path counters accumulated so far.
func (c *Cluster) Stats() Stats { return c.stats }

// Arena returns the run's job/subjob arena. The cluster allocates every
// preemption/split/crash remainder from it; scheduling policies use it
// for their own subjobs so one run shares one arena.
func (c *Cluster) Arena() *job.Arena { return &c.arena }

// IdleNodes returns the currently idle nodes, in node order, in a fresh
// slice. Hot paths should use AppendIdle with a reused buffer, IdleCount,
// FirstIdle, or iterate Nodes directly.
func (c *Cluster) IdleNodes() []*Node { return c.AppendIdle(nil) }

// AppendIdle appends the currently idle nodes to dst, in node order.
func (c *Cluster) AppendIdle(dst []*Node) []*Node {
	for _, n := range c.nodes {
		if n.Idle() {
			dst = append(dst, n)
		}
	}
	return dst
}

// IdleCount returns the number of idle nodes without allocating.
func (c *Cluster) IdleCount() int {
	k := 0
	for _, n := range c.nodes {
		if n.Idle() {
			k++
		}
	}
	return k
}

// FirstIdle returns the lowest-numbered idle node, or nil.
func (c *Cluster) FirstIdle() *Node {
	for _, n := range c.nodes {
		if n.Idle() {
			return n
		}
	}
	return nil
}

// planInto partitions iv into execution pieces for node n, appending to buf.
// It reuses the cluster's partition scratch buffers, so it is not reentrant.
func (c *Cluster) planInto(buf []Piece, n *Node, iv dataspace.Interval) []Piece {
	pieces := buf
	c.partScratch = n.Cache.Cached().AppendPartition(iv, c.partScratch[:0])
	for _, run := range c.partScratch {
		if run.InSet {
			pieces = append(pieces, Piece{
				Range: run.Interval, Source: SourceCache,
				RemoteNode: -1, PerEvent: n.evtCached,
			})
			continue
		}
		if !c.cfg.RemoteReads {
			pieces = append(pieces, c.tapePiece(n, run.Interval))
			continue
		}
		c.nodeScratch = c.index.AppendPartitionByNode(run.Interval, c.nodeScratch[:0])
		for _, np := range c.nodeScratch {
			// A down node cannot serve remote reads: data its cache still
			// indexes (a repairable outage preserves the disk) re-streams
			// from tape until the node returns.
			if np.Node < 0 || np.Node == n.ID || !c.nodes[np.Node].up {
				pieces = append(pieces, c.tapePiece(n, np.Interval))
				continue
			}
			pieces = append(pieces, Piece{
				Range: np.Interval, Source: SourceRemote,
				RemoteNode: np.Node, PerEvent: n.evtRemote,
			})
		}
	}
	return pieces
}

func (c *Cluster) tapePiece(n *Node, iv dataspace.Interval) Piece {
	return Piece{Range: iv, Source: SourceTape, RemoteNode: -1, PerEvent: n.evtTape}
}

// EstimateTime returns the wall time node n would need to process iv with
// the current cache contents.
func (c *Cluster) EstimateTime(n *Node, iv dataspace.Interval) float64 {
	c.planBuf = c.planInto(c.planBuf[:0], n, iv)
	var t float64
	for _, p := range c.planBuf {
		t += float64(p.Range.Len()) * p.PerEvent
	}
	return t
}

// acquireRunning takes a Running from the free list (or makes one) and
// binds it to node n. The completion closure is allocated once per object
// and survives recycling: it reads the node and state through r.
func (c *Cluster) acquireRunning(n *Node) *Running {
	r := c.freeRun
	if r != nil {
		c.freeRun = r.nextFree
		r.nextFree = nil
	} else {
		r = &Running{}
		r.fire = func() { c.pieceDone(r.node, r) }
	}
	r.node = n
	return r
}

// releaseRunning returns r to the free list. Callers must be done with
// every field; the pieces slice keeps its capacity.
func (c *Cluster) releaseRunning(r *Running) {
	r.Subjob = nil
	r.node = nil
	r.pieces = r.pieces[:0]
	r.pieceIdx = 0
	r.pieceStart = 0
	r.ev = nil
	r.nextFree = c.freeRun
	c.freeRun = r
}

// Dispatch starts subjob sj on idle node n. It panics if n is busy or the
// subjob is empty — both indicate a policy bug.
//
//physched:hotpath
func (c *Cluster) Dispatch(n *Node, sj *job.Subjob) {
	if !n.up {
		//physched:allocok panic path: reached only on a policy bug, never in steady state
		panic(fmt.Sprintf("cluster: dispatch on down node %d", n.ID))
	}
	if !n.Idle() {
		//physched:allocok panic path: reached only on a policy bug, never in steady state
		panic(fmt.Sprintf("cluster: dispatch on busy node %d", n.ID))
	}
	if sj.Range.Empty() {
		panic("cluster: dispatch of empty subjob")
	}
	j := sj.Job
	if !j.Started {
		j.Started = true
		j.FirstStart = c.eng.Now()
		c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.JobStarted, JobID: j.ID})
		if c.JobStarted != nil {
			c.JobStarted(j)
		}
	}
	j.Running++
	c.stats.Dispatches++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.SubjobStarted, JobID: j.ID, Node: n.ID, Events: sj.Events()})
	r := c.acquireRunning(n)
	r.Subjob = sj
	r.pieces = c.planInto(r.pieces, n, sj.Range)
	n.run = r
	c.startPiece(n, r)
}

// startPiece begins the current piece of r on n.
func (c *Cluster) startPiece(n *Node, r *Running) {
	p := r.pieces[r.pieceIdx]
	if p.Source == SourceTape {
		c.tape.StartStream()
	}
	r.pieceStart = c.eng.Now()
	d := float64(p.Range.Len()) * p.PerEvent
	r.ev = c.eng.After(d, r.fire)
}

// pieceDone completes the current piece, then either starts the next piece
// or finishes the subjob.
func (c *Cluster) pieceDone(n *Node, r *Running) {
	p := r.pieces[r.pieceIdx]
	c.accountSpan(n, p, p.Range)
	r.pieceIdx++
	if r.pieceIdx < len(r.pieces) {
		c.startPiece(n, r)
		return
	}
	c.finishSubjob(n, r)
}

// accountSpan records that the span done of piece p was processed on n:
// source statistics, cache insertion or refresh, tape accounting and the
// replication rule.
func (c *Cluster) accountSpan(n *Node, p Piece, done dataspace.Interval) {
	if done.Empty() {
		if p.Source == SourceTape {
			c.tape.EndStream(0) // balance the StartStream from startPiece
		}
		return
	}
	now := c.eng.Now()
	switch p.Source {
	case SourceCache:
		c.stats.EventsFromCache += done.Len()
		n.Cache.Touch(done, now)
	case SourceTape:
		c.stats.EventsFromTape += done.Len()
		c.tape.EndStream(done.Len())
		if c.cfg.Caching {
			n.Cache.Insert(done, now)
		}
	case SourceRemote:
		c.stats.EventsFromRemote += done.Len()
		owner := c.nodes[p.RemoteNode]
		owner.Cache.Touch(done, now)
		if c.cfg.ReplicateAfter > 0 {
			if c.counts[p.RemoteNode].Increment(done) >= c.cfg.ReplicateAfter {
				c.stats.EventsReplicated += done.Len()
				n.Cache.Insert(done, now)
			}
		}
	}
}

// finishSubjob tears down r and propagates job accounting and callbacks.
// r is recycled before the callbacks run, so a callback that re-dispatches
// on n can reuse it.
func (c *Cluster) finishSubjob(n *Node, r *Running) {
	sj := r.Subjob
	j := sj.Job
	n.run = nil
	c.releaseRunning(r)
	j.Running--
	j.Processed += sj.Events()
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.SubjobFinished, JobID: j.ID, Node: n.ID, Events: sj.Events()})
	if j.Processed > j.Events() {
		panic(fmt.Sprintf("cluster: %v processed %d of %d events", j, j.Processed, j.Events()))
	}
	c.maybeFinishJob(j)
	if c.SubjobDone != nil {
		c.SubjobDone(n, sj)
	}
}

func (c *Cluster) maybeFinishJob(j *job.Job) {
	if j.Finished || j.Processed != j.Events() {
		return
	}
	j.Finished = true
	j.EndTime = c.eng.Now()
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.JobFinished, JobID: j.ID, Events: j.Events()})
	if c.JobDone != nil {
		c.JobDone(j)
	}
}

// Preempt stops the subjob running on n at the current instant and returns
// a subjob covering its unprocessed remainder, or nil when the subjob had
// effectively completed. Events already streamed stay cached; the caller
// (a scheduling policy) owns the remainder. Preempting an idle node panics.
func (c *Cluster) Preempt(n *Node) *job.Subjob {
	if n.run == nil {
		panic(fmt.Sprintf("cluster: preempt on idle node %d", n.ID))
	}
	r := n.run
	r.ev.Cancel()
	p := r.pieces[r.pieceIdx]
	elapsed := c.eng.Now() - r.pieceStart
	k := int64(elapsed/p.PerEvent + 1e-9)
	if k > p.Range.Len() {
		k = p.Range.Len()
	}
	done := dataspace.Iv(p.Range.Start, p.Range.Start+k)
	c.accountSpan(n, p, done)
	// For an interrupted tape stream the unread part was never fetched;
	// the EndStream above accounted only the prefix, which is correct.
	sj := r.Subjob
	j := sj.Job
	rem := dataspace.Iv(done.End, sj.Range.End)
	n.run = nil
	c.releaseRunning(r)
	j.Running--
	j.Processed += sj.Events() - rem.Len()
	c.stats.Preemptions++
	c.Tracer.Add(trace.Event{Time: c.eng.Now(), Kind: trace.SubjobFinished, JobID: j.ID, Node: n.ID, Events: sj.Events() - rem.Len()})
	if rem.Empty() {
		c.maybeFinishJob(j)
		return nil
	}
	return c.arena.CloneSubjob(sj, rem)
}

// RemainingEvents returns how many events the subjob on n still has to
// process at the current instant (zero for an idle node).
func (c *Cluster) RemainingEvents(n *Node) int64 {
	if n.run == nil {
		return 0
	}
	r := n.run
	var rem int64
	for i := r.pieceIdx; i < len(r.pieces); i++ {
		rem += r.pieces[i].Range.Len()
	}
	p := r.pieces[r.pieceIdx]
	elapsed := c.eng.Now() - r.pieceStart
	k := int64(elapsed/p.PerEvent + 1e-9)
	if k > p.Range.Len() {
		k = p.Range.Len()
	}
	return rem - k
}

// SplitRunning shrinks the subjob running on n so that tailEvents of its
// remaining range are handed back as a new subjob, which is returned. The
// head keeps running on n (it is re-dispatched, re-planning against the
// current cache state). It returns nil when the remainder is too small to
// split off tailEvents while leaving at least minHead events running.
func (c *Cluster) SplitRunning(n *Node, tailEvents, minHead int64) *job.Subjob {
	if n.run == nil || tailEvents <= 0 {
		return nil
	}
	if c.RemainingEvents(n) < tailEvents+minHead {
		return nil
	}
	rem := c.Preempt(n)
	if rem == nil {
		return nil
	}
	head, tail := rem.Range.SplitAt(rem.Range.End - tailEvents)
	if head.Empty() || tail.Empty() {
		// Cannot honour the split; resume the whole remainder.
		c.Dispatch(n, rem)
		return nil
	}
	c.Dispatch(n, c.arena.CloneSubjob(rem, head))
	return c.arena.NewSubjob(rem.Job, tail, 0)
}
