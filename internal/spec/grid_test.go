package spec

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"physched/internal/lab"
)

// smallGrid is a fast 2-variant × 2-load × 2-seed declarative grid.
func smallGrid() Grid {
	base := smallSpec()
	base.MeasureJobs = 60
	base.WarmupJobs = 15
	farm := Policy{Name: "farm"}
	return Grid{
		Base: base,
		Variants: []Variant{
			{Label: "ooo"},
			{Label: "farm", Policy: &farm},
		},
		Loads: []float64{0.4, 0.6},
		Seeds: []int64{1, 2},
	}
}

// memCache is a minimal lab.ResultCache for tests.
type memCache struct {
	mu sync.Mutex
	m  map[string]lab.Result
}

func newMemCache() *memCache { return &memCache{m: map[string]lab.Result{}} }

func (c *memCache) Get(key string) (lab.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *memCache) Put(key string, r lab.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

func TestGridRoundTripsThroughJSON(t *testing.T) {
	g := smallGrid()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseGrid(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("grid round trip unstable:\n%s\n%s", b, b2)
	}
	if _, err := back.Compile(); err != nil {
		t.Errorf("round-tripped grid does not compile: %v", err)
	}
}

func TestGridValidation(t *testing.T) {
	bad := map[string]func(*Grid){
		"bad base":        func(g *Grid) { g.Base.Policy.Name = "nope" },
		"unlabelled":      func(g *Grid) { g.Variants[0].Label = "" },
		"duplicate label": func(g *Grid) { g.Variants[1].Label = g.Variants[0].Label },
		"bad variant":     func(g *Grid) { g.Variants[1].Policy = &Policy{Name: "nope"} },
		"bad load":        func(g *Grid) { g.Loads[0] = -1 },
	}
	for name, mutate := range bad {
		g := smallGrid()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := g.Compile(); err == nil {
			t.Errorf("%s: compiled", name)
		}
	}
}

func TestGridWithoutBaseLoadUsesAxis(t *testing.T) {
	g := smallGrid()
	g.Base.Load = 0 // the load axis provides it
	if err := g.Validate(); err != nil {
		t.Fatalf("grid with load axis but no base load rejected: %v", err)
	}
	lg, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range lg.Cells() {
		if c.Scenario.Load != g.Loads[c.LoadIdx] {
			t.Fatalf("cell load %v, want %v", c.Scenario.Load, g.Loads[c.LoadIdx])
		}
	}
}

// TestGridCompileMatchesHandBuiltGrid: the declarative grid and the
// equivalent closure-built lab.Grid produce byte-identical result sets.
func TestGridCompileMatchesHandBuiltGrid(t *testing.T) {
	lg, err := smallGrid().Compile()
	if err != nil {
		t.Fatal(err)
	}
	declarative, err := lg.Execute(lab.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseSpec := smallGrid().Base
	base, err := baseSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	farmSpec := baseSpec
	farmSpec.Policy = Policy{Name: "farm"}
	farmSc, err := farmSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	hand := lab.Grid{
		Base: base,
		Variants: []lab.Variant{
			{Label: "ooo"},
			{Label: "farm", NewPolicy: farmSc.NewPolicy},
		},
		Loads: []float64{0.4, 0.6},
		Seeds: []int64{1, 2},
	}
	manual, err := hand.Execute(lab.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(declarative.Results)
	b, _ := json.Marshal(manual.Results)
	if !bytes.Equal(a, b) {
		t.Errorf("declarative grid diverged from hand-built grid:\n%s\n%s", a, b)
	}
}

// TestCachedReExecutionSkipsEverySimulation is the acceptance test for
// content-addressed result caching: executing the same declarative grid
// twice against one cache simulates every cell exactly once — the second
// pass re-simulates zero cells — and both passes return results
// byte-identical to an uncached serial run.
func TestCachedReExecutionSkipsEverySimulation(t *testing.T) {
	g := smallGrid()
	lg, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := lg.Execute(lab.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	cache := newMemCache()
	opts := lab.Options{Cache: cache, Keys: g.Keys()}
	first, err := lg.Execute(opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 {
		t.Errorf("first pass hit the empty cache %d times", first.CacheHits)
	}
	if len(cache.m) != len(first.Results) {
		t.Errorf("cache holds %d entries after %d runs", len(cache.m), len(first.Results))
	}

	second, err := lg.Execute(opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != len(second.Results) {
		t.Errorf("second pass re-simulated %d of %d cells; want zero",
			len(second.Results)-second.CacheHits, len(second.Results))
	}

	want, _ := json.Marshal(uncached.Results)
	got1, _ := json.Marshal(first.Results)
	got2, _ := json.Marshal(second.Results)
	if !bytes.Equal(got1, want) {
		t.Errorf("cached first pass diverged from uncached serial run:\n%s\n%s", got1, want)
	}
	if !bytes.Equal(got2, want) {
		t.Errorf("cache-served second pass diverged from uncached serial run:\n%s\n%s", got2, want)
	}
}

// TestCacheSharedAcrossOverlappingGrids: a cell with the same resolved
// spec in a different grid reuses the cached result.
func TestCacheSharedAcrossOverlappingGrids(t *testing.T) {
	g := smallGrid()
	lg, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cache := newMemCache()
	if _, err := lg.Execute(lab.Options{Cache: cache, Keys: g.Keys()}); err != nil {
		t.Fatal(err)
	}
	// A narrower grid: only the farm variant at the first load.
	farm := Policy{Name: "farm"}
	sub := Grid{Base: g.Base, Variants: []Variant{{Label: "farm-only", Policy: &farm}},
		Loads: g.Loads[:1], Seeds: g.Seeds}
	slg, err := sub.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slg.Execute(lab.Options{Cache: cache, Keys: sub.Keys()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != len(rs.Results) {
		t.Errorf("overlapping grid re-simulated %d of %d cells; want zero (labels don't enter the key)",
			len(rs.Results)-rs.CacheHits, len(rs.Results))
	}
}

func TestAggregateKeyStable(t *testing.T) {
	g := smallGrid()
	k1, err := g.AggregateKey(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := g.AggregateKey(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || len(k1) != 64 {
		t.Errorf("aggregate key unstable or malformed: %q vs %q", k1, k2)
	}
	other, err := g.AggregateKey(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if other == k1 {
		t.Error("different variants share an aggregate key")
	}
	shifted := g
	shifted.Seeds = []int64{1, 3}
	k3, err := shifted.AggregateKey(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different seed axes share an aggregate key")
	}
}
