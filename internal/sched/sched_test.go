package sched

import (
	"testing"

	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

// testHarness wires a policy to a small cluster for direct unit testing.
type testHarness struct {
	eng    *sim.Engine
	c      *cluster.Cluster
	policy Policy
	done   []*job.Job
	nextID int64
}

func newHarness(t *testing.T, policy Policy, mutate func(*model.Params)) *testHarness {
	t.Helper()
	p := model.PaperCalibrated()
	p.Nodes = 3
	p.MeanJobEvents = 1_000
	p.DataspaceBytes = 60 * model.GB // 100k events
	p.CacheBytes = 6 * model.GB      // 10k events per node
	if mutate != nil {
		mutate(&p)
	}
	h := &testHarness{eng: sim.New(1)}
	h.c = cluster.New(h.eng, p, policy.ClusterConfig())
	policy.Attach(h.c)
	h.policy = policy
	h.c.SubjobDone = policy.SubjobDone
	h.c.JobDone = func(j *job.Job) { h.done = append(h.done, j) }
	return h
}

// submit creates and admits a job covering iv at the current sim time.
func (h *testHarness) submit(iv dataspace.Interval) *job.Job {
	j := &job.Job{ID: h.nextID, Arrival: h.eng.Now(), ScheduledAt: h.eng.Now(), Range: iv}
	h.nextID++
	h.policy.JobArrived(j)
	return j
}

func (h *testHarness) busyNodes() int {
	n := 0
	for _, nd := range h.c.Nodes() {
		if !nd.Idle() {
			n++
		}
	}
	return n
}

func TestFarmRunsWholeJobOnOneNode(t *testing.T) {
	h := newHarness(t, NewFarm(), nil)
	j := h.submit(dataspace.Iv(0, 1000))
	if h.busyNodes() != 1 {
		t.Fatalf("farm should use exactly 1 node, got %d", h.busyNodes())
	}
	h.eng.Run()
	if !j.Finished {
		t.Fatal("job did not finish")
	}
	if got := h.c.Stats().Dispatches; got != 1 {
		t.Errorf("farm dispatched %d subjobs, want 1", got)
	}
}

func TestFarmQueuesFIFO(t *testing.T) {
	h := newHarness(t, NewFarm(), nil)
	var jobs []*job.Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, h.submit(dataspace.Iv(int64(i)*1000, int64(i+1)*1000)))
	}
	// 3 nodes busy, 2 queued.
	if h.busyNodes() != 3 {
		t.Fatalf("busy = %d, want 3", h.busyNodes())
	}
	h.eng.Run()
	// FIFO: start order must equal submission order.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].FirstStart < jobs[i-1].FirstStart {
			t.Errorf("job %d started before job %d", i, i-1)
		}
	}
}

func TestSplittingUsesAllIdleNodes(t *testing.T) {
	h := newHarness(t, NewSplitting(), nil)
	j := h.submit(dataspace.Iv(0, 3000))
	if h.busyNodes() != 3 {
		t.Fatalf("splitting should use all 3 idle nodes, got %d", h.busyNodes())
	}
	h.eng.Run()
	if !j.Finished || j.Processed != 3000 {
		t.Fatalf("job incomplete: %+v", j)
	}
}

func TestSplittingNeverLeavesNodesIdleWithWork(t *testing.T) {
	h := newHarness(t, NewSplitting(), nil)
	h.submit(dataspace.Iv(0, 9000))
	// After a while, still all nodes busy (job is split further as nodes
	// free up).
	h.eng.RunUntil(100)
	if h.busyNodes() != 3 {
		t.Errorf("splitting left nodes idle while work remains (busy=%d)", h.busyNodes())
	}
}

func TestSplittingArrivalPreemptsWideJob(t *testing.T) {
	h := newHarness(t, NewSplitting(), nil)
	j1 := h.submit(dataspace.Iv(0, 3000)) // takes all 3 nodes
	j2 := h.submit(dataspace.Iv(5000, 8000))
	if !j2.Started {
		t.Fatal("new job did not start by preempting the wide job")
	}
	if j1.Running != 2 {
		t.Errorf("wide job should have released one node, Running=%d", j1.Running)
	}
	h.eng.Run()
	if !j1.Finished || !j2.Finished {
		t.Fatal("jobs incomplete after preemption")
	}
	if j1.Processed != 3000 || j2.Processed != 3000 {
		t.Errorf("event conservation broken: %d, %d", j1.Processed, j2.Processed)
	}
}

func TestSplittingQueuesWhenAllJobsSingleNode(t *testing.T) {
	h := newHarness(t, NewSplitting(), nil)
	for i := 0; i < 3; i++ {
		h.submit(dataspace.Iv(int64(i)*1000, int64(i+1)*1000))
	}
	j4 := h.submit(dataspace.Iv(50_000, 51_000))
	if j4.Started {
		t.Error("4th job should queue: every running job holds a single node")
	}
	h.eng.Run()
	if !j4.Finished {
		t.Error("queued job never ran")
	}
}

func TestCacheOrientedPrefersCachedNode(t *testing.T) {
	h := newHarness(t, NewCacheOriented(), nil)
	// Pre-warm node 2's cache with the job's data.
	h.c.Node(2).Cache.Insert(dataspace.Iv(0, 1000), 0)
	j := h.submit(dataspace.Iv(0, 1000))
	// Table 2 subdivides to occupy every idle node, so parts may run
	// elsewhere (from tape), but the caching node must be working on the
	// job, on a piece it caches.
	r := h.c.Node(2).Running()
	if r == nil || r.Job != j {
		t.Fatal("caching node not working on the cached job")
	}
	if !h.c.Node(2).Cache.Contains(r.Range) {
		t.Errorf("node 2 runs %v which it does not cache", r.Range)
	}
	h.eng.Run()
	st := h.c.Stats()
	if st.EventsFromCache == 0 {
		t.Error("no events served from cache")
	}
	if st.EventsFromTape >= 1000 {
		t.Errorf("whole job re-read from tape (%d events)", st.EventsFromTape)
	}
}

func TestCacheOrientedSplitsAlongCacheBoundaries(t *testing.T) {
	h := newHarness(t, NewCacheOriented(), nil)
	h.c.Node(0).Cache.Insert(dataspace.Iv(0, 500), 0)
	h.c.Node(1).Cache.Insert(dataspace.Iv(500, 1000), 0)
	j := h.submit(dataspace.Iv(0, 1500))
	if h.busyNodes() != 3 {
		t.Fatalf("want 3 busy nodes (two cached pieces + one uncached), got %d", h.busyNodes())
	}
	// Node 0 and 1 must work on their cached halves.
	if r := h.c.Node(0).Running(); r == nil || r.Range != dataspace.Iv(0, 500) {
		t.Errorf("node 0 runs %v, want [0,500)", h.c.Node(0).Running())
	}
	if r := h.c.Node(1).Running(); r == nil || r.Range != dataspace.Iv(500, 1000) {
		t.Errorf("node 1 runs %v, want [500,1000)", h.c.Node(1).Running())
	}
	h.eng.Run()
	if !j.Finished || j.Processed != 1500 {
		t.Fatalf("job incomplete: %+v", j)
	}
}

func TestOutOfOrderOvertakesFIFO(t *testing.T) {
	h := newHarness(t, NewOutOfOrder(), nil)
	// Saturate all nodes with uncached work.
	var first []*job.Job
	for i := 0; i < 3; i++ {
		first = append(first, h.submit(dataspace.Iv(int64(i)*10_000, int64(i)*10_000+2_000)))
	}
	// Queue an uncached job (goes to no-cache queue).
	slow := h.submit(dataspace.Iv(80_000, 82_000))
	// Warm node 0's cache artificially and submit a cached job: it must
	// preempt the running uncached work and start immediately.
	h.c.Node(0).Cache.Insert(dataspace.Iv(90_000, 91_000), h.eng.Now())
	fast := h.submit(dataspace.Iv(90_000, 91_000))
	if !fast.Started {
		t.Fatal("cache-affine job did not overtake")
	}
	if slow.Started {
		t.Fatal("uncached job should still be queued")
	}
	h.eng.Run()
	for _, j := range append(first, slow, fast) {
		if !j.Finished {
			t.Fatalf("job %v did not finish", j)
		}
	}
	if fast.EndTime > slow.EndTime {
		t.Error("cached job should finish before the overtaken uncached job")
	}
}

func TestOutOfOrderAgingPromotesStarvedJob(t *testing.T) {
	p := NewOutOfOrder()
	p.MaxWait = 2 * model.Hour // shorten aging for the test
	h := newHarness(t, p, nil)
	// Keep the cluster saturated with cache-affine work by pre-warming
	// caches and submitting cached jobs continuously.
	for n := 0; n < 3; n++ {
		h.c.Node(n).Cache.Insert(dataspace.Iv(int64(n)*5_000, int64(n)*5_000+3_000), 0)
	}
	starved := h.submit(dataspace.Iv(70_000, 71_000)) // uncached
	// starved starts immediately on an idle node — make all nodes busy
	// first instead.
	h.eng.Run()
	if !starved.Finished {
		t.Fatal("starved job should finish eventually")
	}
}

func TestOutOfOrderPriorityAfterMaxWait(t *testing.T) {
	p := NewOutOfOrder()
	p.MaxWait = model.Hour
	h := newHarness(t, p, nil)
	// Saturate: 3 running uncached + cached queue on each node.
	for i := 0; i < 3; i++ {
		h.submit(dataspace.Iv(int64(i)*10_000, int64(i)*10_000+2_000))
	}
	for n := 0; n < 3; n++ {
		h.c.Node(n).Cache.Insert(dataspace.Iv(40_000+int64(n)*2_000, 42_000+int64(n)*2_000), h.eng.Now())
	}
	// Cached jobs that will keep overtaking.
	for n := 0; n < 3; n++ {
		h.submit(dataspace.Iv(40_000+int64(n)*2_000, 42_000+int64(n)*2_000))
	}
	victim := h.submit(dataspace.Iv(90_000, 90_500))
	h.eng.Run()
	if !victim.Finished {
		t.Fatal("victim never ran")
	}
	if !victim.Priority {
		// The victim may have started before aging if capacity freed up;
		// with this workload it should have aged. Accept either but check
		// the mechanism via waiting time.
		if victim.FirstStart-victim.Arrival > p.MaxWait+2*model.Hour {
			t.Errorf("aged job waited %.0fs, far beyond MaxWait", victim.FirstStart-victim.Arrival)
		}
	}
}

func TestDelayedAccumulatesUntilPeriodEnd(t *testing.T) {
	pol := NewDelayed(model.Hour, 500)
	h := newHarness(t, pol, nil)
	j := h.submit(dataspace.Iv(0, 1000))
	if j.Started {
		t.Fatal("delayed policy must not start jobs mid-period")
	}
	h.eng.RunUntil(model.Hour + 1)
	if !j.Started {
		t.Fatal("job not scheduled at period end")
	}
	if j.ScheduledAt != model.Hour {
		t.Errorf("ScheduledAt = %v, want %v", j.ScheduledAt, model.Hour)
	}
	h.eng.RunUntil(10 * model.Hour)
	if !j.Finished {
		t.Fatal("job did not finish")
	}
}

func TestDelayedStripesLimitSubjobSize(t *testing.T) {
	pol := NewDelayed(model.Hour, 300)
	h := newHarness(t, pol, nil)
	h.submit(dataspace.Iv(0, 3000))
	h.eng.RunUntil(model.Hour + 1)
	_, queued, metas := pol.QueueDepths()
	// 3000 uncached events at stripe 300 → 10 meta-subjobs (minus any the
	// 3 nodes already popped into their queues and started).
	if metas+queued+3 < 10 {
		t.Errorf("expected ≈10 stripes, got %d metas + %d queued", metas, queued)
	}
	h.eng.RunUntil(20 * model.Hour)
}

func TestDelayedMetaSubjobsShareOneTapeLoad(t *testing.T) {
	pol := NewDelayed(model.Hour, 1000)
	h := newHarness(t, pol, nil)
	// Two overlapping jobs arrive in the same period; the overlap must be
	// loaded from tape only once.
	j1 := h.submit(dataspace.Iv(0, 1000))
	j2 := h.submit(dataspace.Iv(0, 1000))
	h.eng.RunUntil(20 * model.Hour)
	if !j1.Finished || !j2.Finished {
		t.Fatal("jobs incomplete")
	}
	st := h.c.Stats()
	if st.EventsFromTape != 1000 {
		t.Errorf("tape served %d events, want 1000 (shared load)", st.EventsFromTape)
	}
	if st.EventsFromCache != 1000 {
		t.Errorf("cache served %d events, want 1000", st.EventsFromCache)
	}
}

func TestDelayedZeroPeriodSchedulesImmediately(t *testing.T) {
	pol := NewDelayed(0, 500)
	h := newHarness(t, pol, nil)
	j := h.submit(dataspace.Iv(0, 1000))
	if !j.Started {
		t.Fatal("zero-period delayed must start work immediately")
	}
	h.eng.Run()
	if !j.Finished {
		t.Fatal("job incomplete")
	}
}

func TestAdaptiveZeroDelayAtLowLoad(t *testing.T) {
	pol := NewAdaptive(500)
	h := newHarness(t, pol, nil)
	j := h.submit(dataspace.Iv(0, 1000))
	if pol.CurrentDelay() != 0 {
		t.Errorf("delay = %v at zero load, want 0", pol.CurrentDelay())
	}
	if !j.Started {
		t.Fatal("adaptive at zero delay must start immediately")
	}
	h.eng.Run()
}

func TestAdaptiveRampsDelayUnderHighLoad(t *testing.T) {
	pol := NewAdaptive(500)
	h := newHarness(t, pol, nil)
	// Slam the cluster with arrivals far beyond the theoretical maximum;
	// the load estimator must push the delay above zero.
	interval := model.Hour / 200 // hundreds of jobs per hour
	for i := 0; i < 100; i++ {
		h.eng.RunUntil(float64(i) * interval)
		h.submit(dataspace.Iv(int64(i)*500, int64(i)*500+400))
	}
	if pol.CurrentDelay() == 0 {
		t.Errorf("delay stayed zero under extreme load (estimate %.1f j/h)", pol.LoadEstimate())
	}
}

func TestReplicationPolicyName(t *testing.T) {
	if NewOutOfOrder().Name() != "outoforder" {
		t.Error("wrong name for out-of-order")
	}
	if NewReplication().Name() != "outoforder+replication" {
		t.Error("wrong name for replication variant")
	}
	if NewReplication().ClusterConfig().ReplicateAfter != 3 {
		t.Error("replication variant must replicate on the 3rd access")
	}
}

func TestCachePiecesMergesSmallPieces(t *testing.T) {
	p := model.PaperCalibrated()
	p.Nodes = 2
	p.CacheBytes = 6 * model.GB
	eng := sim.New(1)
	c := cluster.New(eng, p, cluster.Config{Caching: true})
	// A 5-event cached island inside a large uncached range.
	c.Node(0).Cache.Insert(dataspace.Iv(500, 505), 0)
	var b base
	b.Attach(c)
	pieces := b.cachePieces(dataspace.Iv(0, 1000), 10)
	for _, pc := range pieces {
		if pc.Interval.Len() < 10 && len(pieces) > 1 {
			t.Errorf("piece %v below minimum", pc.Interval)
		}
	}
	var total int64
	for _, pc := range pieces {
		total += pc.Interval.Len()
	}
	if total != 1000 {
		t.Errorf("pieces cover %d events, want 1000", total)
	}
}

func TestSubjobDequeFrontBack(t *testing.T) {
	var d subjobDeque
	a := &job.Subjob{Range: dataspace.Iv(0, 10)}
	b := &job.Subjob{Range: dataspace.Iv(10, 20)}
	c := &job.Subjob{Range: dataspace.Iv(20, 30)}
	d.PushBack(a)
	d.PushBack(b)
	d.PushFront(c)
	if d.Len() != 3 || d.totalEvents() != 30 {
		t.Fatalf("Len=%d total=%d", d.Len(), d.totalEvents())
	}
	if d.PopFront() != c || d.PopFront() != a || d.PopFront() != b {
		t.Error("deque order wrong")
	}
	if !d.Empty() {
		t.Error("deque should be empty")
	}
}

// TestRingDequeWraparound exercises the ring buffer through growth,
// wraparound and indexed removal from both halves.
func TestRingDequeWraparound(t *testing.T) {
	var d ringDeque[int]
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 4; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	// head is now mid-buffer; pushing wraps and then grows.
	for i := 6; i < 20; i++ {
		d.PushBack(i)
	}
	d.PushFront(99)
	if d.Len() != 17 || d.Peek(0) != 99 || d.Peek(1) != 4 || d.Peek(16) != 19 {
		t.Fatalf("unexpected state: len=%d front=%d", d.Len(), d.Peek(0))
	}
	if got := d.Remove(1); got != 4 { // near front: shifts front side
		t.Fatalf("Remove(1) = %d, want 4", got)
	}
	if got := d.Remove(d.Len() - 2); got != 18 { // near back: shifts back side
		t.Fatalf("Remove = %d, want 18", got)
	}
	want := []int{99, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 19}
	if d.Len() != len(want) {
		t.Fatalf("len = %d, want %d", d.Len(), len(want))
	}
	for i, w := range want {
		if d.Peek(i) != w {
			t.Fatalf("Peek(%d) = %d, want %d", i, d.Peek(i), w)
		}
	}
	for _, w := range want {
		if got := d.PopFront(); got != w {
			t.Fatalf("drain: got %d, want %d", got, w)
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty after drain")
	}
}

// TestRingDequeReleasesPointers verifies popped slots are zeroed so the
// backing array does not keep old elements reachable (the retention bug of
// the slice-based deque).
func TestRingDequeReleasesPointers(t *testing.T) {
	var d ringDeque[*int]
	v := new(int)
	d.PushBack(v)
	d.PushBack(new(int))
	d.PopFront()
	d.Remove(0)
	for i := range d.buf {
		if d.buf[i] != nil {
			t.Fatalf("buf[%d] still set after pops", i)
		}
	}
}

func TestRingDequeEmptyOpsPanic(t *testing.T) {
	var d ringDeque[int]
	d.PushBack(1)
	d.PopFront()
	for name, fn := range map[string]func(){
		"PopFront": func() { d.PopFront() },
		"Peek":     func() { d.Peek(0) },
		"Remove":   func() { d.Remove(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			fn()
		}()
	}
}
