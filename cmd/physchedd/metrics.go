package main

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
)

// handleMetrics serves operational counters in the Prometheus text
// exposition format — hand-rolled, since the format is a few lines of
// printf and the repo takes no dependencies. Counters come from the
// instrumented layers underneath (lab.Pool.Stats, resultcache.Counted,
// the job manager); this handler only formats snapshots.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fam := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	ps := s.pool.Stats()
	fam("physchedd_pool_workers", "gauge", "Worker bound of the shared simulation pool.")
	fmt.Fprintf(&b, "physchedd_pool_workers %d\n", ps.Workers)
	fam("physchedd_pool_busy", "gauge", "Pool workers currently executing a simulation cell.")
	fmt.Fprintf(&b, "physchedd_pool_busy %d\n", ps.Busy)
	fam("physchedd_pool_utilization", "gauge", "Busy workers as a fraction of the worker bound.")
	util := 0.0
	if ps.Workers > 0 {
		util = float64(ps.Busy) / float64(ps.Workers)
	}
	fmt.Fprintf(&b, "physchedd_pool_utilization %g\n", util)
	fam("physchedd_pool_tasks_total", "counter", "Cells completed by the pool since start (cache-served cells included; subtract cache hits for simulations).")
	fmt.Fprintf(&b, "physchedd_pool_tasks_total %d\n", ps.TasksDone)

	// Cells per second over the process lifetime, from the injected clock
	// so tests can pin it. A lifetime average, not a window: scrapers
	// compute windowed rates from physchedd_pool_tasks_total.
	fam("physchedd_cells_per_second", "gauge", "Lifetime average of completed cells per second.")
	rate := 0.0
	if up := s.clock().Sub(s.started).Seconds(); up > 0 {
		rate = float64(ps.TasksDone) / up
	}
	fmt.Fprintf(&b, "physchedd_cells_per_second %g\n", rate)

	fam("physchedd_inflight", "gauge", "Executions currently holding an admission slot.")
	fmt.Fprintf(&b, "physchedd_inflight %d\n", s.inflightNow())

	cs := s.cache.Stats()
	fam("physchedd_cache_gets_total", "counter", "Result-cache lookups by kind and outcome.")
	fmt.Fprintf(&b, "physchedd_cache_gets_total{kind=\"result\",outcome=\"hit\"} %d\n", cs.Hits)
	fmt.Fprintf(&b, "physchedd_cache_gets_total{kind=\"result\",outcome=\"miss\"} %d\n", cs.Misses)
	fmt.Fprintf(&b, "physchedd_cache_gets_total{kind=\"aggregate\",outcome=\"hit\"} %d\n", cs.AggHits)
	fmt.Fprintf(&b, "physchedd_cache_gets_total{kind=\"aggregate\",outcome=\"miss\"} %d\n", cs.AggMisses)
	fam("physchedd_cache_puts_total", "counter", "Result-cache writes by kind.")
	fmt.Fprintf(&b, "physchedd_cache_puts_total{kind=\"result\"} %d\n", cs.Puts)
	fmt.Fprintf(&b, "physchedd_cache_puts_total{kind=\"aggregate\"} %d\n", cs.AggPuts)

	byState, evicted := s.jobs.counts()
	fam("physchedd_jobs", "gauge", "Retained async jobs by lifecycle state.")
	// Zero-filled so dashboards see every series from the first scrape.
	for _, st := range []jobState{jobRunning, jobDone, jobFailed, jobCancelled} {
		fmt.Fprintf(&b, "physchedd_jobs{state=%q} %d\n", string(st), byState[st])
	}
	fam("physchedd_jobs_evicted_total", "counter", "Finished jobs dropped by -max-jobs retention.")
	fmt.Fprintf(&b, "physchedd_jobs_evicted_total %d\n", evicted)

	held, repEvicted := s.studies.stats()
	fam("physchedd_study_reports", "gauge", "Study reports retained in memory.")
	fmt.Fprintf(&b, "physchedd_study_reports %d\n", held)
	fam("physchedd_study_reports_evicted_total", "counter", "Study reports dropped by retention.")
	fmt.Fprintf(&b, "physchedd_study_reports_evicted_total %d\n", repEvicted)

	// Latency histograms (internal/obs): fixed buckets, cumulative
	// counts, fed from the injected clock.
	fam("physchedd_http_request_duration_seconds", "histogram", "HTTP request duration by route and status.")
	s.httpDur.WriteProm(&b, "physchedd_http_request_duration_seconds")
	fam("physchedd_pool_queue_wait_seconds", "histogram", "Time simulation tasks spent queued before a pool worker picked them up.")
	s.queueWait.WriteProm(&b, "physchedd_pool_queue_wait_seconds", "")
	fam("physchedd_cell_duration_seconds", "histogram", "Execution time of individual simulation cells on the pool.")
	s.cellDur.WriteProm(&b, "physchedd_cell_duration_seconds", "")
	fam("physchedd_job_duration_seconds", "histogram", "End-to-end async job latency (submit to terminal state) by kind.")
	s.jobDur.WriteProm(&b, "physchedd_job_duration_seconds")

	fam("physchedd_trace_jobs_total", "counter", "Async jobs submitted with ?trace=1.")
	fmt.Fprintf(&b, "physchedd_trace_jobs_total %d\n", s.traceJobs.Load())
	fam("physchedd_trace_events_total", "counter", "Simulation trace events captured across traced jobs.")
	fmt.Fprintf(&b, "physchedd_trace_events_total %d\n", s.traceEvents.Load())
	fam("physchedd_trace_events_dropped_total", "counter", "Trace events discarded by the -max-trace-events cap.")
	fmt.Fprintf(&b, "physchedd_trace_events_dropped_total %d\n", s.traceDropped.Load())

	fam("physchedd_build_info", "gauge", "Build metadata; the value is always 1.")
	fmt.Fprintf(&b, "physchedd_build_info{go_version=%q,module_version=%q} 1\n",
		runtime.Version(), moduleVersion())
	fam("physchedd_process_start_time_seconds", "gauge", "Unix time the process started, from the injected clock.")
	fmt.Fprintf(&b, "physchedd_process_start_time_seconds %d\n", s.started.Unix())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

// moduleVersion reports the main module's version from the embedded
// build info — "(devel)" for working-tree builds, the tag for released
// binaries. Build info can be absent in some test binaries; report
// "unknown" rather than omitting the series.
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}
