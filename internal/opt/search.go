package opt

import (
	"context"
	"fmt"
	"math/rand"

	"physched/internal/lab"
	"physched/internal/resultcache"
)

// Options configure a study run. The zero value executes serially with a
// private in-memory result cache.
type Options struct {
	// Workers bounds concurrent simulation cells; see lab.Options.
	Workers int
	// Pool, when non-nil, executes cells on this shared pool and Workers
	// is ignored. Reports are byte-identical either way.
	Pool *lab.Pool
	// Context cancels the study between cells.
	Context context.Context
	// Cache is the content-addressed result store consulted and fed by
	// every evaluation; nil uses a private in-memory cache. Later rungs of
	// a halving study re-read their earlier replications through it, and a
	// warm cache (e.g. a prior run of the same study) re-simulates
	// nothing — without changing the report, because the budget charges
	// cache hits too.
	Cache lab.ResultCache
	// Progress, when non-nil, is invoked after every completed cell,
	// serialised by the executing grid.
	Progress func(Progress)
}

// Progress reports one completed simulation cell of a study.
type Progress struct {
	// Phase names the search stage ("search" for random, "rung k/n" for
	// successive halving).
	Phase string
	// Done and Total count cells across the whole study: Done is
	// cumulative completions, Total the cells submitted so far plus the
	// current batch (it grows as later rungs are planned).
	Done, Total int
	// Budget echoes the study's cell budget.
	Budget int
	// Label identifies the candidate; Seed the replica.
	Label      string
	Seed       int64
	FromCache  bool
	Overloaded bool
}

// Entry is one leaderboard row of a study report.
type Entry struct {
	Rank int `json:"rank"`
	// Label is the candidate's "axis=value" identity.
	Label string `json:"label"`
	// SpecHash is the content hash of the candidate's resolved spec (with
	// the base seed) — its handle into the spec/result-cache world.
	SpecHash string `json:"spec_hash"`
	// Value and CI95 are the objective at the candidate's deepest
	// evaluation; meaningless when every replica overloaded.
	Value float64 `json:"value"`
	CI95  float64 `json:"ci95"`
	// Replicas and Overloaded describe that evaluation.
	Replicas   int `json:"replicas"`
	Overloaded int `json:"overloaded"`
}

// steady reports whether the entry has an objective value at all.
func (e Entry) steady() bool { return e.Overloaded < e.Replicas }

// TrajectoryPoint is one step of the best-objective-versus-budget curve:
// after EvaluatedCells charged cells, the best steady objective seen so
// far was Best. The curve is the monotone envelope search quality is
// judged by (asciiplot-rendered by Report.TrajectoryPlot).
type TrajectoryPoint struct {
	EvaluatedCells int     `json:"evaluated_cells"`
	Best           float64 `json:"best"`
}

// Rung summarises one successive-halving rung.
type Rung struct {
	Replications int `json:"replications"`
	Candidates   int `json:"candidates"`
	Survivors    int `json:"survivors"`
}

// Report is the outcome of a study run: the winner, a leaderboard, the
// budget accounting and the search trajectory. Reports are a pure
// function of the study (hash included) — cache state, worker count and
// pool sharing change only SimulatedCells/CacheHits, never the findings.
type Report struct {
	StudyHash string    `json:"study_hash"`
	Algorithm string    `json:"algorithm"`
	Objective Objective `json:"objective"`

	// SpaceSize counts the distinct valid candidates; InvalidCandidates
	// the cross-product points skipped for failing spec validation and
	// DuplicateCandidates those skipped as spec-identical to an earlier
	// point (integer axes round their interpolation points).
	SpaceSize           int `json:"space_size"`
	InvalidCandidates   int `json:"invalid_candidates,omitempty"`
	DuplicateCandidates int `json:"duplicate_candidates,omitempty"`

	// Budget accounting: EvaluatedCells ≤ Budget cells were charged;
	// SimulatedCells of them actually ran, the rest came from the cache.
	Budget         int `json:"budget_cells"`
	EvaluatedCells int `json:"evaluated_cells"`
	SimulatedCells int `json:"simulated_cells"`
	CacheHits      int `json:"cache_hits"`
	// Candidates is how many distinct candidates were evaluated.
	Candidates int `json:"candidates"`

	Rungs []Rung `json:"rungs,omitempty"`

	// Best is the leaderboard winner, nil when no evaluated candidate ran
	// steadily.
	Best        *Entry            `json:"best,omitempty"`
	Leaderboard []Entry           `json:"leaderboard"`
	Trajectory  []TrajectoryPoint `json:"trajectory"`
}

// Run executes the study: it validates, enumerates the space, runs the
// configured search driver within the cell budget, and reports. Every
// candidate evaluation is a lab grid on the configured pool/cache, so the
// report is byte-identical across serial, parallel and shared-pool
// execution, and re-running a study against a warm cache re-simulates
// nothing.
func Run(st Study, o Options) (*Report, error) {
	p, err := st.Prepare()
	if err != nil {
		return nil, err
	}
	return p.Run(o)
}

// Run executes a prepared study; see the package-level Run.
func (p *Prepared) Run(o Options) (*Report, error) {
	st, sp := p.Study, p.sp
	if o.Cache == nil {
		o.Cache = resultcache.NewMemory()
	}
	e := &evaluator{
		st:      st,
		sp:      sp,
		opts:    o,
		seeds:   lab.Seeds(st.Base.Seed, st.Search.Replications),
		budget:  st.Search.BudgetCells,
		charged: map[string]bool{},
		evals:   map[candidate]*candEval{},
	}
	rep := &Report{
		StudyHash:           p.Hash,
		Algorithm:           st.Search.Algorithm,
		Objective:           st.Objective,
		SpaceSize:           len(sp.valid),
		InvalidCandidates:   sp.invalid,
		DuplicateCandidates: sp.duplicates,
		Budget:              st.Search.BudgetCells,
	}
	var err error
	switch st.Search.Algorithm {
	case "random":
		err = runRandom(e)
	case "halving":
		rep.Rungs, err = runHalving(e)
	default:
		err = fmt.Errorf("opt: unknown search algorithm %q", st.Search.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	e.fill(rep)
	return rep, nil
}

// candEval is a candidate's deepest evaluation so far.
type candEval struct {
	cand     candidate
	label    string
	specHash string
	agg      lab.Aggregate
	val, ci  float64
	ok       bool
}

// evaluator runs candidate batches through lab.Grid.Execute, charging the
// study budget per cell. A cell (candidate × replica seed) is charged
// once per study, however many rungs re-read it; cache hits are charged
// like simulated cells, so the explored set never depends on cache state.
type evaluator struct {
	st    Study
	sp    *space
	opts  Options
	seeds []int64

	budget    int
	evaluated int // cells charged
	simulated int
	cacheHits int
	completed int // cells completed (for progress), any charge state
	planned   int // cells submitted across batches

	charged map[string]bool
	evals   map[candidate]*candEval
	order   []candidate // first-evaluation order

	trajectory []TrajectoryPoint
	best       float64
	haveBest   bool
}

// evalBatch evaluates cands (in the given order) at reps replications,
// admitting the longest prefix the remaining budget affords. It returns
// the admitted candidates; a nil slice means the budget is exhausted.
func (e *evaluator) evalBatch(phase string, cands []candidate, reps int) ([]candidate, error) {
	if len(cands) == 0 || reps <= 0 {
		return nil, nil
	}
	// Resolve specs and per-replica content keys, then admit candidates
	// in order while the budget covers their uncharged cells.
	remaining := e.budget - e.evaluated
	var admitted []candidate
	var keys [][]string
	var hashes []string
	newCells := make([]int, 0, len(cands))
	for _, c := range cands {
		cs := e.sp.specFor(c)
		ck := make([]string, reps)
		fresh := 0
		for r := 0; r < reps; r++ {
			s := cs
			s.Seed = e.seeds[r]
			h, err := s.Hash()
			if err != nil {
				return nil, fmt.Errorf("opt: candidate %q: %w", e.sp.label(c), err)
			}
			ck[r] = h
			if !e.charged[h] {
				fresh++
			}
		}
		if fresh > remaining {
			break
		}
		remaining -= fresh
		h, err := cs.Hash()
		if err != nil {
			return nil, fmt.Errorf("opt: candidate %q: %w", e.sp.label(c), err)
		}
		admitted = append(admitted, c)
		keys = append(keys, ck)
		hashes = append(hashes, h)
		newCells = append(newCells, fresh)
	}
	if len(admitted) == 0 {
		return nil, nil
	}

	// One lab grid evaluates the whole batch: candidates are variants
	// whose Mutate swaps in the full compiled scenario (keeping the
	// grid-bound replica seed), so cells interleave freely on the pool.
	variants := make([]lab.Variant, len(admitted))
	var base lab.Scenario
	for i, c := range admitted {
		sc, err := e.sp.specFor(c).Scenario()
		if err != nil {
			return nil, fmt.Errorf("opt: candidate %q: %w", e.sp.label(c), err)
		}
		if i == 0 {
			base = sc
		}
		variants[i] = lab.Variant{
			Label: e.sp.label(c),
			Mutate: func(s *lab.Scenario) {
				seed := s.Seed
				*s = sc
				s.Seed = seed
			},
		}
	}
	grid := lab.Grid{Base: base, Variants: variants, Seeds: e.seeds[:reps]}
	e.planned += len(admitted) * reps
	opts := lab.Options{
		Workers: e.opts.Workers,
		Pool:    e.opts.Pool,
		Context: e.opts.Context,
		Cache:   e.opts.Cache,
		Keys: func(c lab.Cell) (string, bool) {
			return keys[c.Variant][c.SeedIdx], true
		},
	}
	if e.opts.Progress != nil {
		batchDone := 0
		done := e.completed
		opts.Progress = func(u lab.ProgressUpdate) {
			batchDone++
			e.opts.Progress(Progress{
				Phase: phase, Done: done + batchDone, Total: e.planned,
				Budget: e.budget, Label: u.Label, Seed: u.Seed,
				FromCache: u.FromCache, Overloaded: u.Overloaded,
			})
		}
	}
	rs, err := grid.Execute(opts)
	if err != nil {
		return nil, err
	}
	e.completed += len(rs.Results)
	e.simulated += len(rs.Results) - rs.CacheHits
	e.cacheHits += rs.CacheHits

	// Fold results per candidate, charge the budget, and extend the
	// best-so-far trajectory — all in admission order, so the report is
	// independent of cell completion order.
	for i, c := range admitted {
		results := make([]lab.Result, reps)
		for r := 0; r < reps; r++ {
			results[r] = rs.Result(i, 0, r)
		}
		agg := lab.NewAggregate(results)
		ev, seen := e.evals[c]
		if !seen {
			ev = &candEval{cand: c, label: e.sp.label(c), specHash: hashes[i]}
			e.evals[c] = ev
			e.order = append(e.order, c)
		}
		ev.agg = agg
		ev.val, ev.ci, ev.ok = e.st.Objective.Eval(agg)
		for _, k := range keys[i] {
			e.charged[k] = true
		}
		e.evaluated += newCells[i]
		if ev.ok && (!e.haveBest || e.st.Objective.better(ev.val, e.best)) {
			e.best, e.haveBest = ev.val, true
			e.trajectory = append(e.trajectory, TrajectoryPoint{EvaluatedCells: e.evaluated, Best: e.best})
		}
	}
	return admitted, nil
}

// rank orders candidates: steady candidates first, deeper evaluations
// (more replicas) before shallower ones, then best objective value, ties
// broken by candidate index so ranking is total and deterministic.
// Within a halving rung every candidate has equal depth, so there the
// ranking is purely by objective; across the final leaderboard the depth
// key keeps a noisy one-replication estimate that the search itself
// declined to promote from outranking a full-replication survivor (the
// optimiser's-curse bias of comparing maxima at different noise levels).
func (e *evaluator) rank(cands []candidate) []candidate {
	out := append([]candidate(nil), cands...)
	obj := e.st.Objective
	lessThan := func(a, b candidate) bool {
		ea, eb := e.evals[a], e.evals[b]
		if ea.ok != eb.ok {
			return ea.ok
		}
		if ea.agg.Replicas != eb.agg.Replicas {
			return ea.agg.Replicas > eb.agg.Replicas
		}
		if ea.ok && ea.val != eb.val {
			return obj.better(ea.val, eb.val)
		}
		return a < b
	}
	for i := 1; i < len(out); i++ { // insertion sort: n is small, order total
		for j := i; j > 0 && lessThan(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runRandom is seeded random search: a budget-sized sample of the space
// (without replacement, in seeded-permutation order) evaluated at full
// replications.
func runRandom(e *evaluator) error {
	reps := e.st.Search.Replications
	perm := rand.New(rand.NewSource(e.st.Search.Seed)).Perm(len(e.sp.valid))
	m := e.budget / reps
	if m > len(perm) {
		m = len(perm)
	}
	cands := make([]candidate, m)
	for i := range cands {
		cands[i] = e.sp.valid[perm[i]]
	}
	_, err := e.evalBatch("search", cands, reps)
	return err
}

// runHalving is successive halving: a wide first rung at few replications,
// then geometrically fewer survivors at geometrically more replications.
// Survivors are chosen CI-aware — the top 1/eta by objective value, plus
// every candidate statistically tied with the last survivor (overlapping
// 95% intervals), so noisy early rungs do not prune ties arbitrarily; the
// budget check of the next rung trims from the bottom of the ranking.
func runHalving(e *evaluator) ([]Rung, error) {
	R, eta := e.st.Search.Replications, e.st.Search.Eta
	ladder := []int{R}
	for r := R / eta; r >= 1; r /= eta {
		ladder = append([]int{r}, ladder...)
	}

	// Width of the first rung: the largest cohort whose projected
	// halving schedule fits the budget.
	cost := func(n int) int {
		total, prev, alive := 0, 0, n
		for _, r := range ladder {
			total += alive * (r - prev)
			prev = r
			alive = (alive + eta - 1) / eta
		}
		return total
	}
	n0 := 1
	for n := 2; n <= len(e.sp.valid); n++ {
		if cost(n) > e.budget {
			break
		}
		n0 = n
	}

	perm := rand.New(rand.NewSource(e.st.Search.Seed)).Perm(len(e.sp.valid))
	current := make([]candidate, n0)
	for i := range current {
		current[i] = e.sp.valid[perm[i]]
	}

	var rungs []Rung
	for k, r := range ladder {
		phase := fmt.Sprintf("rung %d/%d", k+1, len(ladder))
		ran, err := e.evalBatch(phase, current, r)
		if err != nil {
			return rungs, err
		}
		if len(ran) == 0 {
			break // budget exhausted
		}
		ranked := e.rank(ran)
		rung := Rung{Replications: r, Candidates: len(ran)}
		if k == len(ladder)-1 {
			rungs = append(rungs, rung)
			break
		}
		keep := (len(ranked) + eta - 1) / eta
		last := e.evals[ranked[keep-1]]
		for keep < len(ranked) {
			next := e.evals[ranked[keep]]
			if !last.ok || !next.ok {
				break
			}
			if diff := next.val - last.val; diff > last.ci+next.ci || -diff > last.ci+next.ci {
				break
			}
			keep++ // statistically tied with the last survivor
		}
		rung.Survivors = keep
		rungs = append(rungs, rung)
		current = ranked[:keep]
	}
	return rungs, nil
}

// fill completes the report from the evaluator's state.
func (e *evaluator) fill(rep *Report) {
	rep.EvaluatedCells = e.evaluated
	rep.SimulatedCells = e.simulated
	rep.CacheHits = e.cacheHits
	rep.Candidates = len(e.order)
	rep.Trajectory = e.trajectory
	if rep.Trajectory == nil {
		rep.Trajectory = []TrajectoryPoint{}
	}
	ranked := e.rank(e.order)
	top := e.st.Search.TopK
	if top > len(ranked) {
		top = len(ranked)
	}
	rep.Leaderboard = make([]Entry, 0, top)
	for i := 0; i < top; i++ {
		ev := e.evals[ranked[i]]
		rep.Leaderboard = append(rep.Leaderboard, Entry{
			Rank: i + 1, Label: ev.label, SpecHash: ev.specHash,
			Value: ev.val, CI95: ev.ci,
			Replicas: ev.agg.Replicas, Overloaded: ev.agg.Overloaded,
		})
	}
	if len(rep.Leaderboard) > 0 && rep.Leaderboard[0].steady() {
		best := rep.Leaderboard[0]
		rep.Best = &best
	}
}
