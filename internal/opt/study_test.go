package opt

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"physched/internal/lab"
	"physched/internal/spec"
)

// smallStudy is a fast, valid study over a tiny cluster: two policies
// crossed with two cache sizes.
func smallStudy() Study {
	return Study{
		Base: spec.Spec{
			Params:      spec.Params{Nodes: 3, CacheGB: 6, MeanJobEvents: 1_000, DataspaceGB: 60},
			Policy:      spec.Policy{Name: "outoforder"},
			Load:        1.0,
			Seed:        5,
			WarmupJobs:  10,
			MeasureJobs: 40,
		},
		Axes: []Axis{
			{Name: "policy", Values: []string{"outoforder", "farm"}},
			{Name: "cache_gb", Min: 6, Max: 24, Steps: 2},
		},
		Objective: Objective{Metric: "mean_speedup"},
		Search:    Search{Algorithm: "random", BudgetCells: 8, Replications: 2, Seed: 1},
	}
}

func TestStudyRoundTripsThroughJSON(t *testing.T) {
	st := smallStudy()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("round trip changed the study:\n%s\n%s", b, b2)
	}
}

func TestStudyRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := Parse(strings.NewReader(`{"axes": [{"name": "load", "mni": 1}]}`)); err == nil {
		t.Error("unknown axis field accepted")
	}
}

// TestStudyCanonicalEncodeDecodeEncodeIdentity is the canonicalisation
// contract over a table of representative studies.
func TestStudyCanonicalEncodeDecodeEncodeIdentity(t *testing.T) {
	halving := smallStudy()
	halving.Search = Search{Algorithm: "halving", BudgetCells: 12, Replications: 4, Eta: 2, Seed: 9}
	defaulted := smallStudy()
	defaulted.Search = Search{BudgetCells: 4} // algorithm, reps, top_k all defaulted
	defaulted.Objective = Objective{Metric: "mean_waiting"}
	loadAxis := smallStudy()
	loadAxis.Base.Load = 0
	loadAxis.Axes = append(loadAxis.Axes, Axis{Name: "load", Min: 0.5, Max: 1.5, Steps: 3})
	logAxis := smallStudy()
	logAxis.Axes[1] = Axis{Name: "stripe_events", Min: 200, Max: 5000, Steps: 3, Scale: "log"}
	logAxis.Axes[0] = Axis{Name: "policy", Values: []string{"delayed", "adaptive"}}

	for i, st := range []Study{smallStudy(), halving, defaulted, loadAxis, logAxis} {
		c, err := st.Canonical()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := Parse(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("case %d: decoding canonical form: %v", i, err)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("case %d: re-canonicalising: %v", i, err)
		}
		if !bytes.Equal(c, c2) {
			t.Errorf("case %d: canonical form unstable:\n%s\n%s", i, c, c2)
		}
		h1, err := st.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 || len(h1) != 64 {
			t.Errorf("case %d: hash unstable or malformed: %q vs %q", i, h1, h2)
		}
	}
}

// FuzzStudyCanonicalRoundTrip mirrors the spec fuzz: any study that
// canonicalises must decode and re-encode byte-identically.
func FuzzStudyCanonicalRoundTrip(f *testing.F) {
	f.Add(int64(1), 1.0, 8, 2, true, 0.5, 2.0, 3, false)
	f.Add(int64(-7), 2.5, 30, 4, false, 6.0, 24.0, 2, true)
	f.Add(int64(0), 0.25, 3, 1, true, 0.1, 10.0, 5, true)
	f.Fuzz(func(t *testing.T, seed int64, load float64, budget, reps int, halving bool,
		min, max float64, steps int, logScale bool) {
		st := smallStudy()
		st.Base.Seed = seed
		st.Base.Load = load
		st.Search.BudgetCells = budget
		st.Search.Replications = reps
		if halving {
			st.Search.Algorithm = "halving"
		}
		scale := "linear"
		if logScale {
			scale = "log"
		}
		st.Axes[1] = Axis{Name: "load", Min: min, Max: max, Steps: steps, Scale: scale}
		c, err := st.Canonical()
		if err != nil {
			t.Skip() // invalid studies are rejected, not canonicalised
		}
		back, err := Parse(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("canonical form does not parse: %v\n%s", err, c)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("canonical form does not re-canonicalise: %v\n%s", err, c)
		}
		if !bytes.Equal(c, c2) {
			t.Fatalf("canonical form unstable:\n%s\n%s", c, c2)
		}
	})
}

func TestStudyValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Study)
	}{
		{"no axes", func(st *Study) { st.Axes = nil }},
		{"unknown axis", func(st *Study) { st.Axes[0].Name = "bogus" }},
		{"duplicate axis", func(st *Study) { st.Axes[1] = st.Axes[0] }},
		{"categorical with steps", func(st *Study) { st.Axes[0].Steps = 3 }},
		{"numeric with values", func(st *Study) { st.Axes[1].Values = []string{"x"} }},
		{"one step", func(st *Study) { st.Axes[1].Steps = 1 }},
		{"min==max", func(st *Study) { st.Axes[1].Min, st.Axes[1].Max = 6, 6 }},
		{"log from zero", func(st *Study) { st.Axes[1].Min, st.Axes[1].Scale = 0, "log" }},
		{"bad scale", func(st *Study) { st.Axes[1].Scale = "cubic" }},
		{"repeated value", func(st *Study) { st.Axes[0].Values = []string{"farm", "farm"} }},
		{"bad metric", func(st *Study) { st.Objective.Metric = "speed" }},
		{"bad direction", func(st *Study) { st.Objective.Direction = "up" }},
		{"no budget", func(st *Study) { st.Search.BudgetCells = 0 }},
		{"budget under reps", func(st *Study) { st.Search.BudgetCells = 1; st.Search.Replications = 4 }},
		{"eta on random", func(st *Study) { st.Search.Eta = 3 }},
		{"eta one", func(st *Study) { st.Search.Algorithm = "halving"; st.Search.Eta = 1 }},
		{"bad algorithm", func(st *Study) { st.Search.Algorithm = "anneal" }},
		{"bad schema version", func(st *Study) { st.SchemaVersion = 99 }},
		{"no valid candidate", func(st *Study) {
			st.Axes = []Axis{{Name: "policy", Values: []string{"farm"}}}
			st.Base.Policy.DelayHours = 11 // farm rejects delay_hours
		}},
		{"base without load", func(st *Study) { st.Base.Load = 0 }},
	}
	for _, tc := range cases {
		st := smallStudy()
		tc.mutate(&st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: invalid study accepted", tc.name)
		}
	}
}

func TestAxisPoints(t *testing.T) {
	lin := Axis{Name: "load", Min: 1, Max: 3, Steps: 5}
	want := []float64{1, 1.5, 2, 2.5, 3}
	for i, v := range lin.points() {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Errorf("linear point %d = %v, want %v", i, v, want[i])
		}
	}
	log := Axis{Name: "stripe_events", Min: 200, Max: 5000, Steps: 3, Scale: "log"}
	pts := log.points()
	if pts[0] != 200 || pts[2] != 5000 {
		t.Errorf("log endpoints drifted: %v", pts)
	}
	if mid := pts[1]; math.Abs(mid-1000) > 1 { // geometric mean of 200 and 5000
		t.Errorf("log midpoint = %v, want ≈1000", mid)
	}
}

// TestSpaceSkipsInvalidCombinations: crossing a policy axis with a
// parameter only some policies take keeps the valid combinations and
// counts the rest, instead of rejecting the study.
func TestSpaceSkipsInvalidCombinations(t *testing.T) {
	st := smallStudy()
	st.Axes = []Axis{
		{Name: "policy", Values: []string{"delayed", "adaptive"}},
		{Name: "delay_hours", Min: 0, Max: 48, Steps: 3},
	}
	sp, err := st.space()
	if err != nil {
		t.Fatal(err)
	}
	// delayed takes every delay; adaptive only delay 0.
	if len(sp.valid) != 4 || sp.invalid != 2 {
		t.Errorf("space = %d valid + %d invalid, want 4 + 2", len(sp.valid), sp.invalid)
	}
	labels := make([]string, len(sp.valid))
	for i, c := range sp.valid {
		labels[i] = sp.label(c)
	}
	want := []string{
		"policy=delayed delay_hours=0",
		"policy=delayed delay_hours=24",
		"policy=delayed delay_hours=48",
		"policy=adaptive delay_hours=0",
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
		}
	}
}

// TestSpaceDeduplicatesRoundedCandidates: integer axes round their
// interpolation points, so a fine-grained range can collapse several
// points onto one spec — only the first survives, the rest are counted,
// and the budget is never charged twice for the same cell.
func TestSpaceDeduplicatesRoundedCandidates(t *testing.T) {
	st := smallStudy()
	// nodes over [1,3] in 5 steps → 1, 1.5, 2, 2.5, 3 → rounds to
	// 1, 2, 2, 3, 3: two duplicates.
	st.Axes = []Axis{{Name: "nodes", Min: 1, Max: 3, Steps: 5}}
	sp, err := st.space()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.valid) != 3 || sp.duplicates != 2 || sp.invalid != 0 {
		t.Fatalf("space = %d valid, %d duplicates, %d invalid; want 3, 2, 0",
			len(sp.valid), sp.duplicates, sp.invalid)
	}
	st.Search = Search{Algorithm: "random", BudgetCells: 100, Replications: 2, Seed: 1}
	rep, err := Run(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpaceSize != 3 || rep.DuplicateCandidates != 2 {
		t.Errorf("report space accounting: %+v", rep)
	}
	// 3 distinct candidates × 2 replications: nothing charged twice.
	if rep.EvaluatedCells != 6 || rep.Candidates != 3 {
		t.Errorf("deduped study charged %d cells over %d candidates, want 6 over 3",
			rep.EvaluatedCells, rep.Candidates)
	}
}

// TestLeaderboardPrefersDeeperEvaluations: a candidate pruned at a
// shallow halving rung must not outrank a full-replication survivor on
// the strength of a noisy one-replication estimate.
func TestLeaderboardPrefersDeeperEvaluations(t *testing.T) {
	st := smallStudy()
	st.Axes = []Axis{
		{Name: "policy", Values: []string{"outoforder", "farm", "cacheoriented", "splitting"}},
		{Name: "cache_gb", Min: 6, Max: 24, Steps: 3},
		{Name: "load", Min: 0.6, Max: 1.0, Steps: 2},
	}
	st.Search = Search{Algorithm: "halving", BudgetCells: 40, Replications: 4, Eta: 3, Seed: 2}
	rep, err := Run(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deepest := 0
	for _, e := range rep.Leaderboard {
		if e.Replicas > deepest {
			deepest = e.Replicas
		}
	}
	if rep.Best == nil || rep.Best.Replicas != deepest {
		t.Errorf("winner judged at %d replicas, deepest evaluation was %d", rep.Best.Replicas, deepest)
	}
	for i := 1; i < len(rep.Leaderboard); i++ {
		hi, lo := rep.Leaderboard[i-1], rep.Leaderboard[i]
		if hi.steady() && lo.steady() && lo.Replicas > hi.Replicas {
			t.Errorf("leaderboard rank %d (%d replicas) outranked by rank %d (%d replicas)",
				i, hi.Replicas, i+1, lo.Replicas)
		}
	}
}

// TestObjectiveEval covers the metric table and the all-overloaded case.
func TestObjectiveEval(t *testing.T) {
	agg := aggOf(t, []float64{2, 4}, false)
	if v, _, ok := (Objective{Metric: "mean_speedup"}).normalize().Eval(agg); !ok || v != 3 {
		t.Errorf("mean_speedup = %v ok=%v, want 3 true", v, ok)
	}
	if _, _, ok := (Objective{Metric: "goodput"}).normalize().Eval(aggOf(t, []float64{1}, true)); ok {
		t.Error("all-overloaded aggregate produced an objective value")
	}
	min := Objective{Metric: "mean_waiting"}.normalize()
	if min.Direction != "min" || !min.better(1, 2) {
		t.Errorf("waiting metric should default to min")
	}
	max := Objective{Metric: "goodput"}.normalize()
	if max.Direction != "max" || !max.better(2, 1) {
		t.Errorf("goodput should default to max")
	}
}

// aggOf builds a replica aggregate with the given speedups.
func aggOf(t *testing.T, speedups []float64, overloaded bool) lab.Aggregate {
	t.Helper()
	results := make([]lab.Result, len(speedups))
	for i, s := range speedups {
		results[i] = lab.Result{AvgSpeedup: s, Overloaded: overloaded}
	}
	return lab.NewAggregate(results)
}
