package obs

import (
	"log/slog"
	"net/http"
	"strconv"
)

// MiddlewareConfig wires the request middleware: correlation IDs,
// one structured access-log line per request, and a per-route×status
// duration observation. Zero-value fields degrade gracefully (nil
// Logger logs nothing, nil Observe measures nothing).
type MiddlewareConfig struct {
	// Clock times the request; nil falls back to SystemClock.
	Clock Clock
	// Logger receives one "request" line per call with method, route,
	// path, status, duration and request_id attributes.
	Logger *slog.Logger
	// Observe receives (route, status, seconds) after every request —
	// the HTTP latency histogram feed. route is the ServeMux pattern
	// that matched ("unmatched" otherwise), so cardinality is bounded
	// by the route table, not by client-controlled paths.
	Observe func(route, status string, seconds float64)
	// Route resolves the request's route label. The ServeMux only
	// stamps Request.Pattern on the clone it hands to the handler, so
	// a wrapping middleware cannot read it afterwards; pass
	// func(r *http.Request) string { _, p := mux.Handler(r); return p }
	// to label by the mux's own match. nil (or an empty resolution)
	// falls back to "unmatched".
	Route func(r *http.Request) string
}

// Middleware wraps next with request-ID propagation, access logging and
// latency observation. The inbound X-Request-Id is sanitized and
// echoed; absent (or unsalvageable) ones are generated. The ID rides
// the request context (RequestIDFrom) and a request-scoped logger
// (LoggerFrom) into handlers, so async work they spawn can carry the
// correlation onward.
func Middleware(next http.Handler, cfg MiddlewareConfig) http.Handler {
	clock := cfg.Clock
	if clock == nil {
		clock = SystemClock
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := clock()
		id, ok := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if !ok {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := WithRequestID(r.Context(), id)
		if cfg.Logger != nil {
			ctx = WithLogger(ctx, cfg.Logger.With(slog.String("request_id", id)))
		}
		route := ""
		if cfg.Route != nil {
			route = cfg.Route(r)
		}
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		seconds := clock().Sub(start).Seconds()
		if cfg.Observe != nil {
			cfg.Observe(route, strconv.Itoa(sw.status()), seconds)
		}
		if cfg.Logger != nil {
			cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status()),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("dur_seconds", seconds),
			)
		}
	})
}

// statusWriter records the response status and size while preserving
// the streaming contract: handlers type-assert http.Flusher to flush
// NDJSON progress lines, so the wrapper must forward Flush.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status reports the response code (200 when the handler never wrote).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
