package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram buckets positive observations into logarithmically spaced
// bins, as used by the paper's Figure 4 (waiting-time distribution plotted
// on a log-log scale from minutes to days).
type LogHistogram struct {
	lo, hi  float64 // bucket range; values outside are clamped
	perDec  int     // buckets per decade
	counts  []int64
	under   int64 // observations below lo (including zeros)
	total   int64
	decades float64
}

// NewLogHistogram builds a histogram covering [lo, hi) with perDecade
// buckets per factor of 10. lo and hi must be positive with lo < hi.
func NewLogHistogram(lo, hi float64, perDecade int) *LogHistogram {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("stats: invalid LogHistogram bounds")
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades * float64(perDecade)))
	return &LogHistogram{lo: lo, hi: hi, perDec: perDecade, counts: make([]int64, n), decades: decades}
}

// Add records one observation. Non-positive and sub-lo values count in the
// underflow bucket; values at or above hi land in the last bucket.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x < h.lo {
		h.under++
		return
	}
	i := int(math.Log10(x/h.lo) * float64(h.perDec))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
}

// Total returns the number of observations, including underflow.
func (h *LogHistogram) Total() int64 { return h.total }

// Underflow returns the count of observations below the histogram range.
func (h *LogHistogram) Underflow() int64 { return h.under }

// Bucket describes one histogram bin.
type Bucket struct {
	Lo, Hi float64
	Count  int64
}

// Buckets returns the bins in ascending order.
func (h *LogHistogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		out[i] = Bucket{
			Lo:    h.lo * math.Pow(10, float64(i)/float64(h.perDec)),
			Hi:    h.lo * math.Pow(10, float64(i+1)/float64(h.perDec)),
			Count: h.counts[i],
		}
	}
	return out
}

// String renders the histogram as a fixed-width ASCII chart, one line per
// non-empty bucket.
func (h *LogHistogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s %6d\n", "<min", h.under)
	}
	for _, bk := range h.Buckets() {
		if bk.Count == 0 {
			continue
		}
		bar := strings.Repeat("#", int(40*bk.Count/maxCount))
		fmt.Fprintf(&b, "%12s %6d %s\n", FormatDuration(bk.Lo), bk.Count, bar)
	}
	return b.String()
}

// FormatDuration renders a duration in seconds using the units of the
// paper's axes (s, mn, h, day, week).
func FormatDuration(sec float64) string {
	switch {
	case sec < 60:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 3600:
		return fmt.Sprintf("%.1fmn", sec/60)
	case sec < 86400:
		return fmt.Sprintf("%.1fh", sec/3600)
	case sec < 7*86400:
		return fmt.Sprintf("%.1fday", sec/86400)
	default:
		return fmt.Sprintf("%.1fweek", sec/(7*86400))
	}
}
