// Package driver is a self-contained, stdlib-only analysis framework in
// the spirit of golang.org/x/tools/go/analysis: analyzers receive a
// parsed, fully type-checked package (a Pass) and report position-anchored
// diagnostics. The x/tools module is deliberately not a dependency — this
// repo builds offline with zero external requirements (see DESIGN.md §11)
// — so the loader (load.go) drives `go list -json -deps` plus go/types
// source type-checking instead of go/packages, and this file mirrors the
// small subset of the upstream API the physchedlint analyzers need. If
// the module ever gains network-fetched deps, the analyzers port to
// x/tools by swapping this package's types for their upstream namesakes.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check: a name for diagnostics, a doc string for
// -help style listings, and a Run function applied to one package at a
// time. Analyzers are stateless across packages so the multichecker can
// apply any subset to any package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path. For module packages it equals
	// Pkg.Path(); kept separate so analyzers never depend on go/types
	// path normalisation.
	PkgPath   string
	TypesInfo *types.Info

	// NoSuppress asks analyzers to ignore in-source suppression comments
	// and report everything. It exists for the suppression-staleness
	// audit (a suppression that hides nothing in NoSuppress mode is dead
	// weight); semantic annotations that change analysis facts — rather
	// than hide findings — stay honored.
	NoSuppress bool

	report func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// RunOption tweaks how Run configures each Pass.
type RunOption func(*runOptions)

type runOptions struct {
	noSuppress bool
}

// NoSuppress makes every Pass report suppressed findings too — the
// suppression-staleness audit's entry point.
func NoSuppress() RunOption {
	return func(o *runOptions) { o.noSuppress = true }
}

// Run applies, for every loaded package, the analyzers that the select
// function returns for it, and returns all diagnostics sorted by file,
// line, column, then analyzer name — a deterministic order, because lint
// output is itself subject to this repo's byte-identity discipline.
func Run(pkgs []*Package, selectAnalyzers func(*Package) []*Analyzer, opts ...RunOption) ([]Diagnostic, error) {
	var ro runOptions
	for _, opt := range opts {
		opt(&ro)
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range selectAnalyzers(pkg) {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				PkgPath:    pkg.PkgPath,
				TypesInfo:  pkg.Info,
				NoSuppress: ro.noSuppress,
				report:     func(d Diagnostic) { out = append(out, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
