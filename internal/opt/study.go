// Package opt is the budgeted scenario-search layer: it answers "which
// scheduling configuration is best for this workload?" by spending a
// bounded simulation budget over a declarative search space instead of
// enumerating a full grid. A Study names a base spec (internal/spec), a
// set of search axes (categorical policy/workload choices and numeric
// ranges on linear or log scales), an objective drawn from the lab's
// replica aggregates, and a search block (algorithm, budget in cells,
// replications, seed). Like spec.Spec, a Study is serialisable, canonical
// and content-hashed, so the physchedd service can address a finished
// study's report by hash.
//
// Two search drivers run behind one interface: seeded random search and
// successive halving (rungs of increasing replications, survivors chosen
// by a CI-aware comparison so statistically tied candidates are not
// pruned arbitrarily). Every candidate evaluation executes through
// lab.Grid.Execute on the caller's pool with the content-addressed result
// cache, so repeated or resumed studies re-simulate nothing and serial,
// parallel and shared-pool runs produce byte-identical reports.
package opt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"physched/internal/lab"
	"physched/internal/spec"
)

// Version is the current study schema version.
const Version = 1

// maxSpaceSize bounds the enumerated candidate space: the search is
// budgeted, but the space itself must stay enumerable in memory.
const maxSpaceSize = 1 << 16

// Axis is one named dimension of the search space. Exactly one form is
// used per axis: categorical (Values, for the policy/workload/preset
// axes) or numeric (Min/Max/Steps/Scale, for everything else). Numeric
// axes are discretised into Steps points spaced linearly or
// logarithmically, so the space stays enumerable and content-hashable.
type Axis struct {
	// Name selects what the axis binds; see AxisNames.
	Name string `json:"name"`
	// Values are the categorical choices (policy or workload names).
	Values []string `json:"values,omitempty"`
	// Min and Max bound a numeric range, Steps ≥ 2 points over it.
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Steps int     `json:"steps,omitempty"`
	// Scale is "linear" (default) or "log"; log requires Min > 0.
	Scale string `json:"scale,omitempty"`
}

// categorical reports whether the axis enumerates named choices.
func (a Axis) categorical() bool { return len(a.Values) > 0 }

// points returns the numeric axis's discrete values.
func (a Axis) points() []float64 {
	out := make([]float64, a.Steps)
	for i := range out {
		t := float64(i) / float64(a.Steps-1)
		if a.Scale == "log" {
			out[i] = math.Exp(math.Log(a.Min) + t*(math.Log(a.Max)-math.Log(a.Min)))
		} else {
			out[i] = a.Min + t*(a.Max-a.Min)
		}
	}
	// The endpoints are part of the study's meaning; pin them against
	// floating-point drift in the interpolation.
	out[0], out[len(out)-1] = a.Min, a.Max
	return out
}

// size is the number of choices the axis contributes.
func (a Axis) size() int {
	if a.categorical() {
		return len(a.Values)
	}
	return a.Steps
}

// label renders choice i for candidate labels and report entries. Axes
// applied as integers (stripe sizes, node counts, …) label the rounded
// value actually simulated, not the raw interpolation point.
func (a Axis) label(i int) string {
	if a.categorical() {
		return a.Values[i]
	}
	v := a.points()[i]
	if axisDefs[a.Name].integer {
		v = math.Round(v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (a Axis) normalize() Axis {
	if !a.categorical() && a.Scale == "" {
		a.Scale = "linear"
	}
	return a
}

// validate checks one axis in isolation (name known, exactly one form,
// sane range). Candidate-level validity — e.g. a policy that rejects a
// parameter another axis sets — is checked per candidate by Study.space.
func (a Axis) validate() error {
	def, ok := axisDefs[a.Name]
	if !ok {
		return fmt.Errorf("opt: unknown axis %q (known: %v)", a.Name, AxisNames())
	}
	if a.categorical() {
		if !def.categorical {
			return fmt.Errorf("opt: axis %q is numeric, it takes min/max/steps not values", a.Name)
		}
		if a.Min != 0 || a.Max != 0 || a.Steps != 0 || a.Scale != "" {
			return fmt.Errorf("opt: categorical axis %q must not set min/max/steps/scale", a.Name)
		}
		seen := map[string]bool{}
		for _, v := range a.Values {
			if v == "" {
				return fmt.Errorf("opt: axis %q has an empty value", a.Name)
			}
			if seen[v] {
				return fmt.Errorf("opt: axis %q repeats value %q", a.Name, v)
			}
			seen[v] = true
		}
		return nil
	}
	if def.categorical {
		return fmt.Errorf("opt: axis %q is categorical, it takes values not min/max/steps", a.Name)
	}
	if a.Steps < 2 {
		return fmt.Errorf("opt: numeric axis %q needs steps ≥ 2, got %d", a.Name, a.Steps)
	}
	if !(a.Min < a.Max) {
		return fmt.Errorf("opt: numeric axis %q needs min < max, got [%v, %v]", a.Name, a.Min, a.Max)
	}
	switch a.Scale {
	case "", "linear":
	case "log":
		if a.Min <= 0 {
			return fmt.Errorf("opt: log-scale axis %q needs min > 0, got %v", a.Name, a.Min)
		}
	default:
		return fmt.Errorf("opt: axis %q has unknown scale %q (want linear or log)", a.Name, a.Scale)
	}
	return nil
}

// axisDef binds an axis name to the spec field it mutates.
type axisDef struct {
	categorical bool
	// integer marks axes whose points round to whole numbers on
	// application (and in labels).
	integer  bool
	applyCat func(*spec.Spec, string)
	applyNum func(*spec.Spec, float64)
}

var axisDefs = map[string]axisDef{
	"policy":   {categorical: true, applyCat: func(s *spec.Spec, v string) { s.Policy.Name = v }},
	"workload": {categorical: true, applyCat: func(s *spec.Spec, v string) { s.Workload.Name = v }},
	"preset":   {categorical: true, applyCat: func(s *spec.Spec, v string) { s.Params.Preset = v }},

	"load":               {applyNum: func(s *spec.Spec, v float64) { s.Load = v }},
	"delay_hours":        {applyNum: func(s *spec.Spec, v float64) { s.Policy.DelayHours = v }},
	"stripe_events":      {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Policy.StripeEvents = int64(math.Round(v)) }},
	"max_wait_hours":     {applyNum: func(s *spec.Spec, v float64) { s.Policy.MaxWaitHours = v }},
	"nodes":              {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Params.Nodes = int(math.Round(v)) }},
	"cache_gb":           {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Params.CacheGB = int64(math.Round(v)) }},
	"mean_job_events":    {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Params.MeanJobEvents = int64(math.Round(v)) }},
	"dataspace_gb":       {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Params.DataspaceGB = int64(math.Round(v)) }},
	"hot_weight":         {applyNum: func(s *spec.Spec, v float64) { s.Params.HotWeight = v }},
	"swing":              {applyNum: func(s *spec.Spec, v float64) { s.Workload.Swing = v }},
	"peak_jobs_per_hour": {applyNum: func(s *spec.Spec, v float64) { s.Workload.PeakJobsPerHour = v }},
	"mtbf_hours":         {applyNum: func(s *spec.Spec, v float64) { s.Faults.MTBFHours = v }},
	"repair_hours":       {applyNum: func(s *spec.Spec, v float64) { s.Faults.RepairHours = v }},
	"fault_swing":        {applyNum: func(s *spec.Spec, v float64) { s.Faults.DayNightSwing = v }},
	"decommission_prob":  {applyNum: func(s *spec.Spec, v float64) { s.Faults.DecommissionProb = v }},
	"spare_nodes":        {integer: true, applyNum: func(s *spec.Spec, v float64) { s.Faults.SpareNodes = int(math.Round(v)) }},
	"join_hours":         {applyNum: func(s *spec.Spec, v float64) { s.Faults.JoinHours = v }},
}

// AxisNames lists the axis names a study may search over, sorted.
func AxisNames() []string {
	out := make([]string, 0, len(axisDefs))
	for name := range axisDefs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Objective selects the scalar a study optimises, computed from the
// replica aggregate of each candidate (lab.Aggregate over the candidate's
// seeds). Candidates whose every replica overloaded have no objective
// value and rank below all steady candidates.
type Objective struct {
	// Metric is mean_speedup | mean_waiting | p99_waiting | goodput.
	Metric string `json:"metric"`
	// Direction is "max" or "min"; empty defaults per metric (waiting
	// metrics minimise, the rest maximise).
	Direction string `json:"direction,omitempty"`
}

// defaultDirection is the natural optimisation sense of a metric.
func defaultDirection(metric string) string {
	switch metric {
	case "mean_waiting", "p99_waiting":
		return "min"
	default:
		return "max"
	}
}

// Metrics lists the objective metrics a study may optimise.
func Metrics() []string {
	return []string{"goodput", "mean_speedup", "mean_waiting", "p99_waiting"}
}

func (o Objective) normalize() Objective {
	if o.Direction == "" {
		o.Direction = defaultDirection(o.Metric)
	}
	return o
}

func (o Objective) validate() error {
	switch o.Metric {
	case "mean_speedup", "mean_waiting", "p99_waiting", "goodput":
	default:
		return fmt.Errorf("opt: unknown objective metric %q (known: %v)", o.Metric, Metrics())
	}
	switch o.Direction {
	case "", "max", "min":
	default:
		return fmt.Errorf("opt: objective direction %q must be max or min", o.Direction)
	}
	return nil
}

// Eval computes the objective value and its 95% confidence half-width
// from a candidate's replica aggregate. ok is false when no replica ran
// steadily — the candidate then has no value and ranks last.
func (o Objective) Eval(a lab.Aggregate) (value, ci95 float64, ok bool) {
	steady := a.Replicas - a.Overloaded
	if steady <= 0 {
		return 0, 0, false
	}
	switch o.Metric {
	case "mean_speedup":
		return a.SpeedupMean, a.SpeedupCI95, true
	case "mean_waiting":
		return a.WaitingMean, a.WaitingCI95, true
	case "p99_waiting":
		return replicaStat(a, func(r lab.Result) float64 { return r.P99Waiting })
	case "goodput":
		return replicaStat(a, func(r lab.Result) float64 { return r.Goodput })
	}
	return 0, 0, false
}

// replicaStat is the mean ± normal-approximation CI95 of f over the
// steady replicas.
func replicaStat(a lab.Aggregate, f func(lab.Result) float64) (float64, float64, bool) {
	var sum, sumsq float64
	n := 0
	for _, r := range a.Results {
		if r.Overloaded {
			continue
		}
		v := f(r)
		sum += v
		sumsq += v * v
		n++
	}
	if n == 0 {
		return 0, 0, false
	}
	mean := sum / float64(n)
	if n < 2 {
		return mean, 0, true
	}
	variance := (sumsq - sum*sum/float64(n)) / float64(n-1)
	if variance < 0 {
		variance = 0
	}
	return mean, 1.96 * math.Sqrt(variance) / math.Sqrt(float64(n)), true
}

// better reports whether value a improves on value b under the
// objective's direction.
func (o Objective) better(a, b float64) bool {
	if o.Direction == "min" {
		return a < b
	}
	return a > b
}

// Search configures the search driver and its budget.
type Search struct {
	// Algorithm is "random" (default) or "halving".
	Algorithm string `json:"algorithm,omitempty"`
	// BudgetCells bounds the simulation cells the study may charge: one
	// candidate evaluated at r replications costs r cells, and a cell
	// already charged by an earlier rung of the same study is free. Cells
	// served by the result cache still count — the budget bounds what the
	// study *asks for*, so a warm cache cannot change which candidates a
	// study explores (and therefore cannot change its report).
	BudgetCells int `json:"budget_cells"`
	// Replications is the number of replica seeds per candidate — the
	// final-rung count for successive halving. Default 1.
	Replications int `json:"replications,omitempty"`
	// Eta is the halving factor (survivor fraction 1/eta per rung);
	// default 3. Only the halving algorithm takes it.
	Eta int `json:"eta,omitempty"`
	// Seed drives candidate sampling. Simulation seeds derive from the
	// base spec's seed, never from this one.
	Seed int64 `json:"seed,omitempty"`
	// TopK bounds the report's leaderboard; default 10.
	TopK int `json:"top_k,omitempty"`
}

func (s Search) normalize() Search {
	if s.Algorithm == "" {
		s.Algorithm = "random"
	}
	if s.Replications == 0 {
		s.Replications = 1
	}
	if s.Algorithm == "halving" && s.Eta == 0 {
		s.Eta = 3
	}
	if s.TopK == 0 {
		s.TopK = 10
	}
	return s
}

func (s Search) validate() error {
	switch s.Algorithm {
	case "", "random", "halving":
	default:
		return fmt.Errorf("opt: unknown search algorithm %q (want random or halving)", s.Algorithm)
	}
	if s.BudgetCells <= 0 {
		return fmt.Errorf("opt: budget_cells must be positive, got %d", s.BudgetCells)
	}
	if s.Replications < 0 {
		return fmt.Errorf("opt: replications must be non-negative, got %d", s.Replications)
	}
	reps := s.Replications
	if reps == 0 {
		reps = 1
	}
	if s.BudgetCells < reps {
		return fmt.Errorf("opt: budget_cells %d cannot cover one candidate at %d replications", s.BudgetCells, reps)
	}
	if s.Algorithm != "halving" && s.Eta != 0 {
		return fmt.Errorf("opt: search algorithm %q does not take eta", s.Algorithm)
	}
	if s.Eta < 0 || s.Eta == 1 {
		return fmt.Errorf("opt: eta must be ≥ 2, got %d", s.Eta)
	}
	if s.TopK < 0 {
		return fmt.Errorf("opt: top_k must be non-negative, got %d", s.TopK)
	}
	return nil
}

// Study is one declarative, budgeted scenario search: the unit of
// canonicalisation and hashing, and the body of POST /v1/studies.
type Study struct {
	// SchemaVersion is the study schema version; zero means current.
	SchemaVersion int `json:"version,omitempty"`
	// Base is the spec every candidate starts from; axes overwrite the
	// fields they bind. Base.Load may be zero when a "load" axis binds it.
	Base spec.Spec `json:"base"`
	// Axes span the search space (cross product of their choices).
	Axes []Axis `json:"axes"`

	Objective Objective `json:"objective"`
	Search    Search    `json:"search"`
}

// Parse reads one JSON study, rejecting unknown fields so typos in study
// files fail loudly.
func Parse(r io.Reader) (Study, error) {
	var st Study
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return Study{}, fmt.Errorf("opt: %w", err)
	}
	return st, nil
}

// validateShallow checks everything but the candidate space: schema
// version, axes, objective and search block.
func (st Study) validateShallow() error {
	if st.SchemaVersion != 0 && st.SchemaVersion != Version {
		return fmt.Errorf("opt: unsupported study schema version %d (this build supports %d)", st.SchemaVersion, Version)
	}
	if len(st.Axes) == 0 {
		return fmt.Errorf("opt: study needs at least one axis")
	}
	seen := map[string]bool{}
	size := 1
	for _, a := range st.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("opt: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		size *= a.size()
		if size > maxSpaceSize {
			return fmt.Errorf("opt: search space exceeds %d candidates", maxSpaceSize)
		}
	}
	if err := st.Objective.validate(); err != nil {
		return err
	}
	return st.Search.validate()
}

// Validate reports the first problem that would prevent the study from
// running: an unsupported schema version, an invalid axis, objective or
// search block, a duplicate axis name, an oversized space, or a space
// with no valid candidate.
func (st Study) Validate() error {
	if err := st.validateShallow(); err != nil {
		return err
	}
	_, err := st.space()
	return err
}

// Prepared is a validated, normalised study with its content hash and
// enumerated candidate space. Parse → Prepare → Run does the space
// enumeration (which spec-validates and hashes every cross-product
// point) exactly once, where chaining Validate/Hash/Run would each
// repeat it; cmd/physchedd prepares while planning a request and runs
// the same preparation later.
type Prepared struct {
	// Study is the normalised study.
	Study Study
	// Hash is the study's content address (identical to Study.Hash()).
	Hash string

	sp *space
}

// Prepare validates, normalises, hashes and enumerates the study in one
// pass.
func (st Study) Prepare() (*Prepared, error) {
	if err := st.validateShallow(); err != nil {
		return nil, err
	}
	norm := st.normalize()
	sp, err := norm.space()
	if err != nil {
		return nil, err
	}
	c, err := json.Marshal(norm)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(c)
	return &Prepared{Study: norm, Hash: hex.EncodeToString(sum[:]), sp: sp}, nil
}

// normalize fills the defaults that have named spellings, so equivalent
// studies share one canonical encoding and therefore one hash.
func (st Study) normalize() Study {
	if st.SchemaVersion == 0 {
		st.SchemaVersion = Version
	}
	st.Base = st.Base.Normalize()
	if len(st.Axes) > 0 {
		axes := make([]Axis, len(st.Axes))
		for i, a := range st.Axes {
			axes[i] = a.normalize()
		}
		st.Axes = axes
	}
	st.Objective = st.Objective.normalize()
	st.Search = st.Search.normalize()
	return st
}

// Canonical returns the study's canonical encoding: compact JSON of the
// normalised, validated study with the schema's fixed field order.
// Encoding, decoding and re-encoding a canonical form is byte-identical.
func (st Study) Canonical() ([]byte, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(st.normalize())
}

// Hash is the hex SHA-256 of the canonical encoding — the study's content
// address and its physchedd report handle. The search block is part of
// the hash: the same space explored by a different algorithm, budget or
// sampling seed is a different study.
func (st Study) Hash() (string, error) {
	c, err := st.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}
