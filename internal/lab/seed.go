package lab

// Seed discipline: every run in a grid or replication set derives its seed
// deterministically from a base seed and its coordinates, never from
// execution order or a global counter. Runs are therefore reproducible in
// isolation and statistically independent of each other.

// splitmix64 is the finaliser of the SplitMix64 generator — a cheap,
// well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed mixes a base seed with grid coordinates (variant index, load
// index, replica index, …) into a new seed. Nearby bases and coordinates
// yield statistically unrelated seeds.
func DeriveSeed(base int64, coords ...int64) int64 {
	x := splitmix64(uint64(base))
	for _, c := range coords {
		x = splitmix64(x ^ splitmix64(uint64(c)))
	}
	return int64(x)
}

// Seeds returns n replication seeds derived from base — the seed axis for
// Grid.Seeds and Replicate.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = DeriveSeed(base, int64(i))
	}
	return out
}
