package analysis

import (
	"go/ast"

	"physched/internal/analysis/driver"
)

// WallTime forbids reading or waiting on the wall clock in deterministic
// packages: simulation logic runs on sim time exclusively, and a stray
// time.Now in a policy or the event loop produces results that differ by
// host load — exactly the class of bug the golden byte-identity files
// catch a PR too late. Service-layer packages are not registered for this
// analyzer (the allowlist lives in rules.go); cmd/physchedd and
// internal/obs *are* registered, with the single deliberate wiring site —
// obs.SystemClock, the obs.Clock every service component (logger
// timestamps, request latency, job ages, pool-hook nanos) is injected
// with — carrying the repo's one //physched:walltime suppression, so
// every new real-clock call site needs a stated reason.
var WallTime = &driver.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads and sleeps in deterministic packages (sim time only)",
	Run:  runWallTime,
}

// wallClockFuncs are the package time functions that observe or wait on
// real time. Constructors of plain durations (time.Duration arithmetic,
// time.Unix, time.Date) stay legal: they are pure values.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallTime(pass *driver.Pass) error {
	supp := newSuppressions(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := selectorPackage(pass, sel)
			if !ok || pkgPath != "time" {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			if supp.allows(sel.Pos(), "walltime") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s: this package runs on sim time or an injected clock; inject a clock at the boundary or annotate the wiring site //physched:walltime <reason>",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
