package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"physched/internal/lab"
	"physched/internal/resultcache"
)

// metricValue extracts one sample value from a Prometheus text body.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric sample %q not found in:\n%s", sample, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q value %q: %v", sample, m[1], err)
	}
	return v
}

// TestMetricsEndpoint scrapes /metrics after one grid run and checks the
// counter families reflect the work: pool tasks completed, cache misses
// then hits, job states, and the text exposition content type.
func TestMetricsEndpoint(t *testing.T) {
	epoch := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := epoch
	pool := lab.NewPool(2)
	t.Cleanup(pool.Close)
	s := mustServer(t, serverConfig{
		Cache:    resultcache.NewMemory(),
		Pool:     pool,
		MaxCells: 100,
		Clock:    func() time.Time { return now },
	})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type %q, want text/plain", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Before any work: zero-filled families are all present.
	body := scrape()
	for _, family := range []string{
		"physchedd_pool_workers", "physchedd_pool_busy", "physchedd_pool_utilization",
		"physchedd_pool_tasks_total", "physchedd_cells_per_second", "physchedd_inflight",
		"physchedd_cache_gets_total", "physchedd_cache_puts_total",
		"physchedd_jobs", "physchedd_jobs_evicted_total",
		"physchedd_study_reports", "physchedd_study_reports_evicted_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %q missing from first scrape", family)
		}
	}
	if got := metricValue(t, body, "physchedd_pool_workers"); got != 2 {
		t.Errorf("pool workers %v, want 2", got)
	}
	if got := metricValue(t, body, "physchedd_pool_tasks_total"); got != 0 {
		t.Errorf("tasks before any run: %v", got)
	}

	// One 8-cell grid: 8 pool tasks, 8 result-cache misses then puts.
	_, result := postGrid(t, ts, gridBody)
	total := float64(len(result.Cells))
	now = epoch.Add(4 * time.Second)
	body = scrape()
	if got := metricValue(t, body, "physchedd_pool_tasks_total"); got != total {
		t.Errorf("pool tasks %v, want %v", got, total)
	}
	if got := metricValue(t, body, `physchedd_cache_gets_total{kind="result",outcome="miss"}`); got != total {
		t.Errorf("cache misses %v, want %v", got, total)
	}
	if got := metricValue(t, body, `physchedd_cache_puts_total{kind="result"}`); got != total {
		t.Errorf("cache puts %v, want %v", got, total)
	}
	// Lifetime rate on the fake clock: 8 cells / 4 seconds.
	if got := metricValue(t, body, "physchedd_cells_per_second"); got != total/4 {
		t.Errorf("cells per second %v, want %v", got, total/4)
	}

	// Re-POST: every cell hits the cache (cache lookups happen inside the
	// pool task, so the task counter grows; the put counter does not).
	postGrid(t, ts, gridBody)
	body = scrape()
	if got := metricValue(t, body, `physchedd_cache_gets_total{kind="result",outcome="hit"}`); got != total {
		t.Errorf("cache hits %v, want %v", got, total)
	}
	if got := metricValue(t, body, `physchedd_cache_puts_total{kind="result"}`); got != total {
		t.Errorf("cached re-run wrote the cache: puts %v, want %v", got, total)
	}

	// Async job lifecycle shows up in the jobs gauge.
	sub := postAsync(t, ts, smallGridBody(950))
	waitDone(t, ts, sub.JobID)
	body = scrape()
	if got := metricValue(t, body, `physchedd_jobs{state="done"}`); got != 1 {
		t.Errorf("done jobs %v, want 1", got)
	}
	if got := metricValue(t, body, `physchedd_jobs{state="running"}`); got != 0 {
		t.Errorf("running jobs %v, want 0", got)
	}
}
