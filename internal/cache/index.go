package cache

import "physched/internal/dataspace"

// Index is the master node's view of all node disk caches. The paper's
// scheduler "maintains the job and subjob queues as well as the state of
// all disk caches in the cluster"; Index is that state.
type Index struct {
	caches []*LRU
}

// NewIndex builds an index over n node caches, each with the given
// capacity in events and eviction policy.
func NewIndex(n int, capacityEvents int64, policy EvictPolicy) *Index {
	ix := &Index{caches: make([]*LRU, n)}
	for i := range ix.caches {
		ix.caches[i] = NewLRU(capacityEvents, policy)
	}
	return ix
}

// Nodes returns the number of node caches.
func (ix *Index) Nodes() int { return len(ix.caches) }

// Add appends one more node cache — a node joining the cluster late —
// and returns it.
func (ix *Index) Add(capacityEvents int64, policy EvictPolicy) *LRU {
	c := NewLRU(capacityEvents, policy)
	ix.caches = append(ix.caches, c)
	return c
}

// Node returns the cache of node i.
func (ix *Index) Node(i int) *LRU { return ix.caches[i] }

// CachedAnywhere returns the parts of iv cached on at least one node.
func (ix *Index) CachedAnywhere(iv dataspace.Interval) dataspace.Set {
	var s dataspace.Set
	for _, c := range ix.caches {
		s = s.Union(c.CachedPart(iv))
	}
	return s
}

// NodePiece is a maximal run of an interval attributed to a single node's
// cache, or to no cache (Node == -1).
type NodePiece struct {
	Interval dataspace.Interval
	Node     int // -1 when the piece is cached nowhere
}

// PartitionByNode splits iv into contiguous pieces such that each piece is
// either fully cached on the designated node or cached nowhere. When
// several nodes cache the same events, the piece goes to the node caching
// the longest run starting at the piece's first event, which keeps the
// attribution deterministic and favours large fully-cached subjobs (the
// paper's splitting rule: "data processed by a given subjob should always
// either be fully cached on a node or not cached at all").
func (ix *Index) PartitionByNode(iv dataspace.Interval) []NodePiece {
	var out []NodePiece
	pos := iv.Start
	for pos < iv.End {
		rest := dataspace.Iv(pos, iv.End)
		bestNode, bestEnd := -1, pos
		var nearestStart int64 = iv.End
		for n, c := range ix.caches {
			part := c.CachedPart(rest)
			ivs := part.Intervals()
			if len(ivs) == 0 {
				continue
			}
			first := ivs[0]
			if first.Start == pos {
				if first.End > bestEnd {
					bestNode, bestEnd = n, first.End
				}
			} else if first.Start < nearestStart {
				nearestStart = first.Start
			}
		}
		if bestNode >= 0 {
			out = append(out, NodePiece{dataspace.Iv(pos, bestEnd), bestNode})
			pos = bestEnd
			continue
		}
		out = append(out, NodePiece{dataspace.Iv(pos, nearestStart), -1})
		pos = nearestStart
	}
	return out
}

// CachedOn returns how many events of iv are cached on node n.
func (ix *Index) CachedOn(n int, iv dataspace.Interval) int64 {
	return ix.caches[n].CachedPart(iv).Len()
}

// BestNodeFor returns the node caching the largest part of iv and that
// amount; (-1, 0) when no node caches any of it.
func (ix *Index) BestNodeFor(iv dataspace.Interval) (int, int64) {
	best, bestAmt := -1, int64(0)
	for n, c := range ix.caches {
		if amt := c.CachedPart(iv).Len(); amt > bestAmt {
			best, bestAmt = n, amt
		}
	}
	return best, bestAmt
}
