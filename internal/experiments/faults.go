package experiments

import (
	"fmt"
	"strings"

	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/sched"
	"physched/internal/stats"
)

// FaultStudy sweeps node churn against load for the out-of-order policy:
// an MTBF axis from the never-failing paper cluster down to a node
// failing every two days, with disk-losing failures and four-hour
// repairs. The study quantifies what the paper's fault-free evaluation
// hides — how much sustainable load, speedup and goodput a real PC farm
// gives up to churn, with cache rebuilds (every failure cold-starts the
// node's disk) compounding the direct loss of re-executed work.
func FaultStudy(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.6, 1.6)
	var variants []lab.Variant
	for _, mtbf := range []float64{0, 500, 150, 48} {
		mtbf := mtbf
		label := "no failures"
		if mtbf > 0 {
			label = fmt.Sprintf("MTBF %.0f h", mtbf)
		}
		variants = append(variants, lab.Variant{
			Label:     label,
			NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
			Mutate: func(s *lab.Scenario) {
				if mtbf == 0 {
					return
				}
				s.Faults = cluster.FaultModel{MTBFHours: mtbf, RepairHours: 4, CacheLoss: true}
			},
		})
	}
	return ablate(baseScenario(q, seed), loads, variants)
}

// RenderFaults renders a fault study with its churn columns: goodput,
// wasted events and re-executions alongside the headline metrics.
func RenderFaults(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Extension: node churn (stochastic failures, exponential repairs, disk loss)\n\n")
	var lastVariant string
	for _, r := range rows {
		if r.Variant != lastVariant {
			fmt.Fprintf(&b, "  %s\n", r.Variant)
			fmt.Fprintf(&b, "    %-10s %-10s %-14s %-9s %-12s %-8s %s\n",
				"load", "speedup", "avg waiting", "goodput", "wasted ev", "re-exec", "state")
			lastVariant = r.Variant
		}
		if r.Result.Overloaded {
			fmt.Fprintf(&b, "    %-10.2f %-10s %-14s %-9s %-12s %-8s overloaded\n",
				r.Load, "-", "-", "-", "-", "-")
			continue
		}
		goodput := "-"
		if r.Result.Goodput > 0 {
			goodput = fmt.Sprintf("%.3f", r.Result.Goodput)
		}
		fmt.Fprintf(&b, "    %-10.2f %-10.2f %-14s %-9s %-12d %-8d steady\n",
			r.Load, r.Result.AvgSpeedup, stats.FormatDuration(r.Result.AvgWaiting),
			goodput, r.Result.Cluster.EventsLost, r.Result.Cluster.Reexecutions)
	}
	return b.String()
}
