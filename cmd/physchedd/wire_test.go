package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden wire-format files")

// TestJobWireFormatGolden pins the job wire format byte-for-byte —
// including the honest "hash" field and its deprecated "grid_hash"
// alias, which must both stay on the wire until the alias is retired.
// Regenerate deliberately with -update when the format changes on
// purpose.
func TestJobWireFormatGolden(t *testing.T) {
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	finished := created.Add(90 * time.Second)

	status := jobStatus{
		ID: "cafebabe12345678", Kind: "grid",
		Hash: "a1b2", GridHash: "a1b2",
		State: "done", Done: 8, Total: 8, CacheHits: 3,
		Created: created, AgeSec: 120, Finished: &finished,
	}
	submitted := jobSubmitted{
		JobID: "cafebabe12345678", Hash: "a1b2", GridHash: "a1b2",
		StatusURL: "/v1/jobs/cafebabe12345678",
		StreamURL: "/v1/jobs/cafebabe12345678/stream",
	}

	for _, tc := range []struct {
		golden string
		v      any
	}{
		{"job_status.golden.json", status},
		{"job_submitted.golden.json", submitted},
	} {
		got, err := json.MarshalIndent(tc.v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		path := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to regenerate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from the pinned wire format:\ngot:\n%s\nwant:\n%s", tc.golden, got, want)
		}
	}
}
