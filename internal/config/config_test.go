package config

import (
	"strings"
	"testing"

	"physched/internal/model"
	"physched/internal/runner"
)

func TestParseAndBuild(t *testing.T) {
	in := `{
		"preset": "calibrated",
		"nodes": 4,
		"cache_gb": 50,
		"mean_job_events": 5000,
		"dataspace_gb": 400,
		"policy": {"name": "outoforder", "max_wait_hours": 24},
		"load_jobs_per_hour": 1.2,
		"seed": 9,
		"warmup_jobs": 30,
		"measure_jobs": 150
	}`
	cfg, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Params.Nodes != 4 || s.Params.CacheBytes != 50*model.GB {
		t.Errorf("params not applied: %+v", s.Params)
	}
	if s.Load != 1.2 || s.Seed != 9 || s.WarmupJobs != 30 {
		t.Errorf("scenario fields wrong: %+v", s)
	}
	// The built scenario must actually run.
	res := runner.Run(s)
	if res.PolicyName != "outoforder" {
		t.Errorf("policy = %q", res.PolicyName)
	}
	if res.MeasuredJobs == 0 && !res.Overloaded {
		t.Error("run produced nothing")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestBuildValidations(t *testing.T) {
	cases := []Scenario{
		{Policy: PolicySpec{Name: "outoforder"}},                                // no load
		{Policy: PolicySpec{Name: "nope"}, LoadJobsPerHour: 1},                  // bad policy
		{Preset: "bogus", Policy: PolicySpec{Name: "farm"}, LoadJobsPerHour: 1}, // bad preset
		{Policy: PolicySpec{}, LoadJobsPerHour: 1},                              // missing policy
	}
	for i, c := range cases {
		if _, err := c.Build(); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestAllPolicySpecs(t *testing.T) {
	specs := []PolicySpec{
		{Name: "farm"},
		{Name: "splitting"},
		{Name: "cacheoriented"},
		{Name: "outoforder"},
		{Name: "replication"},
		{Name: "delayed", DelayHours: 11, StripeEvents: 200},
		{Name: "delayed"}, // defaults
		{Name: "adaptive", StripeEvents: 200},
		{Name: "adaptive"},
	}
	for _, spec := range specs {
		p, err := spec.New()
		if err != nil {
			t.Errorf("%q: %v", spec.Name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%q: empty policy name", spec.Name)
		}
	}
}

func TestHotWeightOverride(t *testing.T) {
	s := Scenario{Policy: PolicySpec{Name: "farm"}, LoadJobsPerHour: 1, HotWeight: -1}
	built, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Params.HotWeight != 0 {
		t.Errorf("HotWeight = %v, want 0 (disabled)", built.Params.HotWeight)
	}
	s.HotWeight = 0.8
	built, err = s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Params.HotWeight != 0.8 {
		t.Errorf("HotWeight = %v, want 0.8", built.Params.HotWeight)
	}
}
