package experiments

import (
	"strings"
	"testing"

	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/sched"
)

func TestWithConfigOverrides(t *testing.T) {
	p := sched.NewOutOfOrder()
	cfg := p.ClusterConfig()
	cfg.RemoteReads = false
	w := withConfig{Policy: p, cfg: cfg}
	if w.ClusterConfig().RemoteReads {
		t.Error("override not applied")
	}
	if w.Name() != "outoforder" {
		t.Error("wrapper must not change the policy name")
	}
	if !w.ClusterConfig().Caching {
		t.Error("wrapper lost unrelated config")
	}
}

func TestAblateFlattensCurves(t *testing.T) {
	s := tiny(baseScenario(Quick, 1))
	loads := []float64{0.3 * s.Params.FarmMaxLoad(), 0.5 * s.Params.FarmMaxLoad()}
	rows := ablate(s, loads, []lab.Variant{
		{Label: "a", NewPolicy: func() sched.Policy { return sched.NewFarm() }},
		{Label: "b", NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() }},
	})
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Variant != "a" || rows[2].Variant != "b" {
		t.Errorf("rows not grouped by variant: %+v", rows)
	}
	out := RenderAblation("test", rows)
	if !strings.Contains(out, "test") || !strings.Contains(out, "a") {
		t.Error("render incomplete")
	}
}

// TestEvictionAblationDirection runs a miniature LRU-vs-FIFO comparison:
// with a hot-skewed workload LRU must not lose to FIFO.
func TestEvictionAblationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	s := tiny(baseScenario(Quick, 3))
	s.MeasureJobs = 250
	load := 1.3 * s.Params.FarmMaxLoad()
	lru := s
	lru.NewPolicy = func() sched.Policy { return sched.NewOutOfOrder() }
	lru.Load = load
	fifo := s
	fifo.NewPolicy = func() sched.Policy {
		p := sched.NewOutOfOrder()
		cfg := p.ClusterConfig()
		cfg.Eviction = 1 // cache.EvictFIFO
		return withConfig{Policy: p, cfg: cfg}
	}
	fifo.Load = load
	rl, rf := lab.Run(lru), lab.Run(fifo)
	if rl.Overloaded || rf.Overloaded {
		t.Skip("both overloaded at this scale; direction test not applicable")
	}
	if rl.AvgSpeedup < 0.9*rf.AvgSpeedup {
		t.Errorf("LRU (%.2f) clearly lost to FIFO (%.2f)", rl.AvgSpeedup, rf.AvgSpeedup)
	}
}

func TestRenderNodeCountEmpty(t *testing.T) {
	if out := RenderNodeCount(nil); !strings.Contains(out, "scaling") {
		t.Error("empty node-count render broken")
	}
}

func TestClusterConfigZeroValueIsLRU(t *testing.T) {
	// The zero value of cluster.Config must select LRU eviction, since all
	// paper policies rely on it implicitly.
	var cfg cluster.Config
	if cfg.Eviction != 0 {
		t.Error("zero Config should mean LRU eviction")
	}
}
