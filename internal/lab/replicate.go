package lab

import (
	"math"

	"physched/internal/stats"
)

// Aggregate summarises replicated runs of one scenario across seeds: the
// mean, standard deviation and 95% confidence half-width of each headline
// metric over the non-overloaded replicas, plus how many replicas
// overloaded. Figures in the paper are single curves; Aggregate quantifies
// how much a point moves run to run.
// The JSON field names are the wire format served by cmd/physchedd and
// stored by internal/resultcache; they are pinned by golden-file tests.
type Aggregate struct {
	Replicas   int `json:"replicas"`
	Overloaded int `json:"overloaded"`

	SpeedupMean float64 `json:"speedup_mean"`
	SpeedupStd  float64 `json:"speedup_std"`
	SpeedupCI95 float64 `json:"speedup_ci95"`
	WaitingMean float64 `json:"waiting_mean_sec"`
	WaitingStd  float64 `json:"waiting_std_sec"`
	WaitingCI95 float64 `json:"waiting_ci95_sec"`

	// Node-dynamics means over the steady replicas. Zero — and omitted
	// from the wire format — for fault-free scenarios, keeping their
	// encodings byte-identical to earlier builds.
	GoodputMean      float64 `json:"goodput_mean,omitempty"`
	WastedEventsMean float64 `json:"wasted_events_mean,omitempty"`
	ReexecutionsMean float64 `json:"reexecutions_mean,omitempty"`

	Results []Result `json:"results"`
}

// NewAggregate summarises a set of replica results.
func NewAggregate(results []Result) Aggregate {
	agg := Aggregate{Replicas: len(results), Results: results}
	var sp, wt, gp, wasted, reexec stats.Summary
	for _, r := range results {
		if r.Overloaded {
			agg.Overloaded++
			continue
		}
		sp.Add(r.AvgSpeedup)
		wt.Add(r.AvgWaiting)
		gp.Add(r.Goodput)
		wasted.Add(float64(r.Cluster.EventsLost))
		reexec.Add(float64(r.Cluster.Reexecutions))
	}
	agg.SpeedupMean, agg.SpeedupStd = sp.Mean(), sp.Std()
	agg.WaitingMean, agg.WaitingStd = wt.Mean(), wt.Std()
	agg.SpeedupCI95 = ci95(sp)
	agg.WaitingCI95 = ci95(wt)
	agg.GoodputMean = gp.Mean()
	agg.WastedEventsMean = wasted.Mean()
	agg.ReexecutionsMean = reexec.Mean()
	return agg
}

// ci95 is the normal-approximation 95% confidence half-width of the mean.
func ci95(s stats.Summary) float64 {
	n := s.N()
	if n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(n))
}

// MeanResult collapses the replicas into a single curve point: headline
// metrics averaged over steady replicas, Overloaded when at least half the
// replicas overloaded. With one replica this is that replica's result.
func (a Aggregate) MeanResult() Result {
	if a.Replicas == 1 {
		return a.Results[0]
	}
	var out Result
	if len(a.Results) > 0 {
		out.PolicyName = a.Results[0].PolicyName
		out.Load = a.Results[0].Load
	}
	if 2*a.Overloaded >= a.Replicas {
		out.Overloaded = true
		return out
	}
	var speed, wait, maxw, p99, proc, simt, good stats.Summary
	jobs := 0
	for _, r := range a.Results {
		if r.Overloaded {
			continue
		}
		speed.Add(r.AvgSpeedup)
		wait.Add(r.AvgWaiting)
		maxw.Add(r.MaxWaiting)
		p99.Add(r.P99Waiting)
		proc.Add(r.AvgProc)
		simt.Add(r.SimTime)
		good.Add(r.Goodput)
		jobs += r.MeasuredJobs
	}
	out.Goodput = good.Mean()
	out.AvgSpeedup = speed.Mean()
	out.AvgWaiting = wait.Mean()
	out.MaxWaiting = maxw.Max()
	out.P99Waiting = p99.Mean()
	out.AvgProc = proc.Mean()
	out.SimTime = simt.Mean()
	out.MeasuredJobs = jobs
	return out
}

// Replicate runs the scenario once per seed on the worker pool and
// aggregates. Use Seeds to derive a disciplined seed set from one base.
// On cancellation the aggregate covers only the replicas that actually
// ran — never-run cells are excluded rather than counted as zero-valued
// steady runs — and the context error is returned alongside it.
func Replicate(s Scenario, seeds []int64, opts Options) (Aggregate, error) {
	rs, err := Grid{Base: s, Seeds: seeds}.Execute(opts)
	results := rs.Results
	if err != nil {
		completed := results[:0:0]
		for _, r := range results {
			if r.PolicyName != "" {
				completed = append(completed, r)
			}
		}
		results = completed
	}
	return NewAggregate(results), err
}
