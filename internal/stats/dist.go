// Package stats provides the random variates, summary statistics and
// histogram machinery used by the workload generator and the metrics
// collector: exponential and Erlang distributions (job inter-arrival times
// and event counts in the paper), streaming summaries, log-scale waiting
// time histograms, EWMA load estimation and linear trend detection for
// overload analysis.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential draws an exponential variate with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Erlang draws an Erlang(shape, mean) variate: the sum of shape independent
// exponentials whose total mean is mean. The paper draws job event counts
// from Erlang with shape 4 and mean 30 000.
func Erlang(rng *rand.Rand, shape int, mean float64) float64 {
	if shape <= 0 {
		panic("stats: Erlang shape must be positive")
	}
	// Product of uniforms avoids shape calls to ExpFloat64.
	prod := 1.0
	for i := 0; i < shape; i++ {
		prod *= 1 - rng.Float64() // in (0,1]
	}
	return -math.Log(prod) * mean / float64(shape)
}

// ErlangCV2 returns the squared coefficient of variation of an Erlang
// distribution with the given shape (1/shape). It parameterises the
// queueing approximations in internal/queueing.
func ErlangCV2(shape int) float64 { return 1 / float64(shape) }

// PoissonProcess yields successive arrival times of a Poisson process with
// the given rate (events per unit time), starting after start.
type PoissonProcess struct {
	rng  *rand.Rand
	rate float64
	now  float64
}

// NewPoissonProcess returns a Poisson arrival process with the given rate,
// beginning at time start.
func NewPoissonProcess(rng *rand.Rand, rate, start float64) *PoissonProcess {
	if rate <= 0 {
		panic("stats: Poisson rate must be positive")
	}
	return &PoissonProcess{rng: rng, rate: rate, now: start}
}

// Next returns the next arrival time.
func (p *PoissonProcess) Next() float64 {
	p.now += Exponential(p.rng, 1/p.rate)
	return p.now
}

// ThinnedPoisson yields successive arrival times of an inhomogeneous
// Poisson process with time-varying rate r(t), using Lewis–Shedler
// thinning: candidate arrivals are drawn from a homogeneous process at the
// peak rate and accepted with probability r(t)/peak. The rate function
// must satisfy 0 ≤ r(t) ≤ peak; larger values are clamped, which distorts
// the process rather than failing.
type ThinnedPoisson struct {
	rng  *rand.Rand
	rate func(float64) float64
	peak float64
	now  float64
}

// NewThinnedPoisson returns an inhomogeneous Poisson arrival process with
// instantaneous rate rate(t) bounded by peak (events per unit time),
// beginning at time start.
func NewThinnedPoisson(rng *rand.Rand, rate func(float64) float64, peak, start float64) *ThinnedPoisson {
	if peak <= 0 {
		panic("stats: thinned Poisson peak rate must be positive")
	}
	if rate == nil {
		panic("stats: thinned Poisson needs a rate function")
	}
	return &ThinnedPoisson{rng: rng, rate: rate, peak: peak, now: start}
}

// Next returns the next accepted arrival time. A rate function that stays
// at zero would make thinning reject forever; after a large bounded number
// of consecutive rejections Next panics instead of hanging — a stream
// that genuinely ends should be modelled as a finite workload source, not
// as a rate that drops to zero.
func (p *ThinnedPoisson) Next() float64 {
	const maxRejections = 1 << 22
	for i := 0; i < maxRejections; i++ {
		p.now += Exponential(p.rng, 1/p.peak)
		if p.rng.Float64()*p.peak <= p.rate(p.now) {
			return p.now
		}
	}
	panic(fmt.Sprintf("stats: thinned Poisson rejected %d consecutive candidates (rate stuck near zero around t=%g)", maxRejections, p.now))
}
