// Package sim is a minimal deterministic discrete-event simulation engine:
// a clock, a time-ordered event queue with stable FIFO ordering among
// simultaneous events, and cancellable timers. It is single-goroutine by
// design — the paper's simulator models days to weeks of cluster operation,
// which only stays fast if the hot loop is allocation-light and lock-free.
//
// The engine recycles Event objects through a free list, so steady-state
// stepping performs no allocations. The price is a narrow handle contract:
// an *Event returned by At or After is valid until its callback has run
// (or until the engine drops it after a cancellation); using a handle past
// that point observes an unrelated, recycled event. All in-tree callers
// clear their handles when the callback fires.
package sim

import (
	"fmt"
	"math/rand"
)

// Engine drives a simulation. Create one with New, schedule callbacks with
// At or After, and call Run or RunUntil.
type Engine struct {
	now   float64
	queue []*Event // binary heap ordered by (time, seq)
	seq   uint64
	rng   *rand.Rand
	steps uint64
	live  int    // scheduled, non-cancelled events (O(1) Pending)
	free  *Event // free list of recycled events
}

// Event is a handle to a scheduled callback; it can be cancelled any time
// before its callback runs.
type Event struct {
	time      float64
	seq       uint64
	fn        func()
	eng       *Engine
	next      *Event // free-list link
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event's callback from running. Cancelling an already
// cancelled event is a no-op. Cancelling after the callback has run is
// outside the handle contract (see the package comment).
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		e.eng.live--
	}
}

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Time returns the simulated time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// New returns an engine whose clock starts at zero, with a deterministic
// random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it always indicates a logic error in a policy.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.cancelled = false
	} else {
		ev = &Event{eng: e}
	}
	ev.time = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	e.push(ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event { return e.At(e.now+d, fn) }

// release returns a popped event to the free list. The callback reference
// is dropped immediately so closures are not retained; the cancelled flag
// is left untouched until reuse, keeping Cancelled() meaningful on handles
// that were cancelled and later collected by the engine.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.next = e.free
	e.free = ev
}

// Pending returns the number of scheduled (non-cancelled) events, in O(1).
func (e *Engine) Pending() int { return e.live }

// Step executes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.time
		e.steps++
		e.live--
		fn := ev.fn
		e.release(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			e.release(e.pop())
			continue
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// The heap is hand-inlined: going through container/heap costs an
// interface indirection per operation on the hottest path of the whole
// simulator. Events are ordered by time, breaking ties by scheduling order
// so simultaneous events run FIFO — required for reproducible simulations.

func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *Event {
	q := e.queue
	n := len(q) - 1
	e.swap(0, n)
	ev := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.queue)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		child := l
		if r := l + 1; r < n && e.less(r, l) {
			child = r
		}
		if !e.less(child, i) {
			return
		}
		e.swap(i, child)
		i = child
	}
}
