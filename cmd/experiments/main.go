// Command experiments regenerates every table and figure of the paper's
// evaluation section, printing text tables and ASCII plots and optionally
// writing CSV files.
//
// Usage:
//
//	experiments [-fig all|fig2|fig3|fig4|fig5|fig6|fig7|rep|max|farm]
//	            [-quality quick|full] [-seed N] [-csv DIR] [-plots]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"physched/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		figFlag = flag.String("fig", "all", "experiment to run: all, fig2..fig7, rep, max, farm")
		quality = flag.String("quality", "quick", "quick (benchmark scale) or full (report scale)")
		seed    = flag.Int64("seed", 1, "random seed")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		plots   = flag.Bool("plots", true, "render ASCII plots for figure experiments")
	)
	flag.Parse()

	var q experiments.Quality
	switch *quality {
	case "quick":
		q = experiments.Quick
	case "full":
		q = experiments.Full
	default:
		log.Fatalf("unknown -quality %q (want quick or full)", *quality)
	}

	ids := []string{*figFlag}
	if *figFlag == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		if err := run(id, q, *seed, *csvDir, *plots); err != nil {
			log.Fatal(err)
		}
		fmt.Println(strings.Repeat("=", 78))
	}
}

func run(id string, q experiments.Quality, seed int64, csvDir string, plots bool) error {
	switch id {
	case "fig2", "fig3", "fig5", "fig6", "fig7":
		var f experiments.Figure
		switch id {
		case "fig2":
			f = experiments.Fig2(q, seed)
		case "fig3":
			f = experiments.Fig3(q, seed)
		case "fig5":
			f = experiments.Fig5(q, seed)
		case "fig6":
			f = experiments.Fig6(q, seed)
		case "fig7":
			f = experiments.Fig7(q, seed)
		}
		fmt.Println(f.Table())
		if plots {
			fmt.Println(f.Plots())
		}
		if csvDir != "" {
			path := filepath.Join(csvDir, f.ID+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	case "fig4":
		fmt.Println(experiments.RenderDistributions(experiments.Fig4(q, seed)))
	case "rep":
		fmt.Println(experiments.RenderReplication(experiments.Replication(q, seed)))
	case "max":
		fmt.Println(experiments.RenderMaxLoad(experiments.MaxLoad(q, seed)))
	case "farm":
		fmt.Println(experiments.RenderFarm(experiments.FarmVsMErM(q, seed)))
	case "ab-eviction":
		fmt.Println(experiments.RenderAblation(
			"Ablation: LRU vs FIFO cache eviction (out-of-order policy)",
			experiments.AblationEviction(q, seed)))
	case "ab-steal":
		fmt.Println(experiments.RenderAblation(
			"Ablation: stolen subjobs read remotely vs re-read from tape",
			experiments.AblationStealSource(q, seed)))
	case "ab-replication":
		fmt.Println(experiments.RenderAblation(
			"Ablation: replication threshold (remote accesses before replicating)",
			experiments.AblationReplicationThreshold(q, seed)))
	case "ab-hotspot":
		fmt.Println(experiments.RenderAblation(
			"Ablation: workload hot-region weight",
			experiments.AblationHotspot(q, seed)))
	case "nodes":
		fmt.Println(experiments.RenderNodeCount(experiments.NodeCountStudy(q, seed)))
	case "pipeline":
		fmt.Println(experiments.RenderAblation(
			"Future work (§7): pipelining data transfers with computation",
			experiments.FutureWorkPipelining(q, seed)))
	case "baselines":
		fmt.Println(experiments.RenderAblation(
			"Baselines: static partitioning and affine farm vs the paper's dynamic policies",
			experiments.BaselineComparison(q, seed)))
	case "hetero":
		fmt.Println(experiments.RenderAblation(
			"Extension: heterogeneous node speeds (equal aggregate capacity)",
			experiments.HeterogeneityStudy(q, seed)))
	default:
		return fmt.Errorf("unknown experiment %q (known: %s)",
			id, strings.Join(experiments.AllFigureIDs(), ", "))
	}
	return nil
}
