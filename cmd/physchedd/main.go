// Command physchedd is the simulation service: it accepts declarative
// scenario and grid specs (internal/spec) over HTTP, executes them on the
// internal/lab worker pool under the request's context, streams NDJSON
// progress while a grid runs, and serves previously computed results from
// a content-addressed cache (internal/resultcache) by spec hash — the
// same spec file that drives `physchedsim -spec` can be POSTed here
// unchanged.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /v1/policies             registered scheduling policies
//	GET  /v1/workloads            registered workload kinds
//	POST /v1/specs                run one spec; JSON result (cache-aware)
//	POST /v1/grids                run a grid spec; NDJSON progress stream
//	                              terminated by a result line
//	GET  /v1/results/{hash}       cached run result by spec hash
//	GET  /v1/aggregates/{hash}    cached replica aggregate by hash
//
// Usage:
//
//	physchedd [-addr :8080] [-cache-dir DIR] [-parallel N] [-max-cells N]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"physched/internal/resultcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("physchedd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "directory for the on-disk result cache (empty = memory only)")
		parallel = flag.Int("parallel", 0, "max concurrent simulation runs per grid (0 = GOMAXPROCS)")
		maxCells = flag.Int("max-cells", 10_000, "reject grids with more cells than this (0 = unlimited)")
	)
	flag.Parse()

	cache, err := resultcache.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(cache, *parallel, *maxCells).routes(),
		// Simulations stream for as long as they run; only reads and
		// idle connections get fixed deadlines.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("listening on %s (cache-dir %q)", *addr, *cacheDir)
	log.Fatal(srv.ListenAndServe())
}
