// Package workload synthesises the paper's job stream (§2.4): jobs arrive
// as a Poisson process; each job reads a contiguous segment of the
// dataspace whose length is Erlang(4) distributed with mean 30 000 events;
// segment start points are uniform except for two hot regions covering 10%
// of the dataspace that attract 50% of the start points ("the fraction of
// the data associated with some very interesting events is accessed far
// more frequently than the remaining data").
package workload

import (
	"math"
	"math/rand"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/stats"
)

// arrivalProcess yields successive arrival times; the synthetic stream
// plugs in either a homogeneous Poisson process or a thinned
// inhomogeneous one.
type arrivalProcess interface {
	Next() float64
}

// Generator produces the synthetic job stream. Jobs are allocated from an
// internal arena (chunked, one allocation per job.arenaChunk jobs) that
// lives as long as the generator.
type Generator struct {
	params  model.Params
	rng     *rand.Rand
	arrival arrivalProcess
	nextID  int64
	arena   job.Arena
	hot     []dataspace.Interval // hot start regions
	hotLen  int64
	coldLen int64
}

// New returns a generator for the given parameters and arrival rate in
// jobs per hour, drawing randomness from rng.
func New(p model.Params, rng *rand.Rand, jobsPerHour float64) *Generator {
	return newGenerator(p, rng, stats.NewPoissonProcess(rng, jobsPerHour/model.Hour, 0))
}

// RateFunc is an instantaneous arrival rate, in jobs per hour, as a
// function of simulated time in seconds.
type RateFunc func(t float64) float64

// NewInhomogeneous returns a generator whose arrivals follow an
// inhomogeneous Poisson process with rate rate(t), bounded by
// peakJobsPerHour, realised by Lewis–Shedler thinning. Job sizes and
// start points are drawn exactly as in New — only the arrival clock
// differs.
func NewInhomogeneous(p model.Params, rng *rand.Rand, rate RateFunc, peakJobsPerHour float64) *Generator {
	perSecond := func(t float64) float64 { return rate(t) / model.Hour }
	return newGenerator(p, rng, stats.NewThinnedPoisson(rng, perSecond, peakJobsPerHour/model.Hour, 0))
}

// DayNight returns the rate function of a 24-hour load cycle:
// mean·(1 + swing·sin(2πt/day)). swing in [0,1) scales the day/night
// contrast; the peak rate is mean·(1+swing).
func DayNight(meanJobsPerHour, swing float64) RateFunc {
	return func(t float64) float64 {
		return meanJobsPerHour * (1 + swing*math.Sin(2*math.Pi*t/model.Day))
	}
}

func newGenerator(p model.Params, rng *rand.Rand, arrival arrivalProcess) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{params: p, rng: rng, arrival: arrival}
	g.hot = HotRegions(p)
	for _, h := range g.hot {
		g.hotLen += h.Len()
	}
	g.coldLen = p.TotalEvents() - g.hotLen
	return g
}

// HotRegions returns the hot start-point regions for p: HotRegions equal
// slices of the dataspace, evenly spaced, together covering HotFraction of
// it. With the paper's parameters this yields two regions of 5% each.
func HotRegions(p model.Params) []dataspace.Interval {
	if p.HotFraction <= 0 || p.HotRegions <= 0 {
		return nil
	}
	total := p.TotalEvents()
	per := int64(float64(total) * p.HotFraction / float64(p.HotRegions))
	out := make([]dataspace.Interval, 0, p.HotRegions)
	for i := 0; i < p.HotRegions; i++ {
		// Region i centred at (i+1)/(regions+1) of the dataspace.
		center := total * int64(i+1) / int64(p.HotRegions+1)
		start := center - per/2
		out = append(out, dataspace.Iv(start, start+per))
	}
	return out
}

// Next returns the next job of the stream. Job IDs are sequential from 0.
func (g *Generator) Next() *job.Job {
	t := g.arrival.Next()
	j := g.arena.NewJob()
	j.ID = g.nextID
	j.Arrival = t
	j.Range = g.segment()
	j.ScheduledAt = t
	g.nextID++
	return j
}

// segment draws a job's event range: hot-biased start point, Erlang length,
// shifted back when it would overrun the dataspace end.
func (g *Generator) segment() dataspace.Interval {
	length := int64(stats.Erlang(g.rng, g.params.ErlangShape, float64(g.params.MeanJobEvents)))
	if length < g.params.MinSubjobEvents {
		length = g.params.MinSubjobEvents
	}
	total := g.params.TotalEvents()
	if length > total {
		length = total
	}
	start := g.startPoint()
	if start+length > total {
		start = total - length
	}
	return dataspace.Iv(start, start+length)
}

// startPoint draws a start index from the hot/cold mixture.
func (g *Generator) startPoint() int64 {
	if g.hotLen > 0 && g.rng.Float64() < g.params.HotWeight {
		// Uniform over the union of hot regions.
		off := g.rng.Int63n(g.hotLen)
		for _, h := range g.hot {
			if off < h.Len() {
				return h.Start + off
			}
			off -= h.Len()
		}
	}
	// Uniform over the cold part.
	off := g.rng.Int63n(g.coldLen)
	pos := int64(0)
	for _, h := range g.hot {
		gap := h.Start - pos
		if off < gap {
			return pos + off
		}
		off -= gap
		pos = h.End
	}
	return pos + off
}
