package client

import (
	"strings"
	"testing"
)

const exposition = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route="/v1/specs",status="200"} 7
demo_requests_total{route="/v1/grids",status="422"} 1
# HELP demo_up Whether the demo is up.
# TYPE demo_up gauge
demo_up 1
# HELP demo_duration_seconds Request duration.
# TYPE demo_duration_seconds histogram
demo_duration_seconds_bucket{route="/v1/specs",le="0.1"} 3
demo_duration_seconds_bucket{route="/v1/specs",le="1"} 6
demo_duration_seconds_bucket{route="/v1/specs",le="+Inf"} 7
demo_duration_seconds_sum{route="/v1/specs"} 2.5
demo_duration_seconds_count{route="/v1/specs"} 7
# a stray comment line
demo_odd_label{msg="quote \" and backslash \\ inside"} 4
`

func TestParseMetrics(t *testing.T) {
	pm, err := ParseMetrics(exposition)
	if err != nil {
		t.Fatal(err)
	}

	if v, ok := pm.Value("demo_up", nil); !ok || v != 1 {
		t.Errorf("demo_up = %v ok=%v, want 1", v, ok)
	}
	if v, ok := pm.Value("demo_requests_total", map[string]string{"route": "/v1/grids", "status": "422"}); !ok || v != 1 {
		t.Errorf("labelled counter = %v ok=%v, want 1", v, ok)
	}
	if _, ok := pm.Value("demo_requests_total", map[string]string{"route": "/nope"}); ok {
		t.Error("lookup with unmatched labels succeeded")
	}
	if f := pm.Families["demo_requests_total"]; f.Type != "counter" || f.Help != "Requests served." {
		t.Errorf("family metadata: %+v", f)
	}

	// Histogram suffixes index under the base family, and reassemble.
	h, ok := pm.HistogramAt("demo_duration_seconds", map[string]string{"route": "/v1/specs"})
	if !ok {
		t.Fatal("histogram series not found")
	}
	if h.Count != 7 || h.Sum != 2.5 {
		t.Errorf("histogram count=%v sum=%v, want 7, 2.5", h.Count, h.Sum)
	}
	if h.Buckets["0.1"] != 3 || h.Buckets["1"] != 6 || h.Buckets["+Inf"] != 7 {
		t.Errorf("buckets: %v", h.Buckets)
	}
	if names := pm.HistogramNames(); len(names) != 1 || names[0] != "demo_duration_seconds" {
		t.Errorf("histogram names: %v", names)
	}

	// Quoted label values unquote exactly.
	if v, ok := pm.Value("demo_odd_label", map[string]string{"msg": `quote " and backslash \ inside`}); !ok || v != 4 {
		t.Errorf("escaped label lookup = %v ok=%v", v, ok)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"half_open{a=\"b\" 3\n",
		"bad_value 12x\n",
		"bare{a=b} 1\n",
	} {
		if _, err := ParseMetrics(bad); err == nil {
			t.Errorf("ParseMetrics(%q) accepted garbage", bad)
		}
	}
}

func TestDecodeTrace(t *testing.T) {
	body := `{"type":"cell","index":0,"hash":"abc","load_jobs_per_hour":1,"seed":5,"events":2}
{"t":0.5,"kind":"job_arrived","job":1,"node":0}
{"t":1.5,"kind":"job_finished","job":1,"node":0,"events":100}
{"type":"cell","index":1,"hash":"def","load_jobs_per_hour":1.1,"seed":5,"events":0,"dropped":9}
`
	cells, err := decodeTrace(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("decoded %d cells, want 2", len(cells))
	}
	if cells[0].Header.Hash != "abc" || len(cells[0].Events) != 2 {
		t.Errorf("cell 0: %+v", cells[0])
	}
	if cells[0].Events[1].Kind != "job_finished" || cells[0].Events[1].Events != 100 {
		t.Errorf("cell 0 event 1: %+v", cells[0].Events[1])
	}
	if cells[1].Header.Dropped != 9 || len(cells[1].Events) != 0 {
		t.Errorf("cell 1: %+v", cells[1])
	}

	if _, err := decodeTrace(strings.NewReader(`{"t":1,"kind":"x","job":1,"node":0}` + "\n")); err == nil {
		t.Error("event before any header was accepted")
	}
	if _, err := decodeTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line was accepted")
	}
}
