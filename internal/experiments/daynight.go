package experiments

import (
	"fmt"
	"math/rand"

	"physched/internal/lab"
	"physched/internal/sched"
	"physched/internal/workload"
)

// DayNight is the first non-paper workload served by the lab grid: job
// arrivals follow an inhomogeneous Poisson process with a 24-hour
// day/night cycle (Lewis–Shedler thinning; see workload.NewInhomogeneous)
// instead of the paper's homogeneous stream. At equal mean load a strong
// cycle concentrates arrivals into peaks the scheduler must absorb, so
// the study shows how much sustainable mean load each policy loses to
// burstiness — the out-of-order policy's caching and the delayed policy's
// batching ride out peaks differently than the farm.
func DayNight(q Quality, seed int64) []AblationRow {
	loads := loadGrid(q, 0.6, 1.8)
	var variants []lab.Variant
	for _, pol := range []struct {
		name string
		mk   func() sched.Policy
	}{
		{"farm", func() sched.Policy { return sched.NewFarm() }},
		{"out-of-order", func() sched.Policy { return sched.NewOutOfOrder() }},
	} {
		for _, swing := range []float64{0, 0.8} {
			pol, swing := pol, swing
			label := fmt.Sprintf("%s, steady arrivals", pol.name)
			if swing > 0 {
				label = fmt.Sprintf("%s, day/night swing %.0f%%", pol.name, 100*swing)
			}
			variants = append(variants, lab.Variant{
				Label:     label,
				NewPolicy: pol.mk,
				Mutate: func(s *lab.Scenario) {
					if swing == 0 {
						return // homogeneous baseline uses the default generator
					}
					params := s.Params
					s.NewWorkload = func(seed int64, jobsPerHour float64) workload.Source {
						return workload.NewInhomogeneous(
							params, rand.New(rand.NewSource(seed)),
							workload.DayNight(jobsPerHour, swing),
							jobsPerHour*(1+swing))
					}
				},
			})
		}
	}
	return ablate(baseScenario(q, seed), loads, variants)
}
