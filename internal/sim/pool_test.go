package sim

import (
	"math/rand"
	"testing"
)

// TestEventPoolReuseKeepsFIFO drains and refills the engine repeatedly so
// recycled Event objects carry fresh sequence numbers: simultaneous events
// scheduled through recycled handles must still run in scheduling order.
func TestEventPoolReuseKeepsFIFO(t *testing.T) {
	e := New(1)
	for round := 0; round < 5; round++ {
		at := e.Now() + 1
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			e.At(at, func() { order = append(order, i) })
		}
		// Cancel a few so cancelled events also cycle through the pool.
		e.At(at, func() {}).Cancel()
		e.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("round %d: recycled events broke FIFO: %v", round, order)
			}
		}
	}
}

// TestEventPoolIdenticalToFresh runs the same randomised workload on one
// engine reusing pooled events (sequential batches) and on fresh engines,
// asserting identical execution traces.
func TestEventPoolIdenticalToFresh(t *testing.T) {
	trace := func(e *Engine, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		var out []float64
		for i := 0; i < 200; i++ {
			e.At(e.Now()+rng.Float64()*10, func() { out = append(out, e.Now()) })
			if rng.Intn(4) == 0 {
				e.At(e.Now()+rng.Float64()*10, func() { t.Error("cancelled event ran") }).Cancel()
			}
		}
		e.Run()
		return out
	}
	warm := New(1)
	trace(warm, 7) // populate the free list
	got := trace(warm, 42)
	base := trace(New(1), 42)
	// The warm engine's clock is offset; compare inter-event gaps.
	if len(got) != len(base) {
		t.Fatalf("len %d vs %d", len(got), len(base))
	}
	for i := 1; i < len(got); i++ {
		dg := got[i] - got[i-1]
		db := base[i] - base[i-1]
		if diff := dg - db; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("step %d: gap %v vs %v", i, dg, db)
		}
	}
}

func TestPendingCountsCancellations(t *testing.T) {
	e := New(1)
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = e.At(float64(i+1), func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	evs[3].Cancel()
	evs[7].Cancel()
	evs[7].Cancel() // double cancel must not double-decrement
	if e.Pending() != 8 {
		t.Fatalf("Pending = %d after two cancels, want 8", e.Pending())
	}
	e.Step()
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d after a step, want 7", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}
