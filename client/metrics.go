package client

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MetricSample is one sample line of a Prometheus text exposition:
// a metric name, its label set (possibly empty) and the value.
type MetricSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricFamily groups the samples of one # TYPE declaration. For
// histogram families the samples carry the _bucket/_sum/_count suffixes
// in their names; HistogramAt reassembles them.
type MetricFamily struct {
	Name    string
	Type    string // counter | gauge | histogram | untyped
	Help    string
	Samples []MetricSample
}

// ParsedMetrics indexes a parsed /metrics payload by family name.
type ParsedMetrics struct {
	Families map[string]*MetricFamily
}

// Histogram is one reassembled histogram series: cumulative bucket
// counts keyed by upper bound (as written, e.g. "0.1", "+Inf"), plus
// the running sum and total count.
type Histogram struct {
	Buckets map[string]float64
	Sum     float64
	Count   float64
}

// ParseMetrics parses a Prometheus text exposition (the Metrics method's
// return value) into indexed families. It understands the subset the
// service emits — # HELP/# TYPE headers and sample lines with optional
// {label="value"} sets — and fails loudly on lines it cannot parse, so a
// format regression is a test failure rather than a silently missing
// series.
func ParseMetrics(text string) (*ParsedMetrics, error) {
	pm := &ParsedMetrics{Families: map[string]*MetricFamily{}}
	family := func(name string) *MetricFamily {
		f, ok := pm.Families[name]
		if !ok {
			f = &MetricFamily{Name: name, Type: "untyped"}
			pm.Families[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			family(name).Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			family(name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %d: %w", ln+1, err)
		}
		// Histogram suffixes index under the family (base) name.
		base := sample.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(sample.Name, suffix)
			if trimmed != sample.Name {
				if f, ok := pm.Families[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		family(base).Samples = append(family(base).Samples, sample)
	}
	return pm, nil
}

// parseSampleLine splits `name{l1="v1",...} value` (label set optional).
func parseSampleLine(line string) (MetricSample, error) {
	s := MetricSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(line, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else if line[i] == '{' {
		s.Name = line[:i]
		end := strings.LastIndex(line, "}")
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(line[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		s.Name = line[:i]
		rest = strings.TrimSpace(line[i+1:])
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes `k1="v1",k2="v2"` (values are Go-quoted by the
// server, so strconv.Unquote round-trips them exactly).
func parseLabels(in string, out map[string]string) error {
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", in)
		}
		key := in[:eq]
		rest := in[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", in)
		}
		// Find the closing quote, skipping escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", in)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return fmt.Errorf("bad label value %q: %w", rest[:end+1], err)
		}
		out[key] = val
		in = strings.TrimPrefix(rest[end+1:], ",")
	}
	return nil
}

// labelsMatch reports whether got carries every key/value of want
// (ignoring extra labels, so histogram lookups can ignore "le").
func labelsMatch(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// Value returns the sample of family name whose labels include want
// (nil matches the first sample). ok is false when no sample matches.
func (pm *ParsedMetrics) Value(name string, want map[string]string) (float64, bool) {
	f, ok := pm.Families[name]
	if !ok {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name == name && labelsMatch(s.Labels, want) {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramAt reassembles one histogram series of family name whose
// labels include want: _bucket samples become Buckets keyed by their
// "le" bound, _sum and _count fill the scalars. ok is false when the
// family is absent, not a histogram, or has no matching series.
func (pm *ParsedMetrics) HistogramAt(name string, want map[string]string) (Histogram, bool) {
	f, ok := pm.Families[name]
	if !ok || f.Type != "histogram" {
		return Histogram{}, false
	}
	h := Histogram{Buckets: map[string]float64{}}
	found := false
	for _, s := range f.Samples {
		if !labelsMatch(s.Labels, want) {
			continue
		}
		switch s.Name {
		case name + "_bucket":
			h.Buckets[s.Labels["le"]] = s.Value
			found = true
		case name + "_sum":
			h.Sum = s.Value
			found = true
		case name + "_count":
			h.Count = s.Value
			found = true
		}
	}
	return h, found
}

// HistogramNames lists the histogram-typed families, sorted — the
// assertion smoke tests make ("these families exist and are histograms").
func (pm *ParsedMetrics) HistogramNames() []string {
	var out []string
	for name, f := range pm.Families {
		if f.Type == "histogram" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
