package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath  string
	Dir      string
	Standard bool // part of the Go standard library
	Matched  bool // named by the load patterns (vs. pulled in as a dependency)
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
	Match      []string
	Error      *struct{ Err string }
}

// Load lists patterns with `go list -json -deps` rooted at dir, parses
// every package in the dependency closure and type-checks it from source
// in dependency order. Module packages get full function-body checking
// plus a populated types.Info; standard-library dependencies are checked
// declarations-only (IgnoreFuncBodies), which is all that importing them
// requires and sidesteps compiler-intrinsic bodies in runtime internals.
// CGO is disabled for the listing so cgo-optional packages (net, ...)
// resolve to their pure-Go files, which go/types can check directly.
//
// Only pattern-matched module packages are returned — dependencies exist
// solely to give the targets complete type information, mirroring how
// `go vet` scopes its reports.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := &mapImporter{pkgs: typed}
	var out []*Package

	// `go list -deps` emits dependencies before dependents, so a single
	// forward sweep sees every import already type-checked.
	for _, lp := range metas {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := parsePackage(fset, lp)
		if err != nil {
			return nil, err
		}
		var info *types.Info
		if !lp.Standard {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
				Scopes:     map[ast.Node]*types.Scope{},
			}
		}
		var checkErrs []error
		conf := types.Config{
			Importer:         imp,
			IgnoreFuncBodies: lp.Standard,
			Sizes:            types.SizesFor("gc", runtime.GOARCH),
			Error:            func(err error) { checkErrs = append(checkErrs, err) },
		}
		imp.importMap = lp.ImportMap
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if !lp.Standard && len(checkErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, errors.Join(checkErrs...))
		}
		// Standard-library check errors are tolerated as long as a usable
		// package object came back: declaration-only checking of runtime
		// internals can trip on compiler magic without affecting the
		// exported API surface the module packages consume.
		if tpkg == nil {
			return nil, fmt.Errorf("type-checking %s produced no package: %w", lp.ImportPath, errors.Join(checkErrs...))
		}
		typed[lp.ImportPath] = tpkg
		if !lp.Standard && len(lp.Match) > 0 {
			out = append(out, &Package{
				PkgPath:  lp.ImportPath,
				Dir:      lp.Dir,
				Standard: lp.Standard,
				Matched:  true,
				Fset:     fset,
				Files:    files,
				Types:    tpkg,
				Info:     info,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patterns %v matched no module packages", patterns)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go file sets only: go/types checks source, not cgo output.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []*listPkg
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, lp)
	}
	return metas, nil
}

func parsePackage(fset *token.FileSet, lp *listPkg) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", filepath.Join(lp.Dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// mapImporter resolves import paths against the already-checked closure,
// applying the importing package's vendor map (how net/http reaches the
// std-vendored golang.org/x/net packages).
type mapImporter struct {
	pkgs      map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not in dependency closure", path)
}
