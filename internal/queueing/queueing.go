// Package queueing provides the analytic queueing-theory reference the
// paper invokes for the processing-farm baseline (§3.1: "A mathematical
// model can be established which describes the cluster behavior as a
// special case of a M/Er/m queuing system").
//
// Poisson arrivals, Erlang-k service and m identical servers have no simple
// closed form, so the standard practice is followed: the exact Erlang-C
// M/M/m waiting time scaled by the Allen–Cunneen correction (1+CV²)/2,
// which is exact for M/M/m and highly accurate for Erlang service at the
// utilisations the paper studies. Integration tests validate the farm
// simulator against this model.
package queueing

import (
	"errors"
	"math"
)

// MErM describes an M/Er/m queue.
type MErM struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64
	// MeanService is the mean service time (seconds).
	MeanService float64
	// Shape is the Erlang shape of the service distribution.
	Shape int
	// Servers is the number of identical servers.
	Servers int
}

// ErrUnstable is returned when utilisation is at or above one.
var ErrUnstable = errors.New("queueing: utilisation >= 1, queue is unstable")

// Utilisation returns λ·E[S]/m.
func (q MErM) Utilisation() float64 {
	return q.Lambda * q.MeanService / float64(q.Servers)
}

// ErlangC returns the probability that an arriving job must wait in an
// M/M/m queue with offered load a = λ·E[S] and m servers.
func ErlangC(a float64, m int) float64 {
	// Compute iteratively to avoid factorial overflow: B(0)=1,
	// B(k) = a·B(k-1)/(k + a·B(k-1)) is the Erlang-B recursion; then
	// C = m·B/(m - a(1-B)).
	b := 1.0
	for k := 1; k <= m; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(m)
	return b / (1 - rho + rho*b)
}

// MeanWait returns the expected waiting time in queue, in seconds.
func (q MErM) MeanWait() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	rho := q.Utilisation()
	if rho >= 1 {
		return math.Inf(1), ErrUnstable
	}
	a := q.Lambda * q.MeanService
	c := ErlangC(a, q.Servers)
	wqMM := c * q.MeanService / (float64(q.Servers) * (1 - rho))
	cv2 := 1 / float64(q.Shape)
	return wqMM * (1 + cv2) / 2, nil
}

// MeanQueueLength returns the expected number of jobs waiting (Little).
func (q MErM) MeanQueueLength() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return q.Lambda * w, nil
}

// MeanSojourn returns the expected total time in system.
func (q MErM) MeanSojourn() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanService, nil
}

// MaxLoad returns the largest sustainable arrival rate (jobs per second).
func (q MErM) MaxLoad() float64 { return float64(q.Servers) / q.MeanService }

// PollaczekKhinchine returns the exact M/G/1 mean waiting time for the
// queue's Erlang service distribution: Wq = λ·E[S²]/(2(1−ρ)). It applies
// only to single-server queues and is used to validate the Allen–Cunneen
// correction, which coincides with it at m = 1.
func (q MErM) PollaczekKhinchine() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	if q.Servers != 1 {
		return 0, errors.New("queueing: Pollaczek–Khinchine applies to one server")
	}
	rho := q.Lambda * q.MeanService
	if rho >= 1 {
		return math.Inf(1), ErrUnstable
	}
	// Erlang-k: E[S²] = (1 + 1/k)·E[S]².
	es2 := (1 + 1/float64(q.Shape)) * q.MeanService * q.MeanService
	return q.Lambda * es2 / (2 * (1 - rho)), nil
}

func (q MErM) validate() error {
	switch {
	case q.Lambda <= 0:
		return errors.New("queueing: Lambda must be positive")
	case q.MeanService <= 0:
		return errors.New("queueing: MeanService must be positive")
	case q.Shape <= 0:
		return errors.New("queueing: Shape must be positive")
	case q.Servers <= 0:
		return errors.New("queueing: Servers must be positive")
	}
	return nil
}
