package sched

import (
	"strings"
	"testing"

	"physched/internal/model"
)

func TestRegistryBuiltins(t *testing.T) {
	want := map[string]string{
		"farm":          "farm",
		"splitting":     "splitting",
		"cacheoriented": "cacheoriented",
		"outoforder":    "outoforder",
		"replication":   "outoforder+replication",
		"delayed":       "delayed",
		"adaptive":      "adaptive",
		"partitioned":   "partitioned",
		"affinefarm":    "affinefarm",
	}
	for name, policyName := range want {
		p, err := New(name, Args{})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if got := p.Name(); got != policyName {
			t.Errorf("New(%q).Name() = %q, want %q", name, got, policyName)
		}
	}
	names := Names()
	if len(names) < len(want) {
		t.Errorf("Names() = %v, want at least the %d built-ins", names, len(want))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryArgsApplied(t *testing.T) {
	p, err := New("outoforder", Args{MaxWaitHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.(*OutOfOrder).MaxWait; got != 24*model.Hour {
		t.Errorf("MaxWait = %v, want %v", got, 24*model.Hour)
	}
	d, err := New("delayed", Args{DelayHours: 11, StripeEvents: 200})
	if err != nil {
		t.Fatal(err)
	}
	if dd := d.(*Delayed); dd.Period != 11*model.Hour || dd.Stripe != 200 {
		t.Errorf("delayed args not applied: period=%v stripe=%d", dd.Period, dd.Stripe)
	}
	// Defaults: zero Args must build every built-in (stripe falls back to
	// the paper's default rather than panicking in NewDelayed).
	d, err = New("delayed", Args{})
	if err != nil {
		t.Fatal(err)
	}
	if dd := d.(*Delayed); dd.Stripe != DefaultStripe {
		t.Errorf("default stripe = %d, want %d", dd.Stripe, DefaultStripe)
	}
}

func TestRegistryUnknownAndMissingNames(t *testing.T) {
	if _, err := New("bogus", Args{}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy: err = %v", err)
	}
	if _, err := New("", Args{}); err == nil {
		t.Error("empty policy name accepted")
	}
}

func TestRegistryRejectsDoubleRegistration(t *testing.T) {
	if err := Register("farm", func(Args) (Policy, error) { return NewFarm(), nil }); err == nil {
		t.Fatal("double registration of \"farm\" accepted")
	}
	if err := Register("", func(Args) (Policy, error) { return NewFarm(), nil }); err == nil {
		t.Fatal("empty-name registration accepted")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestRegistryExtension(t *testing.T) {
	name := "test-registry-extension"
	if err := Register(name, func(a Args) (Policy, error) { return NewFarm(), nil }); err != nil {
		t.Fatal(err)
	}
	p, err := New(name, Args{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "farm" {
		t.Errorf("extension policy name = %q", p.Name())
	}
}

func TestRegistryInvalidArgs(t *testing.T) {
	if _, err := New("delayed", Args{DelayHours: -1}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := New("outoforder", Args{MaxWaitHours: -1}); err == nil {
		t.Error("negative aging limit accepted")
	}
}

// TestRegistryRejectsDeadArgs: an argument the named policy does not
// consume must fail, not silently run a different scenario than the spec
// suggests.
func TestRegistryRejectsDeadArgs(t *testing.T) {
	cases := []struct {
		name string
		args Args
	}{
		{"farm", Args{DelayHours: 48}},
		{"farm", Args{StripeEvents: 500}},
		{"splitting", Args{MaxWaitHours: 24}},
		{"cacheoriented", Args{DelayHours: 1}},
		{"partitioned", Args{StripeEvents: 1}},
		{"affinefarm", Args{MaxWaitHours: 1}},
		{"outoforder", Args{DelayHours: 48}},
		{"outoforder", Args{StripeEvents: 500}},
		{"replication", Args{DelayHours: 48}},
		{"delayed", Args{MaxWaitHours: 24}},
		{"adaptive", Args{DelayHours: 11}},
		{"adaptive", Args{MaxWaitHours: 24}},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, tc.args); err == nil {
			t.Errorf("%s with dead args %+v accepted", tc.name, tc.args)
		}
	}
}
