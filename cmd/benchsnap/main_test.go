package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: physched/internal/lab
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkRun-8   	     100	  10012345 ns/op	 5678901 B/op	   37953 allocs/op
BenchmarkFig2_FCFSPolicies-8  	       1	1234567890 ns/op	        6.500 farm_speedup	        1.200 farm_maxload_j/h
PASS
ok  	physched/internal/lab	2.345s
`

func TestParseBenchOutput(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "physched/internal/lab" {
		t.Errorf("bad header: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}

	run := snap.Benchmarks[0]
	if run.Name != "BenchmarkRun-8" || run.Iterations != 100 {
		t.Errorf("bad BenchmarkRun identity: %+v", run)
	}
	if run.NsPerOp != 10012345 || run.BytesPerOp != 5678901 || run.AllocsPerOp != 37953 {
		t.Errorf("bad BenchmarkRun numbers: %+v", run)
	}
	if run.Metrics != nil {
		t.Errorf("BenchmarkRun has unexpected custom metrics: %+v", run.Metrics)
	}

	fig := snap.Benchmarks[1]
	if fig.Name != "BenchmarkFig2_FCFSPolicies-8" {
		t.Errorf("bad name %q", fig.Name)
	}
	if fig.Metrics["farm_speedup"] != 6.5 || fig.Metrics["farm_maxload_j/h"] != 1.2 {
		t.Errorf("custom metrics not captured: %+v", fig.Metrics)
	}
}

// TestParseConcatenatedPackages: CI pipes several packages' benchmark
// runs into one snapshot; every distinct pkg header must be retained.
func TestParseConcatenatedPackages(t *testing.T) {
	input := sample + `goos: linux
goarch: amd64
pkg: physched/internal/opt
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkStudyRandom-8   	      10	  80123456 ns/op	 2655400 B/op	   21817 allocs/op
PASS
ok  	physched/internal/opt	1.234s
`
	snap, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pkg != "physched/internal/lab;physched/internal/opt" {
		t.Errorf("pkg = %q, want both packages listed", snap.Pkg)
	}
	if len(snap.Benchmarks) != 3 || snap.Benchmarks[2].Name != "BenchmarkStudyRandom-8" {
		t.Errorf("benchmarks not concatenated: %+v", snap.Benchmarks)
	}
}

func TestParseRejectsMalformedResult(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-4",                  // no iterations
		"BenchmarkBroken-4 12 34",            // value without unit
		"BenchmarkBroken-4 twelve 34 ns/op",  // non-numeric iterations
		"BenchmarkBroken-4 12 thirty4 ns/op", // non-numeric value
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("parse accepted malformed line %q", line)
		}
	}
}

func snapOf(bs ...benchmark) snapshot { return snapshot{Benchmarks: bs} }

func TestCheckPassesWithinTolerance(t *testing.T) {
	base := snapOf(benchmark{Name: "BenchmarkRun-8", NsPerOp: 1000, AllocsPerOp: 500})
	fresh := snapOf(benchmark{Name: "BenchmarkRun-4", NsPerOp: 1100, AllocsPerOp: 500})
	if problems := check(base, fresh, 0.15); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCheckFailsOnSlowdown(t *testing.T) {
	base := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 1000, AllocsPerOp: 500})
	fresh := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 1200, AllocsPerOp: 500})
	problems := check(base, fresh, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op") {
		t.Fatalf("want one ns/op violation, got %v", problems)
	}
}

func TestCheckFailsOnAnyAllocRegression(t *testing.T) {
	base := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 1000, AllocsPerOp: 500})
	fresh := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 900, AllocsPerOp: 501})
	problems := check(base, fresh, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/op") {
		t.Fatalf("want one allocs/op violation, got %v", problems)
	}
}

func TestCheckFailsOnMissingBaseEntry(t *testing.T) {
	base := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 1000})
	fresh := snapOf(
		benchmark{Name: "BenchmarkRun", NsPerOp: 1000},
		benchmark{Name: "BenchmarkNew", NsPerOp: 10},
	)
	problems := check(base, fresh, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "no base entry") {
		t.Fatalf("want one missing-base violation, got %v", problems)
	}
}

func TestCheckAllowsSpeedup(t *testing.T) {
	base := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 1000, AllocsPerOp: 500})
	fresh := snapOf(benchmark{Name: "BenchmarkRun", NsPerOp: 100, AllocsPerOp: 0})
	if problems := check(base, fresh, 0.15); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}
