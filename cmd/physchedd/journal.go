package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// journalVersion is bumped whenever the journal file format changes;
// files with an unknown version are left on disk but not loaded.
const journalVersion = 1

// journalMeta is the first line of a job's journal file: everything
// needed to identify the job and — via the original request body — to
// restart it after process death.
type journalMeta struct {
	Type    string          `json:"type"` // "meta"
	V       int             `json:"v"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind"` // grid | study
	Hash    string          `json:"hash"`
	Total   int             `json:"total"`
	Created time.Time       `json:"created"`
	Request json.RawMessage `json:"request"` // original document body
}

// journalEnd is the last line of a finished job's journal file: the
// terminal state plus the status counters, so recovery restores the job
// without re-decoding its stream.
type journalEnd struct {
	Type      string    `json:"type"` // "end"
	State     string    `json:"state"`
	Finished  time.Time `json:"finished"`
	Done      int       `json:"done"`
	Total     int       `json:"total"`
	CacheHits int       `json:"cache_hits"`
	Error     string    `json:"error,omitempty"`
}

// jobJournal persists async jobs under a state directory, one NDJSON
// file per job: a meta line, then the job's stream lines verbatim (which
// is what makes replay after restart byte-identical), then an end line
// once the job finishes. A file without an end line is a job that was
// running when the process died — recovery restarts it.
type jobJournal struct {
	dir string
	// disabled drops all writes — the crash() test hook, simulating the
	// process dying with journals frozen at their current content.
	disabled atomic.Bool
}

func newJobJournal(dir string) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state dir: %w", err)
	}
	return &jobJournal{dir: dir}, nil
}

func (j *jobJournal) path(id string) string {
	return filepath.Join(j.dir, id+".job.ndjson")
}

// create opens a new journal file seeded with the meta line.
func (j *jobJournal) create(meta journalMeta) (*jobWriter, error) {
	if j.disabled.Load() {
		return nil, fmt.Errorf("journal disabled")
	}
	line, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.path(meta.ID), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return &jobWriter{journal: j, f: f}, nil
}

// reset rewrites a recovered running job's file back to just its meta
// line — the stream restarts from scratch — and returns a writer
// appending to it.
func (j *jobJournal) reset(meta journalMeta) (*jobWriter, error) {
	return j.create(meta)
}

// remove deletes a job's journal file (retention eviction).
func (j *jobJournal) remove(id string) {
	if j.disabled.Load() {
		return
	}
	os.Remove(j.path(id))
}

// journalFile is one loaded job file: its meta, the raw stream lines
// (newline-terminated, verbatim), and the end record if the job had
// finished.
type journalFile struct {
	meta  journalMeta
	lines [][]byte
	end   *journalEnd
}

// load reads every job file in the state directory. Unreadable or
// unversioned files are skipped, not fatal: a half-written journal must
// not take the service down with it.
func (j *jobJournal) load() ([]journalFile, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var out []journalFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job.ndjson") {
			continue
		}
		jf, ok := j.loadFile(filepath.Join(j.dir, e.Name()))
		if ok {
			out = append(out, jf)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if !out[a].meta.Created.Equal(out[b].meta.Created) {
			return out[a].meta.Created.Before(out[b].meta.Created)
		}
		return out[a].meta.ID < out[b].meta.ID
	})
	return out, nil
}

func (j *jobJournal) loadFile(path string) (journalFile, bool) {
	f, err := os.Open(path)
	if err != nil {
		return journalFile{}, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var jf journalFile
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if first {
			if err := json.Unmarshal(line, &jf.meta); err != nil ||
				jf.meta.Type != "meta" || jf.meta.V != journalVersion || jf.meta.ID == "" {
				return journalFile{}, false
			}
			first = false
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &probe) != nil {
			// A torn final line from the crash; everything before it is
			// intact, so keep what we have.
			break
		}
		if probe.Type == "end" {
			var end journalEnd
			if json.Unmarshal(line, &end) == nil {
				jf.end = &end
			}
			break
		}
		jf.lines = append(jf.lines, append(append([]byte(nil), line...), '\n'))
	}
	if first {
		return journalFile{}, false // empty file
	}
	return jf, true
}

// jobWriter appends one job's stream to its journal file. Calls are
// serialised by the job's mutex; end closes the file.
type jobWriter struct {
	journal *jobJournal
	f       *os.File
	closed  bool
}

// line appends one newline-terminated stream line. Write errors are
// swallowed: journaling is best-effort durability on top of an in-memory
// service, and a full disk must not fail the run itself.
func (w *jobWriter) line(b []byte) {
	if w.closed || w.journal.disabled.Load() {
		return
	}
	w.f.Write(b)
}

// end appends the terminal record and closes the file.
func (w *jobWriter) end(rec journalEnd) {
	if w.closed {
		return
	}
	w.closed = true
	if !w.journal.disabled.Load() {
		if b, err := json.Marshal(rec); err == nil {
			w.f.Write(append(b, '\n'))
		}
	}
	w.f.Close()
}

// recoverJobs reloads the state directory on startup: finished jobs come
// back queryable and replayable byte-for-byte; jobs that were running
// when the process died are restarted from their journaled request —
// through the content cache, so only cells the dead run had not finished
// are re-simulated.
func (s *server) recoverJobs() error {
	if s.journal == nil {
		return nil
	}
	files, err := s.journal.load()
	if err != nil {
		return err
	}
	for _, jf := range files {
		if jf.end == nil && len(jf.lines) > 0 {
			// The process died between appending a terminal stream line and
			// its end record: reconstruct the end from the stream.
			if end, ok := terminalEnd(jf.lines[len(jf.lines)-1], s.clock); ok {
				jf.end = end
			}
		}
		if jf.end != nil {
			s.jobs.add(restoreJob(jf, s.clock))
			continue
		}
		s.resumeJob(jf)
	}
	return nil
}

// terminalEnd reconstructs an end record from a stream line if that line
// is terminal (result, study or error).
func terminalEnd(line []byte, clock func() time.Time) (*journalEnd, bool) {
	var probe struct {
		Type string `json:"type"`
	}
	if json.Unmarshal(line, &probe) != nil {
		return nil, false
	}
	switch probe.Type {
	case "result":
		var rl resultLine
		if json.Unmarshal(line, &rl) != nil {
			return nil, false
		}
		return &journalEnd{Type: "end", State: string(jobDone),
			Done: len(rl.Cells), Total: len(rl.Cells), CacheHits: rl.CacheHits,
			Finished: clock()}, true
	case "study":
		var sl studyLine
		if json.Unmarshal(line, &sl) != nil || sl.Report == nil {
			return nil, false
		}
		return &journalEnd{Type: "end", State: string(jobDone),
			Done: sl.Report.EvaluatedCells, Total: sl.Report.Budget,
			CacheHits: sl.Report.CacheHits, Finished: clock()}, true
	case "error":
		var el errorLine
		if json.Unmarshal(line, &el) != nil {
			return nil, false
		}
		return &journalEnd{Type: "end", State: string(jobFailed),
			Error: el.Error, Finished: clock()}, true
	}
	return nil, false
}

// restoreJob rebuilds a finished job from its journal: original id,
// timestamps and counters, with the raw stream lines as the replay
// buffer — so a re-attached stream is byte-identical to the original.
func restoreJob(jf journalFile, clock func() time.Time) *job {
	j := &job{
		id:        jf.meta.ID,
		kind:      jf.meta.Kind,
		hash:      jf.meta.Hash,
		clock:     clock,
		created:   jf.meta.Created,
		lines:     jf.lines,
		state:     jobState(jf.end.State),
		done:      jf.end.Done,
		total:     jf.end.Total,
		cacheHits: jf.end.CacheHits,
		errMsg:    jf.end.Error,
		finished:  jf.end.Finished,
	}
	if !validJobState(jf.end.State) || j.state == jobRunning {
		j.state = jobFailed
		j.errMsg = "journal ended in an invalid state"
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// resumeJob restarts a job that was running when the process died: its
// journal is reset to the meta line, the original request is re-planned,
// and execution restarts under the original job id. The restarted run
// reads the content cache, so cells the dead run completed are replayed
// from cache rather than re-simulated. Re-planning failures surface as a
// failed job, not a dead server.
func (s *server) resumeJob(jf journalFile) {
	j := newJob(jf.meta.Kind, jf.meta.Hash, jf.meta.Total, s.clock)
	j.id = jf.meta.ID
	j.created = jf.meta.Created
	if w, err := s.journal.reset(jf.meta); err == nil {
		j.persist = w
	}
	var run func(ctx context.Context, emit func(any) error)
	switch jf.meta.Kind {
	case "grid":
		plan, _, err := s.planGrid(bytes.NewReader(jf.meta.Request))
		if err == nil {
			run = func(ctx context.Context, emit func(any) error) { s.runGrid(ctx, plan, emit) }
		}
	case "study":
		plan, _, err := s.planStudy(bytes.NewReader(jf.meta.Request))
		if err == nil {
			run = func(ctx context.Context, emit func(any) error) { s.runStudy(ctx, plan, emit) }
		}
	}
	s.jobs.add(j)
	if run == nil {
		j.append(errorLine{Type: "error",
			Error: "restart: journaled request no longer plans (changed limits or corrupt journal)"})
		return
	}
	// The dead process held an admission slot for this job; its
	// continuation takes one directly rather than re-queueing behind
	// -max-inflight (recovery is a resumption, not a new submission).
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	s.launch(j, run)
}

// crash simulates process death for tests: journal writes stop (files
// freeze at their current content, like a kill would leave them),
// running jobs are cancelled and joined. The server must not be used
// afterwards; start a fresh one on the same state dir to exercise
// recovery.
func (s *server) crash() {
	if s.journal != nil {
		s.journal.disabled.Store(true)
	}
	for _, j := range s.jobs.snapshot() {
		j.requestCancel()
	}
	s.jobsWG.Wait()
}
