package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"physched/internal/analysis/driver"
)

// WireCanon enforces the canonical-wire contract on internal/spec and
// internal/opt. A struct participates in the wire when it declares a
// `json` tag on some field, or is reachable from such a struct through
// field types — that is the set encoding/json will walk when a spec,
// grid, study or report is canonically encoded and content-hashed.
// In-process runtime structs (pools, callbacks, contexts) carry no tags
// and are skipped. For every participating struct:
//
//   - every exported field needs an explicit `json` tag (an implicit
//     Go-cased name is an accidental wire commitment and breaks the
//     snake_case convention pinned by the golden files), and the tag's
//     name must be snake_case;
//   - no field may be (or contain) a map: map iteration order would leak
//     into the canonical encoding and break SHA-256 content hashing —
//     the same hazard class PR 2 fuzz-pinned out of the encoder.
var WireCanon = &driver.Analyzer{
	Name: "wirecanon",
	Doc:  "require snake_case json tags and forbid map fields on wire-participating structs",
	Run:  runWireCanon,
}

func runWireCanon(pass *driver.Pass) error {
	structs := map[string]*wireStruct{} // by type name, this package only
	var order []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			structs[ts.Name.Name] = &wireStruct{name: ts.Name.Name, st: st}
			order = append(order, ts.Name.Name)
			return true
		})
	}
	// Roots: structs that declare json tags themselves.
	var queue []string
	for _, name := range order {
		ws := structs[name]
		if hasJSONTag(ws.st) {
			ws.wire = true
			queue = append(queue, name)
		}
	}
	// Closure: field types of wire structs participate too (except
	// behind json:"-", which never reaches the encoder).
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, field := range structs[name].st.Fields.List {
			if tag, ok := jsonTagName(field); ok && tag == "-" {
				continue
			}
			for _, ref := range referencedStructs(pass, field.Type, structs) {
				if !structs[ref].wire {
					structs[ref].wire = true
					queue = append(queue, ref)
				}
			}
		}
	}
	for _, name := range order {
		if ws := structs[name]; ws.wire {
			checkWireStruct(pass, ws.name, ws.st)
		}
	}
	return nil
}

type wireStruct struct {
	name string
	st   *ast.StructType
	wire bool
}

func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if _, ok := jsonTagName(field); ok {
			return true
		}
	}
	return false
}

// referencedStructs resolves the struct types (declared in this package)
// named inside a field type expression.
func referencedStructs(pass *driver.Pass, typ ast.Expr, structs map[string]*wireStruct) []string {
	var out []string
	ast.Inspect(typ, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
		if !ok || tn.Pkg() != pass.Pkg {
			return true
		}
		if _, declared := structs[tn.Name()]; declared {
			out = append(out, tn.Name())
		}
		return true
	})
	return out
}

func checkWireStruct(pass *driver.Pass, structName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		names := fieldNames(field)
		exported := false
		for _, name := range names {
			if ast.IsExported(name) {
				exported = true
			}
		}
		if !exported {
			continue
		}
		label := structName + "." + strings.Join(names, ",")

		tagName, hasTag := jsonTagName(field)
		switch {
		case !hasTag:
			pass.Reportf(field.Pos(),
				"exported field %s has no json tag: wire structs must name every field explicitly (snake_case)", label)
		case tagName == "-" || tagName == "":
			// json:"-" excludes the field; an empty name with options
			// (`json:",omitempty"`) keeps the Go name — reject the latter.
			if tagName == "" {
				pass.Reportf(field.Pos(),
					"exported field %s has a json tag without a name: the Go field name would leak onto the wire", label)
			}
		case !isSnakeCase(tagName):
			pass.Reportf(field.Pos(),
				"json tag %q on %s is not snake_case ([a-z0-9_])", tagName, label)
		}

		if tagName == "-" {
			continue // not on the wire; map hazard does not apply
		}
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil && containsMap(tv.Type, 0) {
			pass.Reportf(field.Pos(),
				"field %s contains a map: iteration order would leak into the canonical encoding and break content hashing; use a sorted slice of pairs", label)
		}
	}
}

func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		// Embedded field: its type name is the field name.
		expr := field.Type
		for {
			switch e := expr.(type) {
			case *ast.StarExpr:
				expr = e.X
			case *ast.SelectorExpr:
				return []string{e.Sel.Name}
			case *ast.Ident:
				return []string{e.Name}
			default:
				return []string{"<embedded>"}
			}
		}
	}
	names := make([]string, len(field.Names))
	for i, n := range field.Names {
		names[i] = n.Name
	}
	return names
}

func jsonTagName(field *ast.Field) (name string, ok bool) {
	if field.Tag == nil {
		return "", false
	}
	raw := strings.Trim(field.Tag.Value, "`")
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	name, _, _ = strings.Cut(tag, ",")
	return name, true
}

func isSnakeCase(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '_':
		default:
			return false
		}
	}
	return s != ""
}

// containsMap walks a type for map components: direct maps and maps
// behind pointers/slices/arrays. Nested named structs are not recursed:
// exported ones in the wire packages get their own check, and foreign
// types (time.Time, json.RawMessage) are trusted to encode canonically.
func containsMap(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Pointer:
		return containsMap(u.Elem(), depth+1)
	case *types.Slice:
		return containsMap(u.Elem(), depth+1)
	case *types.Array:
		return containsMap(u.Elem(), depth+1)
	}
	return false
}
