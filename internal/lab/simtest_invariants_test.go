// Invariant coverage for the scenarios the rest of this package's tests
// exercise, routed through the internal/simtest harness. This lives in
// the external test package: simtest imports lab, so an internal test
// file could not import it back.
package lab_test

import (
	"math/rand"
	"testing"

	"physched/internal/cluster"
	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/sched"
	"physched/internal/simtest"
	"physched/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func smallScenario() lab.Scenario {
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.CacheBytes = 20 * model.GB
	p.DataspaceBytes = 200 * model.GB
	p.MeanJobEvents = 2000
	return lab.Scenario{
		Params:      p,
		NewPolicy:   func() sched.Policy { return sched.NewOutOfOrder() },
		Load:        1.0,
		Seed:        5,
		WarmupJobs:  20,
		MeasureJobs: 80,
	}
}

// TestInvariantsBaseline holds the paper's fault-free configuration to
// the simtest contract.
func TestInvariantsBaseline(t *testing.T) {
	simtest.Run(t, smallScenario())
}

// TestInvariantsUnderChurn holds the same scenario to the contract with
// every fault mechanism enabled at once.
func TestInvariantsUnderChurn(t *testing.T) {
	s := smallScenario()
	s.Faults = cluster.FaultModel{
		MTBFHours: 36, RepairHours: 3, CacheLoss: true,
		DayNightSwing: 0.5, DecommissionProb: 0.1, SpareNodes: 2, JoinHours: 24,
	}
	res := simtest.Run(t, s)
	if !res.Overloaded && res.Cluster.Failures == 0 {
		t.Error("churn scenario saw no failures")
	}
}

// TestInvariantsInhomogeneousWorkload holds the day/night workload — the
// other stochastic extension — to the contract, with and without churn.
func TestInvariantsInhomogeneousWorkload(t *testing.T) {
	s := smallScenario()
	params := s.Params
	s.NewWorkload = func(seed int64, jobsPerHour float64) workload.Source {
		return workload.NewInhomogeneous(params, newRand(seed),
			workload.DayNight(jobsPerHour, 0.8), jobsPerHour*1.8)
	}
	simtest.Run(t, s)
	s.Faults = cluster.FaultModel{MTBFHours: 48, RepairHours: 2}
	simtest.Run(t, s)
}
