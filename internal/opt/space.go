package opt

import (
	"fmt"
	"strings"

	"physched/internal/spec"
)

// candidate is one point of the search space: a flat row-major index over
// the axes' choices (last axis fastest).
type candidate int

// space is the enumerated, validated candidate space of a study.
// Candidates whose resolved spec does not validate — e.g. a policy axis
// choice that rejects a parameter another axis binds — are skipped
// deterministically and counted, so a cross product over heterogeneous
// policies stays expressible. Candidates that resolve to a spec an
// earlier candidate already covers — integer axes round their points, so
// e.g. a nodes axis over [1,3] in 5 steps yields nodes 1,2,2,3,3 — are
// likewise skipped and counted: a duplicate would re-charge the budget
// for cells the study already owns and race the cache against itself.
type space struct {
	study      Study
	sizes      []int       // choices per axis
	valid      []candidate // distinct valid candidates in enumeration order
	invalid    int         // candidates skipped for failing spec validation
	duplicates int         // candidates skipped as spec-identical to earlier ones
}

// space enumerates the study's candidate space. It fails when no
// candidate validates, carrying the first candidate's error so a study
// that is wrong everywhere (not merely sparse) is self-diagnosing.
func (st Study) space() (*space, error) {
	sp := &space{study: st, sizes: make([]int, len(st.Axes))}
	total := 1
	for i, a := range st.Axes {
		sp.sizes[i] = a.size()
		total *= sp.sizes[i]
	}
	var firstErr error
	seen := make(map[string]bool, total)
	for c := candidate(0); int(c) < total; c++ {
		hash, err := sp.specFor(c).Hash() // validates
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			sp.invalid++
			continue
		}
		if seen[hash] {
			sp.duplicates++
			continue
		}
		seen[hash] = true
		sp.valid = append(sp.valid, c)
	}
	if len(sp.valid) == 0 {
		return nil, fmt.Errorf("opt: no valid candidate in a space of %d (first error: %w)", total, firstErr)
	}
	return sp, nil
}

// choices decodes a candidate into per-axis choice indices.
func (sp *space) choices(c candidate) []int {
	out := make([]int, len(sp.sizes))
	rest := int(c)
	for i := len(sp.sizes) - 1; i >= 0; i-- {
		out[i] = rest % sp.sizes[i]
		rest /= sp.sizes[i]
	}
	return out
}

// specFor resolves a candidate's complete spec: the base with every axis
// choice applied (a "load" axis binds Load, so the base may leave it
// zero). The spec keeps the base seed; replication seeds are bound per
// cell at evaluation time, exactly as a declarative grid binds its seed
// axis.
func (sp *space) specFor(c candidate) spec.Spec {
	s := sp.study.Base
	for i, choice := range sp.choices(c) {
		a := sp.study.Axes[i]
		def := axisDefs[a.Name]
		if a.categorical() {
			def.applyCat(&s, a.Values[choice])
		} else {
			def.applyNum(&s, a.points()[choice])
		}
	}
	return s
}

// label renders a candidate as "axis=value" pairs in axis order — the
// stable identity used in progress lines, leaderboards and golden files.
func (sp *space) label(c candidate) string {
	parts := make([]string, len(sp.sizes))
	for i, choice := range sp.choices(c) {
		parts[i] = sp.study.Axes[i].Name + "=" + sp.study.Axes[i].label(choice)
	}
	return strings.Join(parts, " ")
}
