// Package asciiplot renders simple multi-series line charts as terminal
// text, close enough to the paper's figures to eyeball speedup and waiting
// time curves without leaving the shell. The Y axis can be linear (speedup
// plots) or logarithmic (waiting time plots, which the paper draws from
// seconds to a week on a log scale).
package asciiplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label  string
	X, Y   []float64
	Marker rune
}

// Options control the chart rendering.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area width in columns (default 64)
	Height int  // plot area height in rows (default 18)
	LogY   bool // logarithmic Y axis
	YMin   float64
	YMax   float64 // both zero = autoscale
}

var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func Render(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 18
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY && y <= 0 {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if !any {
		return opt.Title + "\n(no data)\n"
	}
	if opt.YMin != 0 || opt.YMax != 0 {
		ymin, ymax = opt.YMin, opt.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	yc := func(y float64) float64 {
		if opt.LogY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := yc(ymin), yc(ymax)

	grid := make([][]rune, opt.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY && y <= 0 {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(opt.Width-1))
			row := opt.Height - 1 - int((yc(y)-lo)/(hi-lo)*float64(opt.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= opt.Height {
				row = opt.Height - 1
			}
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	labelW := 10
	for r, row := range grid {
		frac := float64(opt.Height-1-r) / float64(opt.Height-1)
		val := lo + frac*(hi-lo)
		if opt.LogY {
			val = math.Pow(10, val)
		}
		label := ""
		if r%3 == 0 || r == opt.Height-1 {
			label = trimNum(val)
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%*s  %-*s%s\n", labelW, "", opt.Width-len(trimNum(xmax)), trimNum(xmin), trimNum(xmax))
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", labelW, "", opt.XLabel, opt.YLabel)
	}
	var labels []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		labels = append(labels, fmt.Sprintf("%c %s", marker, s.Label))
	}
	sort.Strings(labels)
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "", strings.Join(labels, "   "))
	return b.String()
}

func trimNum(v float64) string {
	switch {
	case math.Abs(v) >= 100_000:
		return fmt.Sprintf("%.2g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
