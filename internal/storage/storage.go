// Package storage models the shared tertiary mass-storage system (CASTOR
// at CERN). CASTOR stages tape data onto disk arrays, so — exactly like the
// paper's simulator — no tape-mount latency is modelled, only a fixed
// per-node throughput from the storage system to each processing node
// (§2.4: "Throughput from tertiary storage to each node is 1 MB/s").
package storage

import "sync"

// Tertiary is the shared mass-storage service. It is safe for concurrent
// use so that independent simulations can share one instance when sweeping
// loads in parallel, although a single simulation always uses it from one
// goroutine.
type Tertiary struct {
	bytesPerSec float64
	eventBytes  int64

	mu           sync.Mutex
	eventsServed int64
	bytesServed  int64
	streams      int
	maxStreams   int
}

// New returns a tertiary storage with the given per-node throughput and
// event size.
func New(bytesPerSec float64, eventBytes int64) *Tertiary {
	if bytesPerSec <= 0 || eventBytes <= 0 {
		panic("storage: throughput and event size must be positive")
	}
	return &Tertiary{bytesPerSec: bytesPerSec, eventBytes: eventBytes}
}

// TransferTime returns the time to move n events to one node.
func (t *Tertiary) TransferTime(n int64) float64 {
	return float64(n*t.eventBytes) / t.bytesPerSec
}

// PerEventTransferTime returns the transfer time of a single event.
func (t *Tertiary) PerEventTransferTime() float64 { return t.TransferTime(1) }

// StartStream records that a node began streaming from the storage system;
// EndStream the converse. The simulator uses the pair to expose the peak
// number of concurrent tape streams, validating the per-node-channel
// assumption.
func (t *Tertiary) StartStream() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.streams++
	if t.streams > t.maxStreams {
		t.maxStreams = t.streams
	}
}

// EndStream records the end of a stream of n events.
func (t *Tertiary) EndStream(events int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.streams--
	t.eventsServed += events
	t.bytesServed += events * t.eventBytes
}

// EventsServed returns the cumulative number of events delivered.
func (t *Tertiary) EventsServed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsServed
}

// BytesServed returns the cumulative bytes delivered.
func (t *Tertiary) BytesServed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesServed
}

// MaxConcurrentStreams returns the peak number of simultaneous streams.
func (t *Tertiary) MaxConcurrentStreams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxStreams
}
