package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"physched/internal/obs"
	"physched/internal/opt"
)

// studyPlan is a fully validated study request: prepared once (validated,
// normalised, hashed, space enumerated) and run as-is.
type studyPlan struct {
	prep *opt.Prepared
}

func (p *studyPlan) hash() string { return p.prep.Hash }

// planStudy parses and fully validates one study request body, returning
// the HTTP status to report on failure. The budget is bounded by
// -max-cells: a study charges at most budget cells, so the same knob
// that caps grids caps searches.
func (s *server) planStudy(body io.Reader) (*studyPlan, int, error) {
	st, err := opt.Parse(body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	prep, err := st.Prepare() // validates, normalises, hashes, enumerates
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	if s.maxCells > 0 && prep.Study.Search.BudgetCells > s.maxCells {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("study budget is %d cells, limit is %d", prep.Study.Search.BudgetCells, s.maxCells)
	}
	return &studyPlan{prep: prep}, 0, nil
}

// runStudy executes the plan on the server's shared pool under ctx,
// calling emit sequentially with every NDJSON line: progress lines, then
// exactly one study or error line. Candidate evaluations read and feed
// the server's content-addressed cache, so a re-POSTed study re-simulates
// nothing; the finished report is additionally retained in memory for
// GET /v1/studies/{hash}. A failed emit (disconnected client) stops
// further writes without aborting the search — cancelling is ctx's job.
func (s *server) runStudy(ctx context.Context, p *studyPlan, emit func(any) error) {
	// Channel slack: successive halving re-reads each rung's earlier
	// replications, so the executed cell count exceeds the budget by at
	// most a factor of eta/(eta-1) ≤ 2.
	streamExec(2*p.prep.Study.Search.BudgetCells+64, func(progress func(progressLine)) (*opt.Report, error) {
		return p.prep.Run(opt.Options{
			Pool:    s.pool,
			Context: ctx,
			Cache:   s.cache,
			Progress: func(u opt.Progress) {
				progress(progressLine{
					Type: "progress", Done: u.Done, Total: u.Total,
					Label: u.Label, Seed: u.Seed,
					Overloaded: u.Overloaded, FromCache: u.FromCache,
				})
			},
		})
	}, func(report *opt.Report) any {
		s.studies.put(p.hash(), report)
		return studyLine{Type: "study", StudyHash: p.hash(), Report: report}
	}, emit)
}

// handleStudies executes a budgeted scenario search (internal/opt) on the
// server's shared pool. The synchronous form streams NDJSON progress
// under the request context and finishes with a study line carrying the
// report; with ?async=1 it returns 202 and a job id immediately, sharing
// the grid jobs' lifecycle endpoints (status, stream, list, cancel).
func (s *server) handleStudies(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, status, err := s.planStudy(bytes.NewReader(body))
	if err != nil {
		writeError(w, status, err)
		return
	}
	if !s.admit() {
		s.rejectNotAdmitted(w)
		return
	}
	if boolParam(r.URL.Query(), "async") {
		job := s.startJob(jobParams{
			kind: "study", hash: plan.hash(), total: plan.prep.Study.Search.BudgetCells,
			request: body, requestID: obs.RequestIDFrom(r.Context()),
		}, func(ctx context.Context, j *job, emit func(any) error) { s.runStudy(ctx, plan, emit) })
		w.Header().Set("Location", "/v1/jobs/"+job.id)
		writeJSON(w, http.StatusAccepted, job.submitted())
		return
	}
	defer s.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	s.runStudy(r.Context(), plan, func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err // dead connection: stop the stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleStudyReport serves a finished study's report by its study hash.
func (s *server) handleStudyReport(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	report, ok := s.studies.get(hash)
	if !ok {
		writeError(w, http.StatusNotFound,
			errors.New("no report for this study hash (reports are retained in memory; re-POST the study — a warm cache re-simulates nothing)"))
		return
	}
	writeJSON(w, http.StatusOK, studyLine{Type: "study", StudyHash: hash, Report: report})
}

// handleStudyList lists retained study reports as one-line summaries,
// paginated like every other listing. The full report stays one GET
// /v1/studies/{hash} away.
func (s *server) handleStudyList(w http.ResponseWriter, r *http.Request) {
	page, size, err := parsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	summaries, info := paginate(s.studies.list(), page, size)
	writeJSON(w, http.StatusOK, studyList{Studies: summaries, PageInfo: info})
}

// reportStore retains finished study reports by hash with bounded,
// oldest-first eviction. Reports are small (a leaderboard, a trajectory)
// and rebuildable at cache speed, so memory retention suffices.
type reportStore struct {
	mu      sync.Mutex
	max     int
	m       map[string]*opt.Report
	order   []string
	evicted uint64 // reports dropped by retention, for /metrics
}

func newReportStore(max int) *reportStore {
	return &reportStore{max: max, m: map[string]*opt.Report{}}
}

func (r *reportStore) put(hash string, rep *opt.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[hash]; !ok {
		r.order = append(r.order, hash)
	}
	r.m[hash] = rep
	for len(r.order) > r.max {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
		r.evicted++
	}
}

func (r *reportStore) get(hash string) (*opt.Report, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.m[hash]
	return rep, ok
}

// list summarises retained reports, sorted by hash so pagination is
// stable regardless of completion order.
func (r *reportStore) list() []studySummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]studySummary, 0, len(r.m))
	for hash, rep := range r.m {
		sum := studySummary{
			Hash:           hash,
			Algorithm:      rep.Algorithm,
			Budget:         rep.Budget,
			EvaluatedCells: rep.EvaluatedCells,
		}
		if rep.Best != nil {
			v := rep.Best.Value
			sum.BestValue = &v
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Hash < out[b].Hash })
	return out
}

// stats snapshots retention counters for /metrics.
func (r *reportStore) stats() (held int, evicted uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m), r.evicted
}
