package storage

import (
	"sync"
	"testing"
)

func TestTransferTime(t *testing.T) {
	s := New(1_000_000, 600_000) // 1 MB/s, 600 KB events
	if got := s.TransferTime(1); got != 0.6 {
		t.Errorf("TransferTime(1) = %v, want 0.6", got)
	}
	if got := s.TransferTime(100); got != 60 {
		t.Errorf("TransferTime(100) = %v, want 60", got)
	}
	if got := s.PerEventTransferTime(); got != 0.6 {
		t.Errorf("PerEventTransferTime = %v", got)
	}
}

func TestStreamAccounting(t *testing.T) {
	s := New(1_000_000, 600_000)
	s.StartStream()
	s.StartStream()
	if got := s.MaxConcurrentStreams(); got != 2 {
		t.Errorf("MaxConcurrentStreams = %d, want 2", got)
	}
	s.EndStream(100)
	s.EndStream(50)
	if got := s.EventsServed(); got != 150 {
		t.Errorf("EventsServed = %d, want 150", got)
	}
	if got := s.BytesServed(); got != 150*600_000 {
		t.Errorf("BytesServed = %d", got)
	}
	// Peak is monotone.
	s.StartStream()
	s.EndStream(1)
	if got := s.MaxConcurrentStreams(); got != 2 {
		t.Errorf("peak dropped to %d", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New(1_000_000, 600_000)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				s.StartStream()
				s.EndStream(1)
			}
		}()
	}
	wg.Wait()
	if got := s.EventsServed(); got != 3200 {
		t.Errorf("EventsServed = %d, want 3200", got)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, c := range []struct {
		bps float64
		ev  int64
	}{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v,%v) did not panic", c.bps, c.ev)
				}
			}()
			New(c.bps, c.ev)
		}()
	}
}
