// Command physchedsim runs a single cluster-scheduling simulation and
// prints its metrics, optionally with the waiting-time histogram.
//
// Usage:
//
//	physchedsim -policy outoforder -load 1.5 [-nodes 10] [-cache-gb 100]
//	            [-delay-hours 48] [-stripe 5000] [-jobs 600] [-seed 1]
//	            [-histogram]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"physched/internal/config"
	"physched/internal/model"
	"physched/internal/runner"
	"physched/internal/sched"
	"physched/internal/stats"
	"physched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("physchedsim: ")
	var (
		policy    = flag.String("policy", "outoforder", "farm | splitting | cacheoriented | outoforder | replication | delayed | adaptive | partitioned | affinefarm")
		load      = flag.Float64("load", 1.5, "arrival rate in jobs per hour")
		nodes     = flag.Int("nodes", 10, "number of processing nodes")
		cacheGB   = flag.Int64("cache-gb", 100, "per-node disk cache in GB")
		delayH    = flag.Float64("delay-hours", 48, "period delay for the delayed policy, hours")
		stripe    = flag.Int64("stripe", 5000, "stripe size in events (delayed/adaptive)")
		jobs      = flag.Int("jobs", 600, "measured jobs")
		warmup    = flag.Int("warmup", 150, "warm-up jobs")
		seed      = flag.Int64("seed", 1, "random seed")
		histogram = flag.Bool("histogram", false, "print the waiting-time histogram")
		stated    = flag.Bool("stated-params", false, "use the paper's stated raw constants instead of the calibrated preset")
		cfgPath   = flag.String("config", "", "JSON scenario file (overrides the other scenario flags)")
		tracePath = flag.String("trace", "", "write a JSONL execution trace to this file")
	)
	flag.Parse()

	if *cfgPath != "" {
		runFromConfig(*cfgPath, *tracePath, *histogram)
		return
	}

	params := model.PaperCalibrated()
	if *stated {
		params = model.PaperStated()
	}
	params.Nodes = *nodes
	params.CacheBytes = *cacheGB * model.GB

	mk, err := policyFactory(*policy, *delayH, *stripe)
	if err != nil {
		log.Fatal(err)
	}
	s := runner.Scenario{
		Params:      params,
		NewPolicy:   mk,
		Load:        *load,
		Seed:        *seed,
		WarmupJobs:  *warmup,
		MeasureJobs: *jobs,
	}
	if *policy == "delayed" || *policy == "adaptive" {
		s.OverloadBacklog = int64(3**load*(*delayH)) + int64(25*params.Nodes)
	}
	res := runSimulation(s, *tracePath)
	report(res, params, *histogram)
}

// report prints the run's metrics.
func report(res runner.Result, params model.Params, histogram bool) {
	fmt.Printf("policy            %s\n", res.PolicyName)
	fmt.Printf("load              %.3f jobs/hour (theoretical max %.2f, farm max %.2f)\n",
		res.Load, params.MaxTheoreticalLoad(), params.FarmMaxLoad())
	if res.Overloaded {
		fmt.Println("state             OVERLOADED (queues grow without bound)")
		return
	}
	fmt.Printf("state             steady (%d jobs measured over %s simulated)\n",
		res.MeasuredJobs, stats.FormatDuration(res.SimTime))
	fmt.Printf("avg speedup       %.2f (max possible %.1f)\n", res.AvgSpeedup, params.MaxSpeedup())
	fmt.Printf("avg waiting       %s\n", stats.FormatDuration(res.AvgWaiting))
	fmt.Printf("p99 waiting       %s\n", stats.FormatDuration(res.P99Waiting))
	fmt.Printf("max waiting       %s\n", stats.FormatDuration(res.MaxWaiting))
	fmt.Printf("avg processing    %s (single-node no-cache reference %s)\n",
		stats.FormatDuration(res.AvgProc), stats.FormatDuration(params.SingleNodeNoCacheTime()))
	st := res.Cluster
	total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape
	if total > 0 {
		fmt.Printf("data sources      cache %.1f%%  remote %.1f%%  tape %.1f%%  (replicated %.3f%%)\n",
			pct(st.EventsFromCache, total), pct(st.EventsFromRemote, total),
			pct(st.EventsFromTape, total), pct(st.EventsReplicated, total))
	}
	fmt.Printf("dispatches        %d (%d preemptions)\n", st.Dispatches, st.Preemptions)
	if histogram {
		fmt.Println("\nwaiting-time distribution:")
		fmt.Print(res.Collector.WaitingHistogram().String())
	}
}

// runFromConfig executes a scenario loaded from a JSON file.
func runFromConfig(path, tracePath string, histogram bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	cfg, err := config.Parse(f)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	res := runSimulation(s, tracePath)
	report(res, s.Params, histogram)
}

// runSimulation runs s, streaming a trace to tracePath when set.
func runSimulation(s runner.Scenario, tracePath string) runner.Result {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace written to %s\n", tracePath)
		}()
		s.Trace = trace.New(1, f) // stream everything, keep memory flat
	}
	return runner.Run(s)
}

func pct(a, b int64) float64 { return 100 * float64(a) / float64(b) }

func policyFactory(name string, delayHours float64, stripe int64) (func() sched.Policy, error) {
	switch name {
	case "farm":
		return func() sched.Policy { return sched.NewFarm() }, nil
	case "splitting":
		return func() sched.Policy { return sched.NewSplitting() }, nil
	case "cacheoriented":
		return func() sched.Policy { return sched.NewCacheOriented() }, nil
	case "outoforder":
		return func() sched.Policy { return sched.NewOutOfOrder() }, nil
	case "replication":
		return func() sched.Policy { return sched.NewReplication() }, nil
	case "delayed":
		return func() sched.Policy { return sched.NewDelayed(delayHours*model.Hour, stripe) }, nil
	case "adaptive":
		return func() sched.Policy { return sched.NewAdaptive(stripe) }, nil
	case "partitioned":
		return func() sched.Policy { return sched.NewPartitioned() }, nil
	case "affinefarm":
		return func() sched.Policy { return sched.NewAffineFarm() }, nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}
