package sched

import (
	"fmt"
	"sort"
	"sync"

	"physched/internal/model"
)

// Args carries the serialisable parameters a registered policy factory may
// consume. Every field is optional; factories apply their own defaults, so
// the zero Args is valid for every built-in policy. Args is deliberately a
// closed set of plain values: it is the part of a policy specification
// that travels through JSON spec files, content hashes and the physchedd
// wire protocol.
type Args struct {
	// DelayHours is the delayed policy's accumulation period, in hours.
	DelayHours float64
	// StripeEvents is the stripe size for the delayed/adaptive policies.
	StripeEvents int64
	// MaxWaitHours overrides the out-of-order aging limit (default 48 h).
	MaxWaitHours float64
}

// Factory builds a fresh policy instance from its serialisable arguments.
// Policies are stateful, so a factory is invoked once per simulation run.
type Factory func(Args) (Policy, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a policy constructible by name through New, extending the
// set of policies reachable from spec files and the physchedd service
// without touching this package. It rejects empty names and names already
// taken (including the built-ins).
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sched: Register with empty policy name")
	}
	if f == nil {
		return fmt.Errorf("sched: Register %q with nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sched: policy %q already registered", name)
	}
	registry[name] = f
	return nil
}

// mustRegister is Register for the built-ins, where a failure is a
// programming error.
func mustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// New builds the named policy with the given arguments. Unknown names
// report the registered ones, so a typo in a spec file is self-diagnosing.
func New(name string, a Args) (Policy, error) {
	if name == "" {
		return nil, fmt.Errorf("sched: policy name missing (known: %v)", Names())
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (known: %v)", name, Names())
	}
	return f(a)
}

// Names lists the registered policy names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// stripeOrDefault applies the paper's default stripe size.
func stripeOrDefault(a Args) int64 {
	if a.StripeEvents > 0 {
		return a.StripeEvents
	}
	return DefaultStripe
}

// rejectUnused fails when a carries an argument the policy does not
// consume. A spec naming the farm policy with delay_hours set would
// otherwise validate, run a plain farm, and make the user believe delayed
// scheduling was simulated — dead arguments must fail as loudly as
// misspelled field names do.
func rejectUnused(name string, a Args, delay, stripe, maxWait bool) error {
	if !delay && a.DelayHours != 0 {
		return fmt.Errorf("sched: policy %q does not take delay_hours", name)
	}
	if !stripe && a.StripeEvents != 0 {
		return fmt.Errorf("sched: policy %q does not take stripe_events", name)
	}
	if !maxWait && a.MaxWaitHours != 0 {
		return fmt.Errorf("sched: policy %q does not take max_wait_hours", name)
	}
	return nil
}

// argless registers a policy that consumes no arguments.
func argless(name string, mk func() Policy) {
	mustRegister(name, func(a Args) (Policy, error) {
		if err := rejectUnused(name, a, false, false, false); err != nil {
			return nil, err
		}
		return mk(), nil
	})
}

// outOfOrderFactory builds the out-of-order family (plain or replicating)
// with the optional aging-limit override.
func outOfOrderFactory(name string, mk func() *OutOfOrder) Factory {
	return func(a Args) (Policy, error) {
		if err := rejectUnused(name, a, false, false, true); err != nil {
			return nil, err
		}
		if a.MaxWaitHours < 0 {
			return nil, fmt.Errorf("sched: max_wait_hours must be non-negative, got %v", a.MaxWaitHours)
		}
		p := mk()
		if a.MaxWaitHours > 0 {
			p.MaxWait = a.MaxWaitHours * model.Hour
		}
		return p, nil
	}
}

func init() {
	argless("farm", func() Policy { return NewFarm() })
	argless("splitting", func() Policy { return NewSplitting() })
	argless("cacheoriented", func() Policy { return NewCacheOriented() })
	argless("partitioned", func() Policy { return NewPartitioned() })
	argless("affinefarm", func() Policy { return NewAffineFarm() })
	mustRegister("outoforder", outOfOrderFactory("outoforder", NewOutOfOrder))
	mustRegister("replication", outOfOrderFactory("replication", NewReplication))
	mustRegister("delayed", func(a Args) (Policy, error) {
		if err := rejectUnused("delayed", a, true, true, false); err != nil {
			return nil, err
		}
		if a.DelayHours < 0 {
			return nil, fmt.Errorf("sched: delayed policy needs a non-negative delay, got %v h", a.DelayHours)
		}
		if a.StripeEvents < 0 {
			return nil, fmt.Errorf("sched: stripe_events must be non-negative, got %d", a.StripeEvents)
		}
		return NewDelayed(a.DelayHours*model.Hour, stripeOrDefault(a)), nil
	})
	mustRegister("adaptive", func(a Args) (Policy, error) {
		if err := rejectUnused("adaptive", a, false, true, false); err != nil {
			return nil, err
		}
		if a.StripeEvents < 0 {
			return nil, fmt.Errorf("sched: stripe_events must be non-negative, got %d", a.StripeEvents)
		}
		return NewAdaptive(stripeOrDefault(a)), nil
	})
}
