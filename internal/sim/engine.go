// Package sim is a minimal deterministic discrete-event simulation engine:
// a clock, a time-ordered event queue with stable FIFO ordering among
// simultaneous events, and cancellable timers. It is single-goroutine by
// design — the paper's simulator models days to weeks of cluster operation,
// which only stays fast if the hot loop is allocation-light and lock-free.
//
// The engine recycles Event objects through a free list, so steady-state
// stepping performs no allocations. The price is a narrow handle contract:
// an *Event returned by At or After is valid until its callback has run
// (or until the engine drops it after a cancellation); using a handle past
// that point observes an unrelated, recycled event. All in-tree callers
// clear their handles when the callback fires.
//
// The pending set is a calendar (bucket) queue keyed on simulated time —
// see calendar.go — giving O(1) amortised insert and pop for the
// near-monotone schedule pattern of a simulation, with simultaneous events
// extracted as one batch so a burst of same-timestamp completions drains
// without re-searching the calendar per event.
package sim

import (
	"fmt"
	"math/rand"
)

// Engine drives a simulation. Create one with New, schedule callbacks with
// At or After, and call Run or RunUntil.
type Engine struct {
	now   float64
	seq   uint64
	rng   *rand.Rand
	steps uint64
	live  int    // scheduled, non-cancelled events (O(1) Pending)
	free  *Event // free list of recycled events

	cal calendar // pending events, ordered by (time, seq)

	// batch holds the cohort of minimal-time events extracted from the
	// calendar in one scan, sorted by seq; Step consumes it before
	// touching the calendar again. Events in the batch are still
	// scheduled (they count as live and may be cancelled).
	batch    []*Event
	batchPos int
}

// Event state, tracked so Cancel keeps the live count exact whether the
// event still sits in a calendar bucket, was extracted into the pending
// same-timestamp batch, or already ran.
const (
	stateQueued int8 = iota // in a calendar bucket
	stateBatch              // extracted into the batch, not yet executed
	stateDone               // executed or collected; on the free list
)

// Event is a handle to a scheduled callback; it can be cancelled any time
// before its callback runs.
type Event struct {
	time      float64
	seq       uint64
	vb        int64 // virtual calendar bucket = floor(time/width)
	fn        func()
	fnArg     func(any) // alternative arg-taking callback (AtCall)
	arg       any
	eng       *Engine
	next      *Event // free-list link
	cancelled bool
	state     int8
}

// Cancel prevents the event's callback from running. Cancelling an already
// cancelled event is a no-op. Cancelling after the callback has run is
// outside the handle contract (see the package comment).
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.state != stateDone {
		e.eng.live--
	}
}

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Time returns the simulated time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// New returns an engine whose clock starts at zero, with a deterministic
// random source derived from seed.
func New(seed int64) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	e.cal.init()
	return e
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it always indicates a logic error in a policy.
func (e *Engine) At(t float64, fn func()) *Event {
	ev := e.acquire(t)
	ev.fn = fn
	e.cal.insert(ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event { return e.At(e.now+d, fn) }

// AtCall schedules fn(arg) to run at absolute simulated time t. Unlike At
// with a closure, binding the argument through the event itself allocates
// nothing when fn is reused and arg is a pointer — the form per-job timers
// (fairness aging, fault repair) use on the hot path.
func (e *Engine) AtCall(t float64, fn func(any), arg any) *Event {
	ev := e.acquire(t)
	ev.fnArg = fn
	ev.arg = arg
	e.cal.insert(ev)
	return ev
}

// AfterCall schedules fn(arg) to run d seconds from now.
func (e *Engine) AfterCall(d float64, fn func(any), arg any) *Event {
	return e.AtCall(e.now+d, fn, arg)
}

// acquire takes a recycled (or new) Event and stamps it with time t and
// the next sequence number.
//
//physched:hotpath
func (e *Engine) acquire(t float64) *Event {
	if t < e.now {
		//physched:allocok panic path: scheduling in the past is a caller bug, never steady state
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.cancelled = false
	} else {
		ev = &Event{eng: e} //physched:allocok pool miss: warm-up allocation, recycled for the rest of the run
	}
	ev.time = t
	ev.seq = e.seq
	ev.state = stateQueued
	e.seq++
	e.live++
	return ev
}

// release returns a consumed event to the free list. The callback
// references are dropped immediately so closures are not retained; the
// cancelled flag is left untouched until reuse, keeping Cancelled()
// meaningful on handles that were cancelled and later collected.
//
//physched:hotpath
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.state = stateDone
	ev.next = e.free
	e.free = ev
}

// Pending returns the number of scheduled (non-cancelled) events, in O(1).
func (e *Engine) Pending() int { return e.live }

// head returns the next event in (time, seq) order without consuming it,
// releasing cancelled events it skips over; nil when nothing is pending.
//
//physched:hotpath
func (e *Engine) head() *Event {
	for {
		if e.batchPos == len(e.batch) {
			e.batch = e.cal.extractMinBatch(e.now, e.batch[:0])
			e.batchPos = 0
			if len(e.batch) == 0 {
				return nil
			}
		}
		ev := e.batch[e.batchPos]
		if !ev.cancelled {
			return ev
		}
		// Cancel already removed it from the live count.
		e.batchPos++
		e.release(ev)
	}
}

// Step executes the next event. It reports false when the queue is empty.
//
//physched:hotpath
func (e *Engine) Step() bool {
	ev := e.head()
	if ev == nil {
		return false
	}
	e.batchPos++
	e.now = ev.time
	e.steps++
	e.live--
	fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
	e.release(ev)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for {
		ev := e.head()
		if ev == nil || ev.time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
