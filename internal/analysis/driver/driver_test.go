package driver

import (
	"go/ast"
	"go/token"
	"testing"
)

// TestLoadTypeChecks loads this package through the go list + go/types
// pipeline and checks the pieces analyzers rely on: full syntax with
// comments, a type-checked *types.Package, and populated Uses.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d matched packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "physched/internal/analysis/driver" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if p.Standard || !p.Matched {
		t.Errorf("flags: standard=%v matched=%v", p.Standard, p.Matched)
	}
	if len(p.Files) == 0 || p.Types == nil || p.Info == nil {
		t.Fatal("package loaded without syntax or type information")
	}
	if len(p.Info.Uses) == 0 {
		t.Error("TypesInfo.Uses is empty — analyzers cannot resolve selectors")
	}
	comments := 0
	for _, f := range p.Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Error("comments were not retained — directive parsing would be blind")
	}
}

// TestRunSortsDiagnostics: Run must order findings by position then
// analyzer so lint output is itself deterministic.
func TestRunSortsDiagnostics(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Report every function declaration, walking files in reverse so the
	// raw emission order is scrambled relative to source order.
	a := &Analyzer{
		Name: "declorder",
		Doc:  "test analyzer",
		Run: func(pass *Pass) error {
			for i := len(pass.Files) - 1; i >= 0; i-- {
				ast.Inspect(pass.Files[i], func(n ast.Node) bool {
					if fd, ok := n.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := Run(pkgs, func(*Package) []*Analyzer { return []*Analyzer{a} })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected multiple diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].Pos, diags[i].Pos
		if prev.Filename > cur.Filename ||
			(prev.Filename == cur.Filename && prev.Line > cur.Line) {
			t.Errorf("diagnostics out of order: %v before %v", prev, cur)
		}
	}
}

// TestReportfPosition: positions round-trip through the shared FileSet.
func TestReportfPosition(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	p := pkgs[0]
	pass := &Pass{Analyzer: &Analyzer{Name: "x"}, Fset: p.Fset, Files: p.Files}
	var got []Diagnostic
	pass.report = func(d Diagnostic) { got = append(got, d) }
	pos := p.Files[0].Package
	pass.Reportf(pos, "at %s", "package clause")
	if len(got) != 1 {
		t.Fatalf("reported %d diagnostics", len(got))
	}
	if got[0].Pos.Line != p.Fset.Position(pos).Line || got[0].Pos.Filename == "" {
		t.Errorf("bad position %v", got[0].Pos)
	}
	var _ token.Position = got[0].Pos
}
