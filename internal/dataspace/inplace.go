package dataspace

// This file holds the allocation-free counterparts of the value-style Set
// operations: in-place mutators for owners of a long-lived set (the node
// disk caches) and append-style queries that write into caller-owned
// scratch buffers (the per-dispatch planning paths). They exist because
// the simulator's hot loop performs millions of cache updates and plan
// partitions per run; the value API stays for everything else.

// Reset empties the set, keeping its storage for reuse.
func (s *Set) Reset() { s.ivs = s.ivs[:0] }

// AddInPlace adds iv to s, merging overlapping or adjacent intervals,
// reusing s's storage. Any previously obtained view of s (Intervals, a
// copy of the Set value) is invalidated.
func (s *Set) AddInPlace(iv Interval) {
	if iv.Empty() {
		return
	}
	ivs := s.ivs
	// [i, j) is the run of intervals merged into iv: every interval whose
	// end reaches iv.Start (adjacency merges) and whose start is ≤ iv.End.
	i := s.searchEnd(iv.Start - 1)
	j := i
	for ; j < len(ivs) && ivs[j].Start <= iv.End; j++ {
		iv = Iv(min64(iv.Start, ivs[j].Start), max64(iv.End, ivs[j].End))
	}
	switch {
	case i == j: // nothing merged: open a slot
		ivs = append(ivs, Interval{})
		copy(ivs[i+1:], ivs[i:])
		ivs[i] = iv
	default: // replace the merged run with the single merged interval
		ivs[i] = iv
		ivs = append(ivs[:i+1], ivs[j:]...)
	}
	s.ivs = ivs
}

// RemoveInPlace removes every event of iv from s, reusing s's storage.
// Any previously obtained view of s is invalidated.
func (s *Set) RemoveInPlace(iv Interval) {
	if iv.Empty() || len(s.ivs) == 0 {
		return
	}
	ivs := s.ivs
	i := s.searchEnd(iv.Start)
	j := i
	// Only the first overlapped interval can leave a left remnant and only
	// the last a right remnant; everything between vanishes.
	var left, right Interval
	for ; j < len(ivs) && ivs[j].Start < iv.End; j++ {
		cur := ivs[j]
		if l := Iv(cur.Start, min64(cur.End, iv.Start)); !l.Empty() {
			left = l
		}
		if r := Iv(max64(cur.Start, iv.End), cur.End); !r.Empty() {
			right = r
		}
	}
	keep := 0
	if !left.Empty() {
		keep++
	}
	if !right.Empty() {
		keep++
	}
	old := j - i
	if keep > old { // one interval split in two: open a slot
		ivs = append(ivs, Interval{})
		copy(ivs[j+1:], ivs[j:])
		j++
	}
	w := i
	if !left.Empty() {
		ivs[w] = left
		w++
	}
	if !right.Empty() {
		ivs[w] = right
		w++
	}
	if w < j {
		ivs = append(ivs[:w], ivs[j:]...)
	}
	s.ivs = ivs
}

// FirstRunIn returns the first (lowest) maximal run of iv present in s,
// or an empty interval when s covers none of iv. Equivalent to
// IntersectInterval(iv).Intervals()[0] without materialising the set.
func (s Set) FirstRunIn(iv Interval) Interval {
	if iv.Empty() {
		return Interval{}
	}
	i := s.searchEnd(iv.Start)
	if i < len(s.ivs) && s.ivs[i].Start < iv.End {
		return s.ivs[i].Intersect(iv)
	}
	return Interval{}
}

// FirstRunFrom is FirstRunIn with a resumable cursor for callers that
// probe the same unchanged set with monotonically increasing iv.Start
// (the per-node scans of Index.AppendPartitionByNode). A negative hint
// positions by binary search; a hint returned by a previous call on the
// same set advances linearly, which is O(1) amortised over a sweep. The
// returned hint is only valid until the set is mutated.
func (s Set) FirstRunFrom(iv Interval, hint int) (Interval, int) {
	if iv.Empty() {
		return Interval{}, hint
	}
	i := hint
	if i < 0 {
		i = s.searchEnd(iv.Start)
	} else {
		for i < len(s.ivs) && s.ivs[i].End <= iv.Start {
			i++
		}
	}
	if i < len(s.ivs) && s.ivs[i].Start < iv.End {
		return s.ivs[i].Intersect(iv), i
	}
	return Interval{}, i
}

// IntersectLen returns the number of events of iv present in s, without
// materialising the intersection.
func (s Set) IntersectLen(iv Interval) int64 {
	var n int64
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		n += s.ivs[i].Intersect(iv).Len()
	}
	return n
}

// AppendGaps appends the parts of iv NOT present in s to dst, in order —
// the allocation-free form of SubtractFrom.
func (s Set) AppendGaps(iv Interval, dst []Interval) []Interval {
	if iv.Empty() {
		return dst
	}
	pos := iv.Start
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		in := s.ivs[i].Intersect(iv)
		if in.Empty() {
			continue
		}
		if pos < in.Start {
			dst = append(dst, Iv(pos, in.Start))
		}
		pos = in.End
	}
	if pos < iv.End {
		dst = append(dst, Iv(pos, iv.End))
	}
	return dst
}

// AppendPartition appends the Partition of iv to dst — the
// allocation-free form of Partition.
func (s Set) AppendPartition(iv Interval, dst []SetPiece) []SetPiece {
	if iv.Empty() {
		return dst
	}
	pos := iv.Start
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		in := s.ivs[i].Intersect(iv)
		if in.Empty() {
			continue
		}
		if pos < in.Start {
			dst = append(dst, SetPiece{Iv(pos, in.Start), false})
		}
		dst = append(dst, SetPiece{in, true})
		pos = in.End
	}
	if pos < iv.End {
		dst = append(dst, SetPiece{Iv(pos, iv.End), false})
	}
	return dst
}
