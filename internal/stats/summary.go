package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming scalar observations and exposes their
// count, mean, variance and extremes. The zero value is ready for use.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (zero when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (zero for fewer than two
// observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (zero when empty).
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It sorts a copy of xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// EWMA is an exponentially weighted moving average. The zero value with a
// zero Alpha is invalid; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds one observation into the average.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average (zero before any observation).
func (e *EWMA) Value() float64 { return e.value }

// LinearTrend fits y = a + b·x by least squares and returns the slope b.
// It returns zero for fewer than two points or degenerate x.
func LinearTrend(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(len(xs)), sy/float64(len(ys))
	var num, den float64
	for i := range xs {
		dx := xs[i] - mx
		num += dx * (ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}
