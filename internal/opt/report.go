package opt

import (
	"fmt"
	"strings"

	"physched/internal/asciiplot"
	"physched/internal/stats"
)

// formatValue renders an objective value in the metric's natural unit
// (durations for the waiting metrics, plain numbers otherwise).
func (o Objective) formatValue(v float64) string {
	switch o.Metric {
	case "mean_waiting", "p99_waiting":
		return stats.FormatDuration(v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render formats the report as a text leaderboard: the budget accounting
// header, then one row per entry. The layout is stable — experiment
// golden files pin it.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "study %.12s…  %s %s %s\n", r.StudyHash, r.Algorithm, r.Objective.Direction, r.Objective.Metric)
	fmt.Fprintf(&b, "  space %d candidates (%d invalid combinations skipped)\n", r.SpaceSize, r.InvalidCandidates)
	fmt.Fprintf(&b, "  budget %d cells: %d evaluated over %d candidates, %d simulated, %d from cache\n",
		r.Budget, r.EvaluatedCells, r.Candidates, r.SimulatedCells, r.CacheHits)
	for _, rung := range r.Rungs {
		if rung.Survivors > 0 {
			fmt.Fprintf(&b, "  rung ×%-3d %d candidates → %d survivors\n", rung.Replications, rung.Candidates, rung.Survivors)
		} else {
			fmt.Fprintf(&b, "  rung ×%-3d %d candidates (final)\n", rung.Replications, rung.Candidates)
		}
	}
	fmt.Fprintf(&b, "\n  %-4s %-64s %-16s %-10s %s\n", "rank", "candidate", "objective", "±ci95", "replicas")
	for _, e := range r.Leaderboard {
		if !e.steady() {
			fmt.Fprintf(&b, "  %-4d %-64s %-16s %-10s %d/%d overloaded\n",
				e.Rank, e.Label, "-", "-", e.Overloaded, e.Replicas)
			continue
		}
		fmt.Fprintf(&b, "  %-4d %-64s %-16s %-10s %d\n",
			e.Rank, e.Label, r.Objective.formatValue(e.Value), r.Objective.formatValue(e.CI95), e.Replicas)
	}
	return b.String()
}

// TrajectorySeries adapts the trajectory to an asciiplot series, stepped
// so the plot shows the best objective held at every budget level up to
// EvaluatedCells.
func (r *Report) TrajectorySeries(label string) asciiplot.Series {
	var xs, ys []float64
	for _, p := range r.Trajectory {
		xs = append(xs, float64(p.EvaluatedCells))
		ys = append(ys, p.Best)
	}
	// Hold the final best to the full spend, so curves of equal-budget
	// searches span the same X range.
	if n := len(ys); n > 0 && int(xs[n-1]) < r.EvaluatedCells {
		xs = append(xs, float64(r.EvaluatedCells))
		ys = append(ys, ys[n-1])
	}
	return asciiplot.Series{Label: label, X: xs, Y: ys}
}

// TrajectoryPlot renders best-objective-versus-budget as an ASCII chart.
func (r *Report) TrajectoryPlot() string {
	return asciiplot.Render([]asciiplot.Series{r.TrajectorySeries(r.Algorithm)}, asciiplot.Options{
		Title:  "best " + r.Objective.Metric + " vs budget",
		XLabel: "cells evaluated",
		YLabel: r.Objective.Metric,
	})
}
