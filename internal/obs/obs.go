// Package obs is the service-layer observability toolkit: an audited
// wall-clock seam, structured JSON logging with injected timestamps,
// request-ID propagation, and fixed-bucket latency histograms rendered
// in the Prometheus text exposition format. Everything is stdlib-only
// and allocation-free on the hot observation path.
//
// The simulation core runs on sim time exclusively — the walltime
// analyzer (internal/analysis) bans real-clock reads inside the
// determinism boundary — so every wall-clock observation a service
// makes must flow through an injected Clock. SystemClock below is the
// single sanctioned real-clock read in the module: cmd/physchedd wires
// it at its boundary and passes the resulting Clock down to logging,
// histograms and job timestamps; tests substitute a fake and get
// deterministic log lines and metrics.
package obs

import "time"

// Clock supplies the current time. Service code never calls time.Now
// directly: it receives a Clock (SystemClock in production, a fake in
// tests), which keeps wall time injectable and the walltime lint
// contract auditable at one site.
type Clock func() time.Time

// SystemClock is the production Clock — the one sanctioned real-clock
// read in the module. Every service-layer timestamp (log records,
// request durations, queue waits, job lifecycle times) derives from
// this seam; a second time.Now anywhere in an audited package is a
// lint finding, not a convention violation.
func SystemClock() time.Time {
	return time.Now() //physched:walltime the single audited real-clock source: all service observability derives from this seam
}

// NowNanos adapts a Clock to the monotonic-nanosecond form the
// lab.PoolHooks observation seam consumes.
func NowNanos(c Clock) func() int64 {
	return func() int64 { return c().UnixNano() }
}
