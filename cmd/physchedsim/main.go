// Command physchedsim runs a cluster-scheduling simulation and prints its
// metrics, optionally with the waiting-time histogram. The scenario comes
// either from flags or, with -spec, from a declarative JSON spec file
// (see internal/spec and examples/specfile) — the serializable format
// shared with the physchedd service. With -replicate N the scenario is
// run N times with derived seeds on the internal/lab worker pool and the
// replica mean ± 95% confidence interval is reported; -parallel bounds
// the concurrent runs, -timeout aborts the set, and -progress streams
// per-replica completions to stderr.
//
// Usage:
//
//	physchedsim -policy outoforder -load 1.5 [-nodes 10] [-cache-gb 100]
//	            [-delay-hours 48] [-stripe 5000] [-jobs 600] [-seed 1]
//	            [-histogram] [-replicate N] [-parallel N] [-timeout D]
//	            [-progress]
//	physchedsim -spec scenario.json [-histogram] [-replicate N] ...
//	physchedsim -study study.json [-cache-dir DIR] [-parallel N]
//	            [-timeout D] [-progress]
//	physchedsim -spec scenario.json -server http://localhost:8080
//	physchedsim -study study.json -server http://localhost:8080 [-progress]
//
// With -server the spec or study is executed by a running physchedd
// service through the typed physched/client package: the service's pool
// does the work and its content-addressed cache makes repeated runs
// free. The printed report is the same either way.
//
// With -study the program runs a budgeted scenario search (internal/opt)
// instead of a single scenario: the study file names a base spec, search
// axes, an objective and a budget, and the report — leaderboard plus
// best-objective-vs-budget plot — is printed when the budget is spent.
// -cache-dir persists every simulated cell, so re-running a study (or
// sharing the directory with `experiments -spec` and physchedd) costs
// only the cells not yet simulated anywhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"time"

	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/opt"
	"physched/internal/resultcache"
	"physched/internal/sched"
	"physched/internal/spec"
	"physched/internal/stats"
	"physched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("physchedsim: ")
	var (
		policy    = flag.String("policy", "outoforder", "farm | splitting | cacheoriented | outoforder | replication | delayed | adaptive | partitioned | affinefarm")
		load      = flag.Float64("load", 1.5, "arrival rate in jobs per hour")
		nodes     = flag.Int("nodes", 10, "number of processing nodes")
		cacheGB   = flag.Int64("cache-gb", 100, "per-node disk cache in GB")
		delayH    = flag.Float64("delay-hours", 48, "period delay for the delayed policy, hours")
		stripe    = flag.Int64("stripe", 5000, "stripe size in events (delayed/adaptive)")
		jobs      = flag.Int("jobs", 600, "measured jobs")
		warmup    = flag.Int("warmup", 150, "warm-up jobs")
		seed      = flag.Int64("seed", 1, "random seed")
		histogram = flag.Bool("histogram", false, "print the waiting-time histogram")
		stated    = flag.Bool("stated-params", false, "use the paper's stated raw constants instead of the calibrated preset")
		specPath  = flag.String("spec", "", "declarative JSON scenario spec (overrides the other scenario flags; see internal/spec)")
		studyPath = flag.String("study", "", "budgeted scenario-search study spec (JSON; see internal/opt) — runs the search instead of a single scenario")
		server    = flag.String("server", "", "physchedd base URL — run the -spec or -study on the service (typed client) instead of in-process")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache directory for -study runs (empty = in-memory only)")
		tracePath = flag.String("trace", "", "write a JSONL execution trace to this file")
		replicate = flag.Int("replicate", 1, "run the scenario this many times with seeds derived from the seed and report mean ± 95% CI")
		parallel  = flag.Int("parallel", 0, "max concurrent replica runs (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "abort the replica set after this wall-clock duration (0 = no limit)")
		progress  = flag.Bool("progress", false, "stream per-replica completions to stderr")
	)
	flag.Parse()

	if *studyPath != "" {
		if *specPath != "" || *tracePath != "" || *histogram || *replicate > 1 {
			log.Fatal("-study is incompatible with -spec, -trace, -histogram and -replicate (the study spec describes the whole search)")
		}
		if *server != "" {
			if _, err := remoteStudy(*server, *studyPath, *timeout, *progress); err != nil {
				log.Fatal(err)
			}
			return
		}
		if _, err := runStudy(*studyPath, *cacheDir, *parallel, *timeout, *progress); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *server != "" {
		// Remote execution runs the spec on the service's pool and cache;
		// the flags that shape a local run do not apply.
		if *specPath == "" {
			log.Fatal("-server requires -spec or -study (the serializable formats the service accepts)")
		}
		if *tracePath != "" || *histogram || *replicate > 1 {
			log.Fatal("-server is incompatible with -trace, -histogram and -replicate (they describe a local run)")
		}
		res, sp, err := remoteSpec(*server, *specPath, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := sp.Scenario()
		if err != nil {
			log.Fatal(err)
		}
		if res.FromCache {
			fmt.Fprintf(os.Stderr, "served from cache (hash %s)\n", res.Hash)
		}
		report(res.Result, sc.Params, false)
		return
	}

	var s lab.Scenario
	if *specPath != "" {
		sp, err := loadSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		s, err = sp.Scenario()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		params := model.PaperCalibrated()
		if *stated {
			params = model.PaperStated()
		}
		params.Nodes = *nodes
		params.CacheBytes = *cacheGB * model.GB

		mk, err := policyFactory(*policy, *delayH, *stripe)
		if err != nil {
			log.Fatal(err)
		}
		s = lab.Scenario{
			Params:      params,
			NewPolicy:   mk,
			Load:        *load,
			Seed:        *seed,
			WarmupJobs:  *warmup,
			MeasureJobs: *jobs,
		}
		if *policy == "delayed" || *policy == "adaptive" {
			s.OverloadBacklog = int64(3**load*(*delayH)) + int64(25*params.Nodes)
		}
	}
	if *replicate > 1 {
		if *tracePath != "" || *histogram {
			log.Fatal("-replicate is incompatible with -trace and -histogram (they describe a single run)")
		}
		reportReplicas(replicateScenario(s, *replicate, *parallel, *timeout, *progress), s.Params)
		return
	}
	res := runSimulation(s, *tracePath)
	report(res, s.Params, *histogram)
}

// runStudy executes a budgeted scenario search (internal/opt) from a
// study spec file on the process-wide lab pool, optionally backed by a
// persistent content-addressed result cache, and prints the report:
// budget accounting, leaderboard and the best-objective-vs-budget plot.
func runStudy(path, cacheDir string, parallel int, timeout time.Duration, progress bool) (*opt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := opt.Parse(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	cache, err := resultcache.Open(cacheDir)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	pool := lab.NewPool(parallel)
	defer pool.Close()
	opts := opt.Options{Pool: pool, Context: ctx, Cache: cache}
	if progress {
		opts.Progress = func(u opt.Progress) {
			state := "steady"
			if u.Overloaded {
				state = "overloaded"
			}
			src := "simulated"
			if u.FromCache {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "progress: %s cell %d/%d (budget %d)  %-50s seed=%d  %s %s\n",
				u.Phase, u.Done, u.Total, u.Budget, u.Label, u.Seed, state, src)
		}
	}
	report, err := opt.Run(st, opts)
	if err != nil {
		return nil, err
	}
	fmt.Print(report.Render())
	fmt.Println()
	fmt.Print(report.TrajectoryPlot())
	return report, nil
}

// loadSpec parses and validates a declarative scenario spec file.
func loadSpec(path string) (spec.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return spec.Spec{}, err
	}
	defer f.Close()
	sp, err := spec.Parse(f)
	if err != nil {
		return spec.Spec{}, err
	}
	return sp, nil
}

// replicateScenario runs s once per derived seed on the lab pool.
func replicateScenario(s lab.Scenario, n, parallel int, timeout time.Duration, progress bool) lab.Aggregate {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	pool := lab.NewPool(parallel)
	defer pool.Close()
	opts := lab.Options{Pool: pool, Context: ctx}
	if progress {
		opts.Progress = func(u lab.ProgressUpdate) {
			state := "steady"
			if u.Overloaded {
				state = "overloaded"
			}
			fmt.Fprintf(os.Stderr, "progress: replica %d/%d seed=%d %s\n", u.Done, u.Total, u.Seed, state)
		}
	}
	agg, err := lab.Replicate(s, lab.Seeds(s.Seed, n), opts)
	if err != nil {
		log.Fatalf("aborted: %v (%d of %d replicas completed)", err, agg.Replicas, n)
	}
	return agg
}

// reportReplicas prints the replica aggregate.
func reportReplicas(agg lab.Aggregate, params model.Params) {
	fmt.Printf("replicas          %d (%d overloaded)\n", agg.Replicas, agg.Overloaded)
	if agg.Overloaded == agg.Replicas {
		fmt.Printf("state             OVERLOADED in every replica (theoretical max %.2f, farm max %.2f)\n",
			params.MaxTheoreticalLoad(), params.FarmMaxLoad())
		return
	}
	fmt.Printf("avg speedup       %.2f ± %.2f (95%% CI over replicas, std %.2f)\n",
		agg.SpeedupMean, agg.SpeedupCI95, agg.SpeedupStd)
	fmt.Printf("avg waiting       %s ± %s (std %s)\n",
		stats.FormatDuration(agg.WaitingMean), stats.FormatDuration(agg.WaitingCI95),
		stats.FormatDuration(agg.WaitingStd))
	if agg.GoodputMean > 0 || agg.WastedEventsMean > 0 || agg.ReexecutionsMean > 0 {
		fmt.Printf("goodput           %.4f mean (%.0f events wasted, %.1f re-executions per replica)\n",
			agg.GoodputMean, agg.WastedEventsMean, agg.ReexecutionsMean)
	}
}

// report prints the run's metrics.
func report(res lab.Result, params model.Params, histogram bool) {
	fmt.Printf("policy            %s\n", res.PolicyName)
	fmt.Printf("load              %.3f jobs/hour (theoretical max %.2f, farm max %.2f)\n",
		res.Load, params.MaxTheoreticalLoad(), params.FarmMaxLoad())
	if res.Overloaded {
		fmt.Println("state             OVERLOADED (queues grow without bound)")
		return
	}
	fmt.Printf("state             steady (%d jobs measured over %s simulated)\n",
		res.MeasuredJobs, stats.FormatDuration(res.SimTime))
	fmt.Printf("avg speedup       %.2f (max possible %.1f)\n", res.AvgSpeedup, params.MaxSpeedup())
	fmt.Printf("avg waiting       %s\n", stats.FormatDuration(res.AvgWaiting))
	fmt.Printf("p99 waiting       %s\n", stats.FormatDuration(res.P99Waiting))
	fmt.Printf("max waiting       %s\n", stats.FormatDuration(res.MaxWaiting))
	fmt.Printf("avg processing    %s (single-node no-cache reference %s)\n",
		stats.FormatDuration(res.AvgProc), stats.FormatDuration(params.SingleNodeNoCacheTime()))
	st := res.Cluster
	total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape
	if total > 0 {
		fmt.Printf("data sources      cache %.1f%%  remote %.1f%%  tape %.1f%%  (replicated %.3f%%)\n",
			pct(st.EventsFromCache, total), pct(st.EventsFromRemote, total),
			pct(st.EventsFromTape, total), pct(st.EventsReplicated, total))
	}
	fmt.Printf("dispatches        %d (%d preemptions)\n", st.Dispatches, st.Preemptions)
	if st.Failures > 0 || st.NodeJoins > 0 {
		fmt.Printf("node churn        %d failures (%d repaired, %d decommissioned, %d joins)\n",
			st.Failures, st.Repairs, st.Decommissions, st.NodeJoins)
		fmt.Printf("goodput           %.4f (%d events wasted, %d subjobs re-executed)\n",
			res.Goodput, st.EventsLost, st.Reexecutions)
	}
	if histogram {
		fmt.Println("\nwaiting-time distribution:")
		fmt.Print(res.Collector.WaitingHistogram().String())
	}
}

// runSimulation runs s, streaming a trace to tracePath when set.
func runSimulation(s lab.Scenario, tracePath string) lab.Result {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace written to %s\n", tracePath)
		}()
		s.Trace = trace.New(1, f) // stream everything, keep memory flat
	}
	res, err := lab.RunE(s)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func pct(a, b int64) float64 { return 100 * float64(a) / float64(b) }

// policyFactory resolves a policy name and its flag arguments through the
// sched registry, validating once upfront. The -delay-hours and -stripe
// flags always carry their defaults, so only the arguments the chosen
// policy actually consumes are forwarded (the registry rejects dead
// arguments).
func policyFactory(name string, delayHours float64, stripe int64) (func() sched.Policy, error) {
	var args sched.Args
	switch name {
	case "delayed":
		args = sched.Args{DelayHours: delayHours, StripeEvents: stripe}
	case "adaptive":
		args = sched.Args{StripeEvents: stripe}
	}
	if _, err := sched.New(name, args); err != nil {
		return nil, err
	}
	return func() sched.Policy {
		p, err := sched.New(name, args)
		if err != nil {
			panic(err) // validated above; the registry is append-only
		}
		return p
	}, nil
}
