// Package directive is a fixture for the physcheddirective analyzer:
// the //physched: annotation grammar is real syntax — unknown verbs,
// missing reasons and misplaced annotations are findings.
package directive

import "sort"

//physched:frobnicate turbo mode // want "unknown //physched: directive \"frobnicate\""
func unknownVerb() {}

func missingReason(m map[string]int) []string {
	var keys []string
	//physched:orderinvariant // want "//physched:orderinvariant needs a reason"
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func misplacedOrderInvariant() {
	//physched:orderinvariant not a range statement below // want "misplaced //physched:orderinvariant"
	x := 1
	_ = x
}

//physched:hotpath
func validHotpath(buf []int, x int) []int {
	return append(buf, x)
}

func body() {
	//physched:hotpath only valid in a func doc comment // want "misplaced //physched:hotpath"
	x := 0
	_ = x
}

//physched:hotpath
func hotWithBareAllocok(buf []int) []int {
	//physched:allocok // want "//physched:allocok needs a reason"
	tmp := make([]int, 0)
	_ = tmp
	return buf
}

func validSuppressions(m map[string]int) int {
	n := 0
	//physched:orderinvariant counting iterations is order-free
	for range m {
		n++
	}
	return n
}

func misplacedAllocok() {
	//physched:allocok not inside a hotpath function // want "misplaced //physched:allocok"
	y := make([]int, 0)
	_ = y
}
