package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"physched/internal/trace"
)

// TraceCell is one cell of a decoded job trace: its header plus the
// simulation events the server retained for it (len(Events) ==
// Header.Events; Header.Dropped counts the rest).
type TraceCell struct {
	Header TraceCellHeader
	Events []trace.Event
}

// SubmitGridTraced submits a grid as a background job with simulation
// tracing enabled (POST /v1/grids?async=1&trace=1). The finished job's
// per-cell event log is fetched with JobTrace.
func (c *Client) SubmitGridTraced(ctx context.Context, grid []byte) (JobSubmitted, error) {
	var out JobSubmitted
	err := c.do(ctx, http.MethodPost, "/v1/grids?async=1&trace=1", bytes.NewReader(grid), &out)
	return out, err
}

// JobTrace fetches and decodes GET /v1/jobs/{id}/trace: NDJSON of
// per-cell header lines ({"type":"cell",...}), each followed by that
// cell's trace-event lines. Only finished ?trace=1 grid jobs have a
// trace; the server answers 404 (never traced), 409 (still running) or
// 404 with a journal hint (trace lost to a restart) otherwise.
func (c *Client) JobTrace(ctx context.Context, id string) ([]TraceCell, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return decodeTrace(resp.Body)
}

// decodeTrace reads the trace line protocol: a "cell" header line opens
// each cell, and every following non-header line is one of its events.
// An event line before any header, or a malformed line, is an error —
// the format is pinned by tests, so leniency would only hide breakage.
func decodeTrace(r io.Reader) ([]TraceCell, error) {
	var cells []TraceCell
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("physchedd: bad trace line %q: %w", sc.Text(), err)
		}
		if kind.Type == "cell" {
			var h TraceCellHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("physchedd: bad trace header %q: %w", sc.Text(), err)
			}
			cells = append(cells, TraceCell{Header: h})
			continue
		}
		if len(cells) == 0 {
			return nil, fmt.Errorf("physchedd: trace event before any cell header: %q", sc.Text())
		}
		var ev trace.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("physchedd: bad trace event %q: %w", sc.Text(), err)
		}
		last := &cells[len(cells)-1]
		last.Events = append(last.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cells, nil
}
