// Package cache implements the node disk caches of the simulated cluster:
// a per-node LRU cache of event-data segments (the paper's scheduler
// "deallocates the least recently used cached segments" when space is
// needed), a cluster-wide index answering "which node caches which part of
// this range", and an interval counter used by the data-replication policy
// of §4.2 (replicate a segment on its third remote access).
package cache

import (
	"container/list"
	"fmt"
	"sort"

	"physched/internal/dataspace"
)

// EvictPolicy selects which cached segment to evict when space is needed.
type EvictPolicy int

const (
	// EvictLRU evicts the least recently used segment (the paper's choice).
	EvictLRU EvictPolicy = iota
	// EvictFIFO evicts the oldest inserted segment regardless of use.
	EvictFIFO
)

// LRU is a disk cache holding event-index segments with a capacity in
// events. The zero value is unusable; construct with NewLRU. A capacity of
// zero yields a valid cache that never holds anything (the paper's
// no-caching policies).
type LRU struct {
	capacity int64
	used     int64
	policy   EvictPolicy
	order    *list.List // *segment; front = most recently used
	segs     []*segment // sorted by interval start, disjoint
	set      dataspace.Set

	inserted int64 // cumulative events ever inserted
	evicted  int64 // cumulative events ever evicted
}

type segment struct {
	iv   dataspace.Interval
	last float64
	el   *list.Element
}

// NewLRU returns a cache with the given capacity in events.
func NewLRU(capacityEvents int64, policy EvictPolicy) *LRU {
	if capacityEvents < 0 {
		panic("cache: negative capacity")
	}
	return &LRU{capacity: capacityEvents, policy: policy, order: list.New()}
}

// Capacity returns the capacity in events.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the number of currently cached events.
func (c *LRU) Used() int64 { return c.used }

// InsertedTotal and EvictedTotal return lifetime counters, for cache
// churn statistics.
func (c *LRU) InsertedTotal() int64 { return c.inserted }
func (c *LRU) EvictedTotal() int64  { return c.evicted }

// Cached returns the set of cached events. The returned set shares no
// storage with the cache's mutable state but must be treated as read-only.
func (c *LRU) Cached() dataspace.Set { return c.set }

// Contains reports whether iv is entirely cached.
func (c *LRU) Contains(iv dataspace.Interval) bool { return c.set.ContainsInterval(iv) }

// CachedPart returns the parts of iv that are cached.
func (c *LRU) CachedPart(iv dataspace.Interval) dataspace.Set {
	return c.set.IntersectInterval(iv)
}

// Insert adds iv to the cache at time now, evicting according to the
// eviction policy if needed. Parts of iv already cached are refreshed
// (treated as used now). If iv exceeds the whole capacity, only its tail
// (the most recently streamed events) is kept.
func (c *LRU) Insert(iv dataspace.Interval, now float64) {
	if c.capacity == 0 || iv.Empty() {
		return
	}
	if iv.Len() > c.capacity {
		iv = dataspace.Iv(iv.End-c.capacity, iv.End)
	}
	c.Touch(iv, now)
	for _, part := range c.set.SubtractFrom(iv).Intervals() {
		c.makeRoom(part.Len(), iv)
		c.inserted += part.Len()
		c.used += part.Len()
		c.set = c.set.Add(part)
		c.addSegment(&segment{iv: part, last: now}, true)
	}
}

// Touch marks the cached parts of iv as used at time now, refreshing their
// LRU position.
func (c *LRU) Touch(iv dataspace.Interval, now float64) {
	if iv.Empty() {
		return
	}
	for _, s := range c.overlapping(iv) {
		c.splitOut(s, iv)
		s.last = now
		if c.policy == EvictLRU {
			c.order.MoveToFront(s.el)
		}
	}
}

// Evict removes iv from the cache regardless of recency (used by tests and
// by failure-injection scenarios).
func (c *LRU) Evict(iv dataspace.Interval) {
	for _, s := range c.overlapping(iv) {
		c.splitOut(s, iv)
		c.dropSegment(s)
	}
}

// Clear empties the cache — a node failure that takes the disk with it.
// The dropped events count as evictions in the churn statistics. One
// pass, not per-segment dropSegment: Clear runs on every disk-losing
// failure.
func (c *LRU) Clear() {
	c.evicted += c.used
	c.used = 0
	c.set = dataspace.Set{}
	c.order.Init()
	c.segs = nil
}

// makeRoom evicts segments until need events fit. Segments overlapping
// protect are never evicted (they belong to the insertion in progress).
func (c *LRU) makeRoom(need int64, protect dataspace.Interval) {
	for c.used+need > c.capacity {
		victim := c.victim(protect)
		if victim == nil {
			return // everything left is protected; insert over capacity
		}
		over := c.used + need - c.capacity
		if victim.iv.Len() > over {
			// Partial eviction: drop just enough of the victim.
			evict := dataspace.Iv(victim.iv.Start, victim.iv.Start+over)
			c.set = c.set.Remove(evict)
			c.used -= evict.Len()
			c.evicted += evict.Len()
			c.removeFromSlice(victim)
			victim.iv = dataspace.Iv(evict.End, victim.iv.End)
			c.insertIntoSlice(victim)
			return
		}
		c.dropSegment(victim)
	}
}

// victim returns the next segment to evict, or nil if only protected
// segments remain.
func (c *LRU) victim(protect dataspace.Interval) *segment {
	for el := c.order.Back(); el != nil; el = el.Prev() {
		s := el.Value.(*segment)
		if !s.iv.Overlaps(protect) {
			return s
		}
	}
	return nil
}

func (c *LRU) dropSegment(s *segment) {
	c.set = c.set.Remove(s.iv)
	c.used -= s.iv.Len()
	c.evicted += s.iv.Len()
	c.order.Remove(s.el)
	c.removeFromSlice(s)
}

// splitOut shrinks s so it lies entirely within iv, creating sibling
// segments (same recency) for the parts outside iv.
func (c *LRU) splitOut(s *segment, iv dataspace.Interval) {
	in := s.iv.Intersect(iv)
	if in == s.iv {
		return
	}
	c.removeFromSlice(s)
	if left := dataspace.Iv(s.iv.Start, in.Start); !left.Empty() {
		c.addSibling(s, left)
	}
	if right := dataspace.Iv(in.End, s.iv.End); !right.Empty() {
		c.addSibling(s, right)
	}
	s.iv = in
	c.insertIntoSlice(s)
}

func (c *LRU) addSibling(of *segment, iv dataspace.Interval) {
	sib := &segment{iv: iv, last: of.last}
	sib.el = c.order.InsertAfter(sib, of.el)
	c.insertIntoSlice(sib)
}

func (c *LRU) addSegment(s *segment, front bool) {
	if front {
		s.el = c.order.PushFront(s)
	} else {
		s.el = c.order.PushBack(s)
	}
	c.insertIntoSlice(s)
}

// overlapping returns the segments overlapping iv. The returned slice is
// freshly allocated, so callers may mutate the cache while iterating it.
func (c *LRU) overlapping(iv dataspace.Interval) []*segment {
	if iv.Empty() {
		return nil
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].iv.End > iv.Start })
	var out []*segment
	for ; i < len(c.segs) && c.segs[i].iv.Start < iv.End; i++ {
		out = append(out, c.segs[i])
	}
	return out
}

func (c *LRU) insertIntoSlice(s *segment) {
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].iv.Start >= s.iv.Start })
	c.segs = append(c.segs, nil)
	copy(c.segs[i+1:], c.segs[i:])
	c.segs[i] = s
}

func (c *LRU) removeFromSlice(s *segment) {
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].iv.Start >= s.iv.Start })
	if i >= len(c.segs) || c.segs[i] != s {
		panic(fmt.Sprintf("cache: segment %v not found in slice", s.iv))
	}
	c.segs = append(c.segs[:i], c.segs[i+1:]...)
}

// checkInvariants panics if internal bookkeeping diverged; used in tests.
func (c *LRU) checkInvariants() {
	var total int64
	var set dataspace.Set
	for i, s := range c.segs {
		if s.iv.Empty() {
			panic("cache: empty segment")
		}
		if i > 0 && c.segs[i-1].iv.End > s.iv.Start {
			panic("cache: segments overlap or unsorted")
		}
		total += s.iv.Len()
		set = set.Add(s.iv)
	}
	if total != c.used {
		panic(fmt.Sprintf("cache: used=%d but segments hold %d", c.used, total))
	}
	if c.used > c.capacity {
		panic("cache: over capacity")
	}
	if set.Len() != c.set.Len() {
		panic("cache: set diverged from segments")
	}
	if c.order.Len() != len(c.segs) {
		panic("cache: LRU list and slice out of sync")
	}
}
