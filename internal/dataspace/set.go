package dataspace

import "strings"

// Set is a union of disjoint, sorted, non-adjacent intervals. The zero
// value is an empty set ready for use. Sets are value types: operations
// return new sets and never alias the receiver's storage.
type Set struct {
	ivs []Interval
}

// NewSet builds a set from arbitrary (possibly overlapping, unsorted)
// intervals.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// Intervals returns the canonical intervals of s in ascending order.
// The caller must not modify the returned slice.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether s contains no events.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Len returns the total number of events in s.
func (s Set) Len() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// searchEnd returns the index of the first interval whose End exceeds e.
// Hand-rolled binary search: this underlies every interval query on the
// simulator's hot path and the sort.Search closure overhead is measurable.
func (s Set) searchEnd(e int64) int {
	lo, hi := 0, len(s.ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ivs[mid].End > e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Contains reports whether event e is in s.
func (s Set) Contains(e int64) bool {
	i := s.searchEnd(e)
	return i < len(s.ivs) && s.ivs[i].Contains(e)
}

// ContainsInterval reports whether iv lies entirely inside s.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	i := s.searchEnd(iv.Start)
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Add returns s with iv added (merged with any overlapping or adjacent
// intervals).
func (s Set) Add(iv Interval) Set {
	if iv.Empty() {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	i := 0
	for ; i < len(s.ivs) && s.ivs[i].End < iv.Start; i++ {
		out = append(out, s.ivs[i])
	}
	for ; i < len(s.ivs) && s.ivs[i].Start <= iv.End; i++ {
		iv = Iv(min64(iv.Start, s.ivs[i].Start), max64(iv.End, s.ivs[i].End))
	}
	out = append(out, iv)
	out = append(out, s.ivs[i:]...)
	return Set{ivs: out}
}

// Remove returns s with every event of iv removed.
func (s Set) Remove(iv Interval) Set {
	if iv.Empty() || len(s.ivs) == 0 {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, cur := range s.ivs {
		if !cur.Overlaps(iv) {
			out = append(out, cur)
			continue
		}
		if left := Iv(cur.Start, min64(cur.End, iv.Start)); !left.Empty() {
			out = append(out, left)
		}
		if right := Iv(max64(cur.Start, iv.End), cur.End); !right.Empty() {
			out = append(out, right)
		}
	}
	return Set{ivs: out}
}

// Union returns the union of s and o.
func (s Set) Union(o Set) Set {
	out := s
	for _, iv := range o.ivs {
		out = out.Add(iv)
	}
	return out
}

// IntersectInterval returns the parts of iv present in s, in order.
func (s Set) IntersectInterval(iv Interval) Set {
	if iv.Empty() {
		return Set{}
	}
	var out []Interval
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		if x := s.ivs[i].Intersect(iv); !x.Empty() {
			out = append(out, x)
		}
	}
	return Set{ivs: out}
}

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set {
	var out Set
	for _, iv := range o.ivs {
		for _, x := range s.IntersectInterval(iv).ivs {
			out.ivs = append(out.ivs, x)
		}
	}
	return out
}

// SubtractFrom returns the parts of iv NOT present in s, in order.
func (s Set) SubtractFrom(iv Interval) Set {
	if iv.Empty() {
		return Set{}
	}
	out := Set{ivs: []Interval{iv}}
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		out = out.Remove(s.ivs[i])
	}
	return out
}

// Partition splits iv into maximal runs that are alternately fully inside
// and fully outside s. Each returned piece carries whether it was in s.
// The pieces are contiguous, in order, and exactly cover iv.
func (s Set) Partition(iv Interval) []SetPiece {
	if iv.Empty() {
		return nil
	}
	var pieces []SetPiece
	pos := iv.Start
	for i := s.searchEnd(iv.Start); i < len(s.ivs) && s.ivs[i].Start < iv.End; i++ {
		in := s.ivs[i].Intersect(iv)
		if in.Empty() {
			continue
		}
		if pos < in.Start {
			pieces = append(pieces, SetPiece{Iv(pos, in.Start), false})
		}
		pieces = append(pieces, SetPiece{in, true})
		pos = in.End
	}
	if pos < iv.End {
		pieces = append(pieces, SetPiece{Iv(pos, iv.End), false})
	}
	return pieces
}

// SetPiece is one run of a Partition: a sub-interval and whether it was
// contained in the set.
type SetPiece struct {
	Interval Interval
	InSet    bool
}

func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}
