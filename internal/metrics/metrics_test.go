package metrics

import (
	"math"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
)

func testJob(id int64, arrival, start, end float64, events int64) *job.Job {
	return &job.Job{
		ID: id, Arrival: arrival, ScheduledAt: arrival,
		Range: dataspace.Iv(0, events), Processed: events,
		Started: true, FirstStart: start, Finished: true, EndTime: end,
	}
}

func TestCollectorSkipsWarmup(t *testing.T) {
	c := NewCollector(model.PaperCalibrated(), 2, 0)
	c.KeepResults = true
	for i := int64(0); i < 5; i++ {
		j := testJob(i, 0, 10, 100, 1000)
		c.JobArrived(j)
		c.JobFinished(j)
	}
	if got := len(c.Results()); got != 3 {
		t.Errorf("measured %d jobs, want 3 (2 warmup skipped)", got)
	}
	if c.Arrived() != 5 || c.Finished() != 5 {
		t.Errorf("Arrived=%d Finished=%d", c.Arrived(), c.Finished())
	}
}

func TestCollectorMeasurementWindowByID(t *testing.T) {
	c := NewCollector(model.PaperCalibrated(), 1, 2)
	c.KeepResults = true
	// Finish out of order: IDs 3 (beyond window), 2, 1, 0 (warmup).
	for _, id := range []int64{3, 2, 1, 0} {
		c.JobFinished(testJob(id, 0, 10, 100, 1000))
	}
	if got := len(c.Results()); got != 2 {
		t.Fatalf("measured %d jobs, want exactly IDs 1 and 2", got)
	}
	if !c.Done() {
		t.Error("Done should be true once the window is filled")
	}
}

func TestWaitingAndSpeedup(t *testing.T) {
	p := model.PaperCalibrated()
	c := NewCollector(p, 0, 0)
	c.KeepResults = true
	// 1000 events, started 50s after arrival, processed in 500s.
	j := testJob(0, 100, 150, 650, 1000)
	c.JobFinished(j)
	r := c.Results()[0]
	if r.Waiting != 50 {
		t.Errorf("Waiting = %v, want 50", r.Waiting)
	}
	wantSpeedup := 1000 * p.EventTimeTape() / 500
	if math.Abs(r.Speedup-wantSpeedup) > 1e-9 {
		t.Errorf("Speedup = %v, want %v", r.Speedup, wantSpeedup)
	}
	if c.AvgWaiting() != 50 || c.MaxWaiting() != 50 {
		t.Errorf("Avg/Max waiting = %v/%v", c.AvgWaiting(), c.MaxWaiting())
	}
}

func TestDelayExcludedVsIncluded(t *testing.T) {
	p := model.PaperCalibrated()
	j := testJob(0, 100, 400, 900, 1000)
	j.ScheduledAt = 300 // delayed scheduling: batched at t=300

	excl := NewCollector(p, 0, 0)
	excl.KeepResults = true
	excl.JobFinished(j)
	if got := excl.Results()[0].Waiting; got != 100 {
		t.Errorf("delay-excluded waiting = %v, want 100", got)
	}

	incl := NewCollector(p, 0, 0)
	incl.DelayIncluded = true
	incl.JobFinished(j)
	if got := incl.AvgWaiting(); got != 300 {
		t.Errorf("delay-included waiting = %v, want 300", got)
	}
}

func TestBacklog(t *testing.T) {
	c := NewCollector(model.PaperCalibrated(), 0, 0)
	j1 := testJob(0, 0, 1, 2, 10)
	j2 := testJob(1, 0, 1, 2, 10)
	c.JobArrived(j1)
	c.JobArrived(j2)
	if c.Backlog() != 2 {
		t.Errorf("Backlog = %d, want 2", c.Backlog())
	}
	c.JobFinished(j1)
	if c.Backlog() != 1 {
		t.Errorf("Backlog = %d, want 1", c.Backlog())
	}
}

func TestWaitingQuantileAndHistogram(t *testing.T) {
	c := NewCollector(model.PaperCalibrated(), 0, 0)
	for i := int64(0); i < 100; i++ {
		// Waiting times 0..99 minutes.
		c.JobFinished(testJob(i, 0, float64(i)*60, 1e6, 1000))
	}
	med := c.WaitingQuantile(0.5)
	if math.Abs(med-99*60/2) > 60 {
		t.Errorf("median waiting = %v", med)
	}
	if c.WaitingHistogram().Total() != 100 {
		t.Errorf("histogram total = %d", c.WaitingHistogram().Total())
	}
}

// BenchmarkCollector measures the streaming per-job cost of the collector
// — the path every simulated job completion pays. It must stay
// allocation-free: the columns are presized to the measurement cap and
// KeepResults defaults to off.
func BenchmarkCollector(b *testing.B) {
	p := model.PaperCalibrated()
	c := NewCollector(p, 0, b.N)
	j := testJob(0, 5, 10, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.ID = int64(i)
		c.JobArrived(j)
		c.JobFinished(j)
	}
}
