// Package hotalloc is a fixture for the hotalloc analyzer: allocating
// constructs inside //physched:hotpath functions are flagged; the same
// constructs in un-annotated functions are not.
package hotalloc

import "fmt"

func sink(v any) { _ = v }

type ring struct {
	buf []int
	n   int
}

// step is the fixture hot path.
//
//physched:hotpath
func (r *ring) step(name string, x int) {
	f := func() int { return x } // want "closure in hot path step allocates its environment"
	_ = f
	fmt.Println(name)  // want "fmt.Println in hot path step allocates"
	s := name + "!"    // want "string concatenation in hot path step allocates"
	_ = s
	b := []byte(name) // want "string<->\\[\\]byte conversion in hot path step copies and allocates"
	_ = b
	m := make(map[int]int) // want "unsized make\\(map\\) in hot path step grows by rehashing"
	_ = m
	c := make(chan int) // want "make\\(chan\\) in hot path step allocates"
	_ = c
	z := make([]int, 0) // want "make\\(slice, 0\\) without capacity in hot path step reallocates on growth"
	_ = z
	p := new(int) // want "new\\(...\\) in hot path step allocates"
	_ = p
	q := &ring{} // want "&composite literal in hot path step likely escapes to the heap"
	_ = q
	l := []int{1, 2} // want "slice literal in hot path step allocates"
	_ = l
	sink(x) // want "argument boxed into interface parameter in hot path step"
	sink(r) // pointer-shaped: no boxing allocation
	sink(nil)
}

// cold has the same constructs but no annotation: no findings.
func (r *ring) cold(name string) {
	fmt.Println(name + "!")
	_ = make(map[int]int)
	_ = new(int)
}

// sized is a clean hot path: sized make, index math, no boxing.
//
//physched:hotpath
func (r *ring) sized(x int) {
	if r.buf == nil {
		//physched:allocok one-time lazy init, amortised over the run
		r.buf = make([]int, 0, 64)
	}
	r.buf = append(r.buf, x)
	r.n++
}
