package lab

import (
	"context"
	"runtime"
	"sync"
)

// Pool executes index-addressed tasks over a bounded set of workers.
// Tasks receive their index and write their own results; the pool
// guarantees nothing about execution order, which is why every lab task
// must be a pure function of its index (see the package comment).
type Pool struct {
	// Workers bounds concurrent tasks; ≤0 means runtime.GOMAXPROCS(0).
	Workers int
}

// Run executes task(0..n-1) and blocks until all started tasks finished.
// When ctx is cancelled, tasks not yet started are skipped — a simulation
// run is not interruptible midway — and ctx.Err() is returned; completed
// indices keep their results.
func (p Pool) Run(ctx context.Context, n int, task func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			task(i)
		}
		return nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				task(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	return err
}
