package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"physched/client"
	"physched/internal/lab"
	"physched/internal/resultcache"
)

// TestTypedClientRoundTrip drives the full API surface through the typed
// physched/client package against a live server: registries, sync and
// async grids, studies, job lifecycle, metrics. The client decodes the
// very structs the server encodes (they are aliases), so this test is
// the drift tripwire for the whole wire format.
func TestTypedClientRoundTrip(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	pols, err := c.Policies(ctx, client.Page{})
	if err != nil || len(pols.Policies) == 0 {
		t.Fatalf("policies: %v (%d)", err, len(pols.Policies))
	}
	wls, err := c.Workloads(ctx, client.Page{Size: 2})
	if err != nil || len(wls.Workloads) > 2 {
		t.Fatalf("workloads page_size=2: %v (%d)", err, len(wls.Workloads))
	}

	// Sync grid with progress callbacks.
	progress := 0
	result, err := c.RunGrid(ctx, []byte(gridBody), func(client.ProgressLine) { progress++ })
	if err != nil {
		t.Fatalf("run grid: %v", err)
	}
	const total = 2 * 2 * 2
	if progress != total || len(result.Cells) != total {
		t.Fatalf("grid run: %d progress, %d cells, want %d", progress, len(result.Cells), total)
	}

	// Cached results are addressable by hash.
	res, err := c.Result(ctx, result.Cells[0].Hash)
	if err != nil || !res.FromCache {
		t.Fatalf("result by hash: %v (%+v)", err, res)
	}
	if _, err := c.Aggregate(ctx, result.Aggregates[0].Hash); err != nil {
		t.Fatalf("aggregate by hash: %v", err)
	}

	// Async lifecycle: submit, wait, replay — byte-compatible with the
	// sync result since everything is cached.
	sub, err := c.SubmitGrid(ctx, []byte(gridBody))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.WaitJob(ctx, sub.JobID, time.Millisecond)
	if err != nil || st.State != "done" {
		t.Fatalf("wait: %v (state %q)", err, st.State)
	}
	if st.Hash != sub.Hash || st.GridHash != sub.Hash {
		t.Errorf("job hashes %q/%q, want %q", st.Hash, st.GridHash, sub.Hash)
	}
	replayed, study, err := c.StreamJob(ctx, sub.JobID, nil)
	if err != nil || study != nil || replayed == nil {
		t.Fatalf("stream replay: %v (result %v, study %v)", err, replayed, study)
	}
	a, _ := json.Marshal(result.Cells)
	b, _ := json.Marshal(replayed.Cells)
	if !bytes.Equal(a, b) {
		t.Errorf("async replay diverged from sync run")
	}

	// Job listing with filters.
	jobs, err := c.Jobs(ctx, client.JobFilter{State: "done", Kind: "grid"})
	if err != nil || jobs.TotalItems != 1 || jobs.Jobs[0].ID != sub.JobID {
		t.Fatalf("filtered jobs listing: %v (%+v)", err, jobs)
	}

	// Studies: run, then fetch the retained report and the listing.
	studyRes, err := c.RunStudy(ctx, []byte(studyBody), nil)
	if err != nil {
		t.Fatalf("run study: %v", err)
	}
	fetched, err := c.StudyReport(ctx, studyRes.StudyHash)
	if err != nil {
		t.Fatalf("study report: %v", err)
	}
	ra, _ := json.Marshal(studyRes.Report)
	rb, _ := json.Marshal(fetched.Report)
	if !bytes.Equal(ra, rb) {
		t.Error("fetched report diverged from streamed report")
	}
	studies, err := c.Studies(ctx, client.Page{})
	if err != nil || studies.TotalItems != 1 {
		t.Fatalf("studies listing: %v (%+v)", err, studies)
	}

	// Metrics scrape through the client.
	metrics, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "physchedd_pool_tasks_total") {
		t.Fatalf("metrics: %v", err)
	}
}

// TestTypedClientErrors: non-2xx responses decode into *APIError with
// the stable code, and over-capacity rejections carry the parsed
// Retry-After hint.
func TestTypedClientErrors(t *testing.T) {
	pool := lab.NewPool(1)
	ts := testServerWith(t, serverConfig{
		Cache:       resultcache.NewMemory(),
		Pool:        pool,
		MaxCells:    100,
		MaxInflight: 1,
	})
	c := client.New(ts.URL)
	ctx := context.Background()

	_, err := c.Job(ctx, "deadbeefdeadbeef")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 || apiErr.Code != client.CodeNotFound {
		t.Fatalf("unknown job error = %v, want 404/%s APIError", err, client.CodeNotFound)
	}

	_, err = c.RunSpec(ctx, []byte(`{not json`))
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeBadRequest {
		t.Fatalf("malformed spec error = %v, want %s", err, client.CodeBadRequest)
	}

	// Fill the single admission slot, then observe the typed 429.
	gate := make(chan struct{})
	started := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Run(t.Context(), 1, func(int) { close(started); <-gate })
	}()
	<-started
	sub, err := c.SubmitGrid(ctx, []byte(smallGridBody(810)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitGrid(ctx, []byte(smallGridBody(820)))
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != client.CodeOverCapacity {
		t.Fatalf("over-capacity error = %v, want 429/%s", err, client.CodeOverCapacity)
	}
	if apiErr.RetryAfter < 1 {
		t.Errorf("429 RetryAfter = %d, want ≥ 1 (parsed from the header)", apiErr.RetryAfter)
	}
	close(gate)
	<-blockerDone
	if _, err := c.WaitJob(ctx, sub.JobID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
