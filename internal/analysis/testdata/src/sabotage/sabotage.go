// Package sabotage deliberately violates contracts enforced on every
// package (hotalloc, physcheddirective, lockcheck, spawncheck) so tests
// can prove the multichecker exits nonzero end to end. It is never built
// by ./... wildcards (testdata is wildcard-invisible) — only explicit
// paths reach it.
package sabotage

import (
	"fmt"
	"sync"
)

//physched:typo this directive verb does not exist
func bad() {}

// burn is an annotated hot path that allocates flagrantly.
//
//physched:hotpath
func burn(xs []int) string {
	out := ""
	for _, x := range xs {
		out = out + fmt.Sprint(x)
	}
	return out
}

// leak takes a lock it forgets on the error path: lockcheck sabotage.
func leak(mu *sync.Mutex, fail bool) error {
	mu.Lock()
	if fail {
		return fmt.Errorf("left mu locked")
	}
	mu.Unlock()
	return nil
}

// orphan starts a goroutine that blocks forever with no cancellation
// path: spawncheck sabotage.
func orphan(ch chan int) {
	go func() {
		for {
			ch <- 0
		}
	}()
}
