// Package runner is a thin compatibility facade over internal/lab, which
// owns scenario execution and experiment orchestration. The types are
// aliases and every function delegates to a lab primitive: Run executes a
// single scenario, the sweep helpers build one-axis grids, and Replicate
// builds a seed-axis grid. New code should use lab directly — its Grid
// crosses variants × loads × seeds in one bounded, cancellable, parallel
// execution.
package runner

import (
	"physched/internal/lab"
)

// Scenario is one simulation configuration.
type Scenario = lab.Scenario

// Result summarises one simulation run.
type Result = lab.Result

// Curve is a named series of sweep results (one figure line).
type Curve = lab.Curve

// Variant is one line of a figure: a policy constructor plus optional
// scenario tweaks (e.g. cache size).
type Variant = lab.Variant

// Aggregate summarises replicated runs of one scenario across seeds.
type Aggregate = lab.Aggregate

// Run executes one scenario to completion.
func Run(s Scenario) Result { return lab.Run(s) }

// Sweep runs the scenario at each load on the lab worker pool and returns
// the results in load order. Results carry summaries only (no Collector).
func Sweep(base Scenario, loads []float64) []Result {
	rs, _ := lab.Grid{Base: base, Loads: loads}.Execute(lab.Options{})
	return rs.Results
}

// SweepCurves runs several policy/parameter variants over the same loads,
// producing one curve per variant.
func SweepCurves(base Scenario, loads []float64, variants []Variant) []Curve {
	rs, _ := lab.Grid{Base: base, Loads: loads, Variants: variants}.Execute(lab.Options{})
	return rs.Curves()
}

// SustainableLoad returns the highest load in loads (ascending) that the
// scenario sustains without overload, or zero when none is sustained.
func SustainableLoad(base Scenario, loads []float64) float64 {
	return lab.SustainableLoad(base, loads, lab.Options{})
}

// Replicate runs the scenario once per seed, in parallel, and aggregates.
func Replicate(s Scenario, seeds []int64) Aggregate {
	agg, _ := lab.Replicate(s, seeds, lab.Options{})
	return agg
}
