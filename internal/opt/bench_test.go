package opt

import (
	"testing"
)

// BenchmarkStudyRandom prices one cold budgeted random search end to end
// — spec hashing, cache misses, grid execution and report assembly. CI
// snapshots it into BENCH_run.json next to the lab run benchmarks, so the
// search layer's overhead stays on the perf trajectory.
func BenchmarkStudyRandom(b *testing.B) {
	b.ReportAllocs()
	st := searchStudy("random")
	st.Search.BudgetCells = 8
	st.Search.Replications = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(st, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
