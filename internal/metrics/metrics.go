// Package metrics collects the two performance variables the paper plots
// for every policy — average speedup and average waiting time as functions
// of load — plus the waiting-time distribution of Figure 4 and the backlog
// series used to detect overload (the paper cuts its curves "at high loads
// when the system leaves the steady state and becomes overloaded").
package metrics

import (
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/stats"
)

// JobResult records the lifecycle of one measured job.
type JobResult struct {
	ID          int64
	Events      int64
	Arrival     float64
	ScheduledAt float64
	FirstStart  float64
	End         float64

	// Waiting is first dispatch minus ScheduledAt — the paper's waiting
	// time, with the delayed policy's period delay already excluded.
	Waiting float64
	// WaitingWithDelay is first dispatch minus Arrival (Figure 7 reports
	// the adaptive policy delay-included).
	WaitingWithDelay float64
	// Processing is the time from first dispatch to job end, including
	// periods where subjobs were suspended.
	Processing float64
	// Speedup is the single-job single-node no-cache processing time of
	// this job divided by Processing (§3.4).
	Speedup float64
}

// Collector accumulates job results after a warm-up prefix.
type Collector struct {
	params model.Params

	// WarmupJobs results are discarded to let caches and queues reach
	// steady state (the paper measures in steady state with filled caches).
	WarmupJobs int
	// MeasureJobs caps the number of measured results; zero means no cap.
	MeasureJobs int
	// DelayIncluded selects WaitingWithDelay as the reported waiting time.
	DelayIncluded bool

	arrived   int64
	finished  int64
	measured  []JobResult
	waiting   stats.Summary
	speedup   stats.Summary
	proc      stats.Summary
	histogram *stats.LogHistogram
}

// NewCollector returns a collector for the given parameters.
func NewCollector(p model.Params, warmupJobs, measureJobs int) *Collector {
	return &Collector{
		params:      p,
		WarmupJobs:  warmupJobs,
		MeasureJobs: measureJobs,
		// 10 s .. 4 weeks covers Figure 4's axis with margin.
		histogram: stats.NewLogHistogram(10, 4*model.Week, 6),
	}
}

// JobArrived counts an arrival.
func (c *Collector) JobArrived(*job.Job) { c.arrived++ }

// JobFinished records a completed job.
func (c *Collector) JobFinished(j *job.Job) {
	c.finished++
	if j.ID < int64(c.WarmupJobs) {
		return
	}
	if c.MeasureJobs > 0 && j.ID >= int64(c.WarmupJobs+c.MeasureJobs) {
		return
	}
	r := JobResult{
		ID:          j.ID,
		Events:      j.Events(),
		Arrival:     j.Arrival,
		ScheduledAt: j.ScheduledAt,
		FirstStart:  j.FirstStart,
		End:         j.EndTime,
	}
	r.Waiting = r.FirstStart - r.ScheduledAt
	r.WaitingWithDelay = r.FirstStart - r.Arrival
	r.Processing = r.End - r.FirstStart
	if r.Processing > 0 {
		single := float64(j.Events()) * c.params.EventTimeTape()
		r.Speedup = single / r.Processing
	}
	c.measured = append(c.measured, r)
	w := r.Waiting
	if c.DelayIncluded {
		w = r.WaitingWithDelay
	}
	c.waiting.Add(w)
	c.histogram.Add(w)
	c.speedup.Add(r.Speedup)
	c.proc.Add(r.Processing)
}

// Done reports whether the measurement quota has been reached.
func (c *Collector) Done() bool {
	return c.MeasureJobs > 0 && len(c.measured) >= c.MeasureJobs
}

// Backlog returns the number of jobs arrived but not yet finished.
func (c *Collector) Backlog() int64 { return c.arrived - c.finished }

// Arrived and Finished return the arrival and completion counts.
func (c *Collector) Arrived() int64  { return c.arrived }
func (c *Collector) Finished() int64 { return c.finished }

// Results returns the measured job results.
func (c *Collector) Results() []JobResult { return c.measured }

// AvgWaiting returns the mean reported waiting time, in seconds.
func (c *Collector) AvgWaiting() float64 { return c.waiting.Mean() }

// MaxWaiting returns the maximum reported waiting time, in seconds.
func (c *Collector) MaxWaiting() float64 { return c.waiting.Max() }

// AvgSpeedup returns the mean per-job speedup.
func (c *Collector) AvgSpeedup() float64 { return c.speedup.Mean() }

// AvgProcessing returns the mean processing time, in seconds.
func (c *Collector) AvgProcessing() float64 { return c.proc.Mean() }

// WaitingHistogram returns the log-scale waiting time histogram (Figure 4).
func (c *Collector) WaitingHistogram() *stats.LogHistogram { return c.histogram }

// WaitingQuantile returns the q-quantile of reported waiting times.
func (c *Collector) WaitingQuantile(q float64) float64 {
	xs := make([]float64, len(c.measured))
	for i, r := range c.measured {
		xs[i] = r.Waiting
		if c.DelayIncluded {
			xs[i] = r.WaitingWithDelay
		}
	}
	return stats.Quantile(xs, q)
}
