// Package wirecanon is a fixture for the wirecanon analyzer: structs
// that participate in the wire (declare json tags or are reachable from
// one that does) need complete snake_case tags and no map fields.
package wirecanon

import "context"

// Spec is a wire root: it declares json tags.
type Spec struct {
	Name     string         `json:"name"`
	Load     float64        `json:"load_jobs_per_hour"`
	BadCase  int            `json:"BadCase"` // want "json tag \"BadCase\" on Spec.BadCase is not snake_case"
	Untagged int            // want "exported field Spec.Untagged has no json tag"
	Labels   map[string]int `json:"labels"` // want "field Spec.Labels contains a map"
	Nested   Inner          `json:"nested"`
	Skipped  map[string]int `json:"-"` // excluded from the wire: map is fine
	internal int            // unexported: invisible to encoding/json
}

// Inner declares a tag, so it is a root in its own right; partial
// tagging inside it is the classic hazard.
type Inner struct {
	Value float64 `json:"value"`
	Loose int     // want "exported field Inner.Loose has no json tag"
}

// Deep has no tags at all — it participates only because Tagged reaches
// it through a slice-of-pointer field.
type Tagged struct {
	Deep []*Deep `json:"deep"`
}

type Deep struct {
	Hidden map[int]int // want "exported field Deep.Hidden has no json tag" "field Deep.Hidden contains a map"
}

// Options is a runtime struct: no tags anywhere, not reachable from a
// tagged struct — encoding/json never sees it, so nothing is required.
type Options struct {
	Workers int
	Ctx     context.Context
	OnDone  func()
	Scratch map[string]int
}

var _ = Spec{internal: 0}
