module physched

go 1.24
