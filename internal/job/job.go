// Package job defines the unit of work of the simulated system: analysis
// jobs over contiguous event ranges, the subjobs policies split them into,
// and splitting helpers shared by all scheduling policies.
//
// A job is "a large collection of events" (paper §2.4); policies divide it
// into subjobs processing disjoint sub-ranges, possibly suspending and
// resuming them. Subjobs of one job together always partition exactly the
// unprocessed remainder of the job's range.
package job

import (
	"fmt"
	"sort"

	"physched/internal/dataspace"
)

// Job is one analysis job submitted by a physicist.
type Job struct {
	ID      int64
	Arrival float64            // submission time
	Range   dataspace.Interval // contiguous events to analyse

	// Accounting maintained by the cluster.
	Processed  int64   // events fully analysed so far
	Started    bool    // true once the first subjob was dispatched
	FirstStart float64 // time of first dispatch
	Finished   bool
	EndTime    float64

	// ScheduledAt is the time the job was handed to its policy's queues.
	// For immediate policies it equals Arrival; delayed scheduling sets it
	// to the end of the accumulation period, and reported waiting times
	// start there (§5.2: the period delay "is subtracted from the waiting
	// time shown in the figures").
	ScheduledAt float64

	// Running counts subjobs of this job currently executing on nodes.
	Running int

	// Suspended holds subjobs of this job that were preempted or could not
	// be placed, and await resumption. Owned by the scheduling policy.
	Suspended []*Subjob

	// Priority marks a job that exceeded the fairness aging limit of the
	// out-of-order policy (§4.1) and must be served before any other work.
	Priority bool
}

// Remaining returns the number of events still to process.
func (j *Job) Remaining() int64 { return j.Range.Len() - j.Processed }

// Events returns the total number of events of the job.
func (j *Job) Events() int64 { return j.Range.Len() }

func (j *Job) String() string {
	return fmt.Sprintf("job%d%v", j.ID, j.Range)
}

// Subjob is a contiguous slice of a job assigned to one node at a time.
type Subjob struct {
	Job   *Job
	Range dataspace.Interval

	// Yielding marks a subjob that runs on a node not holding its data
	// (out-of-order work stealing, Table 3): a subjob with locally cached
	// data may preempt it.
	Yielding bool

	// NoCacheQueue remembers that the subjob came from the global
	// no-cached-data queue, so preemption puts it back at that queue's
	// front (Table 3).
	NoCacheQueue bool

	// Origin is the node whose queue the subjob came from, or -1 for the
	// no-cached-data queue. Preemption returns the remainder "at the first
	// position of the queue where it came from" (Table 3).
	Origin int
}

// Events returns the subjob's event count.
func (s *Subjob) Events() int64 { return s.Range.Len() }

func (s *Subjob) String() string {
	return fmt.Sprintf("sub[j%d]%v", s.Job.ID, s.Range)
}

// SplitEqual cuts iv into at most n contiguous parts of (near-)equal size,
// none smaller than minEvents (except when iv itself is smaller, which
// yields a single part). It returns fewer than n parts when iv is too
// small to honour minEvents.
func SplitEqual(iv dataspace.Interval, n int, minEvents int64) []dataspace.Interval {
	if iv.Empty() || n <= 0 {
		return nil
	}
	if maxParts := iv.Len() / minEvents; int64(n) > maxParts {
		n = int(maxParts)
		if n == 0 {
			n = 1
		}
	}
	parts := make([]dataspace.Interval, 0, n)
	size := iv.Len() / int64(n)
	rem := iv.Len() % int64(n)
	pos := iv.Start
	for i := 0; i < n; i++ {
		end := pos + size
		if int64(i) < rem {
			end++
		}
		parts = append(parts, dataspace.Iv(pos, end))
		pos = end
	}
	return parts
}

// SplitForJob turns intervals into subjobs of j.
func SplitForJob(j *Job, ivs []dataspace.Interval) []*Subjob {
	subs := make([]*Subjob, len(ivs))
	for i, iv := range ivs {
		subs[i] = &Subjob{Job: j, Range: iv}
	}
	return subs
}

// StripePoints computes the cut points of the delayed policy (Table 4):
// starting from the sorted distinct boundary points of the given intervals
// within hull, points creating stripes shorter than stripe/2 are removed,
// then points are added so that no stripe exceeds stripe events.
func StripePoints(boundaries []int64, hull dataspace.Interval, stripe int64) []int64 {
	if stripe <= 0 {
		panic("job: stripe must be positive")
	}
	// Deduplicate and sort boundaries inside the hull.
	seen := map[int64]bool{hull.Start: true, hull.End: true}
	points := []int64{hull.Start, hull.End}
	for _, b := range boundaries {
		if b > hull.Start && b < hull.End && !seen[b] {
			seen[b] = true
			points = append(points, b)
		}
	}
	sortInt64s(points)
	// Drop points creating stripes below stripe/2 (keep hull ends).
	kept := points[:1]
	for i := 1; i < len(points); i++ {
		p := points[i]
		if p-kept[len(kept)-1] < stripe/2 && p != hull.End {
			continue
		}
		kept = append(kept, p)
	}
	// Ensure no stripe exceeds stripe events.
	var out []int64
	for i, p := range kept {
		if i > 0 {
			prev := out[len(out)-1]
			for p-prev > stripe {
				prev += stripe
				out = append(out, prev)
			}
		}
		out = append(out, p)
	}
	return out
}

// CutAtPoints splits iv at the given ascending cut points, returning the
// resulting contiguous sub-intervals.
func CutAtPoints(iv dataspace.Interval, points []int64) []dataspace.Interval {
	var out []dataspace.Interval
	pos := iv.Start
	for _, p := range points {
		if p <= pos {
			continue
		}
		if p >= iv.End {
			break
		}
		out = append(out, dataspace.Iv(pos, p))
		pos = p
	}
	if pos < iv.End {
		out = append(out, dataspace.Iv(pos, iv.End))
	}
	return out
}

func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
