// Package trace records simulation activity as structured events — job
// lifecycle transitions, subjob dispatches and completions, node
// utilisation and cache occupancy samples — and renders them as JSON Lines
// or summary statistics. The paper's production scheduler runs "both on the
// simulated and on the target system"; an execution trace is the artefact
// operators use to understand either.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies trace events.
type Kind string

const (
	JobArrived     Kind = "job_arrived"
	JobStarted     Kind = "job_started"
	JobFinished    Kind = "job_finished"
	SubjobStarted  Kind = "subjob_started"
	SubjobFinished Kind = "subjob_finished"
	// SubjobLost records a subjob killed by its node failing; Events
	// carries the wasted work (events computed then discarded).
	SubjobLost Kind = "subjob_lost"
	// NodeDown and NodeUp record node churn (failure, repair, late join).
	NodeDown Kind = "node_down"
	NodeUp   Kind = "node_up"
	Sample   Kind = "sample" // periodic cluster state sample
)

// Event is one trace record. Fields are pointers-free and JSON-friendly;
// unused fields are zero and omitted from the encoding.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`

	JobID  int64 `json:"job"`
	Node   int   `json:"node"`
	Events int64 `json:"events,omitempty"`

	// Sample payload.
	BusyNodes    int     `json:"busy_nodes,omitempty"`
	Backlog      int64   `json:"backlog,omitempty"`
	CacheUsed    int64   `json:"cache_used,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// Recorder accumulates events. The zero value discards everything; create
// with New to record. Recorder is safe for concurrent use so parallel
// sweeps can share sinks, though a single simulation is single-threaded.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	sink    io.Writer // optional streaming sink (JSONL)
	limit   int
	dropped uint64 // events discarded once limit was reached
}

// New returns a recorder holding at most limit events in memory (0 = no
// limit). If sink is non-nil every event is also streamed to it as JSONL.
func New(limit int, sink io.Writer) *Recorder {
	return &Recorder{limit: limit, sink: sink}
}

// Add records one event.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit == 0 || len(r.events) < r.limit {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	if r.sink != nil {
		b, err := json.Marshal(e)
		if err == nil {
			r.sink.Write(append(b, '\n'))
		}
	}
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of events held in memory.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped reports the number of events discarded because the in-memory
// limit was reached — a capped trace export can tell "complete" from
// "truncated" without guessing from the event count.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONL writes all in-memory events to w as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses events written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Summary aggregates a trace.
type Summary struct {
	Jobs            int64
	Subjobs         int64
	MeanConcurrency float64 // mean busy nodes over samples
	PeakBacklog     int64
	MeanHitRate     float64
}

// Summarise computes aggregate statistics over events.
func Summarise(events []Event) Summary {
	var s Summary
	var samples int64
	var busySum float64
	var hitSum float64
	for _, e := range events {
		switch e.Kind {
		case JobFinished:
			s.Jobs++
		case SubjobFinished:
			s.Subjobs++
		case Sample:
			samples++
			busySum += float64(e.BusyNodes)
			hitSum += e.CacheHitRate
			if e.Backlog > s.PeakBacklog {
				s.PeakBacklog = e.Backlog
			}
		}
	}
	if samples > 0 {
		s.MeanConcurrency = busySum / float64(samples)
		s.MeanHitRate = hitSum / float64(samples)
	}
	return s
}

// Timeline bins per-node busy time from subjob start/finish pairs and
// returns per-node utilisation over [0, horizon]. Events must come from a
// single simulation; unmatched starts are treated as busy until horizon.
func Timeline(events []Event, nodes int, horizon float64) []float64 {
	busy := make([]float64, nodes)
	open := map[int]float64{} // node -> start time of current subjob
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	for _, e := range sorted {
		if e.Node < 0 || e.Node >= nodes {
			continue
		}
		switch e.Kind {
		case SubjobStarted:
			open[e.Node] = e.Time
		case SubjobFinished, SubjobLost:
			if t0, ok := open[e.Node]; ok {
				busy[e.Node] += e.Time - t0
				delete(open, e.Node)
			}
		}
	}
	for n, t0 := range open {
		if horizon > t0 {
			busy[n] += horizon - t0
		}
	}
	util := make([]float64, nodes)
	for i, b := range busy {
		if horizon > 0 {
			util[i] = b / horizon
		}
	}
	return util
}
