package spec

import (
	"bytes"
	"strings"
	"testing"

	"physched/internal/cluster"
)

// TestFaultsSpecCompiles: a faults block reaches the compiled scenario as
// a validated cluster.FaultModel with the named defaults filled in.
func TestFaultsSpecCompiles(t *testing.T) {
	s := smallSpec()
	s.Faults = Faults{MTBFHours: 200, CacheLoss: true, SpareNodes: 1}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.FaultModel{
		MTBFHours:   200,
		RepairHours: cluster.DefaultRepairHours,
		CacheLoss:   true,
		SpareNodes:  1,
		JoinHours:   cluster.DefaultJoinHours,
	}
	if sc.Faults != want {
		t.Errorf("compiled faults %+v, want %+v", sc.Faults, want)
	}
}

// TestFaultsBackwardCompatibleHash: the zero faults block encodes to
// nothing, so a spec written before node dynamics existed keeps its
// canonical form and hash.
func TestFaultsBackwardCompatibleHash(t *testing.T) {
	c, err := smallSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(c, []byte("faults")) {
		t.Errorf("fault-free canonical form mentions faults:\n%s", c)
	}
}

// TestFaultsDefaultsHashIdentical: leaving repair_hours/join_hours to
// default and naming the default values explicitly mean the same
// scenario, so they must share one hash.
func TestFaultsDefaultsHashIdentical(t *testing.T) {
	implicit := smallSpec()
	implicit.Faults = Faults{MTBFHours: 100, SpareNodes: 2}
	explicit := smallSpec()
	explicit.Faults = Faults{
		MTBFHours:   100,
		RepairHours: cluster.DefaultRepairHours,
		SpareNodes:  2,
		JoinHours:   cluster.DefaultJoinHours,
	}
	h1, err1 := implicit.Hash()
	h2, err2 := explicit.Hash()
	if err1 != nil || err2 != nil || h1 != h2 {
		t.Errorf("defaulted and explicit faults hash differently: %q (%v) vs %q (%v)", h1, err1, h2, err2)
	}
}

// TestFaultsUnknownFieldRejected: a typo inside the faults block must
// fail parsing like any other unknown field.
func TestFaultsUnknownFieldRejected(t *testing.T) {
	body := `{
		"params": {"nodes": 4, "cache_gb": 10, "mean_job_events": 2000, "dataspace_gb": 200},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.2,
		"faults": {"mtbf_hours": 100, "mtfb_hours": 9}
	}`
	if _, err := Parse(strings.NewReader(body)); err == nil {
		t.Fatal("unknown faults field accepted")
	}
}

// TestFaultsRejectsOutOfRange: out-of-range fault parameters fail spec
// validation with a diagnosable error.
func TestFaultsRejectsOutOfRange(t *testing.T) {
	cases := []Faults{
		{MTBFHours: -1},
		{MTBFHours: 10, RepairHours: -2},
		{MTBFHours: 10, DayNightSwing: 1.5},
		{MTBFHours: 10, DecommissionProb: 2},
		{SpareNodes: -1},
		{DayNightSwing: 0.5},  // swing without failures
		{CacheLoss: true},     // failure knobs without a failure rate
		{RepairHours: 3},      //
		{JoinHours: 12},       // join timing without spares
		{DecommissionProb: 1}, //
	}
	for _, f := range cases {
		s := smallSpec()
		s.Faults = f
		if err := s.Validate(); err == nil {
			t.Errorf("faults %+v accepted", f)
		}
	}
}

// FuzzFaultsCanonicalRoundTrip drives the canonicalisation identity over
// the faults block: for every valid faulted spec the fuzzer reaches,
// encode→decode→encode of the canonical form must be byte-identical and
// the hash stable — the property content-addressed caching of faulted
// scenarios rests on.
func FuzzFaultsCanonicalRoundTrip(f *testing.F) {
	f.Add(100.0, 0.0, 0.0, false, 0.0, 0, 0.0)
	f.Add(48.0, 2.0, 0.8, true, 0.05, 3, 12.0)
	f.Add(0.0, 0.0, 0.0, false, 0.0, 2, 0.0)
	f.Fuzz(func(t *testing.T, mtbf, repair, swing float64, cacheLoss bool,
		decom float64, spares int, join float64) {
		s := smallSpec()
		s.Faults = Faults{
			MTBFHours:        mtbf,
			RepairHours:      repair,
			DayNightSwing:    swing,
			CacheLoss:        cacheLoss,
			DecommissionProb: decom,
			SpareNodes:       spares,
			JoinHours:        join,
		}
		c, err := s.Canonical()
		if err != nil {
			t.Skip() // invalid faults: rejection is under test above
		}
		back, err := Parse(bytes.NewReader(c))
		if err != nil {
			t.Fatalf("canonical form does not parse: %v\n%s", err, c)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("canonical form does not re-canonicalise: %v\n%s", err, c)
		}
		if !bytes.Equal(c, c2) {
			t.Fatalf("canonical form unstable:\n%s\n%s", c, c2)
		}
		h1, err1 := s.Hash()
		h2, err2 := back.Hash()
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Fatalf("hash unstable: %q (%v) vs %q (%v)", h1, err1, h2, err2)
		}
	})
}

// TestGridFaultsVariantOverlay: a variant's faults block replaces the
// base's wholesale and reaches the compiled cell scenario.
func TestGridFaultsVariantOverlay(t *testing.T) {
	base := smallSpec()
	base.Faults = Faults{MTBFHours: 500}
	g := Grid{
		Base: base,
		Variants: []Variant{
			{Label: "base churn"},
			{Label: "harsh churn", Faults: &Faults{MTBFHours: 10, RepairHours: 8, CacheLoss: true}},
		},
		Loads: []float64{1.0},
	}
	lg, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cells := lg.Cells()
	if got := cells[0].Scenario.Faults.MTBFHours; got != 500 {
		t.Errorf("base variant MTBF %v, want 500", got)
	}
	harsh := cells[1].Scenario.Faults
	if harsh.MTBFHours != 10 || harsh.RepairHours != 8 || !harsh.CacheLoss {
		t.Errorf("variant faults not applied: %+v", harsh)
	}
	// The overlay must also split the cell content keys.
	keys := g.Keys()
	k0, ok0 := keys(cells[0])
	k1, ok1 := keys(cells[1])
	if !ok0 || !ok1 || k0 == k1 {
		t.Errorf("fault variants share a cell key: %q vs %q", k0, k1)
	}
}
