// Package sabotage deliberately violates contracts enforced on every
// package (hotalloc, physcheddirective) so tests can prove the
// multichecker exits nonzero end to end. It is never built by ./...
// wildcards (testdata is wildcard-invisible) — only explicit paths
// reach it.
package sabotage

import "fmt"

//physched:typo this directive verb does not exist
func bad() {}

// burn is an annotated hot path that allocates flagrantly.
//
//physched:hotpath
func burn(xs []int) string {
	out := ""
	for _, x := range xs {
		out = out + fmt.Sprint(x)
	}
	return out
}
