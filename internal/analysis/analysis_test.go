package analysis

import (
	"strings"
	"testing"

	"physched/internal/analysis/driver"
)

// TestFixtures runs each analyzer over its positive+negative fixture
// package and matches diagnostics against the // want expectations.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *driver.Analyzer
		fixture  string
	}{
		{DetRand, "detrand"},
		{WallTime, "walltime"},
		{MapOrder, "maporder"},
		{HotAlloc, "hotalloc"},
		{WireCanon, "wirecanon"},
		{Directive, "directive"},
		{LockCheck, "lockcheck"},
		{LockGuard, "lockguard"},
		{SpawnCheck, "spawncheck"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			t.Parallel()
			problems, err := RunFixture(tc.analyzer, tc.fixture)
			if err != nil {
				t.Fatalf("RunFixture(%s): %v", tc.fixture, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestRepoIsLintClean is the in-test twin of the CI lint job: the whole
// module must pass the rule-scoped suite. Reverting any fixed finding
// (or dropping a //physched: suppression) fails this test, not just the
// separate CI step.
func TestRepoIsLintClean(t *testing.T) {
	diags, err := Lint("../..", "./...")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSabotagedPackageFails proves the suite actually bites: the
// sabotage fixture must produce findings from the hotalloc,
// physcheddirective, lockcheck and spawncheck analyzers under the same
// Rules scoping CI uses. (lockguard is Rules-scoped to the shared-state
// packages; its sabotage fixture is exercised through the CLI's
// -analyzers flag in cmd/physchedlint's tests.)
func TestSabotagedPackageFails(t *testing.T) {
	diags, err := Lint(".", "./testdata/src/sabotage")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("sabotaged package produced no findings")
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, want := range []string{"hotalloc", "physcheddirective", "lockcheck", "spawncheck"} {
		if !seen[want] {
			t.Errorf("no finding from %s on the sabotaged package; got %v", want, diags)
		}
	}
}

// TestRulesScoping pins the analyzer-to-package wiring: determinism
// analyzers cover the sim core, wire checks cover spec/opt, and the
// annotation/hot-path checks run everywhere.
func TestRulesScoping(t *testing.T) {
	names := func(pkgPath string) map[string]bool {
		out := map[string]bool{}
		for _, a := range Rules(&driver.Package{PkgPath: pkgPath}) {
			out[a.Name] = true
		}
		return out
	}
	sim := names("physched/internal/sim")
	for _, want := range []string{"detrand", "walltime", "maporder", "hotalloc", "physcheddirective", "lockcheck", "spawncheck"} {
		if !sim[want] {
			t.Errorf("internal/sim missing analyzer %s", want)
		}
	}
	if sim["wirecanon"] {
		t.Error("internal/sim should not run wirecanon")
	}
	if sim["lockguard"] {
		t.Error("internal/sim is not a lockguard package: guard inference is scoped to the shared-state stores")
	}
	lab := names("physched/internal/lab")
	if !lab["lockguard"] || !lab["lockcheck"] || !lab["spawncheck"] {
		t.Error("internal/lab (the pool) must run all three concurrency analyzers")
	}
	spec := names("physched/internal/spec")
	if !spec["wirecanon"] {
		t.Error("internal/spec must run wirecanon")
	}
	daemon := names("physched/cmd/physchedd")
	if !daemon["walltime"] || !daemon["detrand"] {
		t.Error("cmd/physchedd must run walltime and detrand (clock/rand discipline)")
	}
	if daemon["maporder"] {
		t.Error("cmd/physchedd is service-layer: maporder not registered")
	}
	lint := names("physched/internal/analysis")
	if lint["walltime"] || lint["detrand"] || lint["maporder"] {
		t.Error("the linter itself is outside the determinism boundary")
	}
	if !IsDeterministic("physched") || !IsDeterministic("physched/internal/lab") {
		t.Error("root facade and lab are inside the determinism boundary")
	}
	if IsDeterministic("physched/internal/analysis/testdata/src/detrand") {
		t.Error("fixture packages must not match the boundary by prefix")
	}
}

// TestWantMachinery guards the fixture matcher itself: a fixture with a
// stale want must fail, not silently pass.
func TestWantMachinery(t *testing.T) {
	problems, err := RunFixture(WallTime, "detrand")
	if err != nil {
		t.Fatalf("RunFixture: %v", err)
	}
	// The detrand fixture's wants mention global rand; walltime reports
	// none of them but does flag the time.Now inside the seed expression.
	if len(problems) == 0 {
		t.Fatal("mismatched analyzer/fixture pair should produce problems")
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "no diagnostic matched want") {
		t.Errorf("expected unmatched wants, got:\n%s", joined)
	}
}
