package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram: cumulative counts over
// ascending upper bounds plus a running sum, rendered in the Prometheus
// text exposition format (_bucket/_sum/_count). Observe is lock-free
// and allocation-free — it is called from pool-worker hook paths where
// an allocation would show up in the zero-alloc bench gate — while
// rendering takes the slow path and may allocate freely.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (seconds, by convention). An empty bounds slice still works —
// only the implicit +Inf bucket remains — but loses all resolution.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
//
//physched:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// WriteProm renders the histogram's sample lines (no family header —
// the caller owns # HELP/# TYPE). labels is a pre-rendered label list
// like `kind="grid"`, or "" for a bare series.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(labels), formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(labels), cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatBound renders a bucket bound exactly like Prometheus clients
// do: shortest float representation, no exponent for typical bounds.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// HistogramVec is a set of histograms sharing one bucket layout, keyed
// by label values — HTTP duration by route×status, job duration by
// kind. Series creation takes a mutex (requests, not simulation cells,
// pay it); Observe on the returned *Histogram stays lock-free.
type HistogramVec struct {
	names  []string
	bounds []float64

	mu     sync.Mutex
	series map[string]*Histogram
}

// NewHistogramVec returns a vec over the given label names and bounds.
func NewHistogramVec(labelNames []string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		names:  append([]string(nil), labelNames...),
		bounds: bounds,
		series: map[string]*Histogram{},
	}
}

// With returns the histogram for the given label values (one per label
// name, in order), creating the series on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.names) {
		panic("obs: label value count mismatch")
	}
	var sb strings.Builder
	for i, name := range v.names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(name)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(values[i]))
	}
	key := sb.String()
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.series[key] = h
	}
	return h
}

// WriteProm renders every series, sorted by label key so scrapes are
// deterministic. No family header — the caller owns # HELP/# TYPE.
func (v *HistogramVec) WriteProm(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	hists := make([]*Histogram, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		hists[i] = v.series[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		hists[i].WriteProm(w, name, k)
	}
}

// Default bucket layouts, in seconds. Chosen once and documented in
// DESIGN.md §14: fixed buckets keep Observe allocation-free and scrapes
// comparable across processes, at the price of resolution beyond the
// last bound.
var (
	// HTTPBuckets spans 1ms–10s: registry GETs land in the first few,
	// synchronous grid runs in the tail.
	HTTPBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// QueueWaitBuckets starts at 10µs: on an idle pool a task is picked
	// up within microseconds, and the interesting signal is the decades
	// between "immediately" and "queued behind a campaign".
	QueueWaitBuckets = []float64{1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}
	// CellBuckets spans 1ms–60s: a smoke-grid cell simulates in
	// milliseconds, a million-job scenario in tens of seconds.
	CellBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}
	// JobBuckets spans 10ms–10min for end-to-end async jobs.
	JobBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300, 600}
)
