// Package suppressed is lint-clean only because of its //physched:
// suppression directives. The suppression-audit tests run it twice:
// once normally (expecting zero findings) and once with suppressions
// stripped or ignored (expecting every hidden finding to reappear).
// This pins the rot-loudly contract: deleting the code a suppression
// excuses must resurface the directive as an error, and deleting the
// directive must resurface the finding.
package suppressed

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// earlyReturn leaks the lock on the conditional path; the lockok
// directive is the only thing keeping it quiet.
func earlyReturn(g *guarded, bail bool) {
	g.mu.Lock()
	if bail {
		//physched:lockok fixture: leak hidden on purpose for the audit test
		return
	}
	g.mu.Unlock()
}

// spawn starts a goroutine that blocks forever on an unbuffered send.
func spawn(ch chan int) {
	//physched:spawnok fixture: goroutine lifetime owned by the audit test
	go func() {
		for {
			ch <- 0
		}
	}()
}

// hot grows a slice inside a hot-path loop.
//
//physched:hotpath
func hot(xs []int) []int {
	var out []int
	for _, x := range xs {
		//physched:allocok fixture: growth accepted for the audit test
		out = append(out, x)
	}
	return out
}
