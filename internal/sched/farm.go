package sched

import (
	"physched/internal/cluster"
	"physched/internal/job"
)

// Farm is the processing-farm baseline (§3.1): jobs queue in front of the
// cluster and each job runs whole on the first available node, which stays
// dedicated to it until the end. No disk caching is performed; all data is
// streamed from tertiary storage. At CERN this was the production policy;
// the paper uses it as the reference, noting it behaves as an M/Er/m
// queueing system (see internal/queueing).
type Farm struct {
	base
	queue jobFIFO
}

// NewFarm returns the processing-farm policy.
func NewFarm() *Farm { return &Farm{} }

func (*Farm) Name() string { return "farm" }

func (*Farm) ClusterConfig() cluster.Config { return cluster.Config{} }

func (f *Farm) JobArrived(j *job.Job) {
	if n := f.c.FirstIdle(); n != nil {
		f.c.Dispatch(n, f.arena().NewSubjob(j, j.Range, -1))
		return
	}
	f.queue.Push(j)
}

func (f *Farm) SubjobDone(n *cluster.Node, _ *job.Subjob) {
	if !f.queue.Empty() {
		j := f.queue.Pop()
		f.c.Dispatch(n, f.arena().NewSubjob(j, j.Range, -1))
	}
}
