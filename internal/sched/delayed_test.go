package sched

import (
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
)

// These tests target the period and timer edge cases of the delayed and
// adaptive policies — the trickiest control flow in the package.

func TestDelayedJobsSpanPeriods(t *testing.T) {
	pol := NewDelayed(model.Hour, 400)
	h := newHarness(t, pol, nil)
	// First batch: enough work to outlast one period on 3 nodes.
	var first []*job.Job
	for i := 0; i < 6; i++ {
		first = append(first, h.submit(dataspace.Iv(int64(i)*5_000, int64(i)*5_000+3_000)))
	}
	// Run into the second period and submit more.
	h.eng.RunUntil(model.Hour + 60)
	second := h.submit(dataspace.Iv(40_000, 41_000))
	h.eng.RunUntil(40 * model.Hour)
	for i, j := range first {
		if !j.Finished {
			t.Fatalf("first-batch job %d unfinished", i)
		}
		if j.ScheduledAt != model.Hour {
			t.Errorf("first-batch job %d ScheduledAt = %v, want %v", i, j.ScheduledAt, model.Hour)
		}
	}
	if !second.Finished {
		t.Fatal("second-batch job unfinished")
	}
	if second.ScheduledAt != 2*model.Hour {
		t.Errorf("second-batch ScheduledAt = %v, want %v", second.ScheduledAt, 2*model.Hour)
	}
}

func TestDelayedMetaQueueOrderedByArrival(t *testing.T) {
	pol := NewDelayed(model.Hour, 400)
	h := newHarness(t, pol, nil)
	// Two disjoint uncached jobs arriving in order within one period.
	early := h.submit(dataspace.Iv(0, 2_000))
	h.eng.RunUntil(30 * model.Minute)
	late := h.submit(dataspace.Iv(50_000, 52_000))
	h.eng.RunUntil(20 * model.Hour)
	if !early.Finished || !late.Finished {
		t.Fatal("jobs unfinished")
	}
	if early.FirstStart > late.FirstStart {
		t.Error("meta-subjob queue violated arrival order for disjoint jobs")
	}
}

func TestAdaptiveDelayTransitionsBothWays(t *testing.T) {
	pol := NewAdaptive(400)
	// Tight table so the test flips regimes quickly.
	pol.Table = []DelayStep{
		{MaxUtilisation: 0.2, Delay: 0},
		{MaxUtilisation: 10, Delay: model.Hour},
	}
	pol.Window = 2 * model.Hour
	h := newHarness(t, pol, nil)

	// Phase 1: slow arrivals → zero delay.
	h.submit(dataspace.Iv(0, 500))
	if pol.CurrentDelay() != 0 {
		t.Fatalf("initial delay = %v, want 0", pol.CurrentDelay())
	}
	// Phase 2: a burst far beyond 20% utilisation → positive delay.
	for i := 0; i < 50; i++ {
		h.eng.RunUntil(h.eng.Now() + 30)
		h.submit(dataspace.Iv(int64(i)*600, int64(i)*600+400))
	}
	if pol.CurrentDelay() == 0 {
		t.Fatalf("delay stayed 0 under burst (estimate %.2f j/h)", pol.LoadEstimate())
	}
	// Phase 3: let the window drain; next arrival must retune to zero and
	// flush everything accumulated.
	h.eng.RunUntil(h.eng.Now() + 3*model.Hour)
	last := h.submit(dataspace.Iv(40_000, 40_500))
	if pol.CurrentDelay() != 0 {
		t.Fatalf("delay did not return to 0 (estimate %.2f j/h)", pol.LoadEstimate())
	}
	if !last.Started && len(h.c.IdleNodes()) > 0 {
		t.Error("zero-delay arrival not scheduled immediately")
	}
	h.eng.RunUntil(h.eng.Now() + 100*model.Hour)
	if !last.Finished {
		t.Fatal("post-flush job unfinished")
	}
}

func TestAdaptiveFlushSchedulesPendingJobs(t *testing.T) {
	pol := NewAdaptive(400)
	pol.Table = []DelayStep{
		{MaxUtilisation: 0.15, Delay: 0},
		{MaxUtilisation: 10, Delay: 5 * model.Hour},
	}
	pol.Window = model.Hour
	h := newHarness(t, pol, nil)
	// Burst to enter delayed mode; these jobs accumulate as pending.
	var burst []*job.Job
	for i := 0; i < 30; i++ {
		h.eng.RunUntil(h.eng.Now() + 20)
		burst = append(burst, h.submit(dataspace.Iv(int64(i)*700, int64(i)*700+500)))
	}
	// Quiet period, then one arrival triggering the flush back to zero.
	h.eng.RunUntil(h.eng.Now() + 2*model.Hour)
	h.submit(dataspace.Iv(45_000, 45_400))
	h.eng.RunUntil(h.eng.Now() + 200*model.Hour)
	for i, j := range burst {
		if !j.Finished {
			t.Fatalf("burst job %d lost across the mode flip", i)
		}
	}
}

func TestDelayedTimerNotDuplicated(t *testing.T) {
	// Entering delayed mode twice must not double-schedule period ends
	// (which would halve the effective period and skew batching).
	pol := NewAdaptive(400)
	pol.Table = []DelayStep{
		{MaxUtilisation: 0.1, Delay: 0},
		{MaxUtilisation: 10, Delay: model.Hour},
	}
	pol.Window = model.Hour
	h := newHarness(t, pol, nil)
	for i := 0; i < 20; i++ {
		h.eng.RunUntil(h.eng.Now() + 10)
		h.submit(dataspace.Iv(int64(i)*600, int64(i)*600+400))
	}
	if pol.inner.timer == nil {
		t.Fatal("no period timer in delayed mode")
	}
	// Count pending period-end events indirectly: after cancelling the
	// tracked timer there must be no other timer that fires periodEnd.
	pol.inner.timer.Cancel()
	pending := pol.inner.pending
	h.eng.RunUntil(h.eng.Now() + 3*model.Hour)
	if len(pol.inner.pending) < len(pending) {
		t.Error("a duplicate period timer scheduled the batch after the tracked timer was cancelled")
	}
}

// TestDelayedRepairResumesPrivateQueue reproduces the churn liveness
// trap of per-node queues: work queued on a node that fails is invisible
// to every other dispatch path, so the repaired node must feed itself on
// NodeUp — in zero-period mode no period boundary ever comes, and with
// no further arrivals or completions nothing else would run it.
func TestDelayedRepairResumesPrivateQueue(t *testing.T) {
	pol := NewDelayed(0, 1000)
	h := newHarness(t, pol, nil)
	h.c.NodeDown = pol.NodeDown
	h.c.NodeUp = pol.NodeUp

	// Warm node 0's cache so the next jobs queue on its private queue.
	j1 := h.submit(dataspace.Iv(0, 1000))
	h.eng.Run()
	if !j1.Finished {
		t.Fatal("warm-up job incomplete")
	}
	j2 := h.submit(dataspace.Iv(0, 1000)) // runs on node 0 (cached there)
	j3 := h.submit(dataspace.Iv(0, 1000)) // queues behind it
	if h.c.Node(0).Running() == nil {
		t.Fatal("node 0 should be running j2")
	}

	h.c.FailNode(h.c.Node(0), false)
	h.eng.Run() // no events left: without NodeUp feeding, j2/j3 strand
	if j2.Finished || j3.Finished {
		t.Fatal("jobs finished while their node was down")
	}
	h.c.RepairNode(h.c.Node(0))
	h.eng.Run()
	if !j2.Finished || !j3.Finished {
		t.Errorf("repaired node never resumed its queue: j2=%v j3=%v", j2.Finished, j3.Finished)
	}
}

// TestDelayedDecommissionRestripes: a decommissioned node's private
// backlog is re-striped for the surviving nodes instead of stranding.
func TestDelayedDecommissionRestripes(t *testing.T) {
	pol := NewDelayed(0, 1000)
	h := newHarness(t, pol, nil)
	h.c.NodeDown = pol.NodeDown
	h.c.NodeUp = pol.NodeUp

	j1 := h.submit(dataspace.Iv(0, 1000))
	h.eng.Run()
	if !j1.Finished {
		t.Fatal("warm-up job incomplete")
	}
	j2 := h.submit(dataspace.Iv(0, 1000))
	j3 := h.submit(dataspace.Iv(0, 1000))
	h.c.DecommissionNode(h.c.Node(0))
	h.eng.Run()
	if !j2.Finished || !j3.Finished {
		t.Errorf("decommissioned node's backlog stranded: j2=%v j3=%v", j2.Finished, j3.Finished)
	}
}
