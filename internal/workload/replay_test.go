package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestExportReplayRoundTrip(t *testing.T) {
	p := testParams()
	gen := New(p, rand.New(rand.NewSource(9)), 1.5)
	var buf bytes.Buffer
	if err := Export(&buf, gen, 50); err != nil {
		t.Fatal(err)
	}

	rep, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 50 {
		t.Fatalf("Len = %d, want 50", rep.Len())
	}

	// Replaying must give the same stream as a fresh generator with the
	// same seed.
	gen2 := New(p, rand.New(rand.NewSource(9)), 1.5)
	for i := 0; i < 50; i++ {
		want := gen2.Next()
		got := rep.Next()
		if got == nil {
			t.Fatalf("trace exhausted at %d", i)
		}
		if got.Arrival != want.Arrival || got.Range != want.Range {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if rep.Next() != nil {
		t.Error("exhausted trace should return nil")
	}
}

func TestReplayRewind(t *testing.T) {
	var buf bytes.Buffer
	gen := New(testParams(), rand.New(rand.NewSource(1)), 1)
	if err := Export(&buf, gen, 5); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Next()
	for rep.Next() != nil {
	}
	rep.Rewind()
	again := rep.Next()
	if again.Arrival != first.Arrival || again.Range != first.Range {
		t.Error("rewind did not restart the trace")
	}
	if again == first {
		t.Error("rewound jobs must be fresh values, not shared pointers")
	}
}

func TestReplayValidation(t *testing.T) {
	cases := []string{
		`{"arrival": 10, "start": 0, "end": 5}` + "\n" + `{"arrival": 5, "start": 0, "end": 5}`, // out of order
		`{"arrival": 1, "start": 5, "end": 5}`,                                                  // empty range
		`{"arrival": 1, "start": 9, "end": 2}`,                                                  // inverted range
		`{"arrival": 1, "start": 0, "end": bad`,                                                 // garbage
	}
	for i, in := range cases {
		if _, err := NewReplay(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	rep, err := NewReplay(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 || rep.Next() != nil {
		t.Error("empty trace should yield nothing")
	}
}
