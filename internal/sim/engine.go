// Package sim is a minimal deterministic discrete-event simulation engine:
// a clock, a time-ordered event queue with stable FIFO ordering among
// simultaneous events, and cancellable timers. It is single-goroutine by
// design — the paper's simulator models days to weeks of cluster operation,
// which only stays fast if the hot loop is allocation-light and lock-free.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Engine drives a simulation. Create one with New, schedule callbacks with
// At or After, and call Run or RunUntil.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	rng   *rand.Rand
	steps uint64
}

// Event is a handle to a scheduled callback; it can be cancelled.
type Event struct {
	time      float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event's callback from running. Cancelling an already
// executed or cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Time returns the simulated time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// New returns an engine whose clock starts at zero, with a deterministic
// random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it always indicates a logic error in a policy.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event { return e.At(e.now+d, fn) }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Step executes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by time, breaking ties by scheduling order so
// simultaneous events run FIFO — required for reproducible simulations.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
