package resultcache

import (
	"sync/atomic"

	"physched/internal/lab"
)

// Stats is a point-in-time snapshot of a Counted store's traffic.
type Stats struct {
	Hits, Misses, Puts          uint64 // result entries
	AggHits, AggMisses, AggPuts uint64 // aggregate entries
}

// Counted wraps a Store and counts its traffic — the counter layer the
// physchedd /metrics endpoint reads. Counters are monotonic over the
// wrapper's lifetime; rates are the scraper's job. The wrapped store
// still does all the work, so Counted composes with any stack Open
// builds.
type Counted struct {
	inner Store

	hits, misses, puts          atomic.Uint64
	aggHits, aggMisses, aggPuts atomic.Uint64
}

// NewCounted wraps s with traffic counters.
func NewCounted(s Store) *Counted { return &Counted{inner: s} }

// Get returns the cached result for key, counting the hit or miss.
func (c *Counted) Get(key string) (r lab.Result, ok bool) {
	r, ok = c.inner.Get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

// Put stores r under key, counting the write.
func (c *Counted) Put(key string, r lab.Result) {
	c.puts.Add(1)
	c.inner.Put(key, r)
}

// GetAggregate returns the cached aggregate for key, counting the hit
// or miss.
func (c *Counted) GetAggregate(key string) (a lab.Aggregate, ok bool) {
	a, ok = c.inner.GetAggregate(key)
	if ok {
		c.aggHits.Add(1)
	} else {
		c.aggMisses.Add(1)
	}
	return a, ok
}

// PutAggregate stores a under key, counting the write.
func (c *Counted) PutAggregate(key string, a lab.Aggregate) {
	c.aggPuts.Add(1)
	c.inner.PutAggregate(key, a)
}

// Stats snapshots the counters.
func (c *Counted) Stats() Stats {
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Puts: c.puts.Load(),
		AggHits: c.aggHits.Load(), AggMisses: c.aggMisses.Load(), AggPuts: c.aggPuts.Load(),
	}
}
