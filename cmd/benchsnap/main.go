// Command benchsnap converts `go test -bench` output on stdin into a
// compact JSON snapshot on stdout — the perf-trajectory format CI writes
// to BENCH_run.json so successive PRs can diff headline numbers (ns/op,
// allocs/op, custom metrics) without parsing benchmark text.
//
// Usage:
//
//	go test -run XXX -bench BenchmarkRun -benchmem ./internal/lab | benchsnap
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark result line.
type benchmark struct {
	// Name is the benchmark's name exactly as printed, including any
	// -P GOMAXPROCS suffix: a trailing -N is textually indistinguishable
	// from a sub-benchmark name ending in a number, so stripping it
	// would corrupt those names. Snapshots are compared within one
	// environment (the cpu field identifies it), where the suffix is
	// stable.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric extras, keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the whole document.
type snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// parse reads go test benchmark output: header key: value lines, then
// "BenchmarkName-P  N  value unit  value unit ..." result lines.
func parse(r io.Reader) (snapshot, error) {
	var snap snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Concatenated runs from several packages (CI pipes them into
			// one snapshot) list every package instead of keeping the last.
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			switch {
			case snap.Pkg == "":
				snap.Pkg = pkg
			case !strings.Contains(";"+snap.Pkg+";", ";"+pkg+";"):
				snap.Pkg += ";" + pkg
			}
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return snap, fmt.Errorf("line %q: %w", line, err)
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// parseResult parses one benchmark result line.
func parseResult(line string) (benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, fmt.Errorf("want at least name and iterations")
	}
	b := benchmark{Name: fields[0], Metrics: map[string]float64{}}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b.Iterations = iters
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return benchmark{}, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		value, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return benchmark{}, fmt.Errorf("value %q: %w", rest[i], err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			b.BytesPerOp = value
		case "allocs/op":
			b.AllocsPerOp = value
		default:
			b.Metrics[unit] = value
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, nil
}
