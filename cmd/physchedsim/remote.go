package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"physched/client"
	"physched/internal/opt"
	"physched/internal/spec"
)

// remoteSpec runs a spec file on a physchedd service through the typed
// client and returns the result plus the spec itself (the local report
// needs the model parameters for its reference lines). The service
// serves cached results without re-simulating, so pointing -server at a
// long-lived daemon makes repeated CLI runs free.
func remoteSpec(server, specPath string, timeout time.Duration) (client.SpecResponse, spec.Spec, error) {
	sp, err := loadSpec(specPath)
	if err != nil {
		return client.SpecResponse{}, spec.Spec{}, err
	}
	body, err := os.ReadFile(specPath)
	if err != nil {
		return client.SpecResponse{}, spec.Spec{}, err
	}
	ctx, cancel := remoteContext(timeout)
	defer cancel()
	res, err := client.New(server).RunSpec(ctx, body)
	if err != nil {
		return client.SpecResponse{}, spec.Spec{}, err
	}
	return res, sp, nil
}

// remoteStudy runs a study spec on a physchedd service through the typed
// client, streaming progress to stderr when asked, and prints the report
// exactly like a local -study run.
func remoteStudy(server, studyPath string, timeout time.Duration, progress bool) (*opt.Report, error) {
	body, err := os.ReadFile(studyPath)
	if err != nil {
		return nil, err
	}
	ctx, cancel := remoteContext(timeout)
	defer cancel()
	var onProgress func(client.ProgressLine)
	if progress {
		onProgress = func(p client.ProgressLine) {
			state := "steady"
			if p.Overloaded {
				state = "overloaded"
			}
			src := "simulated"
			if p.FromCache {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "progress: cell %d/%d  %-50s seed=%d  %s %s\n",
				p.Done, p.Total, p.Label, p.Seed, state, src)
		}
	}
	study, err := client.New(server).RunStudy(ctx, body, onProgress)
	if err != nil {
		return nil, err
	}
	fmt.Print(study.Report.Render())
	fmt.Println()
	fmt.Print(study.Report.TrajectoryPlot())
	return study.Report, nil
}

// remoteContext bounds a remote call like -timeout bounds local runs.
func remoteContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}
