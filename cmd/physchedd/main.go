// Command physchedd is the simulation service: it accepts declarative
// scenario and grid specs (internal/spec) over HTTP, executes them on one
// server-wide internal/lab pool — like the paper's master scheduler, a
// single arbiter that bounds what runs at once — streams NDJSON progress
// while a grid runs, and serves previously computed results from a
// content-addressed cache (internal/resultcache) by spec hash. The same
// spec file that drives `physchedsim -spec` can be POSTed here unchanged.
//
// Every request shares the pool: -parallel bounds the total number of
// simulation cells in flight across all requests, cells from concurrent
// grids are interleaved fairly, and -max-inflight rejects work beyond
// the admission bound with 429 instead of queueing it. Long campaigns
// submit asynchronously (?async=1) and attach to the stream later.
//
// With -state-dir, async jobs are journaled to disk: finished jobs stay
// queryable (and replay byte-identically) across restarts, and jobs that
// were running when the process died restart automatically through the
// content cache, re-simulating only cells the dead run had not finished.
//
// Every listing endpoint paginates (?page=, ?page_size=; defaults 1 and
// 20, page_size capped at 500); GET /v1/jobs also filters by ?state=
// and ?kind=. Every error response carries the envelope
// {"error": {"code": "...", "message": "..."}} with a stable code (see
// physched/client). GET /metrics exposes operational counters in the
// Prometheus text format.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /metrics                 Prometheus text metrics (pool, cache,
//	                              jobs, admission)
//	GET  /v1/policies             registered scheduling policies
//	GET  /v1/workloads            registered workload kinds
//	POST /v1/specs                run one spec; JSON result (cache-aware)
//	POST /v1/grids                run a grid spec; NDJSON progress stream
//	                              terminated by a result line
//	POST /v1/grids?async=1        submit a grid as a background job; 202
//	                              with the job id
//	POST /v1/studies              run a budgeted scenario search
//	                              (internal/opt study spec); NDJSON
//	                              progress terminated by the report, or
//	                              ?async=1 for a background job
//	GET  /v1/studies              list retained study reports (summaries)
//	GET  /v1/studies/{hash}       finished study report by study hash
//	GET  /v1/jobs                 list async jobs; ?state=, ?kind=,
//	                              ?page=, ?page_size=
//	GET  /v1/jobs/{id}            async job status and progress counters
//	DELETE /v1/jobs/{id}          cancel a running async job (409 when
//	                              already finished)
//	GET  /v1/jobs/{id}/stream     (re)attach to an async job's NDJSON
//	                              stream; replays from the beginning
//	GET  /v1/results/{hash}       cached run result by spec hash
//	GET  /v1/aggregates/{hash}    cached replica aggregate by hash
//
// Observability: every request gets (or keeps) an X-Request-Id that is
// echoed, logged and attached to async jobs; GET /metrics adds latency
// histograms (HTTP by route×status, pool queue wait, cell execution,
// job end-to-end by kind) to the counters; structured JSON logs go to
// stderr; -debug-addr serves net/http/pprof on a separate listener so
// profiling is never exposed on the API port. On SIGTERM/SIGINT the
// server stops admitting executions (503), finishes in-flight requests
// and drains async jobs for up to -drain-timeout, then cancels
// stragglers (their journals resume them on next start) and exits with
// a shutdown summary.
//
// Usage:
//
//	physchedd [-addr :8080] [-debug-addr ADDR] [-cache-dir DIR]
//	          [-state-dir DIR] [-parallel N] [-max-cells N]
//	          [-max-inflight N] [-max-jobs N] [-max-trace-events N]
//	          [-drain-timeout D] [-log-level LEVEL]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"physched/internal/lab"
	"physched/internal/obs"
	"physched/internal/resultcache"
)

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("log-level must be debug, info, warn or error; got %q", s)
}

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		debugAddr      = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = profiling disabled)")
		cacheDir       = flag.String("cache-dir", "", "directory for the on-disk result cache (empty = memory only)")
		parallel       = flag.Int("parallel", 0, "max concurrent simulation cells across ALL requests (0 = GOMAXPROCS)")
		maxCells       = flag.Int("max-cells", 10_000, "reject grids with more cells than this (0 = unlimited)")
		maxInflight    = flag.Int("max-inflight", 64, "reject new grid/spec executions with 429 past this many in flight (0 = unlimited)")
		maxJobs        = flag.Int("max-jobs", 64, "retain at most this many async jobs (finished jobs evicted oldest-first)")
		maxTraceEvents = flag.Int("max-trace-events", defaultMaxTraceEvents, "cap on in-memory trace events per ?trace=1 job, split across its cells")
		stateDir       = flag.String("state-dir", "", "directory for persistent async-job journals (empty = in-memory jobs only)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work before cancelling it")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "physchedd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, obs.SystemClock, level)

	cache, err := resultcache.Open(*cacheDir)
	if err != nil {
		logger.Error("startup failed", "error", err.Error())
		os.Exit(1)
	}
	pool := lab.NewPool(*parallel)
	api, err := newServer(serverConfig{
		Cache:          cache,
		Pool:           pool,
		MaxCells:       *maxCells,
		MaxInflight:    *maxInflight,
		MaxJobs:        *maxJobs,
		MaxTraceEvents: *maxTraceEvents,
		StateDir:       *stateDir,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("startup failed", "error", err.Error())
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: api.routes(),
		// Simulations stream for as long as they run; only reads and
		// idle connections get fixed deadlines.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// pprof rides its own listener and mux: the API port stays free of
	// profiling endpoints, so exposing one is an explicit -debug-addr
	// decision rather than a side effect of importing net/http/pprof.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		// Exits when debugSrv.Close runs during shutdown.
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	// Exits when srv.Shutdown closes the listener; the error lands in errc.
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "debug_addr", *debugAddr,
		"cache_dir", *cacheDir, "state_dir", *stateDir,
		"pool_workers", pool.Workers(), "max_inflight", *maxInflight,
		"version", moduleVersion())

	select {
	case err := <-errc:
		logger.Error("listener failed", "error", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	// Shutdown sequence: stop admitting executions (503), close the
	// listener and wait for in-flight requests (streams included), then
	// drain async jobs — all bounded by one -drain-timeout budget.
	// Cancelled jobs stop between cells; with -state-dir their journals
	// resume them on the next start, re-simulating only uncached cells.
	logger.Info("shutdown: signal received; draining", "drain_timeout", (*drainTimeout).String())
	api.beginDrain()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpErr := srv.Shutdown(sdCtx)
	drainErr := api.drain(sdCtx)
	pool.Close()
	if debugSrv != nil {
		debugSrv.Close()
	}

	byState, _ := api.jobs.counts()
	clean := httpErr == nil && drainErr == nil
	logger.Info("shutdown complete",
		"clean", clean,
		"jobs_done", byState[jobDone], "jobs_failed", byState[jobFailed],
		"jobs_cancelled", byState[jobCancelled], "jobs_running", byState[jobRunning],
		"pool_tasks_done", pool.Stats().TasksDone,
		"uptime_seconds", obs.SystemClock().Sub(api.started).Seconds())
	if !clean {
		os.Exit(1)
	}
}
