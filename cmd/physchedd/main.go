// Command physchedd is the simulation service: it accepts declarative
// scenario and grid specs (internal/spec) over HTTP, executes them on one
// server-wide internal/lab pool — like the paper's master scheduler, a
// single arbiter that bounds what runs at once — streams NDJSON progress
// while a grid runs, and serves previously computed results from a
// content-addressed cache (internal/resultcache) by spec hash. The same
// spec file that drives `physchedsim -spec` can be POSTed here unchanged.
//
// Every request shares the pool: -parallel bounds the total number of
// simulation cells in flight across all requests, cells from concurrent
// grids are interleaved fairly, and -max-inflight rejects work beyond
// the admission bound with 429 instead of queueing it. Long campaigns
// submit asynchronously (?async=1) and attach to the stream later.
//
// With -state-dir, async jobs are journaled to disk: finished jobs stay
// queryable (and replay byte-identically) across restarts, and jobs that
// were running when the process died restart automatically through the
// content cache, re-simulating only cells the dead run had not finished.
//
// Every listing endpoint paginates (?page=, ?page_size=; defaults 1 and
// 20, page_size capped at 500); GET /v1/jobs also filters by ?state=
// and ?kind=. Every error response carries the envelope
// {"error": {"code": "...", "message": "..."}} with a stable code (see
// physched/client). GET /metrics exposes operational counters in the
// Prometheus text format.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /metrics                 Prometheus text metrics (pool, cache,
//	                              jobs, admission)
//	GET  /v1/policies             registered scheduling policies
//	GET  /v1/workloads            registered workload kinds
//	POST /v1/specs                run one spec; JSON result (cache-aware)
//	POST /v1/grids                run a grid spec; NDJSON progress stream
//	                              terminated by a result line
//	POST /v1/grids?async=1        submit a grid as a background job; 202
//	                              with the job id
//	POST /v1/studies              run a budgeted scenario search
//	                              (internal/opt study spec); NDJSON
//	                              progress terminated by the report, or
//	                              ?async=1 for a background job
//	GET  /v1/studies              list retained study reports (summaries)
//	GET  /v1/studies/{hash}       finished study report by study hash
//	GET  /v1/jobs                 list async jobs; ?state=, ?kind=,
//	                              ?page=, ?page_size=
//	GET  /v1/jobs/{id}            async job status and progress counters
//	DELETE /v1/jobs/{id}          cancel a running async job (409 when
//	                              already finished)
//	GET  /v1/jobs/{id}/stream     (re)attach to an async job's NDJSON
//	                              stream; replays from the beginning
//	GET  /v1/results/{hash}       cached run result by spec hash
//	GET  /v1/aggregates/{hash}    cached replica aggregate by hash
//
// Usage:
//
//	physchedd [-addr :8080] [-cache-dir DIR] [-state-dir DIR] [-parallel N]
//	          [-max-cells N] [-max-inflight N] [-max-jobs N]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"physched/internal/lab"
	"physched/internal/resultcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("physchedd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheDir    = flag.String("cache-dir", "", "directory for the on-disk result cache (empty = memory only)")
		parallel    = flag.Int("parallel", 0, "max concurrent simulation cells across ALL requests (0 = GOMAXPROCS)")
		maxCells    = flag.Int("max-cells", 10_000, "reject grids with more cells than this (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 64, "reject new grid/spec executions with 429 past this many in flight (0 = unlimited)")
		maxJobs     = flag.Int("max-jobs", 64, "retain at most this many async jobs (finished jobs evicted oldest-first)")
		stateDir    = flag.String("state-dir", "", "directory for persistent async-job journals (empty = in-memory jobs only)")
	)
	flag.Parse()

	cache, err := resultcache.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	pool := lab.NewPool(*parallel)
	api, err := newServer(serverConfig{
		Cache:       cache,
		Pool:        pool,
		MaxCells:    *maxCells,
		MaxInflight: *maxInflight,
		MaxJobs:     *maxJobs,
		StateDir:    *stateDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: api.routes(),
		// Simulations stream for as long as they run; only reads and
		// idle connections get fixed deadlines.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("listening on %s (cache-dir %q, state-dir %q, pool %d workers)", *addr, *cacheDir, *stateDir, pool.Workers())
	log.Fatal(srv.ListenAndServe())
}
