package lab

import (
	"encoding/json"
	"testing"

	"physched/internal/model"
	"physched/internal/sched"
)

// TestCacheOrientedGridDeterminism is a regression test for a seed-tree
// bug: the cache-oriented policy dispatched an affinity assignment by
// ranging over a map keyed by node pointers, so the dispatch order — and,
// through event tie-breaking, the whole run — followed randomised map
// iteration. Paper-scale parameters reproduce it reliably within two
// loads.
func TestCacheOrientedGridDeterminism(t *testing.T) {
	mk := func() Grid {
		base := Scenario{
			Params:      model.PaperCalibrated(),
			NewPolicy:   func() sched.Policy { return sched.NewCacheOriented() },
			Seed:        1,
			WarmupJobs:  50,
			MeasureJobs: 100,
		}
		return Grid{Base: base, Loads: []float64{0.7, 0.84}}
	}
	serial, _ := mk().Execute(Options{Workers: 1})
	parallel, _ := mk().Execute(Options{Workers: 4})
	sb, _ := json.Marshal(serial.Results)
	pb, _ := json.Marshal(parallel.Results)
	if string(sb) != string(pb) {
		t.Fatalf("cache-oriented grid differs between serial and parallel execution:\n%s\n%s", sb, pb)
	}
}
