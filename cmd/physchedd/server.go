package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"physched/client"
	"physched/internal/lab"
	"physched/internal/obs"
	"physched/internal/resultcache"
	"physched/internal/sched"
	"physched/internal/spec"
	"physched/internal/trace"
	"physched/internal/workload"
)

// The wire format lives in physched/client — the same structs the typed
// client decodes are the structs this server encodes, so the two cannot
// drift. The aliases keep the handler code reading naturally.
type (
	specResponse    = client.SpecResponse
	progressLine    = client.ProgressLine
	cellResult      = client.CellResult
	aggregateResult = client.AggregateResult
	resultLine      = client.ResultLine
	errorLine       = client.ErrorLine
	studyLine       = client.StudyLine
	jobStatus       = client.JobStatus
	jobSubmitted    = client.JobSubmitted
	jobList         = client.JobList
	studySummary    = client.StudySummary
	studyList       = client.StudyList
)

// serverConfig wires the spec layer, the shared lab pool and the result
// cache behind the HTTP API.
type serverConfig struct {
	Cache resultcache.Store
	// Pool is the server-wide execution pool: every request's simulation
	// cells run on it, so its worker bound caps concurrent simulations
	// across all in-flight requests. nil creates a GOMAXPROCS-wide pool.
	Pool *lab.Pool
	// MaxCells rejects grids with more cells than this (0 = unlimited).
	MaxCells int
	// MaxInflight rejects new executions with 429 once this many grid or
	// spec requests are already executing (0 = unlimited). Admission
	// control, not queueing: rejected clients retry, they do not pile up.
	MaxInflight int
	// MaxJobs bounds async-job retention (finished jobs are evicted
	// oldest-first past the cap). 0 means defaultMaxJobs.
	MaxJobs int
	// StateDir, when non-empty, persists async jobs (metadata plus the
	// replay stream) as one journal file each under this directory. On
	// startup finished jobs are reloaded — still listable, streamable and
	// byte-identical on replay — and jobs that were running when the
	// process died are restarted through the content cache, re-simulating
	// only uncached cells. Empty disables persistence.
	StateDir string
	// Clock supplies every service-layer timestamp: job lifecycle,
	// request durations, queue waits, log records. nil wires
	// obs.SystemClock — the module's single audited real-clock seam;
	// tests inject a fake for deterministic lifecycle, log and
	// histogram assertions.
	Clock func() time.Time
	// Logger receives structured JSON log lines (access log, job
	// lifecycle, shutdown). nil discards — the default for in-process
	// test servers.
	Logger *slog.Logger
	// MaxTraceEvents caps the total in-memory trace events per traced
	// job (?trace=1), split evenly across the job's cells. 0 means
	// defaultMaxTraceEvents; capped cells report dropped counts in
	// their trace headers.
	MaxTraceEvents int
}

const defaultMaxJobs = 64

// defaultMaxTraceEvents bounds the in-memory trace buffer of one traced
// job. At ~100 bytes an encoded event this is ~10 MB per traced job
// worst case, bounded further by -max-jobs retention.
const defaultMaxTraceEvents = 100_000

type server struct {
	cache          *resultcache.Counted
	pool           *lab.Pool
	maxCells       int
	maxInflight    int
	maxTraceEvents int
	clock          func() time.Time
	logger         *slog.Logger
	started        time.Time
	jobs           *jobManager
	studies        *reportStore
	journal        *jobJournal
	// jobsWG joins every async-job goroutine; crash() (tests) and
	// recovery correctness depend on knowing when they are gone.
	jobsWG sync.WaitGroup

	// Latency histograms, all fed from the injected clock. httpDur is
	// labelled route×status (bounded by the route table); jobDur by job
	// kind. queueWait and cellDur hang off the pool's timing hooks.
	httpDur   *obs.HistogramVec
	queueWait *obs.Histogram
	cellDur   *obs.Histogram
	jobDur    *obs.HistogramVec

	// Trace-export counters for /metrics.
	traceJobs    atomic.Uint64 // jobs submitted with ?trace=1
	traceEvents  atomic.Uint64 // events captured across traced jobs
	traceDropped atomic.Uint64 // events discarded by the per-job cap

	mu       sync.Mutex
	inflight int
	draining bool // shutdown in progress: no new executions admitted
}

// maxStudyReports bounds in-memory study-report retention (oldest-first
// eviction; an evicted report is rebuilt at cache speed by re-POSTing).
const maxStudyReports = 256

func newServer(cfg serverConfig) (*server, error) {
	if cfg.Pool == nil {
		cfg.Pool = lab.NewPool(0)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = defaultMaxJobs
	}
	if cfg.Clock == nil {
		// Production wall time enters through the obs seam — the single
		// audited real-clock site in the module; everything downstream
		// (timestamps, histograms, log records) receives this clock.
		cfg.Clock = obs.SystemClock
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.MaxTraceEvents <= 0 {
		cfg.MaxTraceEvents = defaultMaxTraceEvents
	}
	s := &server{
		cache:          resultcache.NewCounted(cfg.Cache),
		pool:           cfg.Pool,
		maxCells:       cfg.MaxCells,
		maxInflight:    cfg.MaxInflight,
		maxTraceEvents: cfg.MaxTraceEvents,
		clock:          cfg.Clock,
		logger:         cfg.Logger,
		started:        cfg.Clock(),
		jobs:           newJobManager(cfg.MaxJobs),
		studies:        newReportStore(maxStudyReports),
		httpDur:        obs.NewHistogramVec([]string{"route", "status"}, obs.HTTPBuckets),
		queueWait:      obs.NewHistogram(obs.QueueWaitBuckets),
		cellDur:        obs.NewHistogram(obs.CellBuckets),
		jobDur:         obs.NewHistogramVec([]string{"kind"}, obs.JobBuckets),
	}
	// The pool never reads a clock itself (it sits inside the determinism
	// boundary); its timing hooks receive nanos derived from the server's
	// injected clock, so queue-wait and cell-duration histograms are
	// deterministic under a test fake.
	s.pool.SetHooks(&lab.PoolHooks{
		Now:  obs.NowNanos(s.clock),
		Wait: func(ns int64) { s.queueWait.Observe(float64(ns) / 1e9) },
		Run:  func(ns int64) { s.cellDur.Observe(float64(ns) / 1e9) },
	})
	if cfg.StateDir != "" {
		j, err := newJobJournal(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.jobs.onEvict = j.remove
	}
	if err := s.recoverJobs(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/specs", s.handleSpec)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("POST /v1/studies", s.handleStudies)
	mux.HandleFunc("GET /v1/studies", s.handleStudyList)
	mux.HandleFunc("GET /v1/studies/{hash}", s.handleStudyReport)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/aggregates/{hash}", s.handleAggregate)
	// Every handler — including error envelopes — sits behind the
	// request middleware: X-Request-Id in/out, one access-log line per
	// request, and the route×status duration histogram.
	return obs.Middleware(mux, obs.MiddlewareConfig{
		Clock:   s.clock,
		Logger:  s.logger,
		Observe: func(route, status string, sec float64) { s.httpDur.With(route, status).Observe(sec) },
		Route:   func(r *http.Request) string { _, p := mux.Handler(r); return p },
	})
}

// admit reserves one execution slot; false means the request must be
// rejected — the server is at its -max-inflight bound (429) or draining
// for shutdown (503). rejectNotAdmitted tells the two apart.
func (s *server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if s.maxInflight > 0 && s.inflight >= s.maxInflight {
		return false
	}
	s.inflight++
	return true
}

// release returns an execution slot taken by admit.
func (s *server) release() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// inflightNow snapshots the admission gauge for /metrics.
func (s *server) inflightNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// writeJSON writes v as one JSON document, reporting a failed write (the
// client is gone; there is nothing further to send it).
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// errorCode maps an HTTP status onto the stable machine-readable
// vocabulary of client.Code*; every handler funnels its failures through
// writeError, so the status↔code pairing is uniform across the API.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return client.CodeBadRequest
	case http.StatusNotFound:
		return client.CodeNotFound
	case http.StatusConflict:
		return client.CodeConflict
	case http.StatusUnprocessableEntity:
		return client.CodeInvalidSpec
	case http.StatusTooManyRequests:
		return client.CodeOverCapacity
	case http.StatusServiceUnavailable:
		return client.CodeUnavailable
	}
	return "error"
}

// writeError reports err in the structured envelope every error response
// uses: {"error": {"code": "...", "message": "..."}}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, client.ErrorEnvelope{Error: client.ErrorDetail{
		Code:    errorCode(status),
		Message: err.Error(),
	}})
}

// retryAfterSeconds is the Retry-After hint sent with 429 rejections.
// Admission rejections clear as soon as any in-flight execution
// finishes, so a short fixed hint beats a guess derived from queue
// depth (there is no queue — that is the point of admission control).
const retryAfterSeconds = 1

// rejectNotAdmitted explains a refused admit: 503
// unavailable while the server drains for shutdown (terminal — clients
// should fail over, not retry here), otherwise the -max-inflight 429
// with a machine-readable over_capacity code and a Retry-After header,
// so well-behaved clients can back off without parsing the message.
func (s *server) rejectNotAdmitted(w http.ResponseWriter) {
	s.mu.Lock()
	draining, limit := s.draining, s.maxInflight
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable,
			errors.New("server is draining for shutdown; no new executions admitted"))
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("server is executing %d requests, the -max-inflight limit", limit))
}

// beginDrain stops admitting new executions. Requests already running —
// synchronous streams and async jobs — continue; drain waits for the
// async side.
func (s *server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// drain waits for every async-job goroutine to finish, bounded by ctx:
// on expiry the remaining jobs are cancelled through their contexts
// (cancellation stops a run between cells; started cells complete and
// keep their cached results) and drain waits for that to land. The
// returned error is ctx's when the bound was hit.
func (s *server) drain(ctx context.Context) error {
	done := make(chan struct{})
	// Joined via the <-done below on both branches.
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range s.jobs.snapshot() {
			j.requestCancel()
		}
		<-done
		return ctx.Err()
	}
}

// Pagination bounds. A request without page parameters gets the first
// defaultPageSize items, so an unbounded listing can no longer be
// requested by accident; maxPageSize caps the deliberate form.
const (
	defaultPageSize = 20
	maxPageSize     = 500
)

// boolParam reads a query flag with the API's truthiness convention:
// present and not "0"/"false" means on (?async=1, ?trace=1).
func boolParam(q url.Values, name string) bool {
	v := q.Get(name)
	return v != "" && v != "0" && v != "false"
}

// parsePage reads page/page_size query parameters with defaults,
// rejecting non-positive or oversized values.
func parsePage(q url.Values) (page, size int, err error) {
	page, size = 1, defaultPageSize
	if v := q.Get("page"); v != "" {
		page, err = strconv.Atoi(v)
		if err != nil || page < 1 {
			return 0, 0, fmt.Errorf("page must be a positive integer, got %q", v)
		}
	}
	if v := q.Get("page_size"); v != "" {
		size, err = strconv.Atoi(v)
		if err != nil || size < 1 || size > maxPageSize {
			return 0, 0, fmt.Errorf("page_size must be in [1, %d], got %q", maxPageSize, v)
		}
	}
	return page, size, nil
}

// paginate slices one 1-based page out of items. Pages past the end are
// empty, not errors — a client walking pages stops at the first empty
// one without racing the total. The returned slice is never nil, so
// listings marshal as [] rather than null.
func paginate[T any](items []T, page, size int) ([]T, client.PageInfo) {
	info := client.PageInfo{
		Page:       page,
		PageSize:   size,
		TotalItems: len(items),
		TotalPages: (len(items) + size - 1) / size,
	}
	out := []T{}
	if lo := (page - 1) * size; lo < len(items) {
		out = items[lo:min(lo+size, len(items))]
	}
	return out, info
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	page, size, err := parsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	names, info := paginate(sched.Names(), page, size)
	writeJSON(w, http.StatusOK, client.PolicyList{Policies: names, PageInfo: info})
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	page, size, err := parsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	names, info := paginate(workload.Names(), page, size)
	writeJSON(w, http.StatusOK, client.WorkloadList{Workloads: names, PageInfo: info})
}

// handleSpec runs one declarative spec on the shared pool, serving and
// feeding the content-addressed cache. Hit and miss responses are built
// from the same stored value, so apart from from_cache they are
// byte-identical.
func (s *server) handleSpec(w http.ResponseWriter, r *http.Request) {
	sp, err := spec.Parse(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash, err := sp.Hash() // validates
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if res, ok := s.cache.Get(hash); ok {
		writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
		return
	}
	sc, err := sp.Scenario()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !s.admit() {
		s.rejectNotAdmitted(w)
		return
	}
	defer s.release()
	var res lab.Result
	var runErr error
	ran := false
	err = s.pool.Run(r.Context(), 1, func(int) { ran = true; res, runErr = lab.RunE(sc) })
	if !ran {
		// Cancelled before the run started, or the pool is shutting
		// down; say so rather than sending an empty 200.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("spec not executed: %w", err))
		return
	}
	// A cancellation that landed mid-run (err != nil, ran == true) still
	// produced a complete result: cache it and respond — if the client
	// really is gone the write simply fails.
	if runErr != nil {
		writeError(w, http.StatusUnprocessableEntity, runErr)
		return
	}
	// Responding with the stored copy keeps hit and miss bodies
	// identical.
	stored := res.Stored()
	s.cache.Put(hash, stored)
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, Result: stored})
}

// gridPlan is a fully validated grid request: compiled, size-checked, and
// with every cell and aggregate content key resolved upfront, so nothing
// can fail between the first simulated cell and the final result line.
type gridPlan struct {
	grid           lab.Grid
	hash           string
	cells          []lab.Cell
	keys           []string // one per cell, indexed like RunSet.Results
	aggKeys        []string // (variant*nLoads + load), nil without a seed axis
	nLoads, nSeeds int
	// recs holds one capped trace recorder per cell when the grid was
	// submitted with ?trace=1; nil otherwise. Traced cells bypass the
	// result cache in both directions (see lab.Options.Trace).
	recs []*trace.Recorder
}

// cellIndex maps grid coordinates to the flat cell/key index. Execute
// enumerates cells in the same coordinate order, so this is exact.
func (p *gridPlan) cellIndex(c lab.Cell) int {
	return (c.Variant*p.nLoads+c.LoadIdx)*p.nSeeds + c.SeedIdx
}

// enableTrace attaches one recorder per cell, splitting the per-job
// event budget evenly across cells (at least one event each, so every
// cell's trace proves the cell ran even when heavily capped).
func (p *gridPlan) enableTrace(maxEvents int) {
	per := maxEvents / len(p.cells)
	if per < 1 {
		per = 1
	}
	p.recs = make([]*trace.Recorder, len(p.cells))
	for i := range p.recs {
		p.recs[i] = trace.New(per, nil)
	}
}

// traceFor is the lab.Options.Trace callback: nil for untraced plans.
func (p *gridPlan) traceFor(c lab.Cell) *trace.Recorder {
	if p.recs == nil {
		return nil
	}
	return p.recs[p.cellIndex(c)]
}

// planGrid parses and fully validates one grid request body, returning
// the HTTP status to report on failure. Cell-key hashing errors fail the
// whole request here, before any cell runs — a key that silently failed
// would disable the result cache for that cell.
func (s *server) planGrid(body io.Reader) (*gridPlan, int, error) {
	g, err := spec.ParseGrid(body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	gridHash, err := g.Hash() // validates
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	lg, err := g.Compile()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	cells := lg.Cells()
	if s.maxCells > 0 && len(cells) > s.maxCells {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("grid has %d cells, limit is %d", len(cells), s.maxCells)
	}
	p := &gridPlan{
		grid:   lg,
		hash:   gridHash,
		cells:  cells,
		nLoads: max(len(lg.Loads), 1),
		nSeeds: max(len(lg.Seeds), 1),
	}
	// Hash every cell spec once upfront; Options.Keys and the result line
	// both read this slice (hashing re-validates the spec, so doing it per
	// lookup would double the work on large grids).
	p.keys = make([]string, len(cells))
	for i, c := range cells {
		key, err := g.CellSpec(c).Hash()
		if err != nil {
			return nil, http.StatusUnprocessableEntity,
				fmt.Errorf("cell %d (variant %q, load %v, seed %d): %w",
					i, c.Label, c.Scenario.Load, c.Scenario.Seed, err)
		}
		p.keys[i] = key
	}
	if len(lg.Seeds) > 1 {
		nVariants := max(len(lg.Variants), 1)
		p.aggKeys = make([]string, nVariants*p.nLoads)
		for vi := 0; vi < nVariants; vi++ {
			for li := 0; li < p.nLoads; li++ {
				key, err := g.AggregateKey(vi, li)
				if err != nil {
					return nil, http.StatusUnprocessableEntity,
						fmt.Errorf("aggregate (variant %d, load index %d): %w", vi, li, err)
				}
				p.aggKeys[vi*p.nLoads+li] = key
			}
		}
	}
	return p, 0, nil
}

// streamExec is the shared shape of a streamed execution (grids and
// studies): exec runs in a goroutine depositing progress lines into a
// buffered channel — sized so the executor's serialised progress
// callback never blocks a pool worker on a slow stream consumer — while
// emit is called sequentially with every line, then exactly one terminal
// or error line. A failed emit (disconnected client) stops further
// writes without aborting the execution — cancelling is the context's
// job. terminal always runs (its side effects — caching aggregates,
// retaining reports — must not depend on the client still listening);
// only the write is skipped.
func streamExec[T any](buf int, exec func(progress func(progressLine)) (T, error), terminal func(T) any, emit func(any) error) {
	progress := make(chan progressLine, buf)
	type outcome struct {
		val T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := exec(func(p progressLine) { progress <- p })
		close(progress)
		done <- outcome{v, err}
	}()

	var emitErr error
	for line := range progress {
		if emitErr == nil {
			emitErr = emit(line)
		}
	}
	out := <-done
	if out.err != nil {
		// The request was cancelled or the server is shutting down; the
		// line documents the abort for partial readers.
		if emitErr == nil {
			emit(errorLine{Type: "error", Error: out.err.Error()})
		}
		return
	}
	line := terminal(out.val)
	if emitErr == nil {
		emit(line)
	}
}

// runGrid executes the plan on the server's shared pool under ctx,
// calling emit sequentially with every NDJSON line: progress lines, then
// exactly one result or error line. Cell results reach the cache even
// when the client disconnects mid-stream.
func (s *server) runGrid(ctx context.Context, p *gridPlan, emit func(any) error) {
	streamExec(len(p.cells), func(progress func(progressLine)) (*lab.RunSet, error) {
		return p.grid.Execute(lab.Options{
			Pool:    s.pool,
			Context: ctx,
			Cache:   s.cache,
			Keys:    func(c lab.Cell) (string, bool) { return p.keys[p.cellIndex(c)], true },
			Trace:   p.traceFor,
			Progress: func(u lab.ProgressUpdate) {
				progress(progressLine{
					Type: "progress", Done: u.Done, Total: u.Total,
					Label: u.Label, Load: u.Load, Seed: u.Seed,
					Overloaded: u.Overloaded, FromCache: u.FromCache,
				})
			},
		})
	}, func(rs *lab.RunSet) any { return s.resultLineFor(p, rs) }, emit)
}

// resultLineFor assembles the final stream line and saves replica
// aggregates to the cache. Aggregate keys were validated by planGrid.
func (s *server) resultLineFor(p *gridPlan, rs *lab.RunSet) resultLine {
	line := resultLine{Type: "result", GridHash: p.hash, CacheHits: rs.CacheHits}
	for i, res := range rs.Results {
		line.Cells = append(line.Cells, cellResult{Hash: p.keys[i], Label: rs.Cells[i].Label, Result: res})
	}
	if len(rs.Seeds) > 1 {
		for vi, label := range rs.Labels {
			for li, load := range rs.Loads {
				agg := rs.Aggregate(vi, li)
				hash := p.aggKeys[vi*p.nLoads+li]
				s.cache.PutAggregate(hash, agg)
				line.Aggregates = append(line.Aggregates, aggregateResult{
					Hash: hash, Label: label, Load: load, Aggregate: agg,
				})
			}
		}
	}
	return line
}

// handleGrid executes a declarative grid spec on the server's shared
// pool. The synchronous form streams NDJSON progress under the request
// context and finishes with a result line; with ?async=1 it returns 202
// and a job id immediately (see jobs.go). Every cell is served from —
// and saved to — the content-addressed cache, so re-POSTing a grid
// re-simulates nothing.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	async := boolParam(r.URL.Query(), "async")
	traced := boolParam(r.URL.Query(), "trace")
	if traced && !async {
		writeError(w, http.StatusBadRequest,
			errors.New("trace=1 requires async=1: traces attach to jobs and are fetched from GET /v1/jobs/{id}/trace"))
		return
	}
	plan, status, err := s.planGrid(bytes.NewReader(body))
	if err != nil {
		writeError(w, status, err)
		return
	}
	if traced {
		plan.enableTrace(s.maxTraceEvents)
	}
	if !s.admit() {
		s.rejectNotAdmitted(w)
		return
	}
	if async {
		// startJob releases the admission slot when execution finishes.
		job := s.startJob(jobParams{
			kind: "grid", hash: plan.hash, total: len(plan.cells),
			request: body, requestID: obs.RequestIDFrom(r.Context()), traced: traced,
		}, func(ctx context.Context, j *job, emit func(any) error) {
			s.runGrid(ctx, plan, emit)
			if traced {
				s.attachTrace(j, plan)
			}
		})
		w.Header().Set("Location", "/v1/jobs/"+job.id)
		writeJSON(w, http.StatusAccepted, job.submitted())
		return
	}
	defer s.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	s.runGrid(r.Context(), plan, func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err // dead connection: stop the stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleResult serves a cached run result by its spec hash.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached result for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, specResponse{Hash: hash, FromCache: true, Result: res})
}

// handleAggregate serves a cached replica aggregate by its hash.
func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	agg, ok := s.cache.GetAggregate(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cached aggregate for this hash"))
		return
	}
	writeJSON(w, http.StatusOK, client.AggregateResponse{Hash: hash, Aggregate: agg})
}
