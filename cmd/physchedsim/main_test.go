package main

import (
	"os"
	"path/filepath"
	"testing"

	"physched/internal/lab"
	"physched/internal/model"
)

func TestPolicyFactoryKnownNames(t *testing.T) {
	names := map[string]string{
		"farm":          "farm",
		"splitting":     "splitting",
		"cacheoriented": "cacheoriented",
		"outoforder":    "outoforder",
		"replication":   "outoforder+replication",
		"delayed":       "delayed",
		"adaptive":      "adaptive",
		"partitioned":   "partitioned",
		"affinefarm":    "affinefarm",
	}
	for flag, want := range names {
		mk, err := policyFactory(flag, 11, 200)
		if err != nil {
			t.Errorf("policyFactory(%q): %v", flag, err)
			continue
		}
		if got := mk().Name(); got != want {
			t.Errorf("policyFactory(%q).Name() = %q, want %q", flag, got, want)
		}
	}
}

func TestPolicyFactoryUnknownName(t *testing.T) {
	if _, err := policyFactory("bogus", 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSimulationWithoutTrace(t *testing.T) {
	p := model.PaperCalibrated()
	p.Nodes = 3
	p.MeanJobEvents = 1_000
	p.DataspaceBytes = 60 * model.GB
	p.CacheBytes = 6 * model.GB
	mk, err := policyFactory("outoforder", 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := runSimulation(lab.Scenario{
		Params: p, NewPolicy: mk, Load: 0.5 * p.FarmMaxLoad(),
		Seed: 1, WarmupJobs: 10, MeasureJobs: 50,
	}, "")
	if res.Overloaded || res.MeasuredJobs != 50 {
		t.Errorf("unexpected result: %+v", res)
	}
	// report must not panic on either outcome.
	report(res, p, true)
	res.Overloaded = true
	report(res, p, false)
}

func TestLoadSpecRunsScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	body := `{
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 2,
		"warmup_jobs": 10,
		"measure_jobs": 50
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := loadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res := runSimulation(s, "")
	if res.PolicyName != "outoforder" || (res.MeasuredJobs != 50 && !res.Overloaded) {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestLoadSpecRejectsBadFiles(t *testing.T) {
	if _, err := loadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing spec file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSpec(path); err == nil {
		t.Error("unknown spec field accepted")
	}
}
