// Package physched is a discrete-event simulator and scheduling library
// reproducing "Parallelization and Scheduling of Data Intensive Particle
// Physics Analysis Jobs on Clusters of PCs" (Ponce & Hersch, IPDPS 2004).
//
// It models a cluster of PCs with node disk caches attached to a shared
// tertiary mass-storage system, a synthetic LHCb-style analysis workload
// (contiguous event segments, Erlang-distributed job sizes, hot data
// regions, Poisson arrivals), and the paper's six scheduling policies:
// processing farm, job splitting, cache-oriented job splitting,
// out-of-order scheduling (with an optional data-replication variant),
// delayed scheduling and adaptive-delay scheduling.
//
// Quick start:
//
//	params := physched.PaperCalibrated()
//	res := physched.Run(physched.Scenario{
//		Params:    params,
//		NewPolicy: physched.OutOfOrder,
//		Load:      1.5, // jobs per hour
//		Seed:      1,
//	})
//	fmt.Printf("speedup %.1f, waiting %.0fs\n", res.AvgSpeedup, res.AvgWaiting)
//
// Scenarios exist in two forms. The programmatic form (Scenario) carries
// Go closures and is what Run executes. The declarative form (Spec,
// GridSpec) is serialisable, canonical JSON: policies and workloads are
// named PolicySpec/WorkloadSpec values resolved through extensible
// registries (sched.Register, workload.Register), Spec.Scenario compiles
// a spec into a Scenario, and the SHA-256 of a spec's canonical encoding
// content-addresses its result for caching (OpenResultCache) and for the
// cmd/physchedd HTTP service, which executes POSTed grid specs with
// streamed NDJSON progress and serves cached results by hash. A spec
// file drives `physchedsim -spec` and `experiments -spec` unchanged; see
// examples/specfile. On top of the spec layer, a Study (internal/opt)
// searches the spec space under a simulation-cell budget — seeded random
// search or CI-aware successive halving — via RunStudy, `physchedsim
// -study` or POST /v1/studies.
//
// The experiment recipes behind every figure of the paper are exposed via
// the Fig2..Fig7, Replication, MaxLoad and FarmVsMErM functions; the
// cmd/experiments binary renders them as tables, ASCII plots and CSV.
package physched

import (
	"io"
	"math/rand"

	"physched/internal/cluster"
	"physched/internal/experiments"
	"physched/internal/lab"
	"physched/internal/model"
	"physched/internal/opt"
	"physched/internal/resultcache"
	"physched/internal/sched"
	"physched/internal/spec"
	"physched/internal/workload"
)

// Params describes the simulated cluster and workload; see PaperStated and
// PaperCalibrated for the paper's configurations.
type Params = model.Params

// Scenario is one simulation configuration (cluster parameters, policy,
// load, seed, measurement window).
type Scenario = lab.Scenario

// Result summarises one simulation run.
type Result = lab.Result

// Curve is a labelled series of results over a load axis (one figure line).
type Curve = lab.Curve

// Variant is one curve specification for SweepCurves and Grid.
type Variant = lab.Variant

// Grid is a scenario space — variants × loads × seeds — executed on a
// bounded worker pool; RunSet holds its results and Options configures
// parallelism, cancellation and progress reporting. See internal/lab.
type Grid = lab.Grid

// RunSet holds a grid's results.
type RunSet = lab.RunSet

// Options configure grid execution (worker bound, context, progress).
type Options = lab.Options

// ProgressUpdate reports one completed run of a grid.
type ProgressUpdate = lab.ProgressUpdate

// Aggregate summarises replicated runs across seeds, with 95% confidence
// intervals.
type Aggregate = lab.Aggregate

// Policy is the scheduling-policy plugin interface.
type Policy = sched.Policy

// FaultModel configures node churn — stochastic failures (optionally
// day/night-modulated), repairs, permanent decommissions and late node
// joins — via Scenario.Faults. The zero value simulates the paper's
// never-failing cluster.
type FaultModel = cluster.FaultModel

// Figure is a reproduced paper figure.
type Figure = experiments.Figure

// Quality selects experiment scale (Quick or Full).
type Quality = experiments.Quality

// Experiment scales.
const (
	Quick = experiments.Quick
	Full  = experiments.Full
)

// Time units in seconds, for Scenario and policy parameters.
const (
	Minute = model.Minute
	Hour   = model.Hour
	Day    = model.Day
	Week   = model.Week
	GB     = model.GB
)

// PaperStated returns the parameters exactly as printed in §2.4 of the
// paper; PaperCalibrated adjusts effective throughputs so the paper's
// derived reference numbers (32 000 s reference job, 3.46 jobs/hour
// theoretical maximum, caching gain ≈3, farm maximum ≈1.1 jobs/hour) hold
// exactly. Use PaperCalibrated to compare against the paper's figures.
func PaperStated() Params     { return model.PaperStated() }
func PaperCalibrated() Params { return model.PaperCalibrated() }

// Policy constructors, one per paper policy.
func Farm() Policy          { return sched.NewFarm() }
func Splitting() Policy     { return sched.NewSplitting() }
func CacheOriented() Policy { return sched.NewCacheOriented() }
func OutOfOrder() Policy    { return sched.NewOutOfOrder() }
func Replication() Policy   { return sched.NewReplication() }

// Partitioned returns the static data-partitioning baseline (one owner
// node per dataspace slice); AffineFarm the cache-affine farm baseline
// (caching and affinity routing without job splitting). Both are
// extensions of this repo, not paper policies.
func Partitioned() Policy { return sched.NewPartitioned() }
func AffineFarm() Policy  { return sched.NewAffineFarm() }

// Delayed returns the delayed-scheduling policy with the given period
// delay (seconds) and stripe size (events).
func Delayed(period float64, stripe int64) Policy { return sched.NewDelayed(period, stripe) }

// Adaptive returns the adaptive-delay policy with the given stripe size.
func Adaptive(stripe int64) Policy { return sched.NewAdaptive(stripe) }

// WorkloadSource yields the job stream of a scenario; Scenario.Workload
// accepts any implementation (the synthetic generator or a trace replay).
type WorkloadSource = workload.Source

// NewWorkloadGenerator returns the paper's synthetic job stream for the
// given parameters, seed and arrival rate in jobs per hour.
func NewWorkloadGenerator(p Params, seed int64, jobsPerHour float64) WorkloadSource {
	return workload.New(p, rand.New(rand.NewSource(seed)), jobsPerHour)
}

// RateFunc is an instantaneous arrival rate in jobs per hour as a
// function of simulated time in seconds, for inhomogeneous workloads.
type RateFunc = workload.RateFunc

// NewInhomogeneousWorkloadGenerator returns a job stream whose arrivals
// follow an inhomogeneous Poisson process with rate rate(t) bounded by
// peakJobsPerHour (Lewis–Shedler thinning). Job sizes and start points
// match the paper's synthetic stream.
func NewInhomogeneousWorkloadGenerator(p Params, seed int64, rate RateFunc, peakJobsPerHour float64) WorkloadSource {
	return workload.NewInhomogeneous(p, rand.New(rand.NewSource(seed)), rate, peakJobsPerHour)
}

// DayNightRate returns a 24-hour sinusoidal load cycle with the given
// mean rate and swing in [0,1): mean·(1 + swing·sin(2πt/day)).
func DayNightRate(meanJobsPerHour, swing float64) RateFunc {
	return workload.DayNight(meanJobsPerHour, swing)
}

// ExportWorkload writes the next n jobs of src to w as JSON Lines;
// NewWorkloadReplay reads such a trace back as a replayable source.
func ExportWorkload(w io.Writer, src WorkloadSource, n int) error {
	return workload.Export(w, src, n)
}

// NewWorkloadReplay parses a JSONL workload trace written by
// ExportWorkload (or converted from production accounting logs).
func NewWorkloadReplay(r io.Reader) (WorkloadSource, error) {
	return workload.NewReplay(r)
}

// Spec is the declarative, serialisable form of one scenario: canonical
// JSON with registry-resolved policy and workload names. Spec.Scenario
// compiles it; Spec.Hash content-addresses it.
type Spec = spec.Spec

// GridSpec is the declarative form of a scenario grid — a base Spec
// crossed with variants, a load axis and a seed axis. GridSpec.Compile
// yields a Grid; GridSpec.Keys feeds Options for result caching.
type GridSpec = spec.Grid

// PolicySpec names a scheduling policy plus its serialisable arguments,
// resolved through the sched registry (sched.Register extends it).
type PolicySpec = spec.Policy

// WorkloadSpec names a workload kind plus its serialisable arguments,
// resolved through the workload registry (workload.Register extends it).
type WorkloadSpec = spec.Workload

// ParamsSpec is the declarative cluster-parameter overlay of a Spec.
type ParamsSpec = spec.Params

// FaultsSpec is the declarative node-churn block of a Spec, mirroring
// FaultModel field by field.
type FaultsSpec = spec.Faults

// VariantSpec is one declarative grid variant (whole-field overlays).
type VariantSpec = spec.Variant

// ParseSpec and ParseGridSpec read JSON spec files, rejecting unknown
// fields.
func ParseSpec(r io.Reader) (Spec, error)         { return spec.Parse(r) }
func ParseGridSpec(r io.Reader) (GridSpec, error) { return spec.ParseGrid(r) }

// Study is the declarative form of a budgeted scenario search: a base
// Spec, search axes (categorical policy/workload choices and numeric
// ranges), an objective over replica aggregates, and a search block
// (random or successive-halving, budget in simulation cells). Like Spec
// it is canonical JSON with a content hash; RunStudy executes it.
type Study = opt.Study

// StudyAxis is one search dimension of a Study.
type StudyAxis = opt.Axis

// StudyObjective selects the metric and direction a Study optimises.
type StudyObjective = opt.Objective

// StudySearch configures a Study's search driver and budget.
type StudySearch = opt.Search

// StudyReport is a finished study's outcome: winner, leaderboard,
// budget accounting and the best-objective-vs-budget trajectory.
type StudyReport = opt.Report

// StudyOptions configure study execution (worker bound or shared pool,
// context, result cache, progress).
type StudyOptions = opt.Options

// ParseStudy reads a JSON study file, rejecting unknown fields.
func ParseStudy(r io.Reader) (Study, error) { return opt.Parse(r) }

// RunStudy executes a budgeted scenario search. Every candidate
// evaluation runs through the grid layer with the configured cache, so
// re-running a study against a warm cache re-simulates nothing and the
// report is byte-identical across serial, parallel and shared-pool
// execution.
func RunStudy(st Study, o StudyOptions) (*StudyReport, error) { return opt.Run(st, o) }

// ResultCache is a content-addressed store of results keyed by spec hash;
// set it (with GridSpec.Keys) on Options so re-executed grids skip every
// cell already simulated under the same key.
type ResultCache = lab.ResultCache

// OpenResultCache opens the conventional cache stack: an in-process
// memory layer over an on-disk store at dir, or memory only when dir is
// empty.
func OpenResultCache(dir string) (ResultCache, error) { return resultcache.Open(dir) }

// Run executes one scenario to completion, panicking on an invalid
// scenario; RunE reports the problem as an error instead.
func Run(s Scenario) Result { return lab.Run(s) }

// RunE executes one scenario to completion.
func RunE(s Scenario) (Result, error) { return lab.RunE(s) }

// Sweep runs the scenario at each load (jobs/hour) on a bounded worker
// pool. Results carry summaries only; use Run for the full Collector.
func Sweep(s Scenario, loads []float64) []Result {
	rs, _ := lab.Grid{Base: s, Loads: loads}.Execute(lab.Options{})
	return rs.Results
}

// SweepCurves runs several policy variants over the same load grid.
func SweepCurves(s Scenario, loads []float64, vs []Variant) []Curve {
	rs, _ := lab.Grid{Base: s, Loads: loads, Variants: vs}.Execute(lab.Options{})
	return rs.Curves()
}

// SustainableLoad returns the highest of the given loads the scenario
// sustains without overload.
func SustainableLoad(s Scenario, loads []float64) float64 {
	return lab.SustainableLoad(s, loads, lab.Options{})
}

// Replicate runs the scenario once per seed on the worker pool and
// aggregates the replicas with confidence intervals. The error is non-nil
// when Options.Context cancelled execution; the aggregate then covers
// only the completed replicas.
func Replicate(s Scenario, seeds []int64, opts Options) (Aggregate, error) {
	return lab.Replicate(s, seeds, opts)
}

// Seeds derives n well-spread replication seeds from one base seed;
// DeriveSeed mixes a base seed with arbitrary coordinates.
func Seeds(base int64, n int) []int64              { return lab.Seeds(base, n) }
func DeriveSeed(base int64, coords ...int64) int64 { return lab.DeriveSeed(base, coords...) }

// Figure reproductions; see DESIGN.md for the experiment index.
func Fig2(q Quality, seed int64) Figure                     { return experiments.Fig2(q, seed) }
func Fig3(q Quality, seed int64) Figure                     { return experiments.Fig3(q, seed) }
func Fig4(q Quality, seed int64) []experiments.Distribution { return experiments.Fig4(q, seed) }
func Fig5(q Quality, seed int64) Figure                     { return experiments.Fig5(q, seed) }
func Fig6(q Quality, seed int64) Figure                     { return experiments.Fig6(q, seed) }
func Fig7(q Quality, seed int64) Figure                     { return experiments.Fig7(q, seed) }
func ReplicationStudy(q Quality, seed int64) []experiments.ReplicationRow {
	return experiments.Replication(q, seed)
}
func MaxLoadStudy(q Quality, seed int64) []experiments.MaxLoadResult {
	return experiments.MaxLoad(q, seed)
}
func FarmVsMErM(q Quality, seed int64) []experiments.FarmRow {
	return experiments.FarmVsMErM(q, seed)
}
