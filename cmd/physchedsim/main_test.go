package main

import (
	"testing"

	"physched/internal/model"
	"physched/internal/runner"
)

func TestPolicyFactoryKnownNames(t *testing.T) {
	names := map[string]string{
		"farm":          "farm",
		"splitting":     "splitting",
		"cacheoriented": "cacheoriented",
		"outoforder":    "outoforder",
		"replication":   "outoforder+replication",
		"delayed":       "delayed",
		"adaptive":      "adaptive",
		"partitioned":   "partitioned",
		"affinefarm":    "affinefarm",
	}
	for flag, want := range names {
		mk, err := policyFactory(flag, 11, 200)
		if err != nil {
			t.Errorf("policyFactory(%q): %v", flag, err)
			continue
		}
		if got := mk().Name(); got != want {
			t.Errorf("policyFactory(%q).Name() = %q, want %q", flag, got, want)
		}
	}
}

func TestPolicyFactoryUnknownName(t *testing.T) {
	if _, err := policyFactory("bogus", 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSimulationWithoutTrace(t *testing.T) {
	p := model.PaperCalibrated()
	p.Nodes = 3
	p.MeanJobEvents = 1_000
	p.DataspaceBytes = 60 * model.GB
	p.CacheBytes = 6 * model.GB
	mk, err := policyFactory("outoforder", 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := runSimulation(runner.Scenario{
		Params: p, NewPolicy: mk, Load: 0.5 * p.FarmMaxLoad(),
		Seed: 1, WarmupJobs: 10, MeasureJobs: 50,
	}, "")
	if res.Overloaded || res.MeasuredJobs != 50 {
		t.Errorf("unexpected result: %+v", res)
	}
	// report must not panic on either outcome.
	report(res, p, true)
	res.Overloaded = true
	report(res, p, false)
}
