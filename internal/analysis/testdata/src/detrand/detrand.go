// Package detrand is a fixture for the detrand analyzer: global
// math/rand draws and wall-clock seeds are flagged, seeded streams are
// not.
package detrand

import (
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Intn(10)    // want "global rand.Intn uses the shared math/rand source"
	_ = rand.Float64()   // want "global rand.Float64 uses the shared math/rand source"
	_ = rand.Int63n(5)   // want "global rand.Int63n uses the shared math/rand source"
	rand.Shuffle(3, nil) // want "global rand.Shuffle uses the shared math/rand source"
	rand.Seed(42)        // want "global rand.Seed uses the shared math/rand source"
	f := rand.Perm       // want "global rand.Perm uses the shared math/rand source"
	_ = f
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded stream: legal
	return rng.Float64()
}

func clockSeeded() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "rand.NewSource seeded from the wall clock"
	return rand.New(src)
}

func clockSeededNested() *rand.Rand {
	return rand.New(rand.NewSource(int64(time.Since(time.Unix(0, 0))))) // want "rand.NewSource seeded from the wall clock"
}
