package cache

import (
	"math/rand"
	"testing"

	"physched/internal/dataspace"
)

func TestInsertAndContains(t *testing.T) {
	c := NewLRU(1000, EvictLRU)
	c.Insert(dataspace.Iv(0, 100), 1)
	if !c.Contains(dataspace.Iv(0, 100)) {
		t.Error("inserted interval not cached")
	}
	if c.Contains(dataspace.Iv(0, 101)) {
		t.Error("cache claims events it never saw")
	}
	if c.Used() != 100 {
		t.Errorf("Used = %d, want 100", c.Used())
	}
	c.checkInvariants()
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	c := NewLRU(0, EvictLRU)
	c.Insert(dataspace.Iv(0, 100), 1)
	if c.Used() != 0 || !c.Cached().Empty() {
		t.Error("zero-capacity cache stored data")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(300, EvictLRU)
	c.Insert(dataspace.Iv(0, 100), 1)
	c.Insert(dataspace.Iv(200, 300), 2)
	c.Insert(dataspace.Iv(400, 500), 3)
	// Cache full. Touch the oldest so the middle one becomes LRU.
	c.Touch(dataspace.Iv(0, 100), 4)
	c.Insert(dataspace.Iv(600, 700), 5)
	if c.Contains(dataspace.Iv(200, 300)) {
		t.Error("LRU victim [200,300) survived")
	}
	for _, iv := range []dataspace.Interval{
		dataspace.Iv(0, 100), dataspace.Iv(400, 500), dataspace.Iv(600, 700),
	} {
		if !c.Contains(iv) {
			t.Errorf("%v should still be cached", iv)
		}
	}
	c.checkInvariants()
}

func TestFIFOEvictionIgnoresTouch(t *testing.T) {
	c := NewLRU(300, EvictFIFO)
	c.Insert(dataspace.Iv(0, 100), 1)
	c.Insert(dataspace.Iv(200, 300), 2)
	c.Insert(dataspace.Iv(400, 500), 3)
	c.Touch(dataspace.Iv(0, 100), 4) // must not save it under FIFO
	c.Insert(dataspace.Iv(600, 700), 5)
	if c.Contains(dataspace.Iv(0, 100)) {
		t.Error("FIFO victim [0,100) survived despite eviction order")
	}
	c.checkInvariants()
}

func TestPartialEviction(t *testing.T) {
	c := NewLRU(1000, EvictLRU)
	c.Insert(dataspace.Iv(0, 1000), 1)
	c.Insert(dataspace.Iv(2000, 2100), 2)
	if c.Used() != 1000 {
		t.Errorf("Used = %d, want full 1000", c.Used())
	}
	// 100 events of the old segment must have been evicted.
	if got := c.CachedPart(dataspace.Iv(0, 1000)).Len(); got != 900 {
		t.Errorf("remaining of old segment = %d, want 900", got)
	}
	if !c.Contains(dataspace.Iv(2000, 2100)) {
		t.Error("new segment missing")
	}
	c.checkInvariants()
}

func TestInsertLargerThanCapacityKeepsTail(t *testing.T) {
	c := NewLRU(500, EvictLRU)
	c.Insert(dataspace.Iv(0, 2000), 1)
	if c.Used() != 500 {
		t.Errorf("Used = %d, want 500", c.Used())
	}
	if !c.Contains(dataspace.Iv(1500, 2000)) {
		t.Error("tail of oversized insert should be cached")
	}
	c.checkInvariants()
}

func TestInsertOverlappingRefreshes(t *testing.T) {
	c := NewLRU(200, EvictLRU)
	c.Insert(dataspace.Iv(0, 100), 1)
	c.Insert(dataspace.Iv(100, 200), 2)
	// Re-insert the first; it must become most recent.
	c.Insert(dataspace.Iv(0, 100), 3)
	c.Insert(dataspace.Iv(300, 400), 4)
	if !c.Contains(dataspace.Iv(0, 100)) {
		t.Error("refreshed segment was evicted")
	}
	if c.Contains(dataspace.Iv(100, 200)) {
		t.Error("stale segment survived")
	}
	c.checkInvariants()
}

func TestEvictRemovesExplicitly(t *testing.T) {
	c := NewLRU(1000, EvictLRU)
	c.Insert(dataspace.Iv(0, 500), 1)
	c.Evict(dataspace.Iv(100, 200))
	if c.Used() != 400 {
		t.Errorf("Used = %d, want 400", c.Used())
	}
	if c.Contains(dataspace.Iv(100, 200)) {
		t.Error("evicted range still cached")
	}
	if !c.Contains(dataspace.Iv(0, 100)) || !c.Contains(dataspace.Iv(200, 500)) {
		t.Error("eviction removed too much")
	}
	c.checkInvariants()
}

func TestChurnCounters(t *testing.T) {
	c := NewLRU(100, EvictLRU)
	c.Insert(dataspace.Iv(0, 100), 1)
	c.Insert(dataspace.Iv(200, 300), 2)
	if c.InsertedTotal() != 200 {
		t.Errorf("InsertedTotal = %d, want 200", c.InsertedTotal())
	}
	if c.EvictedTotal() != 100 {
		t.Errorf("EvictedTotal = %d, want 100", c.EvictedTotal())
	}
}

// TestRandomisedInvariants drives the cache with random operations and
// validates the internal structure plus the capacity bound at every step.
func TestRandomisedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewLRU(5_000, EvictLRU)
	for step := 0; step < 5_000; step++ {
		start := rng.Int63n(50_000)
		iv := dataspace.Iv(start, start+1+rng.Int63n(3_000))
		switch rng.Intn(4) {
		case 0, 1:
			c.Insert(iv, float64(step))
		case 2:
			c.Touch(iv, float64(step))
		case 3:
			c.Evict(iv)
		}
		c.checkInvariants()
		if c.Used() > c.Capacity() {
			t.Fatalf("step %d: over capacity", step)
		}
	}
	if c.InsertedTotal()-c.EvictedTotal() != c.Used() {
		t.Errorf("flow conservation: in=%d out=%d used=%d",
			c.InsertedTotal(), c.EvictedTotal(), c.Used())
	}
}

func TestCachedPartMatchesInserts(t *testing.T) {
	c := NewLRU(1_000_000, EvictLRU)
	c.Insert(dataspace.Iv(10, 20), 1)
	c.Insert(dataspace.Iv(30, 40), 1)
	part := c.CachedPart(dataspace.Iv(0, 35))
	if part.Len() != 15 {
		t.Errorf("CachedPart len = %d, want 15", part.Len())
	}
}
