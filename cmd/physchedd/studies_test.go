package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"physched/internal/resultcache"
)

// studyBody is a fast study over the tiny test cluster: 2 policies × 2
// cache sizes, successive halving with a 12-cell budget.
const studyBody = `{
	"base": {
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 5,
		"warmup_jobs": 10,
		"measure_jobs": 40
	},
	"axes": [
		{"name": "policy", "values": ["outoforder", "farm"]},
		{"name": "cache_gb", "min": 6, "max": 24, "steps": 2}
	],
	"objective": {"metric": "mean_speedup"},
	"search": {"algorithm": "halving", "budget_cells": 12, "replications": 2, "seed": 3}
}`

// postStudy POSTs a study spec and splits the NDJSON stream into progress
// lines and the terminating study line.
func postStudy(t *testing.T, ts *httptest.Server, body string) (progress []progressLine, study studyLine) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawStudy := false
	for sc.Scan() {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch kind.Type {
		case "progress":
			var p progressLine
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatal(err)
			}
			progress = append(progress, p)
		case "study":
			if err := json.Unmarshal(sc.Bytes(), &study); err != nil {
				t.Fatal(err)
			}
			sawStudy = true
		default:
			t.Fatalf("unexpected line type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawStudy {
		t.Fatal("stream ended without a study line")
	}
	return progress, study
}

// TestStudyStreamAndCacheRoundTrip is the study acceptance test: POST a
// study, read streamed progress then the report; fetch the report by
// hash; POST the same study again and observe zero re-simulated cells
// with identical findings.
func TestStudyStreamAndCacheRoundTrip(t *testing.T) {
	ts := testServer(t)

	progress, study := postStudy(t, ts, studyBody)
	if len(progress) == 0 {
		t.Error("no progress lines streamed")
	}
	rep := study.Report
	if rep == nil || study.StudyHash == "" || len(study.StudyHash) != 64 {
		t.Fatalf("bad study line: %+v", study)
	}
	if rep.StudyHash != study.StudyHash || rep.Algorithm != "halving" {
		t.Errorf("report identity mismatch: %+v", rep)
	}
	if rep.EvaluatedCells == 0 || rep.EvaluatedCells > rep.Budget {
		t.Errorf("budget accounting wrong: %d of %d", rep.EvaluatedCells, rep.Budget)
	}
	if rep.Best == nil || rep.Best.SpecHash == "" {
		t.Fatalf("no winner: %+v", rep)
	}

	// The report is addressable by study hash.
	resp, err := http.Get(ts.URL + "/v1/studies/" + study.StudyHash)
	if err != nil {
		t.Fatal(err)
	}
	var fetched studyLine
	err = json.NewDecoder(resp.Body).Decode(&fetched)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch by hash: status %d, err %v", resp.StatusCode, err)
	}
	a, _ := json.Marshal(study.Report)
	b, _ := json.Marshal(fetched.Report)
	if !bytes.Equal(a, b) {
		t.Errorf("fetched report differs from streamed report:\n%s\n%s", a, b)
	}

	// Re-POSTing the study hits the content cache for every cell.
	_, second := postStudy(t, ts, studyBody)
	if second.Report.SimulatedCells != 0 {
		t.Errorf("re-POSTed study re-simulated %d cells", second.Report.SimulatedCells)
	}
	if second.Report.EvaluatedCells != rep.EvaluatedCells {
		t.Errorf("warm re-POST charged %d cells, cold charged %d", second.Report.EvaluatedCells, rep.EvaluatedCells)
	}
	la, _ := json.Marshal(rep.Leaderboard)
	lb, _ := json.Marshal(second.Report.Leaderboard)
	if !bytes.Equal(la, lb) {
		t.Errorf("warm-cache leaderboard diverged:\n%s\n%s", la, lb)
	}

	// Unknown study hashes 404.
	miss, err := http.Get(ts.URL + "/v1/studies/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Errorf("unknown study hash: status %d, want 404", miss.StatusCode)
	}
}

// TestAsyncStudyJob: a study submitted with ?async=1 runs as a job with
// kind "study", its stream replays progress plus the study line, and the
// report lands in the by-hash store.
func TestAsyncStudyJob(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/studies?async=1", "application/json", strings.NewReader(studyBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", resp.StatusCode)
	}
	var sub jobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, ts, sub.JobID)
	if st.State != string(jobDone) || st.Kind != "study" || st.GridHash != sub.GridHash {
		t.Fatalf("finished study job status %+v", st)
	}

	// The replayed stream ends with the study line.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var last []byte
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		last = append(last[:0], sc.Bytes()...)
	}
	var study studyLine
	if err := json.Unmarshal(last, &study); err != nil || study.Type != "study" {
		t.Fatalf("stream did not end with a study line: %q (%v)", last, err)
	}
	if study.Report == nil || study.StudyHash != sub.GridHash {
		t.Fatalf("bad replayed study line: %+v", study)
	}

	report, err := http.Get(ts.URL + "/v1/studies/" + sub.GridHash)
	if err != nil {
		t.Fatal(err)
	}
	report.Body.Close()
	if report.StatusCode != http.StatusOK {
		t.Errorf("async study report not retrievable by hash: status %d", report.StatusCode)
	}
}

func TestRejectsInvalidStudies(t *testing.T) {
	ts := testServerWith(t, serverConfig{Cache: resultcache.NewMemory(), MaxCells: 100})
	cases := []struct {
		body   string
		status int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"bogus": 1}`, http.StatusBadRequest},
		{`{"base": {"policy": {"name": "outoforder"}, "load_jobs_per_hour": 1},
		   "axes": [{"name": "nope", "min": 1, "max": 2, "steps": 2}],
		   "objective": {"metric": "mean_speedup"},
		   "search": {"budget_cells": 4}}`, http.StatusUnprocessableEntity},
		// Budget beyond -max-cells is rejected upfront.
		{strings.Replace(studyBody, `"budget_cells": 12`, `"budget_cells": 5000`, 1), http.StatusUnprocessableEntity},
	}
	for i, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("case %d: status %d, want %d", i, resp.StatusCode, tc.status)
		}
		if out["error"] == "" {
			t.Errorf("case %d: no error message", i)
		}
	}
}
