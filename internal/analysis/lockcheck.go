package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"physched/internal/analysis/driver"
)

// LockCheck proves lock/unlock balance on every path through a function:
// a Lock must reach exactly one release (explicit or deferred) on every
// non-panicking exit. It flags
//
//   - a lock still (or maybe) held at a return or at the end of the
//     function — the missed-unlock-on-early-return bug class;
//   - re-acquiring a lock already held (self-deadlock; recursive RLock
//     is flagged too, since it deadlocks when a writer is queued);
//   - releasing a lock that is not held, releasing twice, and the
//     explicit-Unlock-with-deferred-Unlock-pending combination;
//   - Unlock of a read-held RWMutex and RUnlock of a write-held one.
//
// Functions that run entirely under a caller's lock declare it with
// //physched:locked <mutex-expr> in their doc comment: the declared lock
// seeds the entry state (so its accesses count as guarded, and releasing
// it is legal) and is exempt from the held-at-exit check. The same
// declaration is enforced at intra-package call sites: calling a
// //physched:locked function without the (receiver-substituted) lock
// held is a finding. One-off exceptions carry //physched:lockok <reason>
// on the finding's line.
//
// The analysis is intra-procedural and alias-blind (see lockflow.go):
// locks passed through interfaces, stored in locals, or acquired by
// callees are out of scope — by design, since the repo names every mutex
// through a stable access path.
var LockCheck = &driver.Analyzer{
	Name: "lockcheck",
	Doc:  "every Lock must reach exactly one Unlock on all paths; double lock/unlock flagged",
	Run:  runLockCheck,
}

func runLockCheck(pass *driver.Pass) error {
	supp := newSuppressions(pass)
	contracts := lockedContracts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := lockState{}
			for _, key := range lockedFuncKeys(fd) {
				entry[key] = lockInfo{may: true, must: true, pos: fd.Pos()}
			}
			checkLockFunc(pass, supp, contracts, fd.Body, entry)
		}
		// Function literals get their own pass with an empty entry state:
		// the outer flow treats them as opaque.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkLockFunc(pass, supp, contracts, fl.Body, lockState{})
			}
			return true
		})
	}
	return nil
}

func checkLockFunc(pass *driver.Pass, supp suppressions, contracts map[*types.Func]lockedContract, body *ast.BlockStmt, entry lockState) {
	report := func(pos token.Pos, format string, args ...any) {
		if supp.allows(pos, "lockok") {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }

	// funcLocks gates the released-but-not-held check: a function that
	// never acquires mu is usually a release helper running under the
	// caller's lock, which is the //physched:locked contract's job, not a
	// per-release finding.
	funcLocks := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := mutexOp(pass, n); ok && (op.method == "Lock" || op.method == "RLock") {
				funcLocks[op.key] = true
			}
		}
		return true
	})

	hooks := &flowHooks{
		acquire: func(op lockOp, before lockInfo) {
			if !before.must {
				return
			}
			switch {
			case op.read && before.read:
				report(op.pos, "recursive %s.RLock (read-locked at line %d) deadlocks once a writer is waiting", op.key, line(before.pos))
			case op.read:
				report(op.pos, "%s.RLock while already holding the write lock (line %d): deadlock", op.key, line(before.pos))
			case before.read:
				report(op.pos, "%s.Lock while already read-locked (line %d): deadlock", op.key, line(before.pos))
			default:
				report(op.pos, "%s.Lock while already locked (line %d): deadlock", op.key, line(before.pos))
			}
		},
		release: func(op lockOp, before lockInfo) {
			switch {
			case before.must && before.defMust:
				report(op.pos, "explicit %s.%s with a deferred release pending: the deferred Unlock fires again at return", op.key, op.method)
			case before.must && before.read && !op.read:
				report(op.pos, "%s.Unlock releases a read lock (RLock at line %d); use RUnlock", op.key, line(before.pos))
			case before.must && !before.read && op.read:
				report(op.pos, "%s.RUnlock releases a write lock (Lock at line %d); use Unlock", op.key, line(before.pos))
			case !before.may && funcLocks[op.key]:
				report(op.pos, "%s.%s but %s is not held on this path", op.key, op.method, op.key)
			}
		},
		deferRelease: func(op lockOp, before lockInfo) {
			if before.defMust {
				report(op.pos, "second deferred release of %s: both fire at return, the second on an unlocked mutex", op.key)
			}
		},
		node: func(n ast.Node, st lockState) {
			checkLockedCalls(pass, report, contracts, n, st)
		},
		exit: func(pos token.Pos, isReturn bool, st lockState) {
			keys := make([]string, 0, len(st))
			for k := range st {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				info := st[k]
				if !info.may || info.defMust {
					continue
				}
				if e, ok := entry[k]; ok && e.must {
					continue // caller-held by contract; returning locked is the point
				}
				where := "function end"
				if isReturn {
					where = "return"
				}
				if info.must {
					report(pos, "%s still held at %s (locked at line %d); release it or defer the unlock", k, where, line(info.pos))
				} else {
					report(pos, "%s may still be held at %s (locked at line %d on some paths); release it on every path", k, where, line(info.pos))
				}
			}
		},
	}
	runLockFlow(pass, body, entry, hooks)
}

// lockedContract is the caller-must-hold declaration of one function.
type lockedContract struct {
	name     string   // for diagnostics
	recvName string   // receiver ident, "" for plain functions
	keys     []string // declared lock exprs, e.g. ["p.mu"]
}

// lockedContracts indexes this package's //physched:locked declarations
// by their *types.Func so call sites can be checked. Cross-package calls
// are not checked: the contract map is per-pass by construction.
func lockedContracts(pass *driver.Pass) map[*types.Func]lockedContract {
	out := map[*types.Func]lockedContract{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			keys := lockedFuncKeys(fd)
			if len(keys) == 0 {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c := lockedContract{name: fd.Name.Name, keys: keys}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				c.recvName = fd.Recv.List[0].Names[0].Name
			}
			out[fn] = c
		}
	}
	return out
}

// lockedFuncKeys parses the //physched:locked directives out of a
// function's doc comment: the first field of each directive's argument is
// the lock expression, the rest is prose.
func lockedFuncKeys(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var keys []string
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix+"locked")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 {
			keys = append(keys, fields[0])
		}
	}
	return keys
}

// checkLockedCalls enforces //physched:locked contracts at call sites
// inside n: the declared lock, with the callee's receiver name replaced
// by the caller's receiver expression, must be must-held.
func checkLockedCalls(pass *driver.Pass, report func(token.Pos, string, ...any), contracts map[*types.Func]lockedContract, n ast.Node, st lockState) {
	if len(contracts) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, recv := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		c, ok := contracts[fn]
		if !ok {
			return true
		}
		for _, declared := range c.keys {
			key := declared
			if c.recvName != "" && strings.HasPrefix(declared, c.recvName+".") {
				if recv == nil {
					continue
				}
				r := exprString(recv)
				if r == "" {
					continue // untrackable receiver; cannot relate the locks
				}
				key = r + strings.TrimPrefix(declared, c.recvName)
			}
			if !st[key].must {
				report(call.Pos(), "call to %s requires %s held (//physched:locked), but it is not held here", c.name, key)
			}
		}
		return true
	})
}

// calleeFunc resolves the called function and, for method calls, the
// receiver expression.
func calleeFunc(pass *driver.Pass, call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, nil
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			fn, _ := selection.Obj().(*types.Func)
			return fn, fun.X
		}
		// Package-qualified call: pkg.F(...)
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, nil
	}
	return nil, nil
}
