// Package client is the typed Go client for the physchedd HTTP API and
// the single source of truth for its wire format: cmd/physchedd builds
// its responses from the exported types below (the daemon aliases them),
// so the structs a caller decodes into are — by construction, not by
// convention — the structs the server encodes from. The CLIs use this
// package themselves (physchedsim -server, cmd/physchedsmoke), which
// keeps the API surface honest: an endpoint the client cannot drive is
// an endpoint that does not really exist.
//
// Field names are the pinned snake_case wire format (golden-tested in
// cmd/physchedd); changing a tag here is a wire-format change and must
// update the goldens in the same commit.
package client

import (
	"fmt"
	"time"

	"physched/internal/lab"
	"physched/internal/opt"
)

// ErrorDetail is the machine-readable payload of every non-2xx response:
// a stable code (see the Code* constants) plus a human-readable message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every error response the service sends:
// {"error": {"code": "...", "message": "..."}}.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// Stable error codes. Every handler maps its failures onto this
// vocabulary; clients branch on Code, never on message text.
const (
	CodeBadRequest   = "bad_request"   // malformed body or query parameters
	CodeInvalidSpec  = "invalid_spec"  // well-formed but semantically invalid spec
	CodeNotFound     = "not_found"     // unknown hash, job id or route
	CodeConflict     = "conflict"      // operation races a finished lifecycle
	CodeOverCapacity = "over_capacity" // -max-inflight admission rejection; retry later
	CodeUnavailable  = "unavailable"   // server shutting down or pool closed
)

// APIError is the error a Client method returns for a non-2xx response.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code (Code* constants)
	Message string // human-readable detail
	// RetryAfter is the parsed Retry-After header in seconds (0 when the
	// server sent none); over_capacity rejections always carry one.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("physchedd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// SpecResponse is the body of POST /v1/specs and GET /v1/results/{hash}.
type SpecResponse struct {
	Hash      string     `json:"hash"`
	FromCache bool       `json:"from_cache"`
	Result    lab.Result `json:"result"`
}

// AggregateResponse is the body of GET /v1/aggregates/{hash}.
type AggregateResponse struct {
	Hash      string        `json:"hash"`
	Aggregate lab.Aggregate `json:"aggregate"`
}

// ProgressLine is one NDJSON progress event of a grid or study stream.
type ProgressLine struct {
	Type       string  `json:"type"` // "progress"
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Label      string  `json:"label,omitempty"`
	Load       float64 `json:"load_jobs_per_hour"`
	Seed       int64   `json:"seed"`
	Overloaded bool    `json:"overloaded"`
	FromCache  bool    `json:"from_cache"`
}

// CellResult is one cell of a grid's terminal result line.
type CellResult struct {
	Hash   string     `json:"hash"`
	Label  string     `json:"label,omitempty"`
	Result lab.Result `json:"result"`
}

// AggregateResult is one (variant, load) replica aggregate of a grid's
// terminal result line, present when the grid has a seed axis.
type AggregateResult struct {
	Hash      string        `json:"hash"`
	Label     string        `json:"label,omitempty"`
	Load      float64       `json:"load_jobs_per_hour"`
	Aggregate lab.Aggregate `json:"aggregate"`
}

// ResultLine terminates a grid stream.
type ResultLine struct {
	Type       string            `json:"type"` // "result"
	GridHash   string            `json:"grid_hash"`
	CacheHits  int               `json:"cache_hits"`
	Cells      []CellResult      `json:"cells"`
	Aggregates []AggregateResult `json:"aggregates,omitempty"`
}

// StudyLine terminates a study stream and is the body of
// GET /v1/studies/{hash}.
type StudyLine struct {
	Type      string      `json:"type"` // "study"
	StudyHash string      `json:"study_hash"`
	Report    *opt.Report `json:"report"`
}

// ErrorLine reports a stream failure after NDJSON streaming began (the
// HTTP status is already written, so the envelope cannot carry it).
type ErrorLine struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// JobStatus is the body of GET /v1/jobs/{id} and one row of GET /v1/jobs.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // grid | study
	// Hash is the content hash of the submitted document — the grid hash
	// for grid jobs, the study hash for study jobs.
	Hash string `json:"hash"`
	// GridHash is a deprecated alias of Hash: the field predates study
	// jobs and its name is a misnomer for them. Kept for wire
	// compatibility; new code reads Hash.
	GridHash  string     `json:"grid_hash"`
	State     string     `json:"state"` // running | done | failed | cancelled
	Done      int        `json:"done"`
	Total     int        `json:"total"`
	CacheHits int        `json:"cache_hits"`
	Created   time.Time  `json:"created"`
	AgeSec    float64    `json:"age_sec"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// RequestID is the correlation ID of the request that submitted the
	// job (X-Request-Id), carried on the record so async work stays
	// greppable in the server's logs. omitempty keeps the wire format
	// byte-compatible with pre-observability servers.
	RequestID string `json:"request_id,omitempty"`
}

// TraceCellHeader is the per-cell header line of GET /v1/jobs/{id}/trace
// NDJSON: each cell of a ?trace=1 grid job contributes one header line
// ({"type":"cell",...}) followed by Events trace-event lines
// (internal/trace.Event encoding). Dropped counts events discarded by
// the server's -max-trace-events cap; a zero Dropped header is a
// complete cell trace.
type TraceCellHeader struct {
	Type    string  `json:"type"` // "cell"
	Index   int     `json:"index"`
	Hash    string  `json:"hash"` // cell spec hash (GET /v1/results/{hash})
	Label   string  `json:"label,omitempty"`
	Load    float64 `json:"load_jobs_per_hour"`
	Seed    int64   `json:"seed"`
	Events  int     `json:"events"`
	Dropped uint64  `json:"dropped,omitempty"`
}

// JobSubmitted is the 202 body of an async submission.
type JobSubmitted struct {
	JobID string `json:"job_id"`
	// Hash is the content hash of the submitted document; GridHash is its
	// deprecated alias (see JobStatus.GridHash).
	Hash      string `json:"hash"`
	GridHash  string `json:"grid_hash"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// PageInfo is the pagination trailer every listing response embeds.
type PageInfo struct {
	Page       int `json:"page"`
	PageSize   int `json:"page_size"`
	TotalItems int `json:"total_items"`
	TotalPages int `json:"total_pages"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
	PageInfo
}

// PolicyList is the body of GET /v1/policies.
type PolicyList struct {
	Policies []string `json:"policies"`
	PageInfo
}

// WorkloadList is the body of GET /v1/workloads.
type WorkloadList struct {
	Workloads []string `json:"workloads"`
	PageInfo
}

// StudySummary is one row of GET /v1/studies: enough to decide whether
// the full report (GET /v1/studies/{hash}) is worth fetching.
type StudySummary struct {
	Hash           string   `json:"hash"`
	Algorithm      string   `json:"algorithm"`
	Budget         int      `json:"budget_cells"`
	EvaluatedCells int      `json:"evaluated_cells"`
	BestValue      *float64 `json:"best_value,omitempty"`
}

// StudyList is the body of GET /v1/studies.
type StudyList struct {
	Studies []StudySummary `json:"studies"`
	PageInfo
}
