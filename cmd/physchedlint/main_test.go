package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestSabotagedFixtureExitsNonzero is the end-to-end contract of the
// multichecker: a package violating the contracts makes it exit 1 and
// print each finding.
func TestSabotagedFixtureExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"physched/internal/analysis/testdata/src/sabotage"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on sabotaged package, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	for _, needle := range []string{"hotalloc", "physcheddirective", "sabotage.go"} {
		if !strings.Contains(stdout.String(), needle) {
			t.Errorf("findings do not mention %q:\n%s", needle, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing the findings summary: %q", stderr.String())
	}
}

// TestListFlag: -list prints one line per analyzer and exits 0.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"detrand", "walltime", "maporder", "hotalloc", "wirecanon", "physcheddirective", "lockcheck", "lockguard", "spawncheck"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestAnalyzersFlagRunsUnscoped: -analyzers bypasses Rules scoping, so
// lockguard (normally limited to the shared-state packages) must catch
// the sabotageguard fixture and exit 1 through the real CLI.
func TestAnalyzersFlagRunsUnscoped(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "lockguard", "physched/internal/analysis/testdata/src/sabotageguard"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d on sabotaged guard package, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "lockguard") || !strings.Contains(stdout.String(), "counter.n is guarded by counter.mu") {
		t.Errorf("lockguard finding missing from output:\n%s", stdout.String())
	}
}

// TestAnalyzersFlagRejectsUnknownName: a typo in -analyzers is a usage
// error (exit 2), never a silently empty suite that passes everything.
func TestAnalyzersFlagRejectsUnknownName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "lockchekc", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d for unknown analyzer name, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not name the bad analyzer: %q", stderr.String())
	}
}

// TestJSONOutput: -json emits a machine-readable array with snake_case
// keys, still exiting 1 on findings.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "physched/internal/analysis/testdata/src/sabotage"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings for the sabotaged package")
	}
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column <= b.Column
	})
	if !sorted {
		t.Error("JSON findings are not in file/line/column order")
	}
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Analyzer] = true
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
	for _, want := range []string{"lockcheck", "spawncheck", "hotalloc"} {
		if !seen[want] {
			t.Errorf("JSON output missing %s finding:\n%s", want, stdout.String())
		}
	}
}

// TestGitHubFormat: -format=github emits workflow error annotations.
func TestGitHubFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "github", "physched/internal/analysis/testdata/src/sabotage"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("not a github annotation: %q", line)
		}
	}
	if !strings.Contains(stdout.String(), "line=") || !strings.Contains(stdout.String(), "::lockcheck:") {
		t.Errorf("annotations missing line numbers or analyzer prefix:\n%s", stdout.String())
	}
}

// TestGitHubPropertyEscape: property values (the file= position) need
// the message escapes plus the ':' and ',' delimiters encoded, or a
// hostile path corrupts the ::error annotation.
func TestGitHubPropertyEscape(t *testing.T) {
	got := githubEscapeProp("dir,x:y/100%.go\n")
	want := "dir%2Cx%3Ay/100%25.go%0A"
	if got != want {
		t.Errorf("githubEscapeProp = %q, want %q", got, want)
	}
	if msg := githubEscape("50% done: a,b"); msg != "50%25 done: a,b" {
		t.Errorf("githubEscape = %q, want %q", msg, "50%25 done: a,b")
	}
}

// TestBadFormatExits2: an unknown -format is a usage error.
func TestBadFormatExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d for unknown format, want 2\nstderr: %s", code, stderr.String())
	}
}

// TestBadPatternExits2: loader errors are exit code 2, not a silent pass.
func TestBadPatternExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"physched/does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d on unknown package, want 2\nstderr: %s", code, stderr.String())
	}
}
