// Specfile: drive a scenario grid from a versioned, declarative JSON spec
// — the serialisable scenario format of this repository. The embedded
// grid.json is the exact format `physchedsim -spec`, `experiments -spec`
// and the physchedd service accept; this program parses it, prints its
// content hash, executes it twice against a result cache, and shows the
// second pass serving every cell from the cache without re-simulating.
package main

import (
	"bytes"
	"fmt"
	"log"

	_ "embed"

	"physched"
)

//go:embed grid.json
var gridJSON []byte

func main() {
	g, err := physched.ParseGridSpec(bytes.NewReader(gridJSON))
	if err != nil {
		log.Fatal(err)
	}
	hash, err := g.Hash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid spec hash %.12s… (%d variants × %d loads × %d seeds)\n\n",
		hash, len(g.Variants), len(g.Loads), len(g.Seeds))

	grid, err := g.Compile()
	if err != nil {
		log.Fatal(err)
	}
	cache, err := physched.OpenResultCache("") // in-memory; pass a directory to persist
	if err != nil {
		log.Fatal(err)
	}
	opts := physched.Options{Cache: cache, Keys: g.Keys()}

	rs, err := grid.Execute(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range rs.Curves() {
		fmt.Printf("%-14s", c.Label)
		for _, r := range c.Results {
			if r.Overloaded {
				fmt.Printf("  %5.2f j/h: overloaded", r.Load)
				continue
			}
			fmt.Printf("  %5.2f j/h: speedup %5.2f", r.Load, r.AvgSpeedup)
		}
		fmt.Println()
	}
	fmt.Printf("\nfirst pass:  %d cells simulated, %d from cache\n",
		len(rs.Results)-rs.CacheHits, rs.CacheHits)

	// Re-executing the same spec hits the content-addressed cache for
	// every cell — nothing is simulated again.
	rs2, err := grid.Execute(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second pass: %d cells simulated, %d from cache\n",
		len(rs2.Results)-rs2.CacheHits, rs2.CacheHits)
}
