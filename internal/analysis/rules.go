package analysis

import (
	"strings"

	"physched/internal/analysis/driver"
)

// detPackages are the packages whose results must be bit-deterministic:
// the sim core and everything a simulation result flows through. Global
// rand, wall clock and order-sensitive map iteration are banned here.
// The list is prefix-matched so future subpackages inherit the contract.
var detPackages = []string{
	"physched/internal/sim",
	"physched/internal/sched",
	"physched/internal/cluster",
	"physched/internal/workload",
	"physched/internal/lab",
	"physched/internal/opt",
	"physched/internal/stats",
	// Sim-core support packages: equally inside the determinism boundary.
	"physched/internal/cache",
	"physched/internal/dataspace",
	"physched/internal/job",
	"physched/internal/metrics",
	"physched/internal/model",
	"physched/internal/queueing",
	"physched/internal/spec",
	"physched/internal/simtest",
	"physched/internal/trace",
	"physched/internal/storage",
	"physched/internal/asciiplot",
	"physched/internal/experiments",
}

// walltimeExtra are service-layer packages additionally registered for
// the walltime analyzer even though they are not deterministic: their
// wall-clock reads must be injected clocks, with the single wiring site
// carrying a //physched:walltime suppression. This is the shrunken
// allowlist: everything NOT listed here or in detPackages (resultcache
// disk I/O, the remaining cmds, examples) may read the clock freely.
var walltimeExtra = []string{
	"physched/cmd/physchedd",
}

// wirePackages hold the canonical, content-hashed wire structs.
var wirePackages = []string{
	"physched/internal/spec",
	"physched/internal/opt",
}

// randBanExtra extends the global-rand ban beyond deterministic packages:
// service cmds must not draw from the shared source either (job IDs use
// crypto/rand; scenario randomness comes from seeded streams).
var randBanExtra = []string{
	"physched/cmd",
}

func matchesAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// IsDeterministic reports whether pkgPath is inside the determinism
// boundary (exported for the physchedlint -why listing and tests). The
// root facade package is matched exactly — a bare "physched" prefix
// would swallow the whole module, including this linter.
func IsDeterministic(pkgPath string) bool {
	return pkgPath == "physched" || matchesAny(pkgPath, detPackages)
}

// Analyzers lists the whole suite, for documentation and fixture tests.
func Analyzers() []*driver.Analyzer {
	return []*driver.Analyzer{DetRand, WallTime, MapOrder, HotAlloc, WireCanon, Directive}
}

// Rules decides which analyzers run on which package — the multichecker
// configuration. Directive and HotAlloc run everywhere (annotations may
// appear anywhere and cost nothing when absent); the determinism
// analyzers are scoped to the packages whose contract they enforce.
func Rules(pkg *driver.Package) []*driver.Analyzer {
	as := []*driver.Analyzer{Directive, HotAlloc}
	det := IsDeterministic(pkg.PkgPath)
	if det || matchesAny(pkg.PkgPath, randBanExtra) {
		as = append(as, DetRand)
	}
	if det || matchesAny(pkg.PkgPath, walltimeExtra) {
		as = append(as, WallTime)
	}
	if det {
		as = append(as, MapOrder)
	}
	if matchesAny(pkg.PkgPath, wirePackages) {
		as = append(as, WireCanon)
	}
	return as
}

// Lint loads patterns rooted at dir and runs the rule-scoped suite,
// returning position-sorted diagnostics. This is the one entry point
// shared by cmd/physchedlint and the sabotage tests.
func Lint(dir string, patterns ...string) ([]driver.Diagnostic, error) {
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return driver.Run(pkgs, Rules)
}
