package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"physched/internal/analysis/driver"
)

// SpawnCheck catches goroutine leaks statically: a `go` statement whose
// goroutine blocks — channel sends/receives, select without default,
// taking a mutex, sync.Cond.Wait — must have a visible cancellation
// path, one of
//
//   - a receive from a Done() channel (context cancellation),
//   - a comma-ok receive (the sender signals by closing the channel),
//   - a range over a channel (terminates when the channel closes).
//
// Sends on channels created buffered (make(chan T, n)) are exempt: the
// fire-and-forget result pattern (`done := make(chan X, 1)`) cannot
// block the goroutine forever. A goroutine that is joined or terminated
// some other way (WaitGroup + a closed flag under a mutex, bounded work)
// declares it with //physched:spawnok <reason> on the go statement.
//
// Resolution is intra-package: `go fn()` is analysed when fn is a
// function literal or a function/method declared in the same package;
// cross-package spawn targets are skipped (documented false negative,
// DESIGN.md §12). Nested `go` statements are separate findings and are
// not part of the enclosing goroutine's behaviour.
var SpawnCheck = &driver.Analyzer{
	Name: "spawncheck",
	Doc:  "goroutines that block on channels or locks need a cancellation path",
	Run:  runSpawnCheck,
}

func runSpawnCheck(pass *driver.Pass) error {
	supp := newSuppressions(pass)
	decls := packageFuncDecls(pass)
	buffered := bufferedChanVars(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnTargetBody(pass, gs, decls)
			if body == nil {
				return true
			}
			blocking, why := findBlocking(pass, body, buffered)
			if !blocking {
				return true
			}
			if hasCancellationPath(pass, body) {
				return true
			}
			if supp.allows(gs.Pos(), "spawnok") {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine %s but has no cancellation path; select on a Done() channel, use a close-signalled channel, or annotate //physched:spawnok <reason>",
				why)
			return true
		})
	}
	return nil
}

// packageFuncDecls maps this package's declared functions to their decls
// so `go fn()` / `go x.m()` can be resolved to a body.
func packageFuncDecls(pass *driver.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// spawnTargetBody resolves the body the spawned goroutine runs.
func spawnTargetBody(pass *driver.Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	fn, _ := calleeFunc(pass, gs.Call)
	if fn == nil {
		return nil
	}
	if fd, ok := decls[fn]; ok {
		return fd.Body
	}
	return nil
}

// bufferedChanVars collects channel variables created with a capacity:
// any object assigned make(chan T, n) anywhere in the package. A
// non-constant capacity is trusted to be positive — callers sizing a
// channel dynamically are sizing it to not block.
func bufferedChanVars(pass *driver.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Type == nil {
			return
		}
		if _, ok := tv.Type.Underlying().(*types.Chan); !ok {
			return
		}
		if cv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && cv.Value != nil && cv.Value.String() == "0" {
			return // make(chan T, 0) is unbuffered
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			out[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// findBlocking reports whether the goroutine body contains an operation
// that can block forever, with a short description of the first one
// found (in source order).
func findBlocking(pass *driver.Pass, body *ast.BlockStmt, buffered map[types.Object]bool) (bool, string) {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine's ops are its own finding
		case *ast.SendStmt:
			if id, ok := n.Chan.(*ast.Ident); ok && buffered[pass.TypesInfo.Uses[id]] {
				return true
			}
			found = "sends on an unbuffered channel"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = "receives from a channel"
			}
		case *ast.RangeStmt:
			if isChanType(pass, n.X) {
				found = "ranges over a channel"
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					return true // has a default: non-blocking
				}
			}
			if len(n.Body.List) > 0 {
				found = "blocks in a select"
			} else {
				found = "blocks on select{}"
			}
		case *ast.CallExpr:
			if op, ok := mutexOp(pass, n); ok && (op.method == "Lock" || op.method == "RLock") {
				found = "holds " + op.key
			} else if isCondWait(pass, n) {
				found = "waits on a sync.Cond"
			}
		}
		return true
	})
	return found != "", found
}

// hasCancellationPath looks for close/cancel-driven termination evidence
// anywhere in the goroutine body (nested goroutines excluded).
func hasCancellationPath(pass *driver.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			// <-x.Done(): context-style cancellation.
			if n.Op == token.ARROW {
				if call, ok := n.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						found = true
					}
				}
			}
		case *ast.AssignStmt:
			// v, ok := <-ch: the comma-ok form only exists to observe close.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ue, ok := n.Rhs[0].(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					found = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(pass, n.X) {
				found = true // range ends when the channel is closed
			}
		}
		return true
	})
	return found
}

func isChanType(pass *driver.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// isCondWait reports a sync.Cond.Wait call.
func isCondWait(pass *driver.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// sync.Cond.Wait blocks; sync.WaitGroup.Wait is a join — joining is
	// itself a legitimate termination strategy, so it must NOT count.
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Cond"
}
