package sched

import (
	"sort"

	"physched/internal/cluster"
	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

// Delayed is the delayed scheduling policy of Table 4: time is divided into
// periods of length Period during which arriving jobs are only accumulated;
// at each period boundary the accumulated jobs are scheduled at once. Jobs
// are split along cache boundaries; the uncached remainder is re-split on a
// stripe grid of at most Stripe events and grouped into meta-subjobs of
// overlapping stripes, so each stripe is loaded from tertiary storage at
// most once per period. Nodes drain their own queue first, then pull
// meta-subjobs.
//
// With Period zero the policy schedules each job immediately on arrival but
// keeps the stripe-based data distribution — the regime the adaptive policy
// falls back to at low loads (§6).
type Delayed struct {
	base
	// Period is the accumulation delay (paper: 11 h, 2 days, 1 week).
	Period float64
	// Stripe is the largest data segment of one subjob, in events
	// (paper: 200 to 25 000).
	Stripe int64

	pending []*job.Job
	nodeQ   []subjobDeque
	metaQ   []*metaSubjob
	timer   *sim.Event // pending period-boundary event, nil in zero-period mode

	periodFn func(any) // shared period-boundary callback (see Attach)

	// Scratch buffers, reused across scheduling rounds.
	uncachedScratch []*job.Subjob
	union           dataspace.Set
	boundScratch    []int64
	points          []int64
	ptScratch       []int64
	cutScratch      []dataspace.Interval
}

// metaSubjob aggregates subjobs needing overlapping uncached data; the
// whole stripe is fetched from tape once and every member reuses it.
type metaSubjob struct {
	stripe  dataspace.Interval
	members []*job.Subjob
	arrival float64 // earliest member arrival (Table 4 queues by it)
}

// NewDelayed returns the delayed policy with the given period delay and
// stripe size in events.
func NewDelayed(period float64, stripe int64) *Delayed {
	if period < 0 || stripe <= 0 {
		panic("sched: delayed policy needs period ≥ 0 and stripe > 0")
	}
	return &Delayed{Period: period, Stripe: stripe}
}

func (*Delayed) Name() string { return "delayed" }

func (*Delayed) ClusterConfig() cluster.Config {
	return cluster.Config{Caching: true}
}

func (p *Delayed) Attach(c *cluster.Cluster) {
	p.base.Attach(c)
	// len(c.Nodes()) covers spare nodes joining late (cluster.FaultModel).
	p.nodeQ = make([]subjobDeque, len(c.Nodes()))
	p.periodFn = func(any) { p.periodEnd() }
	if p.Period > 0 {
		p.timer = p.eng.AtCall(p.Period, p.periodFn, nil)
	}
}

func (p *Delayed) JobArrived(j *job.Job) {
	if p.Period > 0 {
		p.pending = append(p.pending, j)
		return
	}
	j.ScheduledAt = p.now()
	p.scheduleJobs([]*job.Job{j})
	p.feedIdleNodes()
}

// periodEnd schedules everything accumulated during the period and starts
// the next one (unless the period was retuned to zero in the meantime).
func (p *Delayed) periodEnd() {
	p.timer = nil
	jobs := p.pending
	// scheduleJobs finishes before any new arrival can append to pending,
	// so the backing array can be reused for the next period.
	p.pending = p.pending[:0]
	now := p.now()
	for _, j := range jobs {
		j.ScheduledAt = now
	}
	p.scheduleJobs(jobs)
	p.feedIdleNodes()
	if p.Period > 0 {
		p.timer = p.eng.AfterCall(p.Period, p.periodFn, nil)
	}
}

// scheduleJobs performs the Table 4 splitting for a batch of jobs.
func (p *Delayed) scheduleJobs(jobs []*job.Job) {
	uncached := p.uncachedScratch[:0]
	for _, j := range jobs {
		for _, pc := range p.cachePieces(j.Range, p.minSize()) {
			sub := p.arena().NewSubjob(j, pc.Interval, pc.Node)
			if pc.Node >= 0 {
				p.nodeQ[pc.Node].PushBack(sub)
				continue
			}
			sub.NoCacheQueue = true
			uncached = append(uncached, sub)
		}
	}
	p.uncachedScratch = uncached
	if len(uncached) == 0 {
		return
	}
	p.stripeAndGroup(uncached)
}

// stripeAndGroup re-splits uncached subjobs on the stripe grid and groups
// overlapping stripes into meta-subjobs queued by arrival time.
func (p *Delayed) stripeAndGroup(uncached []*job.Subjob) {
	// Connected components of the union of uncached ranges define the
	// hulls on which stripe grids are built.
	p.union.Reset()
	boundaries := p.boundScratch[:0]
	for _, sub := range uncached {
		p.union.AddInPlace(sub.Range)
		boundaries = append(boundaries, sub.Range.Start, sub.Range.End)
	}
	p.boundScratch = boundaries
	metas := map[dataspace.Interval]*metaSubjob{}
	for _, hull := range p.union.Intervals() {
		p.points, p.ptScratch = job.AppendStripePoints(p.points[:0], p.ptScratch, boundaries, hull, p.Stripe)
		points := p.points
		for _, sub := range uncached {
			if !hull.ContainsInterval(sub.Range) {
				continue
			}
			p.cutScratch = job.AppendCutAtPoints(p.cutScratch[:0], sub.Range, points)
			for _, cut := range p.cutScratch {
				stripe := stripeCell(points, cut)
				m := metas[stripe]
				if m == nil {
					m = &metaSubjob{stripe: stripe, arrival: sub.Job.Arrival}
					metas[stripe] = m
					p.metaQ = append(p.metaQ, m)
				}
				if sub.Job.Arrival < m.arrival {
					m.arrival = sub.Job.Arrival
				}
				member := p.arena().NewSubjob(sub.Job, cut, -1)
				member.NoCacheQueue = true
				m.members = append(m.members, member)
			}
		}
	}
	sort.SliceStable(p.metaQ, func(i, j int) bool {
		return p.metaQ[i].arrival < p.metaQ[j].arrival
	})
}

// stripeCell returns the grid cell [points[i], points[i+1]) containing cut.
func stripeCell(points []int64, cut dataspace.Interval) dataspace.Interval {
	i := sort.Search(len(points), func(i int) bool { return points[i] > cut.Start })
	// points[i-1] <= cut.Start < points[i]; cuts never straddle points.
	return dataspace.Iv(points[i-1], points[i])
}

func (p *Delayed) SubjobDone(n *cluster.Node, _ *job.Subjob) {
	p.feedNode(n)
}

func (p *Delayed) feedIdleNodes() {
	for _, n := range p.c.Nodes() {
		if n.Idle() {
			p.feedNode(n)
		}
	}
}

// feedNode runs the node's private queue first; an idle node with an empty
// queue pops the first meta-subjob and adopts all its members (Table 4).
func (p *Delayed) feedNode(n *cluster.Node) {
	if !p.nodeQ[n.ID].Empty() {
		p.c.Dispatch(n, p.nodeQ[n.ID].PopFront())
		return
	}
	if len(p.metaQ) == 0 {
		return
	}
	m := p.metaQ[0]
	p.metaQ = p.metaQ[1:]
	for _, sub := range m.members {
		p.nodeQ[n.ID].PushBack(sub)
	}
	p.c.Dispatch(n, p.nodeQ[n.ID].PopFront())
}

// QueueDepths reports the scheduling backlog (pending jobs, queued subjobs,
// queued meta-subjobs) for observability and tests.
func (p *Delayed) QueueDepths() (pendingJobs, queuedSubjobs, metaSubjobs int) {
	for i := range p.nodeQ {
		queuedSubjobs += p.nodeQ[i].Len()
	}
	return len(p.pending), queuedSubjobs, len(p.metaQ)
}

// DefaultStripe is the paper's default stripe size for Figure 5.
const DefaultStripe int64 = 5000

// Common period delays studied in the paper (Figure 5).
const (
	Delay11h   = 11 * model.Hour
	Delay2Days = 2 * model.Day
	Delay1Week = model.Week
)

// NodeDown implements sched.NodeStateObserver. The killed subjob returns
// to the front of its node's queue — its data is most likely still
// cached there and the node may be repaired soon. A decommissioned
// node's backlog (queue plus killed subjob) instead loses its affinity
// along with the disk and is re-striped as uncached work for the
// surviving nodes.
func (p *Delayed) NodeDown(n *cluster.Node, lost *job.Subjob) {
	if !n.Decommissioned() {
		if lost != nil {
			p.nodeQ[n.ID].PushFront(lost)
		}
		return
	}
	var orphans []*job.Subjob
	if lost != nil {
		orphans = append(orphans, lost)
	}
	q := &p.nodeQ[n.ID]
	for !q.Empty() {
		orphans = append(orphans, q.PopFront())
	}
	if len(orphans) == 0 {
		return
	}
	for _, sub := range orphans {
		sub.NoCacheQueue = true
		sub.Origin = -1
	}
	p.stripeAndGroup(orphans)
	p.feedIdleNodes()
}

// NodeUp implements sched.NodeStateObserver: a repaired or late-joining
// node feeds itself immediately — nothing else would dispatch its
// private queue before the next arrival or period boundary.
func (p *Delayed) NodeUp(n *cluster.Node) {
	if n.Idle() {
		p.feedNode(n)
	}
}
