// Package walltime is a fixture for the walltime analyzer: wall-clock
// reads and sleeps are flagged; suppressed wiring sites and pure
// duration values are not.
package walltime

import "time"

type store struct {
	clock func() time.Time
}

func reads() {
	_ = time.Now()            // want "wall-clock time.Now"
	time.Sleep(time.Second)   // want "wall-clock time.Sleep"
	<-time.After(time.Second) // want "wall-clock time.After"
	_ = time.Since(time.Time{}) // want "wall-clock time.Since"
	_ = time.NewTicker(time.Second) // want "wall-clock time.NewTicker"
}

func wire(s *store) {
	if s.clock == nil {
		s.clock = time.Now //physched:walltime wiring site: production reads the real clock
	}
}

func pureValues() time.Time {
	d := 3 * time.Hour // durations are values, not clock reads
	return time.Unix(0, 0).Add(d)
}
