// Package lockcheck is the fixture for the lock/unlock path-balance
// analyzer: every finding class it can produce has a positive case here,
// and the idiomatic locking patterns (defer, branch-balanced unlock,
// panic unwind, the pool's mid-loop unlock) prove the negative space.
package lockcheck

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func leakOnEarlyReturn(b *box, bad bool) {
	b.mu.Lock()
	if bad {
		return // want "b.mu still held at return"
	}
	b.mu.Unlock()
}

func maybeLeak(b *box, c bool) {
	if c {
		b.mu.Lock()
	}
	b.n++
} // want "b.mu may still be held at function end"

func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "b.mu.Lock while already locked"
	b.mu.Unlock()
}

func recursiveRLock(b *box) {
	b.rw.RLock()
	b.rw.RLock() // want "recursive b.rw.RLock"
	b.rw.RUnlock()
}

func wrongUnlockMode(b *box) {
	b.rw.RLock()
	b.rw.Unlock() // want "b.rw.Unlock releases a read lock"
}

func wrongRUnlockMode(b *box) {
	b.rw.Lock()
	b.rw.RUnlock() // want "b.rw.RUnlock releases a write lock"
}

func unlockNotHeld(b *box, c bool) {
	if c {
		b.mu.Lock()
		b.mu.Unlock()
	}
	b.mu.Unlock() // want "b.mu.Unlock but b.mu is not held on this path"
}

func explicitPlusDeferred(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mu.Unlock() // want "deferred release pending"
}

func doubleDefer(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	defer b.mu.Unlock() // want "second deferred release of b.mu"
}

// mutate runs under the caller's lock: the contract seeds the entry
// state (so no leak is reported for returning with b.mu held) and is
// enforced at every intra-package call site.
//
//physched:locked b.mu — callers serialise all box mutation
func (b *box) mutate() {
	b.n++
}

func callsContract(b *box) {
	b.mutate() // want "call to mutate requires b.mu held"
	b.mu.Lock()
	b.mutate()
	b.mu.Unlock()
}

func suppressedLeak(b *box, c bool) {
	b.mu.Lock()
	if c {
		//physched:lockok fixture exercises the suppression path
		return
	}
	b.mu.Unlock()
}

func closureCheckedIndependently() {
	var mu sync.Mutex
	f := func(c bool) {
		mu.Lock()
		if c {
			return // want "mu still held at return"
		}
		mu.Unlock()
	}
	f(true)
}

// --- negative space: these idioms must stay finding-free ---

func cleanDefer(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func cleanBranches(b *box, c bool) {
	b.mu.Lock()
	if c {
		b.n = 1
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

func cleanPanicUnwind(b *box, c bool) {
	b.mu.Lock()
	if c {
		panic("unwind releases nothing; the panic path is not a leak path")
	}
	b.mu.Unlock()
}

func cleanWorkerLoop(b *box, work func()) {
	b.mu.Lock()
	for {
		if b.n == 0 {
			b.mu.Unlock()
			return
		}
		b.n--
		b.mu.Unlock()
		work()
		b.mu.Lock()
	}
}

// The CFG's range-head node is the whole RangeStmt; the flow must not
// replay the body's ops under the loop-entry state. Regression: this
// reported "call to mutate requires b.mu held" at the contract call
// (the equivalent for-i loop was clean).
func cleanRangeBodyLock(b *box, keys map[string]int) {
	for k := range keys {
		b.mu.Lock()
		b.n += keys[k]
		b.mutate()
		b.mu.Unlock()
	}
}

func cleanRWModes(b *box) int {
	b.rw.RLock()
	n := b.n
	b.rw.RUnlock()
	b.rw.Lock()
	b.n = n + 1
	b.rw.Unlock()
	return n
}
