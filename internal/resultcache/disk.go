package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"physched/internal/lab"
)

// Disk is an on-disk Store: one JSON file per entry under its directory,
// named <key>.result.json or <key>.aggregate.json. Files are written to a
// temporary name and renamed into place, so concurrent readers (other
// processes included) never observe a partial entry. Corrupt or foreign
// files read as misses: a damaged cache costs re-simulation, never a
// wrong result.
type Disk struct {
	dir string
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// validKey accepts exactly the hex SHA-256 strings internal/spec produces,
// keeping arbitrary request strings (physchedd serves by-hash lookups)
// from naming paths outside the store.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *Disk) path(key, kind string) string {
	return filepath.Join(d.dir, key+"."+kind+".json")
}

// read unmarshals the entry at key into v, reporting a miss for missing,
// invalid or corrupt entries.
func (d *Disk) read(key, kind string, v any) bool {
	if !validKey(key) {
		return false
	}
	b, err := os.ReadFile(d.path(key, kind))
	if err != nil {
		return false
	}
	return json.Unmarshal(b, v) == nil
}

// write atomically persists v at key; failures drop the entry (a cache
// must not turn disk pressure into simulation errors).
func (d *Disk) write(key, kind string, v any) {
	if !validKey(key) {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "."+key+".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(key, kind)); err != nil {
		os.Remove(name)
	}
}

// Get returns the cached result for key.
func (d *Disk) Get(key string) (lab.Result, bool) {
	var r lab.Result
	ok := d.read(key, "result", &r)
	return r, ok
}

// Put stores r under key. The stored form is the JSON wire format —
// Scenario and Collector are excluded by their json:"-" tags — so entries
// are portable across processes and inspectable with any JSON tool.
func (d *Disk) Put(key string, r lab.Result) {
	d.write(key, "result", r)
}

// GetAggregate returns the cached aggregate for key.
func (d *Disk) GetAggregate(key string) (lab.Aggregate, bool) {
	var a lab.Aggregate
	ok := d.read(key, "aggregate", &a)
	return a, ok
}

// PutAggregate stores a under key (per-result Scenario/Collector fields
// are excluded by their json:"-" tags).
func (d *Disk) PutAggregate(key string, a lab.Aggregate) {
	d.write(key, "aggregate", a)
}
