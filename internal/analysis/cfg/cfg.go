// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, giving the physchedlint analyzers the flow
// sensitivity the syntax-level passes lack: lockcheck walks it to prove
// every Lock reaches an Unlock on all paths, lockguard to know which
// locks are held at a field access, and hotalloc to find statements
// sitting inside loops.
//
// The API deliberately mirrors golang.org/x/tools/go/cfg — New takes a
// *ast.BlockStmt plus a mayReturn predicate, a CFG is a slice of Blocks,
// a Block is nodes + successors — for the same reason internal/analysis/
// driver mirrors go/analysis: the x/tools module cannot be pinned on
// this repo's sealed offline toolchain (DESIGN.md §11), so the local
// mirror keeps a future port a type-for-type swap. Known divergences
// from upstream, chosen for the analyzers' needs and documented in
// DESIGN.md §12:
//
//   - short-circuit && and || are NOT split into separate blocks: a
//     condition is one node of its block. Lock operations never hide in
//     condition operands in this codebase, and statement granularity
//     keeps the graphs small;
//   - function literals are opaque: a FuncLit is part of the node that
//     contains it and contributes no blocks. Analyzers build a separate
//     CFG per literal;
//   - Block.Kind is a local enumeration (see BlockKind) with a Panic
//     kind upstream lacks, so exit classification — return exit,
//     fall-off-end exit, panic exit — needs no node inspection.
//
// Graphs are built per function, never cached across packages, and are
// cheap: one allocation-light pass over the body.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; Blocks appear in construction order, which is source
// order for the common constructs, so iteration is deterministic.
type CFG struct {
	Blocks []*Block
}

// Block is a maximal straight-line sequence of nodes. Control enters at
// the first node and leaves at the last; Succs are the possible
// successors. A live block with no successors is an exit: its kind
// distinguishes a return, a panic (a call that cannot return), and
// falling off the end of the function.
type Block struct {
	Nodes []ast.Node // statements and condition expressions, in order
	Succs []*Block
	Index int32
	Live  bool      // reachable from the entry block
	Kind  BlockKind // what syntax gave rise to this block
	Stmt  ast.Stmt  // statement that gave rise to the block, if any
}

// BlockKind classifies a block by the construct that created it.
type BlockKind uint8

const (
	KindInvalid BlockKind = iota
	KindBody              // function entry
	KindIfThen
	KindIfElse
	KindIfDone
	KindForLoop // loop head: condition
	KindForBody
	KindForPost
	KindForDone
	KindRangeLoop // range head
	KindRangeBody
	KindRangeDone
	KindSwitchCaseBody
	KindSwitchDone
	KindSelectCaseBody
	KindSelectDone
	KindLabel       // target of a label: goto / labeled statement
	KindReturn      // block terminated by a return statement
	KindPanic       // block terminated by a call that cannot return
	KindUnreachable // continuation after a jump; dead unless a label lands here
)

var kindNames = [...]string{
	KindInvalid:        "Invalid",
	KindBody:           "Body",
	KindIfThen:         "IfThen",
	KindIfElse:         "IfElse",
	KindIfDone:         "IfDone",
	KindForLoop:        "ForLoop",
	KindForBody:        "ForBody",
	KindForPost:        "ForPost",
	KindForDone:        "ForDone",
	KindRangeLoop:      "RangeLoop",
	KindRangeBody:      "RangeBody",
	KindRangeDone:      "RangeDone",
	KindSwitchCaseBody: "SwitchCaseBody",
	KindSwitchDone:     "SwitchDone",
	KindSelectCaseBody: "SelectCaseBody",
	KindSelectDone:     "SelectDone",
	KindLabel:          "Label",
	KindReturn:         "Return",
	KindPanic:          "Panic",
	KindUnreachable:    "Unreachable",
}

func (k BlockKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("BlockKind(%d)", k)
}

// New builds the control-flow graph of body. mayReturn reports whether a
// function call can return to its caller; calls for which it returns
// false (panic, os.Exit, ...) terminate their block with no successors.
// A nil mayReturn treats only the panic builtin as non-returning, which
// is resolution-free and therefore approximate: a local function or
// variable named panic would be misclassified, so type-aware callers
// (the physchedlint analyzers) always pass their own predicate.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	if mayReturn == nil {
		mayReturn = func(call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return !ok || id.Name != "panic"
		}
	}
	b := &builder{
		cfg:       &CFG{},
		mayReturn: mayReturn,
		lblocks:   map[string]*lblock{},
	}
	b.current = b.newBlock(KindBody, body)
	b.stmt(body, nil)
	computeLive(b.cfg)
	return b.cfg
}

// Exits returns the live blocks control can leave the function from:
// KindReturn blocks and the fall-off-the-end block. Panic exits are
// excluded — callers that care about them filter on KindPanic.
func (g *CFG) Exits() []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if !b.Live || len(b.Succs) > 0 || b.Kind == KindPanic {
			continue
		}
		if b.Kind == KindUnreachable {
			continue // continuation stub after a jump; nothing falls into it
		}
		out = append(out, b)
	}
	return out
}

// InCycle reports, per block index, whether the block lies on a cycle —
// i.e. can reach itself through successor edges. Hotalloc uses this to
// find statements that execute repeatedly (defer in a loop); the goto
// handling means it is true for goto-built loops too, which a syntactic
// loop check would miss.
func (g *CFG) InCycle() []bool {
	// Tarjan strongly-connected components, iteratively: a block is on a
	// cycle iff its SCC has size > 1 or it has a self edge.
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack, scc []int
	out := make([]bool, n)
	next := 0

	type frame struct {
		v, succ int
	}
	var frames []frame
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames = append(frames[:0], frame{start, 0})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.succ < len(g.Blocks[v].Succs) {
				w := int(g.Blocks[v].Succs[f.succ].Index)
				f.succ++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			if low[v] == index[v] {
				scc = scc[:0]
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					for _, w := range scc {
						out[w] = true
					}
				} else {
					w := scc[0]
					for _, s := range g.Blocks[w].Succs {
						if int(s.Index) == w {
							out[w] = true
						}
					}
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}

// Format renders the graph for tests and debugging: one paragraph per
// block with its kind, node positions and successor indices.
func (g *CFG) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, ".%d # %s", b.Index, b.Kind)
		if !b.Live {
			sb.WriteString(" (dead)")
		}
		sb.WriteByte('\n')
		for _, n := range b.Nodes {
			pos := "-"
			if fset != nil {
				p := fset.Position(n.Pos())
				pos = fmt.Sprintf("%d:%d", p.Line, p.Column)
			}
			fmt.Fprintf(&sb, "\t%s %T\n", pos, n)
		}
		sb.WriteString("\tsuccs:")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func computeLive(g *CFG) {
	if len(g.Blocks) == 0 {
		return
	}
	var stack []*Block
	g.Blocks[0].Live = true
	stack = append(stack, g.Blocks[0])
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !s.Live {
				s.Live = true
				stack = append(stack, s)
			}
		}
	}
}
