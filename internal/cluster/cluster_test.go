package cluster

import (
	"math"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
)

func testParams() model.Params {
	p := model.PaperCalibrated()
	p.Nodes = 3
	return p
}

func newTestCluster(cfg Config) (*sim.Engine, *Cluster) {
	eng := sim.New(1)
	return eng, New(eng, testParams(), cfg)
}

func mkJob(id int64, iv dataspace.Interval) *job.Job {
	return &job.Job{ID: id, Range: iv}
}

func TestDispatchRunsAtTapeRate(t *testing.T) {
	eng, c := newTestCluster(Config{})
	j := mkJob(1, dataspace.Iv(0, 1000))
	var doneAt float64
	c.SubjobDone = func(n *Node, sj *job.Subjob) { doneAt = eng.Now() }
	var jobDone *job.Job
	c.JobDone = func(jj *job.Job) { jobDone = jj }
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	want := 1000 * c.Params().EventTimeTape()
	if math.Abs(doneAt-want) > 1e-6 {
		t.Errorf("subjob finished at %v, want %v", doneAt, want)
	}
	if jobDone != j || !j.Finished || j.Processed != 1000 {
		t.Errorf("job accounting wrong: %+v", j)
	}
	if got := c.Stats().EventsFromTape; got != 1000 {
		t.Errorf("EventsFromTape = %d, want 1000", got)
	}
}

func TestCachingAcceleratesSecondPass(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j1 := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j1, Range: j1.Range})
	eng.Run()
	if !c.Node(0).Cache.Contains(dataspace.Iv(0, 1000)) {
		t.Fatal("streamed data not cached")
	}
	start := eng.Now()
	j2 := mkJob(2, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j2, Range: j2.Range})
	eng.Run()
	got := eng.Now() - start
	want := 1000 * c.Params().EventTimeCached()
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("cached pass took %v, want %v", got, want)
	}
	if c.Stats().EventsFromCache != 1000 {
		t.Errorf("EventsFromCache = %d, want 1000", c.Stats().EventsFromCache)
	}
}

func TestMixedPlanUsesBothRates(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	c.Node(0).Cache.Insert(dataspace.Iv(0, 500), 0)
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	want := 500*c.Params().EventTimeCached() + 500*c.Params().EventTimeTape()
	if math.Abs(eng.Now()-want) > 1e-6 {
		t.Errorf("mixed subjob took %v, want %v", eng.Now(), want)
	}
}

func TestRemoteReadsUsedWhenEnabled(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true, RemoteReads: true})
	c.Node(1).Cache.Insert(dataspace.Iv(0, 1000), 0)
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	want := 1000 * c.Params().EventTimeRemote()
	if math.Abs(eng.Now()-want) > 1e-6 {
		t.Errorf("remote subjob took %v, want %v", eng.Now(), want)
	}
	if c.Stats().EventsFromRemote != 1000 {
		t.Errorf("EventsFromRemote = %d", c.Stats().EventsFromRemote)
	}
	// Without replication the reader must not cache the data.
	if c.Node(0).Cache.Used() != 0 {
		t.Error("remote read cached data without replication enabled")
	}
}

func TestReplicationAfterThreshold(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true, RemoteReads: true, ReplicateAfter: 3})
	c.Node(1).Cache.Insert(dataspace.Iv(0, 100), 0)
	for i := int64(0); i < 3; i++ {
		j := mkJob(i, dataspace.Iv(0, 100))
		c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
		eng.Run()
		cached := c.Node(0).Cache.Used()
		if i < 2 && cached != 0 {
			t.Errorf("access %d: replicated too early (%d events)", i+1, cached)
		}
		if i == 2 && cached != 100 {
			t.Errorf("access 3: want replication, cache holds %d", cached)
		}
	}
	if c.Stats().EventsReplicated != 100 {
		t.Errorf("EventsReplicated = %d, want 100", c.Stats().EventsReplicated)
	}
}

func TestPreemptReturnsRemainder(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	// Run until exactly 400 events should have been processed.
	cut := 400 * c.Params().EventTimeTape()
	eng.RunUntil(cut)
	rem := c.Preempt(c.Node(0))
	if rem == nil {
		t.Fatal("preempt returned nil")
	}
	if rem.Range != dataspace.Iv(400, 1000) {
		t.Errorf("remainder = %v, want [400,1000)", rem.Range)
	}
	if j.Processed != 400 {
		t.Errorf("Processed = %d, want 400", j.Processed)
	}
	if !c.Node(0).Idle() {
		t.Error("node still busy after preempt")
	}
	// The streamed prefix must be cached.
	if !c.Node(0).Cache.Contains(dataspace.Iv(0, 400)) {
		t.Error("preempted prefix not cached")
	}
	// Resume the remainder; the job must complete fully.
	c.Dispatch(c.Node(1), rem)
	eng.Run()
	if !j.Finished || j.Processed != 1000 {
		t.Errorf("job not completed after resume: %+v", j)
	}
}

func TestPreemptImmediatelyProcessesNothing(t *testing.T) {
	_, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	rem := c.Preempt(c.Node(0))
	if rem == nil || rem.Range != j.Range {
		t.Errorf("immediate preempt remainder = %v, want full range", rem)
	}
	if j.Processed != 0 {
		t.Errorf("Processed = %d, want 0", j.Processed)
	}
	if c.Tape().MaxConcurrentStreams() != 1 {
		t.Errorf("MaxConcurrentStreams = %d", c.Tape().MaxConcurrentStreams())
	}
}

func TestRemainingEvents(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	if got := c.RemainingEvents(c.Node(0)); got != 1000 {
		t.Errorf("RemainingEvents at start = %d, want 1000", got)
	}
	eng.RunUntil(250 * c.Params().EventTimeTape())
	if got := c.RemainingEvents(c.Node(0)); got != 750 {
		t.Errorf("RemainingEvents = %d, want 750", got)
	}
	if got := c.RemainingEvents(c.Node(1)); got != 0 {
		t.Errorf("idle node RemainingEvents = %d", got)
	}
}

func TestSplitRunning(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.RunUntil(100 * c.Params().EventTimeTape())
	tail := c.SplitRunning(c.Node(0), 450, 10)
	if tail == nil {
		t.Fatal("SplitRunning returned nil")
	}
	if tail.Range != dataspace.Iv(550, 1000) {
		t.Errorf("tail = %v, want [550,1000)", tail.Range)
	}
	if c.Node(0).Idle() {
		t.Error("head not re-dispatched")
	}
	// Head + tail must conserve the job's events.
	c.Dispatch(c.Node(1), tail)
	eng.Run()
	if !j.Finished || j.Processed != 1000 {
		t.Errorf("events lost in split: %+v", j)
	}
}

func TestSplitRunningRefusesTinyHead(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 100))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	if tail := c.SplitRunning(c.Node(0), 95, 10); tail != nil {
		t.Errorf("split should refuse: head would be 5 < 10, got %v", tail)
	}
	if c.Node(0).Idle() {
		t.Error("refused split left node idle")
	}
	eng.Run()
	if !j.Finished {
		t.Error("job did not finish after refused split")
	}
}

func TestEstimateTime(t *testing.T) {
	_, c := newTestCluster(Config{Caching: true})
	c.Node(0).Cache.Insert(dataspace.Iv(0, 500), 0)
	got := c.EstimateTime(c.Node(0), dataspace.Iv(0, 1000))
	want := 500*c.Params().EventTimeCached() + 500*c.Params().EventTimeTape()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EstimateTime = %v, want %v", got, want)
	}
}

func TestDispatchOnBusyNodePanics(t *testing.T) {
	_, c := newTestCluster(Config{})
	j := mkJob(1, dataspace.Iv(0, 100))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	defer func() {
		if recover() == nil {
			t.Error("dispatch on busy node did not panic")
		}
	}()
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: dataspace.Iv(100, 200)})
}

func TestNoCachingWhenDisabled(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: false})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	if c.Node(0).Cache.Used() != 0 {
		t.Error("diskless configuration cached data")
	}
	// Second pass must be at tape rate again.
	start := eng.Now()
	j2 := mkJob(2, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j2, Range: j2.Range})
	eng.Run()
	want := 1000 * c.Params().EventTimeTape()
	if math.Abs(eng.Now()-start-want) > 1e-6 {
		t.Errorf("second pass took %v, want %v", eng.Now()-start, want)
	}
}

func TestIdleNodes(t *testing.T) {
	_, c := newTestCluster(Config{})
	if got := len(c.IdleNodes()); got != 3 {
		t.Fatalf("IdleNodes = %d, want 3", got)
	}
	j := mkJob(1, dataspace.Iv(0, 100))
	c.Dispatch(c.Node(1), &job.Subjob{Job: j, Range: j.Range})
	idle := c.IdleNodes()
	if len(idle) != 2 || idle[0].ID != 0 || idle[1].ID != 2 {
		t.Errorf("IdleNodes = %v", idle)
	}
}

func TestJobStartedFiresOnce(t *testing.T) {
	eng, c := newTestCluster(Config{})
	j := mkJob(1, dataspace.Iv(0, 200))
	starts := 0
	c.JobStarted = func(*job.Job) { starts++ }
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: dataspace.Iv(0, 100)})
	c.Dispatch(c.Node(1), &job.Subjob{Job: j, Range: dataspace.Iv(100, 200)})
	eng.Run()
	if starts != 1 {
		t.Errorf("JobStarted fired %d times, want 1", starts)
	}
	if !j.Finished {
		t.Error("job with two subjobs did not finish")
	}
}

func TestTapeStreamAccounting(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 500))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	if got := c.Tape().EventsServed(); got != 500 {
		t.Errorf("EventsServed = %d, want 500", got)
	}
	if got := c.Tape().BytesServed(); got != 500*c.Params().EventBytes {
		t.Errorf("BytesServed = %d", got)
	}
}
