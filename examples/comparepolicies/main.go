// Comparepolicies sweeps all six scheduling policies over a load grid on a
// reduced cluster and prints a side-by-side comparison — a miniature of the
// paper's Figures 2, 3 and 5 in one table.
package main

import (
	"fmt"

	"physched"
)

func main() {
	// A reduced cluster keeps the example fast: 5 nodes, smaller jobs and
	// dataspace, cache covering a quarter of the data.
	params := physched.PaperCalibrated()
	params.Nodes = 5
	params.MeanJobEvents = 5_000
	params.DataspaceBytes = 400 * physched.GB
	params.CacheBytes = 20 * physched.GB

	base := physched.Scenario{
		Params:      params,
		Seed:        42,
		WarmupJobs:  80,
		MeasureJobs: 300,
	}

	variants := []physched.Variant{
		{Label: "farm", NewPolicy: physched.Farm},
		{Label: "splitting", NewPolicy: physched.Splitting},
		{Label: "cache-oriented", NewPolicy: physched.CacheOriented},
		{Label: "out-of-order", NewPolicy: physched.OutOfOrder},
		{Label: "delayed 12h/500", NewPolicy: func() physched.Policy {
			return physched.Delayed(12*physched.Hour, 500)
		}},
		{Label: "adaptive/500", NewPolicy: func() physched.Policy {
			return physched.Adaptive(500)
		}},
	}

	farmMax := params.FarmMaxLoad()
	loads := []float64{0.5 * farmMax, 0.9 * farmMax, 1.5 * farmMax, 2.2 * farmMax}
	curves := physched.SweepCurves(base, loads, variants)

	fmt.Printf("loads as multiples of the farm's maximal load (%.2f jobs/hour):\n\n", farmMax)
	fmt.Printf("%-18s", "policy")
	for _, l := range loads {
		fmt.Printf("  %14s", fmt.Sprintf("%.1f×farm-max", l/farmMax))
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-18s", c.Label)
		for _, r := range c.Results {
			cell := "overloaded"
			if !r.Overloaded {
				cell = fmt.Sprintf("%5.1f× %6.0fs", r.AvgSpeedup, r.AvgWaiting)
			}
			fmt.Printf("  %14s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\ncells: average speedup × / average waiting time (delay excluded)")
	fmt.Println("note how cache-aware policies both speed up jobs and push the overload point right")
}
