// Package model holds the physical and workload parameters of the simulated
// cluster, together with the quantities derived from them (per-event service
// times, reference processing times, theoretical load bounds).
//
// Two presets are provided. PaperStated uses the raw constants printed in
// §2.4 of the paper (200 ms CPU per event, 600 KB per event, 10 MB/s disk,
// 1 MB/s tape). PaperCalibrated adjusts the two throughputs so that every
// *derived* number quoted by the paper (32 000 s single-job single-node
// processing time, 3.46 jobs/hour maximal theoretical load, a caching gain
// "slightly larger than 3", a processing farm sustaining ~1.1 jobs/hour)
// holds exactly; experiments use it so that figure load axes are directly
// comparable with the paper's.
package model

import (
	"errors"
	"fmt"
)

// Seconds is simulated time, in seconds. The simulation clock starts at 0.
type Seconds = float64

// Common durations, in seconds.
const (
	Minute Seconds = 60
	Hour   Seconds = 3600
	Day    Seconds = 24 * Hour
	Week   Seconds = 7 * Day
)

// Params describes the simulated cluster and workload. All fields must be
// positive unless stated otherwise.
type Params struct {
	// Nodes is the number of processing nodes, excluding the master node.
	Nodes int

	// EventCPUTime is the pure CPU cost of analysing one collision event.
	EventCPUTime Seconds

	// EventBytes is the data volume of one collision event.
	EventBytes int64

	// DataspaceBytes is the total data volume addressable by analysis jobs.
	DataspaceBytes int64

	// DiskBytesPerSec is the effective node-disk throughput used when an
	// event is read from the local disk cache.
	DiskBytesPerSec float64

	// TapeBytesPerSec is the effective tertiary-storage throughput per node
	// (CASTOR hides tape latency behind disk arrays, so only throughput is
	// modelled — exactly as in the paper's simulator).
	TapeBytesPerSec float64

	// NetworkBytesPerSec is the node-to-node throughput used for remote
	// reads of data cached on another node's disk (Gigabit Ethernet).
	NetworkBytesPerSec float64

	// CacheBytes is the disk cache capacity per node. Zero disables caching
	// (processing-farm and plain job-splitting configurations).
	CacheBytes int64

	// MeanJobEvents is the mean number of events per job. Event counts are
	// Erlang distributed with shape ErlangShape.
	MeanJobEvents int64

	// ErlangShape is the Erlang shape parameter of the event-count
	// distribution (the paper uses 4).
	ErlangShape int

	// MinSubjobEvents is the smallest subjob a policy may create.
	MinSubjobEvents int64

	// HotFraction is the fraction of the dataspace covered by the hot
	// regions, and HotWeight the fraction of job start points falling in
	// them (paper: 10% of the space receives 50% of the start points,
	// split over two regions).
	HotFraction float64
	HotWeight   float64
	HotRegions  int

	// PipelinedTransfers overlaps data transfer with computation, so an
	// event costs max(CPU, transfer) instead of CPU + transfer. The paper
	// leaves this as future work (§7: "we intend to verify to what extend
	// pipelining of processing and data transfers may further improve the
	// system's performances"); this repo implements it as an extension.
	PipelinedTransfers bool

	// NodeSpeedFactors scales each node's per-event CPU time (factor 2 =
	// half speed). Empty means identical nodes, the paper's assumption
	// (§2.4: "all nodes are identical"); a non-empty slice must have one
	// positive entry per node. Transfers are unaffected. This is an
	// extension of this repo for heterogeneity studies.
	NodeSpeedFactors []float64
}

// GB is 10^9 bytes, the unit the paper uses for cache sizes.
const GB = 1_000_000_000

// PaperStated returns the parameters exactly as printed in §2.4 of the
// paper. Shapes of all results are preserved under these constants but the
// absolute load axis differs from the paper's figures (see package comment).
func PaperStated() Params {
	return Params{
		Nodes:              10,
		EventCPUTime:       0.200,
		EventBytes:         600_000,
		DataspaceBytes:     2_000 * GB,
		DiskBytesPerSec:    10_000_000,
		TapeBytesPerSec:    1_000_000,
		NetworkBytesPerSec: 125_000_000,
		CacheBytes:         100 * GB,
		MeanJobEvents:      30_000,
		ErlangShape:        4,
		MinSubjobEvents:    10,
		HotFraction:        0.10,
		HotWeight:          0.50,
		HotRegions:         2,
	}
}

// PaperCalibrated returns PaperStated with disk and tape throughputs
// adjusted so the paper's derived reference quantities hold exactly:
//
//	single job, single node, no cache:  32 000 s  (paper §3.4, "almost 9 hours")
//	maximal theoretical load:           3.46 jobs/hour (paper §3.4)
//	caching gain:                       3.076 ("slightly larger than 3")
//	processing-farm sustainable load:   1.125 jobs/hour (paper §5.2, "1.1")
//
// Derivation: with non-overlapped transfer+compute, the uncached per-event
// time u satisfies 30000·u = 32000 s, so u = 16/15 s and the tape channel
// moves 600 KB in u − 0.2 s. The cached per-event time c satisfies
// 10 nodes / (30000·c) = 3.46 jobs/h, so c = 0.34682 s and the disk moves
// 600 KB in c − 0.2 s.
func PaperCalibrated() Params {
	p := PaperStated()
	u := 32_000.0 / 30_000.0           // uncached per-event seconds
	c := 10 * Hour / (3.46 * 30_000.0) // cached per-event seconds
	p.TapeBytesPerSec = float64(p.EventBytes) / (u - p.EventCPUTime)
	p.DiskBytesPerSec = float64(p.EventBytes) / (c - p.EventCPUTime)
	return p
}

// Validate reports the first invalid field of p, if any.
func (p Params) Validate() error {
	switch {
	case p.Nodes <= 0:
		return errors.New("model: Nodes must be positive")
	case p.EventCPUTime <= 0:
		return errors.New("model: EventCPUTime must be positive")
	case p.EventBytes <= 0:
		return errors.New("model: EventBytes must be positive")
	case p.DataspaceBytes < p.EventBytes:
		return errors.New("model: DataspaceBytes smaller than one event")
	case p.DiskBytesPerSec <= 0, p.TapeBytesPerSec <= 0, p.NetworkBytesPerSec <= 0:
		return errors.New("model: throughputs must be positive")
	case p.CacheBytes < 0:
		return errors.New("model: CacheBytes must be non-negative")
	case p.MeanJobEvents <= 0:
		return errors.New("model: MeanJobEvents must be positive")
	case p.ErlangShape <= 0:
		return errors.New("model: ErlangShape must be positive")
	case p.MinSubjobEvents <= 0:
		return errors.New("model: MinSubjobEvents must be positive")
	case p.HotFraction < 0 || p.HotFraction >= 1:
		return fmt.Errorf("model: HotFraction %v out of [0,1)", p.HotFraction)
	case p.HotWeight < 0 || p.HotWeight > 1:
		return fmt.Errorf("model: HotWeight %v out of [0,1]", p.HotWeight)
	case p.HotFraction > 0 && p.HotRegions <= 0:
		return errors.New("model: HotRegions must be positive when HotFraction > 0")
	}
	if len(p.NodeSpeedFactors) > 0 {
		if len(p.NodeSpeedFactors) != p.Nodes {
			return fmt.Errorf("model: %d NodeSpeedFactors for %d nodes", len(p.NodeSpeedFactors), p.Nodes)
		}
		for i, f := range p.NodeSpeedFactors {
			if f <= 0 {
				return fmt.Errorf("model: NodeSpeedFactors[%d] = %v must be positive", i, f)
			}
		}
	}
	return nil
}

// SpeedFactor returns node i's CPU time multiplier (1 for identical
// nodes). Nodes beyond the configured factors — spares that joined a
// running cluster late, which Validate cannot know about — run at the
// reference speed.
func (p Params) SpeedFactor(i int) float64 {
	if i >= len(p.NodeSpeedFactors) {
		return 1
	}
	return p.NodeSpeedFactors[i]
}

// combineOn is combine with a node-specific CPU time.
func (p Params) combineOn(node int, transfer Seconds) Seconds {
	cpu := p.EventCPUTime * p.SpeedFactor(node)
	if p.PipelinedTransfers {
		if transfer > cpu {
			return transfer
		}
		return cpu
	}
	return cpu + transfer
}

// EventTimeCachedOn, EventTimeTapeOn and EventTimeRemoteOn are the
// per-node variants of the event service times, honouring
// NodeSpeedFactors.
func (p Params) EventTimeCachedOn(node int) Seconds {
	return p.combineOn(node, float64(p.EventBytes)/p.DiskBytesPerSec)
}

func (p Params) EventTimeTapeOn(node int) Seconds {
	return p.combineOn(node, float64(p.EventBytes)/p.TapeBytesPerSec)
}

func (p Params) EventTimeRemoteOn(node int) Seconds {
	return p.combineOn(node, float64(p.EventBytes)/p.DiskBytesPerSec+
		float64(p.EventBytes)/p.NetworkBytesPerSec)
}

// TotalEvents is the number of events in the dataspace.
func (p Params) TotalEvents() int64 { return p.DataspaceBytes / p.EventBytes }

// CacheEvents is the per-node cache capacity in whole events.
func (p Params) CacheEvents() int64 { return p.CacheBytes / p.EventBytes }

// combine merges CPU and transfer time per the transfer model: summed by
// default (the paper's model), overlapped under PipelinedTransfers.
func (p Params) combine(transfer Seconds) Seconds {
	if p.PipelinedTransfers {
		if transfer > p.EventCPUTime {
			return transfer
		}
		return p.EventCPUTime
	}
	return p.EventCPUTime + transfer
}

// EventTimeCached is the wall time to process one event whose data sits in
// the local disk cache: disk transfer plus CPU analysis (overlapped under
// PipelinedTransfers).
func (p Params) EventTimeCached() Seconds {
	return p.combine(float64(p.EventBytes) / p.DiskBytesPerSec)
}

// EventTimeTape is the wall time to process one event streamed from
// tertiary storage.
func (p Params) EventTimeTape() Seconds {
	return p.combine(float64(p.EventBytes) / p.TapeBytesPerSec)
}

// EventTimeRemote is the wall time to process one event read from another
// node's disk cache over the network: remote disk + network + CPU.
func (p Params) EventTimeRemote() Seconds {
	return p.combine(float64(p.EventBytes)/p.DiskBytesPerSec +
		float64(p.EventBytes)/p.NetworkBytesPerSec)
}

// CachingGain is the per-event speedup of a cached read over a tape read
// (the paper's "slightly larger than 3").
func (p Params) CachingGain() float64 { return p.EventTimeTape() / p.EventTimeCached() }

// SingleNodeNoCacheTime is the reference processing time of an average job
// on one node with all data streamed from tape (paper: 32 000 s ≈ 9 h).
func (p Params) SingleNodeNoCacheTime() Seconds {
	return float64(p.MeanJobEvents) * p.EventTimeTape()
}

// MaxSpeedup bounds the overall job speedup: full parallelization times the
// caching gain (paper: ≈ 30).
func (p Params) MaxSpeedup() float64 { return float64(p.Nodes) * p.CachingGain() }

// MaxTheoreticalLoad is the sustainable arrival rate, in jobs per hour, when
// every processor runs at 100% on cached data (paper: 3.46 jobs/hour).
func (p Params) MaxTheoreticalLoad() float64 {
	return float64(p.Nodes) * Hour / (float64(p.MeanJobEvents) * p.EventTimeCached())
}

// FarmMaxLoad is the sustainable arrival rate, in jobs per hour, of the
// processing-farm policy, where every event is streamed from tape
// (paper: ≈ 1.1 jobs/hour).
func (p Params) FarmMaxLoad() float64 {
	return float64(p.Nodes) * Hour / (float64(p.MeanJobEvents) * p.EventTimeTape())
}
