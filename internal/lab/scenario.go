// Package lab is the scenario-execution and experiment-orchestration layer:
// it runs single simulation scenarios to completion (Run) and entire
// scenario grids — policy variants × loads × seeds — on a bounded worker
// pool with deterministic results (Grid, RunSet). Every sweep, figure
// reproduction, ablation and replication study in this repository executes
// through lab; internal/spec compiles declarative scenario specs into the
// Scenario/Grid values this package runs.
//
// Determinism contract: a run's outcome depends only on its fully resolved
// Scenario, never on scheduling order, worker count or wall-clock time.
// Executing the same Grid serially and in parallel therefore produces
// byte-identical results.
package lab

import (
	"fmt"
	"math/rand"

	"physched/internal/cluster"
	"physched/internal/job"
	"physched/internal/metrics"
	"physched/internal/model"
	"physched/internal/sched"
	"physched/internal/sim"
	"physched/internal/stats"
	"physched/internal/trace"
	"physched/internal/workload"
)

// Scenario is one simulation configuration.
type Scenario struct {
	Params model.Params
	// NewPolicy constructs a fresh policy (policies are stateful, so every
	// run needs its own instance).
	NewPolicy func() sched.Policy
	// Load is the mean arrival rate, in jobs per hour.
	Load float64
	// Seed drives all randomness of the run.
	Seed int64
	// WarmupJobs are simulated but not measured (cache fill, queue ramp).
	WarmupJobs int
	// MeasureJobs is the size of the measurement window.
	MeasureJobs int
	// OverloadBacklog is the backlog at which the run is declared
	// overloaded (default 25× the node count).
	OverloadBacklog int64
	// MaxSimTime caps the simulated time, in seconds (default 2 simulated
	// years) — a safety net against pathological configurations.
	MaxSimTime float64
	// DelayIncluded reports waiting times including the scheduling delay
	// (Figure 7 reports the adaptive policy this way).
	DelayIncluded bool
	// KeepJobResults retains the full per-job result log on the
	// collector (Collector.Results). All reported aggregates are
	// computed streaming; only set this when individual job records are
	// needed, as it costs memory proportional to the measured job count.
	KeepJobResults bool

	// Workload, when non-nil, replaces the synthetic generator — e.g. a
	// workload.Replay of a recorded or production job trace. The Load
	// field is then only documentation. Sources are stateful: a Scenario
	// carrying one must not be run more than once; grids need NewWorkload.
	Workload workload.Source

	// NewWorkload, when non-nil, constructs a fresh workload source for
	// each run from the run's seed and load — the form grid execution
	// needs, and the hook through which non-homogeneous arrival processes
	// (workload.NewInhomogeneous) enter a sweep. Takes precedence over
	// Workload.
	NewWorkload func(seed int64, jobsPerHour float64) workload.Source

	// Faults configures node churn (failures, repairs, decommissions,
	// late joins; see cluster.FaultModel). The zero value — the default —
	// simulates the paper's never-failing cluster, bit-identically to
	// builds that predate node dynamics: fault randomness branches off a
	// dedicated SplitMix64 seed stream and never touches the workload or
	// engine draws.
	Faults cluster.FaultModel

	// Trace, when non-nil, records job/subjob lifecycle events and
	// periodic cluster samples.
	Trace *trace.Recorder
	// SampleEvery is the cluster sampling period for Trace, in seconds
	// (default 1 hour when Trace is set).
	SampleEvery float64

	// Hooks, when non-nil, runs after the cluster is built and fully
	// wired (policy attached, collector and fault callbacks installed)
	// and before the first arrival. It may wrap the cluster's callbacks —
	// internal/simtest instruments invariant checking through it. Hooks
	// must not retain state across runs when the scenario is used in a
	// grid: every cell invokes the same closure, concurrently under
	// parallel execution.
	Hooks func(*cluster.Cluster)
}

// Result summarises one simulation run. The JSON field names are the wire
// format served by cmd/physchedd and stored by internal/resultcache; they
// are pinned by golden-file tests and must not change incompatibly.
type Result struct {
	Scenario   Scenario `json:"-"`
	PolicyName string   `json:"policy"`
	Load       float64  `json:"load_jobs_per_hour"`

	Overloaded   bool    `json:"overloaded"`
	AvgSpeedup   float64 `json:"avg_speedup"`
	AvgWaiting   float64 `json:"avg_waiting_sec"`    // seconds
	MaxWaiting   float64 `json:"max_waiting_sec"`    // seconds
	P99Waiting   float64 `json:"p99_waiting_sec"`    // seconds
	AvgProc      float64 `json:"avg_processing_sec"` // seconds
	MeasuredJobs int     `json:"measured_jobs"`
	SimTime      float64 `json:"sim_time_sec"` // seconds of simulated time covered
	// Goodput is the fraction of computed event-work that survived —
	// 1 − EventsLost/(events processed from all sources). Only set for
	// fault-enabled scenarios (omitted otherwise, keeping fault-free
	// encodings byte-identical to earlier builds); the raw wasted-work
	// and re-execution counters live in Cluster.
	Goodput float64       `json:"goodput,omitempty"`
	Cluster cluster.Stats `json:"cluster"`
	// Collector holds the full per-job record of the run. Run keeps it;
	// grid execution drops it unless Options.KeepCollectors is set, so
	// sweeps retain only the summary above instead of pinning every
	// job's lifecycle in memory.
	Collector *metrics.Collector `json:"-"`
}

// Stored is the cacheable summary form of the result: no Collector (it
// would pin every job record) and no Scenario (closures don't
// serialise). Every result-cache write — grid execution and the
// physchedd spec endpoint — stores exactly this shape, so cache hits
// and fresh runs serialise byte-identically.
func (r Result) Stored() Result {
	r.Scenario = Scenario{}
	r.Collector = nil
	return r
}

// withDefaults fills unset scenario fields.
func (s Scenario) withDefaults() Scenario {
	if s.WarmupJobs == 0 {
		s.WarmupJobs = 150
	}
	if s.MeasureJobs == 0 {
		s.MeasureJobs = 600
	}
	if s.OverloadBacklog == 0 {
		s.OverloadBacklog = int64(25 * s.Params.Nodes)
	}
	if s.MaxSimTime == 0 {
		s.MaxSimTime = 2 * 365 * model.Day
	}
	return s
}

// Validate reports the first problem that would prevent the scenario from
// running: invalid cluster parameters, a missing policy constructor, or a
// non-positive load with no explicit workload source. Spec compilation
// (internal/spec) calls it so invalid configurations fail at spec-build
// time rather than mid-execution.
func (s Scenario) Validate() error {
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("lab: invalid params: %w", err)
	}
	if s.NewPolicy == nil {
		return fmt.Errorf("lab: Scenario.NewPolicy is nil")
	}
	if s.Workload == nil && s.NewWorkload == nil && s.Load <= 0 {
		return fmt.Errorf("lab: Load must be positive for the synthetic workload, got %v", s.Load)
	}
	if s.WarmupJobs < 0 || s.MeasureJobs < 0 {
		return fmt.Errorf("lab: negative job window (warmup %d, measure %d)", s.WarmupJobs, s.MeasureJobs)
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	return nil
}

// Run executes one scenario to completion, panicking on an invalid
// scenario. Prefer RunE where an error can be handled.
func Run(s Scenario) Result {
	res, err := RunE(s)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE executes one scenario to completion, reporting invalid scenarios
// as errors instead of panicking.
func RunE(s Scenario) (Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	eng := sim.New(s.Seed)
	policy := s.NewPolicy()
	cl := cluster.New(eng, s.Params, policy.ClusterConfig())
	faulted := s.Faults.Enabled()
	if faulted {
		// Spare nodes must exist before Attach so policies that size
		// their structures off Nodes() see the full roster.
		frng := rand.New(rand.NewSource(DeriveSeed(s.Seed, faultSeedStream)))
		if err := cluster.InstallFaults(cl, s.Faults, frng); err != nil {
			return Result{}, err
		}
	}
	policy.Attach(cl)

	coll := metrics.NewCollector(s.Params, s.WarmupJobs, s.MeasureJobs)
	coll.DelayIncluded = s.DelayIncluded
	coll.KeepResults = s.KeepJobResults
	cl.JobDone = coll.JobFinished
	cl.SubjobDone = policy.SubjobDone
	admit := policy.JobArrived
	if faulted {
		rq := &requeuer{c: cl, policy: policy}
		admit = rq.jobArrived
		cl.SubjobDone = rq.subjobDone
		cl.NodeDown = rq.nodeDown
		cl.NodeUp = rq.nodeUp
	}

	var gen workload.Source
	switch {
	case s.NewWorkload != nil:
		gen = s.NewWorkload(s.Seed+1, s.Load)
	case s.Workload != nil:
		gen = s.Workload
	default:
		gen = workload.New(s.Params, rand.New(rand.NewSource(s.Seed+1)), s.Load)
	}

	if s.Trace != nil {
		cl.Tracer = s.Trace
		period := s.SampleEvery
		if period <= 0 {
			period = model.Hour
		}
		var sample func()
		sample = func() {
			busy := 0
			var cacheUsed int64
			for _, n := range cl.Nodes() {
				// Running, not !Idle: a down node is never idle but is
				// not busy either.
				if n.Running() != nil {
					busy++
				}
				cacheUsed += n.Cache.Used()
			}
			st := cl.Stats()
			total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape
			hit := 0.0
			if total > 0 {
				hit = float64(st.EventsFromCache) / float64(total)
			}
			s.Trace.Add(trace.Event{
				Time: eng.Now(), Kind: trace.Sample,
				BusyNodes: busy, Backlog: coll.Backlog(),
				CacheUsed: cacheUsed, CacheHitRate: hit,
			})
			eng.After(period, sample)
		}
		eng.After(period, sample)
	}

	if s.Hooks != nil {
		s.Hooks(cl)
	}

	overloaded := false
	exhausted := false // a finite workload source returned nil
	var scheduleArrival func()
	// One shared callback serves every arrival (the job travels as the
	// timer argument), so the arrival chain allocates nothing per job.
	arrive := func(a any) {
		j := a.(*job.Job)
		coll.JobArrived(j)
		if s.Trace != nil {
			s.Trace.Add(trace.Event{Time: eng.Now(), Kind: trace.JobArrived, JobID: j.ID, Events: j.Events()})
		}
		admit(j)
		if coll.Backlog() >= s.OverloadBacklog {
			overloaded = true
			return // stop feeding; the run ends below
		}
		scheduleArrival()
	}
	scheduleArrival = func() {
		j := gen.Next()
		if j == nil {
			exhausted = true
			return
		}
		eng.AtCall(j.Arrival, arrive, j)
	}
	scheduleArrival()

	drained := false // a finite workload trace ran out of jobs
	for !coll.Done() && !overloaded && eng.Now() < s.MaxSimTime {
		// A fault-enabled engine never empties — every repair arms the
		// next failure — so a finite workload ends when its last job
		// does, not when the queue drains. (Fault-free runs keep the
		// drain exit untouched: their event tail — aging timers and the
		// like — is part of the pinned behaviour.)
		if faulted && exhausted && coll.Backlog() == 0 {
			drained = true
			break
		}
		if !eng.Step() {
			drained = true
			break
		}
	}
	complete := coll.Done() || drained

	if !overloaded && complete && waitingDiverges(coll, s.Params) {
		overloaded = true
	}
	res := Result{
		Scenario:     s,
		PolicyName:   policy.Name(),
		Load:         s.Load,
		Overloaded:   overloaded,
		MeasuredJobs: coll.MeasuredCount(),
		SimTime:      eng.Now(),
		Cluster:      cl.Stats(),
		Collector:    coll,
	}
	if faulted {
		st := res.Cluster
		if total := st.EventsFromCache + st.EventsFromRemote + st.EventsFromTape; total > 0 {
			res.Goodput = 1 - float64(st.EventsLost)/float64(total)
		}
	}
	if !overloaded && complete && coll.MeasuredCount() > 0 {
		res.AvgSpeedup = coll.AvgSpeedup()
		res.AvgWaiting = coll.AvgWaiting()
		res.MaxWaiting = coll.MaxWaiting()
		res.P99Waiting = coll.WaitingQuantile(0.99)
		res.AvgProc = coll.AvgProcessing()
	} else {
		res.Overloaded = true
	}
	return res, nil
}

// waitingDiverges detects the out-of-steady-state regime the paper cuts
// its curves at: a clearly positive linear trend of waiting time over the
// measurement window, amounting to more than two mean service times of
// growth. In steady state the trend is statistical noise around zero; in
// overload it grows without bound at a rate of roughly (utilisation−1)
// seconds per second.
func waitingDiverges(coll *metrics.Collector, p model.Params) bool {
	xs := coll.Arrivals()
	ys := coll.ReportedWaitings()
	if len(xs) < 50 {
		return false
	}
	slope := stats.LinearTrend(xs, ys)
	if slope < 0.01 {
		return false
	}
	span := xs[len(xs)-1] - xs[0]
	meanService := float64(p.MeanJobEvents) * p.EventTimeCached()
	if slope*span <= 2*meanService {
		return false
	}
	// Guard against periodic sawtooths (delayed scheduling: waiting rises
	// within each accumulation batch and resets at the next): genuine
	// divergence also shows in the second half clearly dominating the
	// first.
	half := len(ys) / 2
	var m1, m2 float64
	for _, y := range ys[:half] {
		m1 += y
	}
	for _, y := range ys[half:] {
		m2 += y
	}
	m1 /= float64(half)
	m2 /= float64(len(ys) - half)
	return m2 > 1.5*m1+0.25*meanService
}
