package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a structured JSON logger whose record timestamps
// come from the injected clock rather than the handler's own time.Now,
// so a fake clock yields byte-stable log lines under test. Every line
// is one JSON object; nil w discards everything (the default for
// in-process test servers that did not ask for logs).
func NewLogger(w io.Writer, clock Clock, level slog.Leveler) *slog.Logger {
	if w == nil {
		w = io.Discard
	}
	if clock == nil {
		clock = SystemClock
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			// The JSON handler stamps records with its own wall-clock
			// read; rewriting the time attribute here routes the
			// timestamp through the audited clock seam instead.
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Time(slog.TimeKey, clock())
			}
			return a
		},
	})
	return slog.New(h)
}

// logCtxKey scopes the context logger entry to this package.
type logCtxKey struct{}

// WithLogger stores l in ctx for handlers downstream of a middleware.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, logCtxKey{}, l)
}

// LoggerFrom returns the logger stored by WithLogger — already carrying
// the request's correlation attributes — or a discard logger, so call
// sites never nil-check.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(logCtxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}
