// Package physched is a discrete-event simulator and scheduling library
// reproducing "Parallelization and Scheduling of Data Intensive Particle
// Physics Analysis Jobs on Clusters of PCs" (Ponce & Hersch, IPDPS 2004).
//
// It models a cluster of PCs with node disk caches attached to a shared
// tertiary mass-storage system, a synthetic LHCb-style analysis workload
// (contiguous event segments, Erlang-distributed job sizes, hot data
// regions, Poisson arrivals), and the paper's six scheduling policies:
// processing farm, job splitting, cache-oriented job splitting,
// out-of-order scheduling (with an optional data-replication variant),
// delayed scheduling and adaptive-delay scheduling.
//
// Quick start:
//
//	params := physched.PaperCalibrated()
//	res := physched.Run(physched.Scenario{
//		Params:    params,
//		NewPolicy: physched.OutOfOrder,
//		Load:      1.5, // jobs per hour
//		Seed:      1,
//	})
//	fmt.Printf("speedup %.1f, waiting %.0fs\n", res.AvgSpeedup, res.AvgWaiting)
//
// The experiment recipes behind every figure of the paper are exposed via
// the Fig2..Fig7, Replication, MaxLoad and FarmVsMErM functions; the
// cmd/experiments binary renders them as tables, ASCII plots and CSV.
package physched

import (
	"io"
	"math/rand"

	"physched/internal/experiments"
	"physched/internal/model"
	"physched/internal/runner"
	"physched/internal/sched"
	"physched/internal/workload"
)

// Params describes the simulated cluster and workload; see PaperStated and
// PaperCalibrated for the paper's configurations.
type Params = model.Params

// Scenario is one simulation configuration (cluster parameters, policy,
// load, seed, measurement window).
type Scenario = runner.Scenario

// Result summarises one simulation run.
type Result = runner.Result

// Curve is a labelled series of results over a load axis (one figure line).
type Curve = runner.Curve

// Variant is one curve specification for SweepCurves.
type Variant = runner.Variant

// Policy is the scheduling-policy plugin interface.
type Policy = sched.Policy

// Figure is a reproduced paper figure.
type Figure = experiments.Figure

// Quality selects experiment scale (Quick or Full).
type Quality = experiments.Quality

// Experiment scales.
const (
	Quick = experiments.Quick
	Full  = experiments.Full
)

// Time units in seconds, for Scenario and policy parameters.
const (
	Minute = model.Minute
	Hour   = model.Hour
	Day    = model.Day
	Week   = model.Week
	GB     = model.GB
)

// PaperStated returns the parameters exactly as printed in §2.4 of the
// paper; PaperCalibrated adjusts effective throughputs so the paper's
// derived reference numbers (32 000 s reference job, 3.46 jobs/hour
// theoretical maximum, caching gain ≈3, farm maximum ≈1.1 jobs/hour) hold
// exactly. Use PaperCalibrated to compare against the paper's figures.
func PaperStated() Params     { return model.PaperStated() }
func PaperCalibrated() Params { return model.PaperCalibrated() }

// Policy constructors, one per paper policy.
func Farm() Policy          { return sched.NewFarm() }
func Splitting() Policy     { return sched.NewSplitting() }
func CacheOriented() Policy { return sched.NewCacheOriented() }
func OutOfOrder() Policy    { return sched.NewOutOfOrder() }
func Replication() Policy   { return sched.NewReplication() }

// Partitioned returns the static data-partitioning baseline (one owner
// node per dataspace slice); AffineFarm the cache-affine farm baseline
// (caching and affinity routing without job splitting). Both are
// extensions of this repo, not paper policies.
func Partitioned() Policy { return sched.NewPartitioned() }
func AffineFarm() Policy  { return sched.NewAffineFarm() }

// Delayed returns the delayed-scheduling policy with the given period
// delay (seconds) and stripe size (events).
func Delayed(period float64, stripe int64) Policy { return sched.NewDelayed(period, stripe) }

// Adaptive returns the adaptive-delay policy with the given stripe size.
func Adaptive(stripe int64) Policy { return sched.NewAdaptive(stripe) }

// WorkloadSource yields the job stream of a scenario; Scenario.Workload
// accepts any implementation (the synthetic generator or a trace replay).
type WorkloadSource = workload.Source

// NewWorkloadGenerator returns the paper's synthetic job stream for the
// given parameters, seed and arrival rate in jobs per hour.
func NewWorkloadGenerator(p Params, seed int64, jobsPerHour float64) WorkloadSource {
	return workload.New(p, rand.New(rand.NewSource(seed)), jobsPerHour)
}

// ExportWorkload writes the next n jobs of src to w as JSON Lines;
// NewWorkloadReplay reads such a trace back as a replayable source.
func ExportWorkload(w io.Writer, src WorkloadSource, n int) error {
	return workload.Export(w, src, n)
}

// NewWorkloadReplay parses a JSONL workload trace written by
// ExportWorkload (or converted from production accounting logs).
func NewWorkloadReplay(r io.Reader) (WorkloadSource, error) {
	return workload.NewReplay(r)
}

// Run executes one scenario to completion.
func Run(s Scenario) Result { return runner.Run(s) }

// Sweep runs the scenario at each load (jobs/hour), in parallel.
func Sweep(s Scenario, loads []float64) []Result { return runner.Sweep(s, loads) }

// SweepCurves runs several policy variants over the same load grid.
func SweepCurves(s Scenario, loads []float64, vs []Variant) []Curve {
	return runner.SweepCurves(s, loads, vs)
}

// SustainableLoad returns the highest of the given loads the scenario
// sustains without overload.
func SustainableLoad(s Scenario, loads []float64) float64 {
	return runner.SustainableLoad(s, loads)
}

// Figure reproductions; see DESIGN.md for the experiment index.
func Fig2(q Quality, seed int64) Figure                     { return experiments.Fig2(q, seed) }
func Fig3(q Quality, seed int64) Figure                     { return experiments.Fig3(q, seed) }
func Fig4(q Quality, seed int64) []experiments.Distribution { return experiments.Fig4(q, seed) }
func Fig5(q Quality, seed int64) Figure                     { return experiments.Fig5(q, seed) }
func Fig6(q Quality, seed int64) Figure                     { return experiments.Fig6(q, seed) }
func Fig7(q Quality, seed int64) Figure                     { return experiments.Fig7(q, seed) }
func ReplicationStudy(q Quality, seed int64) []experiments.ReplicationRow {
	return experiments.Replication(q, seed)
}
func MaxLoadStudy(q Quality, seed int64) []experiments.MaxLoadResult {
	return experiments.MaxLoad(q, seed)
}
func FarmVsMErM(q Quality, seed int64) []experiments.FarmRow {
	return experiments.FarmVsMErM(q, seed)
}
