// Package cache implements the node disk caches of the simulated cluster:
// a per-node LRU cache of event-data segments (the paper's scheduler
// "deallocates the least recently used cached segments" when space is
// needed), a cluster-wide index answering "which node caches which part of
// this range", and an interval counter used by the data-replication policy
// of §4.2 (replicate a segment on its third remote access).
package cache

import (
	"fmt"

	"physched/internal/dataspace"
)

// EvictPolicy selects which cached segment to evict when space is needed.
type EvictPolicy int

const (
	// EvictLRU evicts the least recently used segment (the paper's choice).
	EvictLRU EvictPolicy = iota
	// EvictFIFO evicts the oldest inserted segment regardless of use.
	EvictFIFO
)

// LRU is a disk cache holding event-index segments with a capacity in
// events. The zero value is unusable; construct with NewLRU. A capacity of
// zero yields a valid cache that never holds anything (the paper's
// no-caching policies).
//
// The cache performs no steady-state allocation and holds no per-segment
// pointers: segments live in a growable pool addressed by int32 handles,
// the recency order and the free list are intrusive index lists, and the
// sorted segment directory carries the interval inline. Keeping the
// directory pointer-free matters on the hot path — its memmoves need no
// GC write barriers and its binary searches chase no pointers.
type LRU struct {
	capacity int64
	used     int64
	policy   EvictPolicy
	head     int32    // most recently used, noSeg when empty
	tail     int32    // least recently used
	segs     []segRef // sorted by interval start, disjoint
	set      dataspace.Set

	pool     []segment // segment storage, addressed by segRef.id
	freeSeg  int32     // recycled pool slots, linked through next
	poolBase int       // next never-used pool slot

	gapScratch []dataspace.Interval

	inserted int64 // cumulative events ever inserted
	evicted  int64 // cumulative events ever evicted
}

// noSeg is the nil value of a segment handle.
const noSeg = int32(-1)

// segRef is one directory entry: the segment's interval (the search key,
// kept in sync with the pool entry) and its pool handle.
type segRef struct {
	iv dataspace.Interval
	id int32
}

type segment struct {
	iv         dataspace.Interval
	last       float64
	prev, next int32 // recency list links (next also threads the free list)
}

// NewLRU returns a cache with the given capacity in events.
func NewLRU(capacityEvents int64, policy EvictPolicy) *LRU {
	if capacityEvents < 0 {
		panic("cache: negative capacity")
	}
	return &LRU{capacity: capacityEvents, policy: policy, head: noSeg, tail: noSeg, freeSeg: noSeg}
}

// Capacity returns the capacity in events.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the number of currently cached events.
func (c *LRU) Used() int64 { return c.used }

// InsertedTotal and EvictedTotal return lifetime counters, for cache
// churn statistics.
func (c *LRU) InsertedTotal() int64 { return c.inserted }
func (c *LRU) EvictedTotal() int64  { return c.evicted }

// Cached returns the set of cached events. The returned set is a read-only
// view sharing the cache's storage: it is valid only until the next cache
// mutation (Insert, Touch, Evict, Clear).
func (c *LRU) Cached() dataspace.Set { return c.set }

// Contains reports whether iv is entirely cached.
func (c *LRU) Contains(iv dataspace.Interval) bool { return c.set.ContainsInterval(iv) }

// CachedPart returns the parts of iv that are cached.
func (c *LRU) CachedPart(iv dataspace.Interval) dataspace.Set {
	return c.set.IntersectInterval(iv)
}

// cachedFirstRun returns the first cached run of iv and cachedLen the
// number of cached events of iv — the allocation-free queries the index
// planning paths use.
func (c *LRU) cachedFirstRun(iv dataspace.Interval) dataspace.Interval {
	return c.set.FirstRunIn(iv)
}

// cachedFirstRunFrom is cachedFirstRun with a resumable cursor (see
// dataspace.Set.FirstRunFrom); the hint is invalidated by any mutation.
func (c *LRU) cachedFirstRunFrom(iv dataspace.Interval, hint int) (dataspace.Interval, int) {
	return c.set.FirstRunFrom(iv, hint)
}

func (c *LRU) cachedLen(iv dataspace.Interval) int64 { return c.set.IntersectLen(iv) }

// Insert adds iv to the cache at time now, evicting according to the
// eviction policy if needed. Parts of iv already cached are refreshed
// (treated as used now). If iv exceeds the whole capacity, only its tail
// (the most recently streamed events) is kept.
//physched:hotpath
func (c *LRU) Insert(iv dataspace.Interval, now float64) {
	if c.capacity == 0 || iv.Empty() {
		return
	}
	if iv.Len() > c.capacity {
		iv = dataspace.Iv(iv.End-c.capacity, iv.End)
	}
	// One pass over the overlapping segments both refreshes them (Touch)
	// and collects the uncovered gaps, instead of a second search over the
	// cached set: the segments jointly cover exactly the cached events.
	gaps := c.gapScratch[:0]
	pos := iv.Start
	i := c.seekOverlap(iv.Start)
	for i < len(c.segs) && c.segs[i].iv.Start < iv.End {
		id := c.segs[i].id
		i = c.splitOutAt(i, iv) + 1
		s := &c.pool[id]
		s.last = now
		if c.policy == EvictLRU {
			c.listMoveToFront(id)
		}
		if pos < s.iv.Start {
			gaps = append(gaps, dataspace.Iv(pos, s.iv.Start))
		}
		pos = s.iv.End
	}
	if pos < iv.End {
		gaps = append(gaps, dataspace.Iv(pos, iv.End))
	}
	c.gapScratch = gaps
	for _, part := range gaps {
		c.makeRoom(part.Len(), iv)
		c.inserted += part.Len()
		c.used += part.Len()
		c.set.AddInPlace(part)
		c.addSegment(c.newSegment(part, now))
	}
}

// Touch marks the cached parts of iv as used at time now, refreshing their
// LRU position.
//
//physched:hotpath
func (c *LRU) Touch(iv dataspace.Interval, now float64) {
	if iv.Empty() {
		return
	}
	i := c.seekOverlap(iv.Start)
	for i < len(c.segs) && c.segs[i].iv.Start < iv.End {
		id := c.segs[i].id
		i = c.splitOutAt(i, iv) + 1
		c.pool[id].last = now
		if c.policy == EvictLRU {
			c.listMoveToFront(id)
		}
	}
}

// Evict removes iv from the cache regardless of recency (used by tests and
// by failure-injection scenarios).
func (c *LRU) Evict(iv dataspace.Interval) {
	if iv.Empty() {
		return
	}
	i := c.seekOverlap(iv.Start)
	for i < len(c.segs) && c.segs[i].iv.Start < iv.End {
		id := c.segs[i].id
		si := c.splitOutAt(i, iv)
		siv := c.pool[id].iv
		c.set.RemoveInPlace(siv)
		c.used -= siv.Len()
		c.evicted += siv.Len()
		c.listRemove(id)
		c.removeAt(si)
		c.releaseSegment(id)
		i = si
	}
}

// Clear empties the cache — a node failure that takes the disk with it.
// The dropped events count as evictions in the churn statistics. One
// pass, not per-segment dropSegment: Clear runs on every disk-losing
// failure.
func (c *LRU) Clear() {
	c.evicted += c.used
	c.used = 0
	c.set.Reset()
	for _, ref := range c.segs {
		c.releaseSegment(ref.id)
	}
	c.segs = c.segs[:0]
	c.head, c.tail = noSeg, noSeg
}

// makeRoom evicts segments until need events fit. Segments overlapping
// protect are never evicted (they belong to the insertion in progress).
func (c *LRU) makeRoom(need int64, protect dataspace.Interval) {
	for c.used+need > c.capacity {
		victim := c.victim(protect)
		if victim == noSeg {
			return // everything left is protected; insert over capacity
		}
		v := &c.pool[victim]
		over := c.used + need - c.capacity
		if v.iv.Len() > over {
			// Partial eviction: drop just enough of the victim. Trimming
			// its start keeps the directory order — the shrunk victim still
			// sorts before its right neighbour — so no slice surgery.
			evict := dataspace.Iv(v.iv.Start, v.iv.Start+over)
			c.set.RemoveInPlace(evict)
			c.used -= evict.Len()
			c.evicted += evict.Len()
			si := c.seekStart(v.iv.Start)
			v.iv = dataspace.Iv(evict.End, v.iv.End)
			c.segs[si].iv = v.iv
			return
		}
		c.dropSegment(victim)
	}
}

// victim returns the next segment to evict, or noSeg if only protected
// segments remain.
func (c *LRU) victim(protect dataspace.Interval) int32 {
	for id := c.tail; id != noSeg; id = c.pool[id].prev {
		if !c.pool[id].iv.Overlaps(protect) {
			return id
		}
	}
	return noSeg
}

func (c *LRU) dropSegment(id int32) {
	iv := c.pool[id].iv
	c.set.RemoveInPlace(iv)
	c.used -= iv.Len()
	c.evicted += iv.Len()
	c.listRemove(id)
	c.removeFromSlice(id)
	c.releaseSegment(id)
}

// splitOutAt shrinks the segment at directory position i so it lies
// entirely within iv, creating sibling segments (same recency) for the
// parts outside iv. The siblings go directly next to position i — disjoint
// sorted segments need no re-search — and the (possibly shifted) position
// of the shrunk segment is returned.
func (c *LRU) splitOutAt(i int, iv dataspace.Interval) int {
	id := c.segs[i].id
	siv := c.pool[id].iv
	in := siv.Intersect(iv)
	if in == siv {
		return i
	}
	last := c.pool[id].last
	if left := dataspace.Iv(siv.Start, in.Start); !left.Empty() {
		sib := c.newSegment(left, last)
		c.listInsertAfter(sib, id)
		c.insertAt(i, segRef{left, sib})
		i++
	}
	if right := dataspace.Iv(in.End, siv.End); !right.Empty() {
		sib := c.newSegment(right, last)
		c.listInsertAfter(sib, id)
		c.insertAt(i+1, segRef{right, sib})
	}
	c.pool[id].iv = in
	c.segs[i].iv = in
	return i
}

func (c *LRU) addSegment(id int32) {
	c.listPushFront(id)
	iv := c.pool[id].iv
	c.insertAt(c.seekStart(iv.Start), segRef{iv, id})
}

// segChunk is how many segments one pool growth provides; slots are only
// ever recycled through the free list, so chunked growth keeps the
// steady-state allocation count at zero without any lifetime bookkeeping.
const segChunk = 64

// newSegment takes a pool slot from the free list, growing the pool a
// chunk at a time.
func (c *LRU) newSegment(iv dataspace.Interval, last float64) int32 {
	id := c.freeSeg
	if id == noSeg {
		if c.poolBase == len(c.pool) {
			c.pool = append(c.pool, make([]segment, segChunk)...)
		}
		id = int32(c.poolBase)
		c.poolBase++
	} else {
		c.freeSeg = c.pool[id].next
	}
	c.pool[id] = segment{iv: iv, last: last, prev: noSeg, next: noSeg}
	return id
}

func (c *LRU) releaseSegment(id int32) {
	c.pool[id].prev = noSeg
	c.pool[id].next = c.freeSeg
	c.freeSeg = id
}

// Intrusive recency list. head = most recently used; the links live in
// the pool entries, so list maintenance allocates nothing.

func (c *LRU) listPushFront(id int32) {
	s := &c.pool[id]
	s.prev = noSeg
	s.next = c.head
	if c.head != noSeg {
		c.pool[c.head].prev = id
	}
	c.head = id
	if c.tail == noSeg {
		c.tail = id
	}
}

func (c *LRU) listRemove(id int32) {
	s := &c.pool[id]
	if s.prev != noSeg {
		c.pool[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next != noSeg {
		c.pool[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = noSeg, noSeg
}

func (c *LRU) listMoveToFront(id int32) {
	if c.head == id {
		return
	}
	c.listRemove(id)
	c.listPushFront(id)
}

func (c *LRU) listInsertAfter(id, after int32) {
	s := &c.pool[id]
	a := &c.pool[after]
	s.prev = after
	s.next = a.next
	if a.next != noSeg {
		c.pool[a.next].prev = id
	} else {
		c.tail = id
	}
	a.next = id
}

// seekOverlap returns the directory position of the first segment with
// End > t — the first candidate to overlap an interval starting at t.
// Hand-rolled binary search: this is the hottest lookup of the cache and
// the sort.Search closure overhead is measurable.
func (c *LRU) seekOverlap(t int64) int {
	lo, hi := 0, len(c.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.segs[mid].iv.End > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// seekStart returns the directory position of the first segment with
// Start >= t.
func (c *LRU) seekStart(t int64) int {
	lo, hi := 0, len(c.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.segs[mid].iv.Start >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (c *LRU) insertAt(i int, ref segRef) {
	c.segs = append(c.segs, segRef{})
	copy(c.segs[i+1:], c.segs[i:])
	c.segs[i] = ref
}

func (c *LRU) removeAt(i int) {
	copy(c.segs[i:], c.segs[i+1:])
	c.segs = c.segs[:len(c.segs)-1]
}

func (c *LRU) removeFromSlice(id int32) {
	i := c.seekStart(c.pool[id].iv.Start)
	if i >= len(c.segs) || c.segs[i].id != id {
		panic(fmt.Sprintf("cache: segment %v not found in directory", c.pool[id].iv))
	}
	c.removeAt(i)
}

// checkInvariants panics if internal bookkeeping diverged; used in tests.
func (c *LRU) checkInvariants() {
	var total int64
	var set dataspace.Set
	for i, ref := range c.segs {
		if ref.iv.Empty() {
			panic("cache: empty segment")
		}
		if ref.iv != c.pool[ref.id].iv {
			panic("cache: directory interval diverged from pool")
		}
		if i > 0 && c.segs[i-1].iv.End > ref.iv.Start {
			panic("cache: segments overlap or unsorted")
		}
		total += ref.iv.Len()
		set = set.Add(ref.iv)
	}
	if total != c.used {
		panic(fmt.Sprintf("cache: used=%d but segments hold %d", c.used, total))
	}
	if c.used > c.capacity {
		panic("cache: over capacity")
	}
	if set.Len() != c.set.Len() {
		panic("cache: set diverged from segments")
	}
	n := 0
	prev := noSeg
	for id := c.head; id != noSeg; id = c.pool[id].next {
		if c.pool[id].prev != prev {
			panic("cache: recency list back-link broken")
		}
		prev = id
		n++
	}
	if prev != c.tail {
		panic("cache: recency list tail mismatch")
	}
	if n != len(c.segs) {
		panic("cache: LRU list and directory out of sync")
	}
}
