package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"physched/internal/dataspace"
	"physched/internal/job"
	"physched/internal/model"
	"physched/internal/sim"
	"physched/internal/trace"
)

// TestFailNodeLosesInFlightWork: failing a busy node wastes the work done
// so far, returns the full original range for re-execution and leaves the
// job's accounting consistent for a clean re-dispatch.
func TestFailNodeLosesInFlightWork(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	// Halfway through the tape stream, the node dies.
	eng.RunUntil(500 * c.Params().EventTimeTape())

	lost := c.FailNode(c.Node(0), false)
	if lost == nil || lost.Range != j.Range {
		t.Fatalf("lost subjob %v, want full range %v", lost, j.Range)
	}
	if c.Node(0).Up() || c.Node(0).Idle() {
		t.Error("failed node still up or idle")
	}
	if j.Running != 0 || j.Processed != 0 || j.Started != true {
		t.Errorf("job accounting after failure: %+v", j)
	}
	st := c.Stats()
	if st.Failures != 1 || st.Reexecutions != 1 {
		t.Errorf("failures %d reexecutions %d, want 1/1", st.Failures, st.Reexecutions)
	}
	if st.EventsLost != 500 {
		t.Errorf("EventsLost = %d, want 500", st.EventsLost)
	}
	// The streamed prefix physically reached the disk and survives a
	// cache-preserving failure.
	if !c.Node(0).Cache.Contains(dataspace.Iv(0, 500)) {
		t.Error("streamed prefix not cached across a cache-preserving failure")
	}

	// Re-execution elsewhere completes the job exactly once.
	var done int
	c.JobDone = func(*job.Job) { done++ }
	c.Dispatch(c.Node(1), lost)
	eng.Run()
	if done != 1 || !j.Finished || j.Processed != 1000 {
		t.Errorf("job not conserved after re-execution: done=%d %+v", done, j)
	}
	// 500 events were streamed twice (wasted, then re-executed).
	if got := c.Stats().EventsFromTape; got != 1500 {
		t.Errorf("EventsFromTape = %d, want 1500", got)
	}
}

// TestFailNodeWipesCache: CacheLoss takes the disk contents with the node.
func TestFailNodeWipesCache(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	if c.Node(0).Cache.Used() == 0 {
		t.Fatal("nothing cached")
	}
	c.FailNode(c.Node(0), true)
	if used := c.Node(0).Cache.Used(); used != 0 {
		t.Errorf("cache holds %d events after a disk-losing failure", used)
	}
}

// TestFailIdleNodeAndRepair: an idle failure loses nothing; repair makes
// the node schedulable again and fires the callbacks in order.
func TestFailIdleNodeAndRepair(t *testing.T) {
	_, c := newTestCluster(Config{})
	var downs, ups int
	c.NodeDown = func(n *Node, lost *job.Subjob) {
		downs++
		if lost != nil {
			t.Errorf("idle failure reported lost work %v", lost)
		}
	}
	c.NodeUp = func(*Node) { ups++ }

	if lost := c.FailNode(c.Node(2), false); lost != nil {
		t.Errorf("idle failure returned %v", lost)
	}
	if c.IdleCount() != 2 || c.UpCount() != 2 {
		t.Errorf("idle %d up %d after failure, want 2/2", c.IdleCount(), c.UpCount())
	}
	c.RepairNode(c.Node(2))
	if !c.Node(2).Idle() || c.UpCount() != 3 {
		t.Error("repaired node not back in service")
	}
	if downs != 1 || ups != 1 {
		t.Errorf("callbacks: %d down, %d up, want 1/1", downs, ups)
	}
	st := c.Stats()
	if st.Failures != 1 || st.Repairs != 1 || st.EventsLost != 0 {
		t.Errorf("stats after idle failure+repair: %+v", st)
	}
}

// TestAddNodeJoins: a spare starts down, joins on JoinNode and then
// executes work like any other node.
func TestAddNodeJoins(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	n := c.AddNode()
	if n.ID != 3 || n.Up() || n.Idle() {
		t.Fatalf("fresh spare state wrong: id=%d up=%v idle=%v", n.ID, n.Up(), n.Idle())
	}
	if c.Index().Nodes() != 4 {
		t.Errorf("index covers %d caches, want 4", c.Index().Nodes())
	}
	c.JoinNode(n)
	if !n.Idle() || c.Stats().NodeJoins != 1 {
		t.Error("joined spare not idle or not counted")
	}
	j := mkJob(1, dataspace.Iv(0, 500))
	c.Dispatch(n, &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	if !j.Finished {
		t.Error("job on joined spare did not finish")
	}
}

// TestDecommissionNode: a decommission is permanent — cache wiped
// unconditionally, Decommissioned() visible to NodeDown observers, and
// repair attempts panic.
func TestDecommissionNode(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.Run()
	sawDecommissioned := false
	c.NodeDown = func(n *Node, _ *job.Subjob) { sawDecommissioned = n.Decommissioned() }
	c.DecommissionNode(c.Node(0))
	if !sawDecommissioned {
		t.Error("NodeDown fired before the decommission mark was visible")
	}
	if used := c.Node(0).Cache.Used(); used != 0 {
		t.Errorf("decommissioned node still caches %d events", used)
	}
	if st := c.Stats(); st.Decommissions != 1 || st.Failures != 1 {
		t.Errorf("stats: %+v", st)
	}
	defer func() {
		if recover() == nil {
			t.Error("repairing a decommissioned node did not panic")
		}
	}()
	c.RepairNode(c.Node(0))
}

// TestDownNodeServesNoRemoteReads: data cached on a down node re-streams
// from tape until the node returns — a powered-off disk cannot serve the
// network.
func TestDownNodeServesNoRemoteReads(t *testing.T) {
	eng, c := newTestCluster(Config{Caching: true, RemoteReads: true})
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(1), &job.Subjob{Job: j, Range: j.Range})
	eng.Run() // node 1 now caches [0,1000)

	iv := dataspace.Iv(0, 1000)
	remote := c.EstimateTime(c.Node(0), iv)
	if want := 1000 * c.Params().EventTimeRemote(); math.Abs(remote-want) > 1e-6 {
		t.Fatalf("estimate with owner up = %v, want remote rate %v", remote, want)
	}
	c.FailNode(c.Node(1), false) // outage preserves the disk…
	down := c.EstimateTime(c.Node(0), iv)
	if want := 1000 * c.Params().EventTimeTape(); math.Abs(down-want) > 1e-6 {
		t.Errorf("estimate with owner down = %v, want tape rate %v", down, want)
	}
	c.RepairNode(c.Node(1)) // …and the data serves again after repair
	back := c.EstimateTime(c.Node(0), iv)
	if math.Abs(back-remote) > 1e-6 {
		t.Errorf("estimate after repair = %v, want %v", back, remote)
	}
}

// TestInstallFaultsChurns: the injector produces failures and repairs on
// the engine with no jobs at all, deterministically per seed.
func TestInstallFaultsChurns(t *testing.T) {
	run := func(seed int64) (Stats, []trace.Event) {
		eng := sim.New(1)
		c := New(eng, testParams(), Config{})
		c.Tracer = trace.New(0, nil)
		m := FaultModel{MTBFHours: 24, RepairHours: 6, DayNightSwing: 0.5, DecommissionProb: 0.2}
		if err := InstallFaults(c, m, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(30 * model.Day)
		return c.Stats(), c.Tracer.Events()
	}
	st, timeline := run(42)
	if st.Failures == 0 || st.Repairs == 0 {
		t.Fatalf("a month of churn produced no failures/repairs: %+v", st)
	}
	if st.Decommissions == 0 {
		t.Errorf("no decommissions despite p=0.2 over %d failures", st.Failures)
	}
	if st.Repairs+st.Decommissions > st.Failures {
		t.Errorf("repairs %d + decommissions %d exceed failures %d", st.Repairs, st.Decommissions, st.Failures)
	}
	_, again := run(42)
	if fmt.Sprint(again) != fmt.Sprint(timeline) {
		t.Error("same seed, different churn timeline")
	}
	_, other := run(43)
	if fmt.Sprint(other) == fmt.Sprint(timeline) {
		t.Error("different seeds produced identical churn timelines")
	}
}

// TestFaultTraceEvents: churn shows up in the execution trace.
func TestFaultTraceEvents(t *testing.T) {
	eng, c := newTestCluster(Config{})
	rec := trace.New(0, nil)
	c.Tracer = rec
	j := mkJob(1, dataspace.Iv(0, 1000))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
	eng.RunUntil(100 * c.Params().EventTimeTape())
	c.FailNode(c.Node(0), false)
	c.RepairNode(c.Node(0))
	kinds := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[trace.NodeDown] != 1 || kinds[trace.NodeUp] != 1 || kinds[trace.SubjobLost] != 1 {
		t.Errorf("trace kinds: %v", kinds)
	}
}

// TestFaultModelValidate rejects out-of-range parameters.
func TestFaultModelValidate(t *testing.T) {
	bad := []FaultModel{
		{MTBFHours: -1},
		{MTBFHours: 10, RepairHours: -1},
		{MTBFHours: 10, DayNightSwing: 1},
		{MTBFHours: 10, DecommissionProb: -0.1},
		{SpareNodes: -2},
		{SpareNodes: 1, JoinHours: -3},
		{DayNightSwing: 0.4},
		// Inert non-zero blocks: failure knobs without a failure rate,
		// join timing without spares. Accepting them would silently
		// simulate nothing.
		{RepairHours: 2},
		{CacheLoss: true},
		{DecommissionProb: 0.1},
		{JoinHours: 5},
		{MTBFHours: 10, JoinHours: 5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("FaultModel %+v accepted", m)
		}
	}
	if err := (FaultModel{}).Validate(); err != nil {
		t.Errorf("zero model rejected: %v", err)
	}
}

// TestDispatchOnDownNodePanics: dispatching to a down node is a policy
// bug and must fail loudly.
func TestDispatchOnDownNodePanics(t *testing.T) {
	_, c := newTestCluster(Config{})
	c.FailNode(c.Node(0), false)
	defer func() {
		if recover() == nil {
			t.Error("dispatch on down node did not panic")
		}
	}()
	j := mkJob(1, dataspace.Iv(0, 100))
	c.Dispatch(c.Node(0), &job.Subjob{Job: j, Range: j.Range})
}
