// Command benchsnap converts `go test -bench` output on stdin into a
// compact JSON snapshot on stdout — the perf-trajectory format CI writes
// to BENCH_run.json so successive PRs can diff headline numbers (ns/op,
// allocs/op, custom metrics) without parsing benchmark text.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkRun -benchmem ./internal/lab | benchsnap
//
// With -check it becomes the CI bench gate: instead of printing a
// snapshot it compares the fresh run on stdin against a committed base
// snapshot and exits non-zero on a regression:
//
//	go test -run '^$' -bench BenchmarkRun -benchmem ./internal/lab |
//	    benchsnap -check BENCH_run.json [-tol 0.15]
//
// ns/op may regress by at most the -tol fraction (timing is noisy);
// allocs/op must not regress at all (allocation counts are
// deterministic). A fresh benchmark with no entry in the base snapshot
// fails the gate — it forces the snapshot to be regenerated in the same
// change that adds the benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchmark is one parsed benchmark result line.
type benchmark struct {
	// Name is the benchmark's name exactly as printed, including any
	// -P GOMAXPROCS suffix: a trailing -N is textually indistinguishable
	// from a sub-benchmark name ending in a number, so stripping it
	// would corrupt those names. Snapshots are compared within one
	// environment (the cpu field identifies it), where the suffix is
	// stable.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric extras, keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the whole document.
type snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	checkPath := flag.String("check", "", "base snapshot to gate against instead of emitting JSON")
	tol := flag.Float64("tol", 0.15, "allowed fractional ns/op regression in -check mode")
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		var base snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: parsing %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		problems := check(base, snap, *tol)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchsnap:", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchsnap: %d benchmark(s) within tolerance of %s\n", len(snap.Benchmarks), *checkPath)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// check compares every fresh benchmark against the base snapshot and
// returns one message per violation. Benchmark names are matched after
// stripping the -P GOMAXPROCS suffix on both sides, so a gate run on a
// machine with a different core count still finds its base entry.
func check(base, fresh snapshot, tol float64) []string {
	baseByName := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[trimProcs(b.Name)] = b
	}
	var problems []string
	for _, f := range fresh.Benchmarks {
		b, ok := baseByName[trimProcs(f.Name)]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: no base entry in snapshot — regenerate it", f.Name))
			continue
		}
		if limit := b.NsPerOp * (1 + tol); f.NsPerOp > limit {
			problems = append(problems,
				fmt.Sprintf("%s: %.0f ns/op exceeds base %.0f ns/op by more than %.0f%%",
					f.Name, f.NsPerOp, b.NsPerOp, tol*100))
		}
		if f.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems,
				fmt.Sprintf("%s: %.0f allocs/op regressed from base %.0f allocs/op",
					f.Name, f.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return problems
}

// trimProcs removes a trailing -N GOMAXPROCS suffix from a benchmark
// name, when present.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads go test benchmark output: header key: value lines, then
// "BenchmarkName-P  N  value unit  value unit ..." result lines.
func parse(r io.Reader) (snapshot, error) {
	var snap snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Concatenated runs from several packages (CI pipes them into
			// one snapshot) list every package instead of keeping the last.
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			switch {
			case snap.Pkg == "":
				snap.Pkg = pkg
			case !strings.Contains(";"+snap.Pkg+";", ";"+pkg+";"):
				snap.Pkg += ";" + pkg
			}
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return snap, fmt.Errorf("line %q: %w", line, err)
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// parseResult parses one benchmark result line.
func parseResult(line string) (benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, fmt.Errorf("want at least name and iterations")
	}
	b := benchmark{Name: fields[0], Metrics: map[string]float64{}}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b.Iterations = iters
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return benchmark{}, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		value, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return benchmark{}, fmt.Errorf("value %q: %w", rest[i], err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = value
		case "B/op":
			b.BytesPerOp = value
		case "allocs/op":
			b.AllocsPerOp = value
		default:
			b.Metrics[unit] = value
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, nil
}
