package experiments

import (
	"fmt"
	"strings"

	"physched/internal/asciiplot"
	"physched/internal/opt"
	"physched/internal/spec"
)

// TuneResult holds the budgeted-search experiment: one study over the
// delayed/adaptive parameter space under node churn, answered by both
// search drivers at the same cell budget.
type TuneResult struct {
	Study   opt.Study
	Random  *opt.Report
	Halving *opt.Report
}

// TuneStudy is the pinned scenario the tune experiment searches: which
// delayed/adaptive configuration (delay × stripe × cache size) gives the
// best mean speedup on a churning cluster, under a fixed budget of
// simulation cells. The space deliberately crosses a policy axis with a
// parameter only the delayed policy takes, so a third of the cross
// product is invalid and skipped — the realistic shape of policy search.
func TuneStudy(q Quality, seed int64) opt.Study {
	budget, reps := 48, 4
	warmup, measure := 40, 100
	if q == Full {
		budget = 160
		warmup, measure = 150, 400
	}
	return opt.Study{
		Base: spec.Spec{
			Params: spec.Params{CacheGB: 100},
			Policy: spec.Policy{Name: "delayed"},
			Faults: spec.Faults{MTBFHours: 150, RepairHours: 4, CacheLoss: true},
			Load:   1.6,
			Seed:   seed,
			// A 48 h delay legitimately accumulates ~230 jobs; the default
			// backlog threshold would misread that as overload.
			OverloadBacklog: 600,
			WarmupJobs:      warmup,
			MeasureJobs:     measure,
		},
		Axes: []opt.Axis{
			{Name: "policy", Values: []string{"delayed", "adaptive"}},
			{Name: "delay_hours", Min: 0, Max: 48, Steps: 3},
			{Name: "stripe_events", Min: 200, Max: 5000, Steps: 3, Scale: "log"},
			{Name: "cache_gb", Min: 50, Max: 200, Steps: 2},
		},
		Objective: opt.Objective{Metric: "mean_speedup"},
		// Sampling seed 1 is part of the pinned scenario: random search's
		// budget-sized sample then misses the space's best configuration,
		// which halving's wide first rung cannot (it covers the space).
		Search: opt.Search{BudgetCells: budget, Replications: reps, Seed: 1},
	}
}

// Tune runs the pinned study under both search drivers at equal budget.
// Successive halving spends its early rungs covering the whole space at
// one replication and promotes survivors, so it finds a better (never
// worse) configuration than random search's fixed-replication sample.
func Tune(q Quality, seed int64) (TuneResult, error) {
	st := TuneStudy(q, seed)
	optOpts := opt.Options{
		Workers: execOpts.Workers,
		Pool:    execOpts.Pool,
		Context: execOpts.Context,
	}
	st.Search.Algorithm = "random"
	random, err := opt.Run(st, optOpts)
	if err != nil {
		return TuneResult{}, fmt.Errorf("tune: random search: %w", err)
	}
	st.Search.Algorithm = "halving"
	halving, err := opt.Run(st, optOpts)
	if err != nil {
		return TuneResult{}, fmt.Errorf("tune: successive halving: %w", err)
	}
	return TuneResult{Study: st, Random: random, Halving: halving}, nil
}

// RenderTune renders the two searchers' leaderboards and the
// best-objective-versus-budget comparison plot.
func RenderTune(tr TuneResult) string {
	var b strings.Builder
	b.WriteString("Autotuner: budgeted search over the delayed/adaptive space under churn (internal/opt)\n")
	b.WriteString("  Both drivers spend the same simulation-cell budget; halving prunes with CI-aware comparisons.\n\n")
	b.WriteString("Successive halving\n")
	b.WriteString(tr.Halving.Render())
	b.WriteString("\nRandom search\n")
	b.WriteString(tr.Random.Render())
	b.WriteString("\n")
	b.WriteString(asciiplot.Render([]asciiplot.Series{
		tr.Halving.TrajectorySeries("successive halving"),
		tr.Random.TrajectorySeries("random search"),
	}, asciiplot.Options{
		Title:  "best " + tr.Study.Objective.Metric + " vs cells evaluated (equal budget)",
		XLabel: "cells evaluated",
		YLabel: tr.Study.Objective.Metric,
	}))
	return b.String()
}
