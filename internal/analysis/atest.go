package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"physched/internal/analysis/driver"
)

// RunFixture runs one analyzer over a fixture package under
// testdata/src/<name> and matches its diagnostics against `// want "re"`
// comments — the analysistest idiom, stdlib-only. A want comment sits on
// the line the diagnostic is expected at and holds one double-quoted
// regexp per expected diagnostic:
//
//	rand.Intn(3) // want "global rand"
//
// It returns a list of mismatches (unexpected diagnostics, unmatched
// expectations, regexp errors); an empty list means the fixture passed.
// Tests assert emptiness so failures print every mismatch at once.
//
// Fixture packages live under testdata/ precisely so `go build ./...`,
// `go test ./...` and `go vet ./...` skip their deliberate violations —
// only explicit paths reach them, which the loader uses.
func RunFixture(a *driver.Analyzer, fixture string) ([]string, error) {
	dir := "./testdata/src/" + fixture
	pkgs, err := driver.Load(".", dir)
	if err != nil {
		return nil, err
	}
	var diags []driver.Diagnostic
	for _, pkg := range pkgs {
		ds, err := driver.Run([]*driver.Package{pkg}, func(*driver.Package) []*driver.Analyzer {
			return []*driver.Analyzer{a}
		})
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}

	wants, err := collectWants(dir)
	if err != nil {
		return nil, err
	}
	return matchWants(diags, wants), nil
}

// want is one expectation: a regexp at a file line.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted strings from a want payload.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}

func matchWants(diags []driver.Diagnostic, wants []*want) []string {
	var problems []string
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != base || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: [%s] %s",
				base, d.Pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("no diagnostic matched want %q at %s:%d",
				w.raw, w.file, w.line))
		}
	}
	sort.Strings(problems)
	return problems
}
