package cache

import (
	"sort"

	"physched/internal/dataspace"
)

// CountMap counts accesses per event range. The data-replication policy of
// §4.2 keeps, on each node, "the number of remote accesses to its data
// segments" and replicates a segment on its third remote access. Counts
// are stored as disjoint sorted runs with uniform count.
type CountMap struct {
	runs []countRun
}

type countRun struct {
	iv    dataspace.Interval
	count int64
}

// Increment adds one access to every event of iv and returns the minimum
// count over iv after the increment (the policy replicates when this
// reaches its threshold).
func (m *CountMap) Increment(iv dataspace.Interval) int64 {
	if iv.Empty() {
		return 0
	}
	m.splitAt(iv.Start)
	m.splitAt(iv.End)
	i := sort.Search(len(m.runs), func(i int) bool { return m.runs[i].iv.End > iv.Start })
	minCount := int64(1 << 62)
	pos := iv.Start
	var insertions []countRun
	for ; i < len(m.runs) && m.runs[i].iv.Start < iv.End; i++ {
		r := &m.runs[i]
		if pos < r.iv.Start {
			insertions = append(insertions, countRun{dataspace.Iv(pos, r.iv.Start), 1})
			if minCount > 1 {
				minCount = 1
			}
		}
		r.count++
		if r.count < minCount {
			minCount = r.count
		}
		pos = r.iv.End
	}
	if pos < iv.End {
		insertions = append(insertions, countRun{dataspace.Iv(pos, iv.End), 1})
		if minCount > 1 {
			minCount = 1
		}
	}
	for _, ins := range insertions {
		m.insert(ins)
	}
	return minCount
}

// Count returns the access count at event e (zero if never accessed).
func (m *CountMap) Count(e int64) int64 {
	i := sort.Search(len(m.runs), func(i int) bool { return m.runs[i].iv.End > e })
	if i < len(m.runs) && m.runs[i].iv.Contains(e) {
		return m.runs[i].count
	}
	return 0
}

// Reset clears the counts over iv (used when a segment is evicted, so a
// re-cached segment starts counting afresh).
func (m *CountMap) Reset(iv dataspace.Interval) {
	if iv.Empty() {
		return
	}
	m.splitAt(iv.Start)
	m.splitAt(iv.End)
	out := m.runs[:0]
	for _, r := range m.runs {
		if !r.iv.Overlaps(iv) {
			out = append(out, r)
		}
	}
	m.runs = out
}

// splitAt ensures no run straddles event index e.
func (m *CountMap) splitAt(e int64) {
	i := sort.Search(len(m.runs), func(i int) bool { return m.runs[i].iv.End > e })
	if i >= len(m.runs) || !m.runs[i].iv.Contains(e) || m.runs[i].iv.Start == e {
		return
	}
	r := m.runs[i]
	left := countRun{dataspace.Iv(r.iv.Start, e), r.count}
	m.runs[i].iv = dataspace.Iv(e, r.iv.End)
	m.runs = append(m.runs, countRun{})
	copy(m.runs[i+1:], m.runs[i:])
	m.runs[i] = left
}

func (m *CountMap) insert(r countRun) {
	i := sort.Search(len(m.runs), func(i int) bool { return m.runs[i].iv.Start >= r.iv.Start })
	m.runs = append(m.runs, countRun{})
	copy(m.runs[i+1:], m.runs[i:])
	m.runs[i] = r
}
