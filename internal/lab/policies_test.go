package lab

import (
	"math"
	"testing"

	"physched/internal/model"
	"physched/internal/queueing"
	"physched/internal/sched"
)

// smallParams shrinks the workload so integration tests stay fast while
// keeping the paper's structure (cache smaller than dataspace, hot
// regions, Erlang job sizes).
func smallParams() model.Params {
	p := model.PaperCalibrated()
	p.Nodes = 4
	p.MeanJobEvents = 2_000
	p.DataspaceBytes = 200 * model.GB // ≈ 333 k events
	p.CacheBytes = 10 * model.GB      // ≈ 16.7 k events per node
	return p
}

// policyScenario builds a quick scenario for the given policy constructor.
func policyScenario(newPolicy func() sched.Policy, load float64) Scenario {
	return Scenario{
		Params:      smallParams(),
		NewPolicy:   newPolicy,
		Load:        load,
		Seed:        7,
		WarmupJobs:  60,
		MeasureJobs: 250,
	}
}

func allPolicies() []struct {
	name string
	mk   func() sched.Policy
} {
	return []struct {
		name string
		mk   func() sched.Policy
	}{
		{"farm", func() sched.Policy { return sched.NewFarm() }},
		{"splitting", func() sched.Policy { return sched.NewSplitting() }},
		{"cacheoriented", func() sched.Policy { return sched.NewCacheOriented() }},
		{"outoforder", func() sched.Policy { return sched.NewOutOfOrder() }},
		{"replication", func() sched.Policy { return sched.NewReplication() }},
		{"delayed", func() sched.Policy { return sched.NewDelayed(6*model.Hour, 500) }},
		{"delayed-zero", func() sched.Policy { return sched.NewDelayed(0, 500) }},
		{"adaptive", func() sched.Policy { return sched.NewAdaptive(500) }},
	}
}

// TestAllPoliciesCompleteAtLowLoad is the core integration test: every
// policy must process every measured job exactly once, without panics,
// with sane metrics, at a load every policy sustains.
func TestAllPoliciesCompleteAtLowLoad(t *testing.T) {
	// Farm max load for small params: 4 nodes / (2000 × u) per job.
	p := smallParams()
	farmMax := p.FarmMaxLoad()
	load := 0.5 * farmMax
	for _, tc := range allPolicies() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := policyScenario(tc.mk, load)
			s.KeepJobResults = true
			res := Run(s)
			if res.Overloaded {
				t.Fatalf("%s overloaded at half the farm max load", tc.name)
			}
			if res.MeasuredJobs != 250 {
				t.Fatalf("measured %d jobs, want 250", res.MeasuredJobs)
			}
			if res.AvgSpeedup <= 0 {
				t.Errorf("AvgSpeedup = %v", res.AvgSpeedup)
			}
			maxSpeedup := p.MaxSpeedup() * 1.05
			if res.AvgSpeedup > maxSpeedup {
				t.Errorf("AvgSpeedup %v exceeds theoretical bound %v", res.AvgSpeedup, maxSpeedup)
			}
			if res.AvgWaiting < 0 {
				t.Errorf("negative AvgWaiting %v", res.AvgWaiting)
			}
			for _, r := range res.Collector.Results() {
				if r.FirstStart < r.ScheduledAt-1e-6 {
					t.Fatalf("job %d started before being scheduled", r.ID)
				}
				if r.End < r.FirstStart {
					t.Fatalf("job %d ended before starting", r.ID)
				}
			}
		})
	}
}

// TestCachePoliciesBeatFarm verifies the paper's headline ordering at a
// moderate load: cache-aware policies deliver higher average speedups than
// the processing farm.
func TestCachePoliciesBeatFarm(t *testing.T) {
	p := smallParams()
	load := 0.6 * p.FarmMaxLoad()
	farm := Run(policyScenario(func() sched.Policy { return sched.NewFarm() }, load))
	split := Run(policyScenario(func() sched.Policy { return sched.NewSplitting() }, load))
	cache := Run(policyScenario(func() sched.Policy { return sched.NewCacheOriented() }, load))
	ooo := Run(policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, load))
	if farm.Overloaded || split.Overloaded || cache.Overloaded || ooo.Overloaded {
		t.Fatal("unexpected overload at 60% of farm max load")
	}
	if split.AvgSpeedup <= farm.AvgSpeedup {
		t.Errorf("splitting (%.2f) should beat farm (%.2f)", split.AvgSpeedup, farm.AvgSpeedup)
	}
	if cache.AvgSpeedup <= split.AvgSpeedup {
		t.Errorf("cache-oriented (%.2f) should beat splitting (%.2f)", cache.AvgSpeedup, split.AvgSpeedup)
	}
	if ooo.AvgSpeedup <= split.AvgSpeedup {
		t.Errorf("out-of-order (%.2f) should beat splitting (%.2f)", ooo.AvgSpeedup, split.AvgSpeedup)
	}
}

// TestFarmMatchesQueueingModel checks the farm simulator against the
// M/Er/m analytic reference (§3.1) at moderate utilisation.
func TestFarmMatchesQueueingModel(t *testing.T) {
	p := smallParams()
	load := 0.55 * p.FarmMaxLoad()
	s := policyScenario(func() sched.Policy { return sched.NewFarm() }, load)
	s.MeasureJobs = 2_000
	s.WarmupJobs = 200
	res := Run(s)
	if res.Overloaded {
		t.Fatal("farm overloaded below its max load")
	}
	q := queueing.MErM{
		Lambda:      load / model.Hour,
		MeanService: float64(p.MeanJobEvents) * p.EventTimeTape(),
		Shape:       p.ErlangShape,
		Servers:     p.Nodes,
	}
	want, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	got := res.AvgWaiting
	if math.Abs(got-want) > 0.25*want+60 {
		t.Errorf("farm AvgWaiting = %.0f s, analytic M/Er/m ≈ %.0f s", got, want)
	}
}

// TestFarmOverloadsBeyondMaxLoad: beyond the theoretical farm bound the
// backlog must grow without limit and the run must report overload.
func TestFarmOverloadsBeyondMaxLoad(t *testing.T) {
	p := smallParams()
	s := policyScenario(func() sched.Policy { return sched.NewFarm() }, 1.3*p.FarmMaxLoad())
	res := Run(s)
	if !res.Overloaded {
		t.Errorf("farm at 130%% of max load did not overload (speedup %.2f, waiting %.0f)",
			res.AvgSpeedup, res.AvgWaiting)
	}
}

// TestOutOfOrderSustainsMoreThanCacheOriented reproduces the §7 claim that
// out-of-order roughly doubles the sustainable load of cache-oriented
// FIFO splitting.
func TestOutOfOrderSustainsMoreThanCacheOriented(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	p := smallParams()
	loads := []float64{1.0, 1.4, 1.8, 2.2, 2.6, 3.0, 3.4, 3.8}
	for i := range loads {
		loads[i] *= p.FarmMaxLoad()
	}
	co := Scenario{Params: p, NewPolicy: func() sched.Policy { return sched.NewCacheOriented() },
		Seed: 11, WarmupJobs: 80, MeasureJobs: 300}
	oo := Scenario{Params: p, NewPolicy: func() sched.Policy { return sched.NewOutOfOrder() },
		Seed: 11, WarmupJobs: 80, MeasureJobs: 300}
	coMax := SustainableLoad(co, loads, Options{})
	ooMax := SustainableLoad(oo, loads, Options{})
	if ooMax <= coMax {
		t.Errorf("out-of-order sustains %.2f j/h, cache-oriented %.2f j/h; want strictly more", ooMax, coMax)
	}
}

func TestDeterministicResults(t *testing.T) {
	s := policyScenario(func() sched.Policy { return sched.NewOutOfOrder() }, 0.4*smallParams().FarmMaxLoad())
	a := Run(s)
	b := Run(s)
	if a.AvgSpeedup != b.AvgSpeedup || a.AvgWaiting != b.AvgWaiting {
		t.Errorf("same seed gave different results: %+v vs %+v", a, b)
	}
}

func TestSweepOrdersResults(t *testing.T) {
	p := smallParams()
	loads := []float64{0.2 * p.FarmMaxLoad(), 0.4 * p.FarmMaxLoad()}
	s := policyScenario(func() sched.Policy { return sched.NewFarm() }, 0)
	s.MeasureJobs = 100
	s.WarmupJobs = 20
	rs, err := (Grid{Base: s, Loads: loads}).Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := rs.Results
	if len(results) != 2 || results[0].Load != loads[0] || results[1].Load != loads[1] {
		t.Errorf("sweep results out of order: %+v", results)
	}
}
