package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// faultedGridBody crosses a fault-free base with two churn variants over
// a small load×seed grid — the declarative form of a node-dynamics study.
const faultedGridBody = `{
	"base": {
		"params": {"nodes": 3, "cache_gb": 6, "mean_job_events": 1000, "dataspace_gb": 60},
		"policy": {"name": "outoforder"},
		"load_jobs_per_hour": 1.0,
		"seed": 5,
		"warmup_jobs": 10,
		"measure_jobs": 40
	},
	"variants": [
		{"label": "no churn"},
		{"label": "churn", "faults": {"mtbf_hours": 24, "repair_hours": 2, "cache_loss": true}},
		{"label": "decommission", "faults": {"mtbf_hours": 48, "decommission_prob": 0.5, "spare_nodes": 2}}
	],
	"loads": [0.9],
	"seeds": [1, 2]
}`

// TestFaultedGridPOST: a grid spec carrying faults blocks runs through
// the service unchanged — the block rides the spec wire format — and the
// churn variants report failures, wasted work and goodput while the
// fault-free variant reports none.
func TestFaultedGridPOST(t *testing.T) {
	ts := testServer(t)
	_, result := postGrid(t, ts, faultedGridBody)
	if len(result.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(result.Cells))
	}
	for _, cell := range result.Cells {
		st := cell.Result.Cluster
		switch cell.Label {
		case "no churn":
			if st.Failures != 0 || cell.Result.Goodput != 0 || st.EventsLost != 0 {
				t.Errorf("fault-free cell reports churn: goodput=%v %+v", cell.Result.Goodput, st)
			}
		case "churn", "decommission":
			if cell.Result.Overloaded {
				continue // an overloaded replica reports no metrics
			}
			if st.Failures == 0 {
				t.Errorf("cell %q saw no failures", cell.Label)
			}
			if cell.Result.Goodput <= 0 || cell.Result.Goodput > 1 {
				t.Errorf("cell %q goodput %v out of (0,1]", cell.Label, cell.Result.Goodput)
			}
		default:
			t.Errorf("unexpected cell label %q", cell.Label)
		}
	}

	// The same POST again must be served entirely from the result cache,
	// churn variants included.
	_, again := postGrid(t, ts, faultedGridBody)
	if again.CacheHits != len(again.Cells) {
		t.Errorf("second POST re-simulated cells: %d hits of %d", again.CacheHits, len(again.Cells))
	}
	a, _ := json.Marshal(result.Cells)
	b, _ := json.Marshal(again.Cells)
	if string(a) != string(b) {
		t.Error("cache-served faulted cells differ from fresh ones")
	}
}

// TestFaultedSpecRejected: invalid fault parameters fail at admission
// with 422, like any other invalid spec.
func TestFaultedSpecRejected(t *testing.T) {
	ts := testServer(t)
	body := strings.Replace(faultedGridBody, `"mtbf_hours": 24`, `"mtbf_hours": -24`, 1)
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422", resp.StatusCode)
	}
}
